"""Engine edge cases: budgets, limits, and accounting details."""

import pytest

from repro.negotiation.engine import NegotiationEngine, negotiate
from repro.negotiation.outcomes import FailureReason
from repro.negotiation.tree import NodeStatus
from repro.scenario.workloads import bushy_workload, chain_workload
from tests.conftest import ISSUE_AT, NEGOTIATION_AT


class TestBudgets:
    def test_max_nodes_budget(self):
        fixture = bushy_workload(alternatives=8)
        engine = NegotiationEngine(
            fixture.requester, fixture.controller, max_nodes=2
        )
        result = engine.run("RES", at=fixture.negotiation_time())
        # Either the budget bites (bushy width > cap) or the single
        # satisfiable alternative was found before the cap; with cap 2
        # and the satisfiable alternative last, it must bite.
        assert not result.success
        assert result.failure_reason is FailureReason.BUDGET_EXHAUSTED

    def test_view_limit_still_finds_a_view(self):
        fixture = bushy_workload(alternatives=6, satisfiable_index=0)
        engine = NegotiationEngine(
            fixture.requester, fixture.controller, view_limit=1,
            view_selection="min_disclosure",
        )
        result = engine.run("RES", at=fixture.negotiation_time())
        assert result.success


class TestAccounting:
    def test_not_possess_counts_one_message(self, agent_factory,
                                            shared_keypair, other_keypair):
        requester = agent_factory("Req", [], "", shared_keypair)
        controller = agent_factory(
            "Ctrl", [], "RES <- MissingCred", other_keypair
        )
        result = negotiate(requester, controller, "RES", at=NEGOTIATION_AT)
        # request(1) + policy(1) + not-possess(1)
        assert result.policy_messages == 3

    def test_free_resource_message_count(self, agent_factory,
                                         shared_keypair, other_keypair):
        requester = agent_factory("Req", [], "", shared_keypair)
        controller = agent_factory("Ctrl", [], "RES <- DELIV", other_keypair)
        result = negotiate(requester, controller, "RES", at=NEGOTIATION_AT)
        assert result.success
        # request(1) + proposal/accept(2); grant(1) on the exchange side.
        assert result.policy_messages == 3
        assert result.exchange_messages == 1

    def test_transcript_records_not_possess(self, agent_factory,
                                            shared_keypair, other_keypair):
        requester = agent_factory("Req", [], "", shared_keypair)
        controller = agent_factory("Ctrl", [], "RES <- Missing",
                                   other_keypair)
        result = negotiate(requester, controller, "RES", at=NEGOTIATION_AT)
        actions = [event.action for event in result.transcript]
        assert "not-possess" in actions


class TestTreeDiagnostics:
    def test_failed_tree_is_inspectable(self, agent_factory, shared_keypair,
                                        other_keypair):
        requester = agent_factory("Req", [], "", shared_keypair)
        controller = agent_factory("Ctrl", [], "RES <- Missing",
                                   other_keypair)
        result = negotiate(requester, controller, "RES", at=NEGOTIATION_AT)
        tree = result.tree
        assert tree is not None
        missing = [n for n in tree.nodes() if n.label == "Missing"]
        assert missing[0].status is NodeStatus.UNSATISFIABLE

    def test_deliverable_nodes_carry_credential_ids(self, agent_factory,
                                                    infn, shared_keypair,
                                                    other_keypair):
        requester = agent_factory(
            "Req",
            [infn.issue("Badge", "Req", shared_keypair.fingerprint, {},
                        ISSUE_AT)],
            "", shared_keypair,
        )
        controller = agent_factory("Ctrl", [], "RES <- Badge", other_keypair)
        result = negotiate(requester, controller, "RES", at=NEGOTIATION_AT)
        badge_nodes = [
            n for n in result.tree.nodes() if n.label == "Badge"
        ]
        assert badge_nodes[0].credential_id is not None
