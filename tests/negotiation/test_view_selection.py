"""Choosing among the potential trust sequences.

"The interplay goes on until one or more potential trust sequences are
determined" (paper Section 4.2) — when several exist, the engine can
prefer the one disclosing fewest credentials or lowest sensitivity.
"""

import pytest

from repro.credentials.sensitivity import Sensitivity
from repro.negotiation.engine import NegotiationEngine
from repro.negotiation.outcomes import FailureReason
from tests.conftest import ISSUE_AT, NEGOTIATION_AT


@pytest.fixture()
def parties(agent_factory, infn, shared_keypair, other_keypair):
    """Controller offers two alternatives: the first needs TWO requester
    credentials (one HIGH sensitivity), the second needs ONE low one."""
    requester = agent_factory(
        "Req",
        [
            infn.issue("BigCertA", "Req", shared_keypair.fingerprint, {},
                       ISSUE_AT, sensitivity=Sensitivity.HIGH),
            infn.issue("BigCertB", "Req", shared_keypair.fingerprint, {},
                       ISSUE_AT, sensitivity=Sensitivity.LOW),
            infn.issue("SmallCert", "Req", shared_keypair.fingerprint, {},
                       ISSUE_AT, sensitivity=Sensitivity.LOW),
        ],
        "",
        shared_keypair,
    )
    controller = agent_factory(
        "Ctrl", [],
        "RES <- BigCertA, BigCertB\nRES <- SmallCert",
        other_keypair,
    )
    return requester, controller


class TestViewSelection:
    def test_first_takes_the_first_alternative(self, parties):
        requester, controller = parties
        engine = NegotiationEngine(requester, controller,
                                   view_selection="first")
        result = engine.run("RES", at=NEGOTIATION_AT)
        assert result.success
        assert result.disclosures == 2
        assert any("BigCertA" in c for c in result.disclosed_by_requester)

    def test_min_disclosure_takes_the_cheaper_alternative(self, parties):
        requester, controller = parties
        engine = NegotiationEngine(requester, controller,
                                   view_selection="min_disclosure")
        result = engine.run("RES", at=NEGOTIATION_AT)
        assert result.success
        assert result.disclosures == 1
        assert any("SmallCert" in c for c in result.disclosed_by_requester)

    def test_min_sensitivity_avoids_the_high_credential(self, parties):
        requester, controller = parties
        engine = NegotiationEngine(requester, controller,
                                   view_selection="min_sensitivity")
        result = engine.run("RES", at=NEGOTIATION_AT)
        assert result.success
        assert not any(
            "BigCertA" in c for c in result.disclosed_by_requester
        )

    def test_min_sensitivity_prefers_low_even_at_equal_count(
        self, agent_factory, infn, shared_keypair, other_keypair
    ):
        requester = agent_factory(
            "Req",
            [
                infn.issue("HighCert", "Req", shared_keypair.fingerprint, {},
                           ISSUE_AT, sensitivity=Sensitivity.HIGH),
                infn.issue("LowCert", "Req", shared_keypair.fingerprint, {},
                           ISSUE_AT, sensitivity=Sensitivity.LOW),
            ],
            "",
            shared_keypair,
        )
        controller = agent_factory(
            "Ctrl", [], "RES <- HighCert\nRES <- LowCert", other_keypair,
        )
        engine = NegotiationEngine(requester, controller,
                                   view_selection="min_sensitivity")
        result = engine.run("RES", at=NEGOTIATION_AT)
        assert any("LowCert" in c for c in result.disclosed_by_requester)

    def test_unknown_selection_rejected(self, parties):
        requester, controller = parties
        engine = NegotiationEngine(requester, controller,
                                   view_selection="fanciest")
        with pytest.raises(Exception):
            engine.run("RES", at=NEGOTIATION_AT)

    def test_selection_makes_no_difference_with_one_view(
        self, agent_factory, infn, shared_keypair, other_keypair
    ):
        requester = agent_factory(
            "Req",
            [infn.issue("OnlyCert", "Req", shared_keypair.fingerprint, {},
                        ISSUE_AT)],
            "", shared_keypair,
        )
        controller = agent_factory("Ctrl", [], "RES <- OnlyCert",
                                   other_keypair)
        results = [
            NegotiationEngine(requester, controller,
                              view_selection=mode).run(
                "RES", at=NEGOTIATION_AT
            )
            for mode in ("first", "min_disclosure", "min_sensitivity")
        ]
        assert len({r.disclosures for r in results}) == 1
        assert all(r.success for r in results)
