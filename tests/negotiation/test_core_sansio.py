"""The sans-IO negotiation core: effects in, results out, no I/O."""

from __future__ import annotations

import dataclasses

import pytest

from repro.negotiation.core import (
    OP_PREWARM_VERIFICATION,
    AgentOp,
    NegotiationCore,
    drive,
    perform_agent_op,
)
from repro.negotiation.engine import NegotiationEngine
from repro.negotiation.outcomes import FailureReason
from repro.scenario.workloads import chain_workload


@pytest.fixture()
def fixture():
    return chain_workload(4)


def _core(fixture, **overrides) -> NegotiationCore:
    options = {
        "requester": fixture.requester.name,
        "controller": fixture.controller.name,
    }
    options.update(overrides)
    return NegotiationCore(**options)


def _agents(fixture) -> dict:
    return {
        fixture.requester.name: fixture.requester,
        fixture.controller.name: fixture.controller,
    }


def _collect_ops(fixture, **overrides):
    """Drive the core with a recording driver; return (ops, result)."""
    core = _core(fixture, **overrides)
    agents = _agents(fixture)
    gen = core.run(fixture.resource, fixture.negotiation_time())
    ops: list[AgentOp] = []
    reply = None
    exc = None
    while True:
        try:
            effect = gen.throw(exc) if exc is not None else gen.send(reply)
        except StopIteration as stop:
            return ops, stop.value
        ops.append(effect)
        reply, exc = None, None
        try:
            reply = perform_agent_op(agents, effect)
        except Exception as error:
            exc = error


class TestEffectVocabulary:
    def test_core_yields_frozen_agent_ops(self, fixture):
        ops, result = _collect_ops(fixture)
        assert result.success
        assert ops, "a negotiation must request at least one effect"
        parties = {fixture.requester.name, fixture.controller.name}
        for op in ops:
            assert isinstance(op, AgentOp)
            assert op.party in parties
            assert isinstance(op.args, tuple)
        with pytest.raises(dataclasses.FrozenInstanceError):
            ops[0].party = "mallory"

    def test_custom_driver_matches_engine(self, fixture):
        """A third driver — neither `drive` nor `adrive` — built from
        the same effect vocabulary reproduces the engine's result."""
        _, custom = _collect_ops(fixture)
        engine_result = NegotiationEngine(
            fixture.requester, fixture.controller
        ).run(fixture.resource, at=fixture.negotiation_time())
        assert custom.to_audit_record() == engine_result.to_audit_record()

    def test_prewarm_effect_tracks_batch_verify_flag(self, fixture):
        batched_ops, batched = _collect_ops(fixture, batch_verify=True)
        scalar_ops, scalar = _collect_ops(fixture, batch_verify=False)
        assert any(
            op.op == OP_PREWARM_VERIFICATION for op in batched_ops
        ), "batch_verify=True must request a prewarm pass"
        assert not any(
            op.op == OP_PREWARM_VERIFICATION for op in scalar_ops
        ), "batch_verify=False must never prewarm"
        # The flag changes scheduling of RSA work, never the outcome.
        assert batched.to_audit_record() == scalar.to_audit_record()


class TestDrive:
    def test_drive_equals_manual_loop(self, fixture):
        _, manual = _collect_ops(fixture)
        driven = drive(
            _core(fixture).run(fixture.resource, fixture.negotiation_time()),
            _agents(fixture),
        )
        assert driven.to_audit_record() == manual.to_audit_record()

    def test_same_party_on_both_sides_is_protocol_failure(self, fixture):
        core = NegotiationCore(
            requester=fixture.controller.name,
            controller=fixture.controller.name,
        )
        result = drive(
            core.run(fixture.resource, fixture.negotiation_time()),
            {fixture.controller.name: fixture.controller},
        )
        assert not result.success
        assert result.failure_reason == FailureReason.PROTOCOL

    def test_unknown_party_surfaces_as_failure(self, fixture):
        core = _core(fixture)
        # Driver knows only the controller; the first requester-side
        # effect raises inside the driver and the core converts the
        # thrown error into a structured failure result.
        result = drive(
            core.run(fixture.resource, fixture.negotiation_time()),
            {fixture.controller.name: fixture.controller},
        )
        assert not result.success
