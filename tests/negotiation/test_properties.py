"""Property-based invariants of the negotiation engine.

Hypothesis generates random chain/bushy policy structures; the engine
must uphold structural invariants regardless of shape:

- chains always succeed, and the number of disclosures equals the depth;
- a bushy resource succeeds iff the satisfiable alternative exists;
- the executed sequence always ends at the root, with prerequisites
  disclosed before dependents;
- message accounting is consistent.
"""

from hypothesis import given, settings, strategies as st

from repro.credentials.authority import CredentialAuthority
from repro.negotiation.eager import eager_negotiate
from repro.negotiation.engine import negotiate
from repro.scenario.workloads import bushy_workload, chain_workload

# One shared authority across examples: keygen dominates fixture cost.
_AUTHORITY = CredentialAuthority.create("PropCA", key_bits=512)

_settings = settings(max_examples=12, deadline=None)


@_settings
@given(depth=st.integers(min_value=1, max_value=6))
def test_chain_invariants(depth):
    fixture = chain_workload(depth, authority=_AUTHORITY)
    result = negotiate(
        fixture.requester, fixture.controller, fixture.resource,
        at=fixture.negotiation_time(),
    )
    assert result.success
    assert result.disclosures == depth
    assert result.sequence[-1].is_root
    assert result.total_messages == (
        result.policy_messages + result.exchange_messages
    )
    # Deeper nodes are disclosed strictly before shallower ones.
    depths = [node.depth for node in result.sequence]
    assert depths == sorted(depths, reverse=True)


@_settings
@given(
    alternatives=st.integers(min_value=1, max_value=6),
    data=st.data(),
)
def test_bushy_invariants(alternatives, data):
    satisfiable_index = data.draw(
        st.integers(min_value=0, max_value=alternatives - 1)
    )
    fixture = bushy_workload(
        alternatives, satisfiable_index, authority=_AUTHORITY
    )
    result = negotiate(
        fixture.requester, fixture.controller, fixture.resource,
        at=fixture.negotiation_time(),
    )
    assert result.success
    assert result.disclosures == 1
    # Exactly one alternative edge was expanded per tree level.
    assert len(result.tree.edges_from(result.tree.root_id)) == alternatives


@_settings
@given(depth=st.integers(min_value=1, max_value=4))
def test_eager_agrees_with_trustx_on_chains(depth):
    """Completeness: both protocols agree on success over chains."""
    fixture = chain_workload(depth, authority=_AUTHORITY)
    trustx = negotiate(
        fixture.requester, fixture.controller, fixture.resource,
        at=fixture.negotiation_time(),
    )
    eager = eager_negotiate(
        fixture.requester, fixture.controller, fixture.resource,
        at=fixture.negotiation_time(),
    )
    assert trustx.success == eager.success is True
    # Trust-X never discloses more than the eager strategy.
    assert trustx.disclosures <= eager.disclosures


@_settings
@given(
    depth=st.integers(min_value=1, max_value=4),
    repeat=st.integers(min_value=2, max_value=3),
)
def test_negotiations_are_deterministic_and_idempotent(depth, repeat):
    fixture = chain_workload(depth, authority=_AUTHORITY)
    results = [
        negotiate(
            fixture.requester, fixture.controller, fixture.resource,
            at=fixture.negotiation_time(),
        )
        for _ in range(repeat)
    ]
    first = results[0]
    for other in results[1:]:
        assert other.success == first.success
        assert other.total_messages == first.total_messages
        assert other.disclosed_by_requester == first.disclosed_by_requester
        assert other.disclosed_by_controller == first.disclosed_by_controller
