"""Trust-sequence caching."""

import pytest

from repro.credentials.authority import CredentialAuthority
from repro.credentials.revocation import RevocationRegistry
from repro.trust import TrustBus
from repro.crypto.keys import Keyring
from repro.negotiation.cache import CachingNegotiator, SequenceCache
from tests.conftest import ISSUE_AT, NEGOTIATION_AT, make_agent


@pytest.fixture()
def world(shared_keypair, other_keypair):
    ca = CredentialAuthority.create("CA", key_bits=512)
    ring = Keyring()
    ring.add("CA", ca.public_key)
    registry = RevocationRegistry()
    TrustBus(registry=registry).publish_crl(ca.crl)
    badge = ca.issue("Badge", "Req", shared_keypair.fingerprint, {},
                     ISSUE_AT)
    proof = ca.issue("Proof", "Ctrl", other_keypair.fingerprint, {},
                     ISSUE_AT)
    requester = make_agent("Req", [badge], "Badge <- Proof",
                           shared_keypair, ring, registry)
    controller = make_agent("Ctrl", [proof],
                            "RES <- Badge\nProof <- DELIV",
                            other_keypair, ring, registry)
    return ca, registry, requester, controller, badge


class TestCaching:
    def test_first_run_misses_then_hits(self, world):
        _, _, requester, controller, _ = world
        negotiator = CachingNegotiator()
        first = negotiator.negotiate(requester, controller, "RES",
                                     at=NEGOTIATION_AT)
        assert first.success
        assert negotiator.cache.misses == 1
        second = negotiator.negotiate(requester, controller, "RES",
                                      at=NEGOTIATION_AT)
        assert second.success
        assert negotiator.cache.hits == 1

    def test_replay_skips_policy_phase(self, world):
        _, _, requester, controller, _ = world
        negotiator = CachingNegotiator()
        first = negotiator.negotiate(requester, controller, "RES",
                                     at=NEGOTIATION_AT)
        second = negotiator.negotiate(requester, controller, "RES",
                                      at=NEGOTIATION_AT)
        assert second.policy_messages == 0
        assert second.total_messages < first.total_messages

    def test_replay_discloses_the_same_credentials(self, world):
        _, _, requester, controller, _ = world
        negotiator = CachingNegotiator()
        first = negotiator.negotiate(requester, controller, "RES",
                                     at=NEGOTIATION_AT)
        second = negotiator.negotiate(requester, controller, "RES",
                                      at=NEGOTIATION_AT)
        assert set(second.disclosed_by_requester) == set(
            first.disclosed_by_requester
        )
        assert set(second.disclosed_by_controller) == set(
            first.disclosed_by_controller
        )

    def test_revocation_invalidates_cache(self, world):
        """The operation-phase scenario: the cached credential is
        revoked, replay fails, and a full negotiation runs (and fails
        too, for the same reason)."""
        ca, registry, requester, controller, badge = world
        negotiator = CachingNegotiator()
        negotiator.negotiate(requester, controller, "RES", at=NEGOTIATION_AT)
        TrustBus(registry=registry).revoke(ca, badge)
        result = negotiator.negotiate(requester, controller, "RES",
                                      at=NEGOTIATION_AT)
        assert not result.success
        assert negotiator.cache.invalidations == 1
        assert len(negotiator.cache) == 0

    def test_failed_negotiation_not_cached(self, world):
        _, _, requester, controller, _ = world
        negotiator = CachingNegotiator()
        result = negotiator.negotiate(requester, controller,
                                      "NothingSatisfiable:Protected",
                                      at=NEGOTIATION_AT)
        # Unknown resource is unprotected -> success with no steps;
        # use a genuinely failing one instead.
        controller.policies.add_dsl("Locked <- MissingCred")
        failing = negotiator.negotiate(requester, controller, "Locked",
                                       at=NEGOTIATION_AT)
        assert not failing.success
        assert negotiator.cache.lookup("Req", "Ctrl", "Locked") is None

    def test_cache_key_is_per_resource(self, world):
        _, _, requester, controller, _ = world
        negotiator = CachingNegotiator()
        negotiator.negotiate(requester, controller, "RES", at=NEGOTIATION_AT)
        assert negotiator.cache.lookup("Req", "Ctrl", "RES") is not None
        assert negotiator.cache.lookup("Req", "Ctrl", "OTHER") is None

    def test_store_rejects_failures(self):
        from repro.negotiation.outcomes import NegotiationResult

        cache = SequenceCache()
        failed = NegotiationResult(
            resource="R", requester="A", controller="B", success=False
        )
        assert cache.store(failed) is None
        assert len(cache) == 0


class TestSequenceCacheLRU:
    @staticmethod
    def _successful_result(resource: str) -> "NegotiationResult":
        from repro.negotiation.outcomes import NegotiationResult
        from repro.negotiation.tree import NegotiationTree

        tree = NegotiationTree(resource, "Ctrl")
        return NegotiationResult(
            resource=resource, requester="Req", controller="Ctrl",
            success=True, tree=tree, sequence=(tree.root,),
        )

    def test_capacity_bound_evicts_least_recently_used(self):
        cache = SequenceCache(capacity=2)
        cache.store(self._successful_result("R1"))
        cache.store(self._successful_result("R2"))
        assert cache.lookup("Req", "Ctrl", "R1") is not None  # refresh R1
        cache.store(self._successful_result("R3"))  # evicts R2
        assert cache.lookup("Req", "Ctrl", "R2") is None
        assert cache.lookup("Req", "Ctrl", "R1") is not None
        assert cache.lookup("Req", "Ctrl", "R3") is not None
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["size"] == 2
        # Evictions are not invalidations: the world did not change.
        assert cache.invalidations == 0

    def test_restoring_same_key_does_not_evict(self):
        cache = SequenceCache(capacity=2)
        cache.store(self._successful_result("R1"))
        cache.store(self._successful_result("R1"))
        cache.store(self._successful_result("R2"))
        assert cache.evictions == 0
        assert len(cache) == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SequenceCache(capacity=0)
