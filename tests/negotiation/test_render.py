"""Negotiation-tree rendering."""

import pytest

from repro.negotiation.render import render_ascii, render_dot
from repro.negotiation.tree import NegotiationTree, NodeStatus
from repro.policy.parser import parse_policy


@pytest.fixture()
def fig2_tree():
    tree = NegotiationTree("VoMembership", "AircraftCo")
    edge = tree.add_policy_edge(
        tree.root_id, parse_policy("VoMembership <- WebDesignerQuality"),
        "AerospaceCo",
    )
    quality = edge.children[0]
    tree.add_policy_edge(
        quality, parse_policy("WebDesignerQuality <- AAAccreditation"),
        "AircraftCo",
    )
    multi = tree.add_policy_edge(
        quality, parse_policy("WebDesignerQuality <- BalanceSheet, AAA Member"),
        "AircraftCo",
    )
    for child in multi.children:
        tree.node(child).status = NodeStatus.DELIVERABLE
    tree.propagate()
    return tree


class TestAscii:
    def test_contains_all_nodes_and_owners(self, fig2_tree):
        text = render_ascii(fig2_tree)
        for expected in ("VoMembership", "WebDesignerQuality",
                         "AAAccreditation", "BalanceSheet",
                         "[AircraftCo]", "[AerospaceCo]"):
            assert expected in text

    def test_marks_alternatives_and_multiedges(self, fig2_tree):
        text = render_ascii(fig2_tree)
        assert "alt 0 (simple)" in text
        assert "alt 1 (multi)" in text

    def test_status_marks(self, fig2_tree):
        text = render_ascii(fig2_tree)
        assert "(S)" in text  # satisfiable interior nodes
        assert "(D)" in text  # deliverable leaves

    def test_indentation_reflects_depth(self, fig2_tree):
        lines = render_ascii(fig2_tree).splitlines()
        assert lines[0].startswith("VoMembership")
        deeper = [line for line in lines if "AAAccreditation" in line]
        assert deeper[0].startswith("    ")


class TestDot:
    def test_valid_dot_shape(self, fig2_tree):
        dot = render_dot(fig2_tree)
        assert dot.startswith("digraph negotiation_tree {")
        assert dot.rstrip().endswith("}")
        assert dot.count("->") >= 4

    def test_multiedge_uses_junction(self, fig2_tree):
        dot = render_dot(fig2_tree)
        assert "shape=point" in dot
        assert 'label="multi"' in dot

    def test_status_colours(self, fig2_tree):
        dot = render_dot(fig2_tree)
        assert "palegreen" in dot   # deliverable
        assert "lightblue" in dot   # satisfiable
