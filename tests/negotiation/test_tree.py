"""The negotiation tree (paper Fig. 2)."""

import pytest

from repro.errors import NegotiationError
from repro.negotiation.tree import EdgeKind, NegotiationTree, NodeStatus
from repro.policy.parser import parse_policy


@pytest.fixture()
def fig2_tree():
    """The tree of paper Fig. 2: the Aerospace company requests a VO
    membership; the Aircraft company requires WebDesignerQuality; the
    Aerospace company protects it with two alternatives (AAA
    accreditation OR a balance sheet)."""
    tree = NegotiationTree("VoMembership", controller="AircraftCo")
    membership_policy = parse_policy("VoMembership <- WebDesignerQuality")
    edge1 = tree.add_policy_edge(tree.root_id, membership_policy, "AerospaceCo")
    quality_node = edge1.children[0]
    alt_a = parse_policy("WebDesignerQuality <- AAAccreditation")
    alt_b = parse_policy("WebDesignerQuality <- BalanceSheet")
    edge_a = tree.add_policy_edge(quality_node, alt_a, "AircraftCo")
    edge_b = tree.add_policy_edge(quality_node, alt_b, "AircraftCo")
    return tree, quality_node, edge_a, edge_b


class TestStructure:
    def test_root(self, fig2_tree):
        tree, _, _, _ = fig2_tree
        assert tree.root.is_root
        assert tree.root.owner == "AircraftCo"
        assert tree.root.label == "VoMembership"

    def test_nodes_alternate_owner(self, fig2_tree):
        tree, quality_node, edge_a, _ = fig2_tree
        assert tree.node(quality_node).owner == "AerospaceCo"
        assert tree.node(edge_a.children[0]).owner == "AircraftCo"

    def test_simple_edge_kind(self, fig2_tree):
        tree, _, edge_a, _ = fig2_tree
        assert edge_a.kind is EdgeKind.SIMPLE

    def test_multiedge_kind(self):
        tree = NegotiationTree("R", "ctrl")
        policy = parse_policy("R <- A, B, C")
        edge = tree.add_policy_edge(tree.root_id, policy, "req")
        assert edge.kind is EdgeKind.MULTI
        assert len(edge.children) == 3

    def test_depths_increment(self, fig2_tree):
        tree, quality_node, edge_a, _ = fig2_tree
        assert tree.root.depth == 0
        assert tree.node(quality_node).depth == 1
        assert tree.node(edge_a.children[0]).depth == 2

    def test_delivery_policy_cannot_expand(self):
        tree = NegotiationTree("R", "ctrl")
        with pytest.raises(NegotiationError):
            tree.add_policy_edge(
                tree.root_id, parse_policy("R <- DELIV"), "req"
            )

    def test_unknown_node_raises(self, fig2_tree):
        tree, _, _, _ = fig2_tree
        with pytest.raises(NegotiationError):
            tree.node(999)

    def test_path_labels(self, fig2_tree):
        tree, quality_node, edge_a, _ = fig2_tree
        labels = tree.path_labels(edge_a.children[0])
        assert "AircraftCo:VoMembership" in labels
        assert "AerospaceCo:WebDesignerQuality" in labels
        assert "AircraftCo:AAAccreditation" in labels


class TestPropagation:
    def test_satisfiable_through_one_alternative(self, fig2_tree):
        tree, quality_node, edge_a, edge_b = fig2_tree
        tree.node(edge_a.children[0]).status = NodeStatus.UNSATISFIABLE
        tree.node(edge_b.children[0]).status = NodeStatus.DELIVERABLE
        assert tree.propagate()
        assert tree.node(quality_node).status is NodeStatus.SATISFIABLE

    def test_unsatisfiable_when_all_alternatives_fail(self, fig2_tree):
        tree, quality_node, edge_a, edge_b = fig2_tree
        tree.node(edge_a.children[0]).status = NodeStatus.UNSATISFIABLE
        tree.node(edge_b.children[0]).status = NodeStatus.UNSATISFIABLE
        assert not tree.propagate()

    def test_multiedge_is_all_or_nothing(self):
        """'Nodes belonging to a multiedge are considered as a whole.'"""
        tree = NegotiationTree("R", "ctrl")
        edge = tree.add_policy_edge(
            tree.root_id, parse_policy("R <- A, B"), "req"
        )
        tree.node(edge.children[0]).status = NodeStatus.DELIVERABLE
        tree.node(edge.children[1]).status = NodeStatus.UNSATISFIABLE
        assert not tree.propagate()
        tree.node(edge.children[1]).status = NodeStatus.DELIVERABLE
        assert tree.propagate()

    def test_deliverable_root(self):
        tree = NegotiationTree("R", "ctrl")
        tree.root.status = NodeStatus.DELIVERABLE
        assert tree.propagate()


class TestViews:
    def test_no_view_when_unsatisfiable(self, fig2_tree):
        tree, _, edge_a, edge_b = fig2_tree
        tree.node(edge_a.children[0]).status = NodeStatus.UNSATISFIABLE
        tree.node(edge_b.children[0]).status = NodeStatus.UNSATISFIABLE
        tree.propagate()
        assert tree.first_view() is None

    def test_first_view_prefers_first_alternative(self, fig2_tree):
        tree, quality_node, edge_a, edge_b = fig2_tree
        tree.node(edge_a.children[0]).status = NodeStatus.DELIVERABLE
        tree.node(edge_b.children[0]).status = NodeStatus.DELIVERABLE
        tree.propagate()
        view = tree.first_view()
        assert view.chosen_edges[quality_node] == edge_a.edge_id

    def test_first_view_skips_failed_alternative(self, fig2_tree):
        tree, quality_node, edge_a, edge_b = fig2_tree
        tree.node(edge_a.children[0]).status = NodeStatus.UNSATISFIABLE
        tree.node(edge_b.children[0]).status = NodeStatus.DELIVERABLE
        tree.propagate()
        view = tree.first_view()
        assert view.chosen_edges[quality_node] == edge_b.edge_id

    def test_disclosure_order_children_first(self, fig2_tree):
        tree, quality_node, edge_a, _ = fig2_tree
        tree.node(edge_a.children[0]).status = NodeStatus.DELIVERABLE
        tree.propagate()
        order = tree.first_view().disclosure_order()
        labels = [node.label for node in order]
        assert labels == [
            "AAAccreditation", "WebDesignerQuality", "VoMembership"
        ]

    def test_iter_views_enumerates_alternatives(self, fig2_tree):
        tree, _, edge_a, edge_b = fig2_tree
        tree.node(edge_a.children[0]).status = NodeStatus.DELIVERABLE
        tree.node(edge_b.children[0]).status = NodeStatus.DELIVERABLE
        tree.propagate()
        views = list(tree.iter_views())
        assert len(views) == 2

    def test_iter_views_respects_limit(self, fig2_tree):
        tree, _, edge_a, edge_b = fig2_tree
        tree.node(edge_a.children[0]).status = NodeStatus.DELIVERABLE
        tree.node(edge_b.children[0]).status = NodeStatus.DELIVERABLE
        tree.propagate()
        assert len(list(tree.iter_views(limit=1))) == 1

    def test_view_nodes_pre_order(self, fig2_tree):
        tree, _, edge_a, _ = fig2_tree
        tree.node(edge_a.children[0]).status = NodeStatus.DELIVERABLE
        tree.propagate()
        nodes = tree.first_view().nodes()
        assert nodes[0].is_root
