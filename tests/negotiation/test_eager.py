"""The eager-strategy baseline vs the Trust-X engine."""

import pytest

from repro.negotiation.eager import eager_negotiate
from repro.negotiation.engine import negotiate
from repro.negotiation.outcomes import FailureReason
from repro.scenario.workloads import chain_workload
from tests.conftest import ISSUE_AT, NEGOTIATION_AT


@pytest.fixture()
def parties(agent_factory, infn, aaa_authority, bbb_authority,
            shared_keypair, other_keypair):
    """The Example 2 setting plus an *irrelevant* unprotected
    credential on each side — the leak detector."""
    aero = agent_factory(
        "AerospaceCo",
        [infn.issue("ISO 9000 Certified", "AerospaceCo",
                    shared_keypair.fingerprint,
                    {"QualityRegulation": "UNI EN ISO 9000"}, ISSUE_AT),
         infn.issue("GymMembership", "AerospaceCo",
                    shared_keypair.fingerprint, {"tier": "gold"}, ISSUE_AT)],
        "ISO 9000 Certified <- AAA Member",
        shared_keypair,
    )
    aircraft = agent_factory(
        "AircraftCo",
        [aaa_authority.issue("AAA Member", "AircraftCo",
                             other_keypair.fingerprint,
                             {"association": "AAA"}, ISSUE_AT),
         bbb_authority.issue("CoffeeCard", "AircraftCo",
                             other_keypair.fingerprint, {}, ISSUE_AT)],
        "VoMembership <- ISO 9000 Certified\nAAA Member <- DELIV",
        other_keypair,
    )
    return aero, aircraft


class TestEagerBaseline:
    def test_succeeds_where_trustx_succeeds(self, parties):
        aero, aircraft = parties
        result = eager_negotiate(aero, aircraft, "VoMembership",
                                 at=NEGOTIATION_AT)
        assert result.success

    def test_discloses_irrelevant_credentials(self, parties):
        """The baseline's defining weakness: the gym membership and
        coffee card leak even though nobody asked for them."""
        aero, aircraft = parties
        result = eager_negotiate(aero, aircraft, "VoMembership",
                                 at=NEGOTIATION_AT)
        leaked = set(result.disclosed_by_requester) | set(
            result.disclosed_by_controller
        )
        assert any("GymMembership" in cred_id for cred_id in leaked)
        assert any("CoffeeCard" in cred_id for cred_id in leaked)

    def test_trustx_discloses_strictly_less(self, parties):
        aero, aircraft = parties
        eager = eager_negotiate(aero, aircraft, "VoMembership",
                                at=NEGOTIATION_AT)
        trustx = negotiate(aero, aircraft, "VoMembership", at=NEGOTIATION_AT)
        assert trustx.success and eager.success
        assert trustx.disclosures < eager.disclosures

    def test_fails_when_no_sequence_exists(self, agent_factory,
                                           shared_keypair, other_keypair):
        requester = agent_factory("Req", [], "", shared_keypair)
        controller = agent_factory("Ctrl", [], "RES <- SomethingNobodyHas",
                                   other_keypair)
        result = eager_negotiate(requester, controller, "RES",
                                 at=NEGOTIATION_AT)
        assert not result.success
        assert result.failure_reason is FailureReason.NO_TRUST_SEQUENCE

    def test_free_resource_granted_without_disclosure(self, parties):
        aero, aircraft = parties
        result = eager_negotiate(aero, aircraft, "AAA Member",
                                 at=NEGOTIATION_AT)
        assert result.success
        assert result.disclosures == 0

    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_completeness_on_chains(self, depth):
        """Eager succeeds on every chain Trust-X succeeds on."""
        fixture = chain_workload(depth)
        eager = eager_negotiate(
            fixture.requester, fixture.controller, fixture.resource,
            at=fixture.negotiation_time(),
        )
        trustx = negotiate(
            fixture.requester, fixture.controller, fixture.resource,
            at=fixture.negotiation_time(),
        )
        assert eager.success == trustx.success is True

    def test_round_budget(self, parties):
        aero, aircraft = parties
        result = eager_negotiate(aero, aircraft, "VoMembership",
                                 at=NEGOTIATION_AT, max_rounds=0)
        assert not result.success
        assert result.failure_reason is FailureReason.BUDGET_EXHAUSTED
