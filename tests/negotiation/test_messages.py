"""Protocol message invariants."""

import pytest

from repro.negotiation.messages import Disclosure, DisclosureAck, PolicyMessage
from repro.negotiation.sequence import SequenceStep, TrustSequence
from repro.negotiation.tree import NegotiationTree, NodeStatus
from repro.policy.parser import parse_policy
from tests.conftest import ISSUE_AT


class TestDisclosure:
    def test_requires_exactly_one_payload(self, iso_credential):
        with pytest.raises(ValueError):
            Disclosure(sender="A", node_id=1)

    def test_credential_payload(self, iso_credential):
        disclosure = Disclosure(sender="A", node_id=1,
                                credential=iso_credential)
        assert disclosure.subject_key == iso_credential.subject_key

    def test_presentation_payload(self, iso_credential, infn):
        from repro.credentials.selective import SelectiveCredential

        selective = SelectiveCredential.issue_from(
            iso_credential, infn.keypair.private
        )
        disclosure = Disclosure(
            sender="A", node_id=1,
            presentation=selective.present(["QualityRegulation"]),
        )
        assert disclosure.subject_key == iso_credential.subject_key

    def test_both_payloads_rejected(self, iso_credential, infn):
        from repro.credentials.selective import SelectiveCredential

        selective = SelectiveCredential.issue_from(
            iso_credential, infn.keypair.private
        )
        with pytest.raises(ValueError):
            Disclosure(
                sender="A", node_id=1,
                credential=iso_credential,
                presentation=selective.present([]),
            )


class TestTrustSequence:
    @pytest.fixture()
    def view(self):
        tree = NegotiationTree("RES", "Ctrl")
        edge = tree.add_policy_edge(
            tree.root_id, parse_policy("RES <- Badge"), "Req"
        )
        badge = tree.node(edge.children[0])
        badge.status = NodeStatus.DELIVERABLE
        badge.credential_id = "badge-1"
        tree.propagate()
        return tree.first_view()

    def test_from_view(self, view):
        sequence = TrustSequence.from_view(
            view, lambda node: node.credential_id
        )
        assert len(sequence) == 2
        assert sequence.steps[0].credential_id == "badge-1"
        assert sequence.steps[-1].is_grant

    def test_missing_credential_raises(self, view):
        from repro.errors import NegotiationError

        with pytest.raises(NegotiationError):
            TrustSequence.from_view(view, lambda node: None)

    def test_disclosures_by_party(self, view):
        sequence = TrustSequence.from_view(
            view, lambda node: node.credential_id
        )
        assert len(sequence.disclosures_by("Req")) == 1
        assert len(sequence.disclosures_by("Ctrl")) == 0

    def test_describe_is_readable(self, view):
        sequence = TrustSequence.from_view(
            view, lambda node: node.credential_id
        )
        text = sequence.describe()
        assert "discloses" in text
        assert "grants" in text
