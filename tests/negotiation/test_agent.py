"""The per-party Trust-X agent decisions."""

import pytest

from repro.credentials.selective import SelectiveCredential
from repro.errors import NegotiationError, StrategyError
from repro.negotiation.strategies import Strategy
from repro.policy.parser import parse_policy
from repro.policy.terms import Term, TermKind
from tests.conftest import ISSUE_AT, NEGOTIATION_AT


@pytest.fixture()
def aero_agent(agent_factory, infn, bbb_authority, other_keypair):
    creds = [
        infn.issue("ISO 9000 Certified", "AerospaceCo",
                   other_keypair.fingerprint,
                   {"QualityRegulation": "UNI EN ISO 9000"}, ISSUE_AT),
        bbb_authority.issue("BalanceSheet", "AerospaceCo",
                            other_keypair.fingerprint,
                            {"Issuer": "BBB"}, ISSUE_AT),
    ]
    return agent_factory(
        "AerospaceCo", creds,
        "ISO 9000 Certified <- AAA Member\nBalanceSheet <- DELIV",
        other_keypair,
    )


class TestCandidates:
    def test_direct_type_match(self, aero_agent):
        term = Term.credential("BalanceSheet")
        assert [c.cred_type for c in aero_agent.candidates_for(term)] == [
            "BalanceSheet"
        ]

    def test_ontology_fallback_for_unknown_type(self, aero_agent):
        """A policy naming 'WebDesignerQuality' resolves to the local
        ISO 9000 credential through the ontology (Section 5.1)."""
        term = Term.credential("WebDesignerQuality")
        candidates = aero_agent.candidates_for(term)
        assert [c.cred_type for c in candidates] == ["ISO 9000 Certified"]

    def test_fallback_respects_conditions(self, aero_agent):
        term = parse_policy(
            "R <- WebDesignerQuality(QualityRegulation='ISO 14001')"
        ).terms[0]
        assert aero_agent.candidates_for(term) == []

    def test_concept_term(self, aero_agent):
        term = Term.concept("BusinessProof")
        candidates = aero_agent.candidates_for(term)
        assert candidates[0].cred_type == "BalanceSheet"


class TestReleaseDecisions:
    def test_delivery_rule(self, aero_agent):
        assert aero_agent.releases_freely("BalanceSheet")

    def test_unprotected_is_free(self, aero_agent):
        assert aero_agent.releases_freely("SomethingUnmentioned")

    def test_protected_is_not_free(self, aero_agent):
        assert not aero_agent.releases_freely("ISO 9000 Certified")

    def test_policies_protecting(self, aero_agent):
        policies = aero_agent.policies_protecting("ISO 9000 Certified")
        assert len(policies) == 1
        assert policies[0].terms[0].name == "AAA Member"


class TestPolicyAbstraction:
    def test_strong_suspicious_abstracts_to_concepts(self, aero_agent):
        aero_agent.strategy = Strategy.STRONG_SUSPICIOUS
        policies = aero_agent.policies_protecting("ISO 9000 Certified")
        term = policies[0].terms[0]
        assert term.kind is TermKind.CONCEPT
        assert term.name == "AAAccreditation"

    def test_standard_does_not_abstract(self, aero_agent):
        policies = aero_agent.policies_protecting("ISO 9000 Certified")
        assert policies[0].terms[0].kind is TermKind.CREDENTIAL

    def test_unmapped_terms_kept_verbatim(self, aero_agent):
        policy = parse_policy("R <- CompletelyUnknownCredType")
        abstracted = aero_agent.abstract_policy(policy)
        assert abstracted.terms[0].name == "CompletelyUnknownCredType"


class TestTermAccepts:
    def test_exact_type(self, aero_agent, infn, shared_keypair):
        cred = infn.issue("AAA Member", "Other", shared_keypair.fingerprint,
                          {"association": "AAA"}, ISSUE_AT)
        assert aero_agent.term_accepts(Term.credential("AAA Member"), cred)

    def test_ontology_bridged_type(self, aero_agent, infn, shared_keypair):
        """The receiver who asked for WebDesignerQuality accepts an
        ISO 9000 Certified credential via its ontology."""
        cred = infn.issue("ISO 9000 Certified", "Other",
                          shared_keypair.fingerprint,
                          {"QualityRegulation": "UNI EN ISO 9000"}, ISSUE_AT)
        assert aero_agent.term_accepts(
            Term.credential("WebDesignerQuality"), cred
        )

    def test_concept_term_acceptance(self, aero_agent, infn, shared_keypair):
        cred = infn.issue("ISO 9000 Certified", "Other",
                          shared_keypair.fingerprint,
                          {"QualityRegulation": "UNI EN ISO 9000"}, ISSUE_AT)
        assert aero_agent.term_accepts(Term.concept("WebDesignerQuality"), cred)

    def test_unrelated_type_rejected(self, aero_agent, infn, shared_keypair):
        cred = infn.issue("LibraryCard", "Other", shared_keypair.fingerprint,
                          {}, ISSUE_AT)
        assert not aero_agent.term_accepts(
            Term.credential("WebDesignerQuality"), cred
        )

    def test_none_term_accepts_anything(self, aero_agent, infn, shared_keypair):
        cred = infn.issue("Whatever", "Other", shared_keypair.fingerprint,
                          {}, ISSUE_AT)
        assert aero_agent.term_accepts(None, cred)


class TestDisclosures:
    def test_full_disclosure_for_standard(self, aero_agent):
        credential = aero_agent.profile.by_type("BalanceSheet")[0]
        disclosure = aero_agent.make_disclosure(1, credential, None, "nonce")
        assert disclosure.credential is credential
        assert disclosure.presentation is None
        assert disclosure.proof is not None

    def test_selective_disclosure_reveals_only_needed(self, aero_agent, infn):
        aero_agent.strategy = Strategy.SUSPICIOUS
        credential = aero_agent.profile.by_type("ISO 9000 Certified")[0]
        aero_agent.add_selective(
            SelectiveCredential.issue_from(credential, infn.keypair.private)
        )
        term = parse_policy(
            "R <- ISO 9000 Certified(QualityRegulation='UNI EN ISO 9000')"
        ).terms[0]
        disclosure = aero_agent.make_disclosure(1, credential, term, "nonce")
        assert disclosure.presentation is not None
        revealed = [d.attribute.name for d in disclosure.presentation.disclosed]
        assert revealed == ["QualityRegulation"]

    def test_suspicious_without_selective_form_raises(self, aero_agent):
        aero_agent.strategy = Strategy.SUSPICIOUS
        credential = aero_agent.profile.by_type("BalanceSheet")[0]
        with pytest.raises(StrategyError):
            aero_agent.make_disclosure(1, credential, None, "nonce")

    def test_add_selective_requires_profile_membership(self, aero_agent, infn,
                                                       shared_keypair):
        foreign = infn.issue("X", "SomeoneElse", shared_keypair.fingerprint,
                             {}, ISSUE_AT)
        selective = SelectiveCredential.issue_from(foreign, infn.keypair.private)
        with pytest.raises(NegotiationError):
            aero_agent.add_selective(selective)

    def test_verify_full_disclosure(self, aero_agent, agent_factory, infn,
                                    shared_keypair):
        sender = agent_factory(
            "Sender",
            [infn.issue("AAA Member", "Sender", shared_keypair.fingerprint,
                        {"association": "AAA"}, ISSUE_AT)],
            "", shared_keypair,
        )
        credential = sender.profile.by_type("AAA Member")[0]
        nonce = aero_agent.validator.issue_challenge()
        disclosure = sender.make_disclosure(
            1, credential, Term.credential("AAA Member"), nonce
        )
        accepted, reason, effective = aero_agent.verify_disclosure(
            disclosure, Term.credential("AAA Member"), NEGOTIATION_AT, nonce
        )
        assert accepted, reason
        assert effective is credential

    def test_verify_rejects_condition_miss(self, aero_agent, agent_factory,
                                           infn, shared_keypair):
        sender = agent_factory(
            "Sender",
            [infn.issue("AAA Member", "Sender", shared_keypair.fingerprint,
                        {"association": "Other Club"}, ISSUE_AT)],
            "", shared_keypair,
        )
        credential = sender.profile.by_type("AAA Member")[0]
        term = parse_policy("R <- AAA Member(association='AAA')").terms[0]
        nonce = aero_agent.validator.issue_challenge()
        disclosure = sender.make_disclosure(1, credential, term, nonce)
        accepted, reason, effective = aero_agent.verify_disclosure(
            disclosure, term, NEGOTIATION_AT, nonce
        )
        assert not accepted
        assert effective is None
        assert "does not satisfy" in reason
