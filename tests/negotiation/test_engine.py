"""The two-party negotiation driver (paper Section 4.2)."""

from datetime import timedelta

import pytest

from repro.credentials.authority import CredentialAuthority
from repro.credentials.revocation import RevocationRegistry
from repro.trust import TrustBus
from repro.credentials.selective import SelectiveCredential
from repro.crypto.keys import KeyPair, Keyring
from repro.negotiation.engine import NegotiationEngine, negotiate
from repro.negotiation.outcomes import FailureReason
from repro.negotiation.strategies import Strategy
from repro.scenario.workloads import bushy_workload, chain_workload
from tests.conftest import ISSUE_AT, NEGOTIATION_AT, make_agent


@pytest.fixture()
def example2(agent_factory, infn, aaa_authority, bbb_authority,
             shared_keypair, other_keypair):
    """The paper's Example 2 / Section 5.1 formation negotiation."""
    aero = agent_factory(
        "AerospaceCo",
        [infn.issue("ISO 9000 Certified", "AerospaceCo",
                    shared_keypair.fingerprint,
                    {"QualityRegulation": "UNI EN ISO 9000"}, ISSUE_AT)],
        """
ISO 9000 Certified <- AAA Member
ISO 9000 Certified <- BalanceSheet
""",
        shared_keypair,
    )
    aircraft = agent_factory(
        "AircraftCo",
        [aaa_authority.issue("AAA Member", "AircraftCo",
                             other_keypair.fingerprint,
                             {"association": "AAA"}, ISSUE_AT),
         bbb_authority.issue("BalanceSheet", "AircraftCo",
                             other_keypair.fingerprint,
                             {"Issuer": "BBB"}, ISSUE_AT)],
        """
VoMembership <- WebDesignerQuality, {UNI EN ISO 9000}
AAA Member <- DELIV
BalanceSheet <- DELIV
""",
        other_keypair,
    )
    return aero, aircraft


class TestSuccess:
    def test_example2_succeeds(self, example2):
        aero, aircraft = example2
        result = negotiate(aero, aircraft, "VoMembership", at=NEGOTIATION_AT)
        assert result.success
        assert result.failure_reason is None

    def test_sequence_ends_at_root(self, example2):
        aero, aircraft = example2
        result = negotiate(aero, aircraft, "VoMembership", at=NEGOTIATION_AT)
        assert result.sequence[-1].label == "VoMembership"
        assert result.sequence[-1].is_root

    def test_disclosures_alternate_bottom_up(self, example2):
        aero, aircraft = example2
        result = negotiate(aero, aircraft, "VoMembership", at=NEGOTIATION_AT)
        owners = [node.owner for node in result.sequence]
        # AAA Member (AircraftCo) before ISO cert (AerospaceCo) before
        # the root resource (AircraftCo).
        assert owners == ["AircraftCo", "AerospaceCo", "AircraftCo"]

    def test_both_sides_disclose(self, example2):
        aero, aircraft = example2
        result = negotiate(aero, aircraft, "VoMembership", at=NEGOTIATION_AT)
        assert len(result.disclosed_by_requester) == 1
        assert len(result.disclosed_by_controller) == 1

    def test_message_counts_positive_and_consistent(self, example2):
        aero, aircraft = example2
        result = negotiate(aero, aircraft, "VoMembership", at=NEGOTIATION_AT)
        assert result.policy_messages > 0
        assert result.exchange_messages > 0
        assert result.total_messages == (
            result.policy_messages + result.exchange_messages
        )

    def test_transcript_has_both_phases(self, example2):
        aero, aircraft = example2
        result = negotiate(aero, aircraft, "VoMembership", at=NEGOTIATION_AT)
        phases = {event.phase for event in result.transcript}
        assert phases == {"policy", "exchange"}

    def test_free_resource_needs_no_disclosures(self, example2):
        aero, aircraft = example2
        result = negotiate(aero, aircraft, "AAA Member", at=NEGOTIATION_AT)
        assert result.success
        assert result.disclosures == 0

    def test_alternative_used_when_first_unsatisfiable(
        self, agent_factory, infn, bbb_authority, shared_keypair, other_keypair
    ):
        """Paper flow: no AAA accreditation, fall back to the balance
        sheet alternative."""
        aero = agent_factory(
            "AerospaceCo",
            [infn.issue("ISO 9000 Certified", "AerospaceCo",
                        shared_keypair.fingerprint,
                        {"QualityRegulation": "UNI EN ISO 9000"}, ISSUE_AT)],
            "ISO 9000 Certified <- AAA Member\n"
            "ISO 9000 Certified <- BalanceSheet",
            shared_keypair,
        )
        aircraft = agent_factory(
            "AircraftCo",
            [bbb_authority.issue("BalanceSheet", "AircraftCo",
                                 other_keypair.fingerprint,
                                 {"Issuer": "BBB"}, ISSUE_AT)],
            "VoMembership <- WebDesignerQuality\nBalanceSheet <- DELIV",
            other_keypair,
        )
        result = negotiate(aero, aircraft, "VoMembership", at=NEGOTIATION_AT)
        assert result.success
        disclosed = set(result.disclosed_by_controller)
        assert any("BalanceSheet" in cred_id for cred_id in disclosed)


class TestFailures:
    def test_no_trust_sequence(self, agent_factory, shared_keypair,
                               other_keypair):
        requester = agent_factory("Req", [], "", shared_keypair)
        controller = agent_factory(
            "Ctrl", [], "RES <- SomethingNobodyHas", other_keypair
        )
        result = negotiate(requester, controller, "RES", at=NEGOTIATION_AT)
        assert not result.success
        assert result.failure_reason is FailureReason.NO_TRUST_SEQUENCE

    def test_revoked_credential_fails_exchange(self, shared_keypair,
                                               other_keypair):
        """'If the failure is related to trust, for example a party uses
        a revoked certificate, the negotiation fails.'"""
        ca = CredentialAuthority.create("CA", key_bits=512)
        registry = RevocationRegistry()
        ring = Keyring()
        ring.add("CA", ca.public_key)
        cred = ca.issue("Badge", "Req", shared_keypair.fingerprint, {},
                        ISSUE_AT)
        TrustBus(registry=registry).revoke(ca, cred)
        requester = make_agent("Req", [cred], "", shared_keypair, ring,
                               registry)
        controller = make_agent("Ctrl", [], "RES <- Badge", other_keypair,
                                ring, registry)
        result = negotiate(requester, controller, "RES", at=NEGOTIATION_AT)
        assert not result.success
        assert result.failure_reason is FailureReason.CREDENTIAL_REJECTED
        assert "revoked" in result.failure_detail

    def test_expired_credential_fails_exchange(self, example2):
        aero, aircraft = example2
        late = NEGOTIATION_AT + timedelta(days=5000)
        result = negotiate(aero, aircraft, "VoMembership", at=late)
        assert not result.success
        assert result.failure_reason is FailureReason.CREDENTIAL_REJECTED

    def test_same_party_rejected(self, example2):
        aero, _ = example2
        result = negotiate(aero, aero, "VoMembership", at=NEGOTIATION_AT)
        assert not result.success
        assert result.failure_reason is FailureReason.PROTOCOL

    def test_depth_budget(self):
        fixture = chain_workload(depth=6)
        engine = NegotiationEngine(
            fixture.requester, fixture.controller, max_depth=2
        )
        result = engine.run("RES", at=fixture.negotiation_time())
        assert not result.success
        assert result.failure_reason is FailureReason.BUDGET_EXHAUSTED

    def test_mutual_cycle_pruned(self, agent_factory, infn, shared_keypair,
                                 other_keypair):
        """PrivacySeal <- PrivacySeal on both sides with no delivery
        anywhere cannot succeed — the cycle is pruned, not looped."""
        left = agent_factory(
            "Left",
            [infn.issue("PrivacySeal", "Left", shared_keypair.fingerprint,
                        {}, ISSUE_AT)],
            "PrivacySeal <- PrivacySeal", shared_keypair,
        )
        right = agent_factory(
            "Right",
            [infn.issue("PrivacySeal", "Right", other_keypair.fingerprint,
                        {}, ISSUE_AT)],
            "RES <- PrivacySeal\nPrivacySeal <- PrivacySeal", other_keypair,
        )
        result = negotiate(left, right, "RES", at=NEGOTIATION_AT)
        assert not result.success
        assert result.failure_reason is FailureReason.NO_TRUST_SEQUENCE

    def test_one_sided_privacy_cycle_succeeds(self, agent_factory, infn,
                                              shared_keypair, other_keypair):
        """The paper's operation-phase privacy exchange: mutual privacy
        proofs terminate because one side's seal is deliverable."""
        optim = agent_factory(
            "OptimCo",
            [infn.issue("PrivacySeal", "OptimCo", shared_keypair.fingerprint,
                        {}, ISSUE_AT)],
            "PrivacySeal <- PrivacySeal", shared_keypair,
        )
        aero = agent_factory(
            "AerospaceCo",
            [infn.issue("PrivacySeal", "AerospaceCo",
                        other_keypair.fingerprint, {}, ISSUE_AT),
             infn.issue("ISO 002 Certification", "AerospaceCo",
                        other_keypair.fingerprint,
                        {"scope": "design"}, ISSUE_AT)],
            "ISO 002 Certification <- PrivacySeal\nPrivacySeal <- DELIV",
            other_keypair,
        )
        result = negotiate(optim, aero, "ISO 002 Certification",
                           at=NEGOTIATION_AT)
        assert result.success
        # Both privacy seals plus the certification itself changed hands.
        assert result.disclosures == 2


class TestChains:
    @pytest.mark.parametrize("depth", [1, 2, 3, 4])
    def test_chain_negotiations_succeed(self, depth):
        fixture = chain_workload(depth=depth)
        result = negotiate(
            fixture.requester, fixture.controller, fixture.resource,
            at=fixture.negotiation_time(),
        )
        assert result.success, result.failure_detail
        assert result.disclosures == depth

    def test_messages_grow_with_depth(self):
        shallow = chain_workload(depth=1)
        deep = chain_workload(depth=4)
        shallow_result = negotiate(
            shallow.requester, shallow.controller, "RES",
            at=shallow.negotiation_time(),
        )
        deep_result = negotiate(
            deep.requester, deep.controller, "RES",
            at=deep.negotiation_time(),
        )
        assert deep_result.total_messages > shallow_result.total_messages

    @pytest.mark.parametrize("alternatives", [1, 3, 6])
    def test_bushy_negotiations_succeed(self, alternatives):
        fixture = bushy_workload(alternatives=alternatives)
        result = negotiate(
            fixture.requester, fixture.controller, fixture.resource,
            at=fixture.negotiation_time(),
        )
        assert result.success


class TestStrategies:
    def test_trusting_uses_fewer_messages(self, example2):
        aero, aircraft = example2
        standard = negotiate(aero, aircraft, "VoMembership",
                             at=NEGOTIATION_AT)
        aero.strategy = Strategy.TRUSTING
        aircraft.strategy = Strategy.TRUSTING
        trusting = negotiate(aero, aircraft, "VoMembership",
                             at=NEGOTIATION_AT)
        aero.strategy = Strategy.STANDARD
        aircraft.strategy = Strategy.STANDARD
        assert trusting.success
        assert trusting.total_messages < standard.total_messages

    def test_suspicious_without_selective_fails_fast(self, example2):
        aero, aircraft = example2
        aero.strategy = Strategy.SUSPICIOUS
        result = negotiate(aero, aircraft, "VoMembership", at=NEGOTIATION_AT)
        aero.strategy = Strategy.STANDARD
        assert not result.success
        assert result.failure_reason is FailureReason.STRATEGY_VIOLATION

    def test_suspicious_with_selective_succeeds(self, example2, infn,
                                                aaa_authority, bbb_authority):
        aero, aircraft = example2
        for agent, authorities in (
            (aero, {"INFN": infn}),
            (aircraft, {"AmericanAircraftAssociation": aaa_authority,
                        "BBB": bbb_authority}),
        ):
            for credential in agent.profile:
                issuer = authorities[credential.issuer]
                agent.add_selective(SelectiveCredential.issue_from(
                    credential, issuer.keypair.private
                ))
        aero.strategy = Strategy.SUSPICIOUS
        aircraft.strategy = Strategy.SUSPICIOUS
        result = negotiate(aero, aircraft, "VoMembership", at=NEGOTIATION_AT)
        aero.strategy = Strategy.STANDARD
        aircraft.strategy = Strategy.STANDARD
        assert result.success, result.failure_detail

    def test_strong_suspicious_pays_per_alternative(self):
        """Policy alternatives cost one message each when hidden."""
        open_fixture = bushy_workload(alternatives=4)
        open_result = negotiate(
            open_fixture.requester, open_fixture.controller, "RES",
            at=open_fixture.negotiation_time(),
        )
        hidden_fixture = bushy_workload(alternatives=4)
        hidden_fixture.controller.strategy = Strategy.STRONG_SUSPICIOUS
        # Controller discloses nothing in this workload, so no selective
        # forms are needed; only its policies are hidden.
        hidden_result = negotiate(
            hidden_fixture.requester, hidden_fixture.controller, "RES",
            at=hidden_fixture.negotiation_time(),
        )
        assert hidden_result.success
        assert hidden_result.policy_messages > open_result.policy_messages


class TestResultShape:
    def test_summary_mentions_outcome(self, example2):
        aero, aircraft = example2
        result = negotiate(aero, aircraft, "VoMembership", at=NEGOTIATION_AT)
        assert "SUCCESS" in result.summary()
        assert "VoMembership" in result.summary()

    def test_failure_summary(self, agent_factory, shared_keypair,
                             other_keypair):
        requester = agent_factory("Req", [], "", shared_keypair)
        controller = agent_factory("Ctrl", [], "RES <- Nope", other_keypair)
        result = negotiate(requester, controller, "RES", at=NEGOTIATION_AT)
        assert "FAILURE" in result.summary()
        assert "no_trust_sequence" in result.summary()

    def test_tree_attached_for_inspection(self, example2):
        aero, aircraft = example2
        result = negotiate(aero, aircraft, "VoMembership", at=NEGOTIATION_AT)
        assert result.tree is not None
        assert result.tree.root.label == "VoMembership"
