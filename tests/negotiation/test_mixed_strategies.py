"""Asymmetric strategy combinations.

Each party picks its own strategy (the StartNegotiation request names
only the invoker's choice), so mixed pairs must interoperate.
"""

import itertools

import pytest

from repro.credentials.selective import SelectiveCredential
from repro.negotiation.engine import negotiate
from repro.negotiation.strategies import Strategy
from tests.conftest import ISSUE_AT, NEGOTIATION_AT


@pytest.fixture()
def make_pair(agent_factory, infn, aaa_authority, shared_keypair,
              other_keypair):
    def build(requester_strategy, controller_strategy):
        aero = agent_factory(
            "AerospaceCo",
            [infn.issue("ISO 9000 Certified", "AerospaceCo",
                        shared_keypair.fingerprint,
                        {"QualityRegulation": "UNI EN ISO 9000"}, ISSUE_AT)],
            "ISO 9000 Certified <- AAA Member",
            shared_keypair,
            strategy=requester_strategy,
        )
        aircraft = agent_factory(
            "AircraftCo",
            [aaa_authority.issue("AAA Member", "AircraftCo",
                                 other_keypair.fingerprint,
                                 {"association": "AAA"}, ISSUE_AT)],
            "VoMembership <- WebDesignerQuality\nAAA Member <- DELIV",
            other_keypair,
            strategy=controller_strategy,
        )
        # Selective forms for any suspicious participant.
        for agent, authority in ((aero, infn), (aircraft, aaa_authority)):
            if agent.strategy.minimal_disclosure:
                for credential in agent.profile:
                    agent.add_selective(SelectiveCredential.issue_from(
                        credential, authority.keypair.private
                    ))
        return aero, aircraft
    return build


_FULL_DISCLOSURE = [Strategy.TRUSTING, Strategy.STANDARD]
_ALL = list(Strategy)


class TestMixedPairs:
    @pytest.mark.parametrize(
        "requester_strategy,controller_strategy",
        list(itertools.product(_ALL, _ALL)),
        ids=lambda s: s.value if isinstance(s, Strategy) else str(s),
    )
    def test_every_combination_succeeds(self, make_pair, requester_strategy,
                                        controller_strategy):
        aero, aircraft = make_pair(requester_strategy, controller_strategy)
        result = negotiate(aero, aircraft, "VoMembership", at=NEGOTIATION_AT)
        assert result.success, result.failure_detail

    def test_one_sided_trusting_still_handshakes(self, make_pair):
        """The sequence-agreement handshake is skipped only when both
        parties are trusting."""
        aero, aircraft = make_pair(Strategy.TRUSTING, Strategy.STANDARD)
        mixed = negotiate(aero, aircraft, "VoMembership", at=NEGOTIATION_AT)
        aero2, aircraft2 = make_pair(Strategy.TRUSTING, Strategy.TRUSTING)
        both = negotiate(aero2, aircraft2, "VoMembership", at=NEGOTIATION_AT)
        assert both.total_messages < mixed.total_messages

    def test_suspicious_side_sends_presentations_only(self, make_pair):
        """Only the suspicious party hides; the standard side still
        sends full credentials."""
        aero, aircraft = make_pair(Strategy.SUSPICIOUS, Strategy.STANDARD)
        result = negotiate(aero, aircraft, "VoMembership", at=NEGOTIATION_AT)
        assert result.success
        # Both sides disclosed; the engine verified a presentation from
        # the requester and a full credential from the controller.
        assert len(result.disclosed_by_requester) == 1
        assert len(result.disclosed_by_controller) == 1
