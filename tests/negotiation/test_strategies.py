"""Negotiation strategies and their behavioural switches."""

import pytest

from repro.errors import StrategyError
from repro.negotiation.strategies import Strategy


class TestSwitches:
    def test_trusting_is_eager(self):
        assert Strategy.TRUSTING.eager_disclosure
        assert not Strategy.STANDARD.eager_disclosure

    def test_suspicious_family_is_minimal(self):
        assert Strategy.SUSPICIOUS.minimal_disclosure
        assert Strategy.STRONG_SUSPICIOUS.minimal_disclosure
        assert not Strategy.STANDARD.minimal_disclosure
        assert not Strategy.TRUSTING.minimal_disclosure

    def test_only_strong_suspicious_hides_policies(self):
        assert Strategy.STRONG_SUSPICIOUS.hides_policies
        assert not Strategy.SUSPICIOUS.hides_policies


class TestX509Restriction:
    """Section 6.3: X.509 v2 supports no partial hiding, so only the
    standard and trusting strategies can be adopted over it."""

    @pytest.mark.parametrize(
        "strategy", [Strategy.STANDARD, Strategy.TRUSTING]
    )
    def test_full_disclosure_strategies_allowed(self, strategy):
        strategy.require_partial_hiding_support(False)  # must not raise

    @pytest.mark.parametrize(
        "strategy", [Strategy.SUSPICIOUS, Strategy.STRONG_SUSPICIOUS]
    )
    def test_suspicious_strategies_rejected(self, strategy):
        with pytest.raises(StrategyError):
            strategy.require_partial_hiding_support(False)

    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_all_allowed_with_partial_hiding(self, strategy):
        strategy.require_partial_hiding_support(True)


class TestParse:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("standard", Strategy.STANDARD),
            ("Trusting", Strategy.TRUSTING),
            ("strong-suspicious", Strategy.STRONG_SUSPICIOUS),
            ("strong suspicious", Strategy.STRONG_SUSPICIOUS),
            ("SUSPICIOUS", Strategy.SUSPICIOUS),
        ],
    )
    def test_accepted_spellings(self, text, expected):
        assert Strategy.parse(text) is expected

    def test_unknown_rejected(self):
        with pytest.raises(StrategyError):
            Strategy.parse("paranoid")
