"""The policy condition language."""

import pytest

from repro.errors import ConditionError, XPathError
from repro.policy.conditions import (
    AnyAttributeCondition,
    AttributeCondition,
    XPathCondition,
)
from tests.conftest import ISSUE_AT


@pytest.fixture()
def credential(infn, shared_keypair):
    return infn.issue(
        "QoS", "S", shared_keypair.fingerprint,
        {"qosLevel": "gold", "gflops": 120, "ratio": 2.5},
        ISSUE_AT,
    )


class TestAttributeCondition:
    def test_string_equality(self, credential):
        assert AttributeCondition("qosLevel", "=", "gold").evaluate(credential)
        assert not AttributeCondition("qosLevel", "=", "silver").evaluate(credential)

    def test_numeric_comparisons(self, credential):
        assert AttributeCondition("gflops", ">=", 100).evaluate(credential)
        assert AttributeCondition("gflops", "<", 121).evaluate(credential)
        assert not AttributeCondition("gflops", ">", 120).evaluate(credential)

    def test_numeric_string_coerces(self, credential):
        # DSL values parse as strings sometimes; numbers still compare.
        assert AttributeCondition("gflops", "=", "120").evaluate(credential)

    def test_float_attribute(self, credential):
        assert AttributeCondition("ratio", ">", 2).evaluate(credential)

    def test_missing_attribute_is_false(self, credential):
        assert not AttributeCondition("ghost", "=", "x").evaluate(credential)

    def test_string_ordering(self, credential):
        assert AttributeCondition("qosLevel", "<", "silver").evaluate(credential)

    def test_not_equal(self, credential):
        assert AttributeCondition("qosLevel", "!=", "silver").evaluate(credential)

    def test_unknown_operator_rejected(self):
        with pytest.raises(ConditionError):
            AttributeCondition("a", "~", 1)

    def test_dsl_rendering(self):
        assert AttributeCondition("age", ">=", 18.0).dsl() == "age>=18"
        assert AttributeCondition("c", "=", "x").dsl() == "c='x'"


class TestAnyAttributeCondition:
    def test_matches_any_attribute_value(self, credential):
        assert AnyAttributeCondition("gold").evaluate(credential)
        assert AnyAttributeCondition("120").evaluate(credential)

    def test_no_match(self, credential):
        assert not AnyAttributeCondition("platinum").evaluate(credential)

    def test_dsl_rendering(self):
        assert AnyAttributeCondition("UNI EN ISO 9000").dsl() == "'UNI EN ISO 9000'"


class TestXPathCondition:
    def test_content_xpath(self, credential):
        cond = XPathCondition("/credential/content/qosLevel = 'gold'")
        assert cond.evaluate(credential)

    def test_header_xpath(self, credential):
        cond = XPathCondition("/credential/header/issuer = 'INFN'")
        assert cond.evaluate(credential)

    def test_numeric_xpath(self, credential):
        assert XPathCondition("//gflops >= 100").evaluate(credential)

    def test_false_xpath(self, credential):
        assert not XPathCondition("//gflops > 500").evaluate(credential)

    def test_invalid_expression_rejected_eagerly(self):
        with pytest.raises(XPathError):
            XPathCondition("//a[")

    def test_equality_semantics(self):
        left = XPathCondition("//a = 1")
        assert left == XPathCondition("//a = 1")
        assert left != XPathCondition("//a = 2")
        assert hash(left) == hash(XPathCondition("//a = 1"))
