"""The per-party policy database."""

import pytest

from repro.policy.policybase import PolicyBase
from repro.policy.parser import parse_policy


@pytest.fixture()
def base():
    return PolicyBase.from_dsl("Owner", """
ISO 9000 Certified <- AAA Member
ISO 9000 Certified <- BalanceSheet
Mailbox <- DELIV
""")


class TestLookup:
    def test_alternatives_in_order(self, base):
        alternatives = base.policies_for("ISO 9000 Certified")
        assert len(alternatives) == 2
        assert alternatives[0].terms[0].name == "AAA Member"
        assert alternatives[1].terms[0].name == "BalanceSheet"

    def test_protects(self, base):
        assert base.protects("Mailbox")
        assert not base.protects("Unknown")

    def test_freely_deliverable(self, base):
        assert base.is_freely_deliverable("Mailbox")
        assert not base.is_freely_deliverable("ISO 9000 Certified")

    def test_unprotected(self, base):
        assert base.is_unprotected("SomethingElse")
        assert not base.is_unprotected("Mailbox")

    def test_resources_sorted(self, base):
        assert base.resources() == ["ISO 9000 Certified", "Mailbox"]

    def test_len_and_iter(self, base):
        assert len(base) == 3
        assert len(list(base)) == 3


class TestMutation:
    def test_add_dsl_returns_policies(self, base):
        added = base.add_dsl("NewRes <- SomeCred")
        assert len(added) == 1
        assert base.protects("NewRes")

    def test_remove(self, base):
        target = base.policies_for("Mailbox")[0]
        base.remove(target)
        assert not base.protects("Mailbox")

    def test_remove_keeps_other_alternatives(self, base):
        first = base.policies_for("ISO 9000 Certified")[0]
        base.remove(first)
        assert len(base.policies_for("ISO 9000 Certified")) == 1

    def test_remove_absent_is_noop(self, base):
        stranger = parse_policy("Ghost <- X")
        base.remove(stranger)
        assert len(base) == 3


class TestTransient:
    def test_clear_transient(self, base):
        base.add_dsl("VoMembership <- Quality", transient=True)
        base.add_dsl("VoMembership <- History", transient=True)
        assert base.protects("VoMembership")
        dropped = base.clear_transient()
        assert dropped == 2
        assert not base.protects("VoMembership")

    def test_clear_keeps_persistent_alternatives(self, base):
        base.add_dsl("Mailbox <- ExtraCheck", transient=True)
        base.clear_transient()
        assert base.is_freely_deliverable("Mailbox")

    def test_clear_on_clean_base_is_zero(self, base):
        assert base.clear_transient() == 0
