"""The XML wire format of policies (paper Fig. 7)."""

import pytest

from repro.errors import PolicyParseError
from repro.policy.compliance import ComplianceChecker
from repro.policy.parser import parse_policy
from repro.policy.terms import TermKind
from repro.policy.xmlcodec import policy_from_xml, policy_to_xml
from repro.credentials.profile import XProfile
from tests.conftest import ISSUE_AT


class TestFigure7Shape:
    def test_structure(self):
        """The Fig. 7 policy: ISO 9000 Certified released against an
        American Aircraft accreditation."""
        policy = parse_policy("ISO 9000 Certified <- AAAccreditation")
        xml = policy_to_xml(policy)
        assert '<policy type="disclosure">' in xml
        assert '<resource target="ISO 9000 Certified">' in xml
        assert 'targetCertType="AAAccreditation"' in xml

    def test_conditions_become_certcond(self):
        policy = parse_policy("R <- P(score>=10)")
        xml = policy_to_xml(policy)
        assert "<certCond>" in xml
        assert "score" in xml

    def test_delivery_type(self):
        xml = policy_to_xml(parse_policy("R <- DELIV"))
        assert '<policy type="delivery">' in xml


class TestRoundtrip:
    @pytest.mark.parametrize(
        "dsl",
        [
            "R <- DELIV",
            "R <- A, B",
            "R <- $X(age>=18)",
            "R <- @gender(gender='F')",
            "Service(a, b) <- P(country='IT')",
            "VoMembership <- WebDesignerQuality, {UNI EN ISO 9000}",
        ],
    )
    def test_structure_roundtrip(self, dsl):
        original = parse_policy(dsl)
        restored = policy_from_xml(policy_to_xml(original))
        assert restored.target == original.target
        assert restored.deliver == original.deliver
        assert [t.name for t in restored.terms] == [
            t.name for t in original.terms
        ]
        assert [t.kind for t in restored.terms] == [
            t.kind for t in original.terms
        ]

    def test_semantic_roundtrip(self, infn, shared_keypair):
        """Conditions survive as XPath and still evaluate identically."""
        credential = infn.issue(
            "P", "Owner", shared_keypair.fingerprint,
            {"score": 42, "country": "IT"}, ISSUE_AT,
        )
        profile = XProfile.of("Owner", [credential])
        checker = ComplianceChecker()
        original = parse_policy("R <- P(score>=10, country='IT')")
        restored = policy_from_xml(policy_to_xml(original))
        assert checker.satisfy(original, profile) is not None
        assert checker.satisfy(restored, profile) is not None

    def test_semantic_roundtrip_negative(self, infn, shared_keypair):
        credential = infn.issue(
            "P", "Owner", shared_keypair.fingerprint, {"score": 5}, ISSUE_AT
        )
        profile = XProfile.of("Owner", [credential])
        checker = ComplianceChecker()
        restored = policy_from_xml(
            policy_to_xml(parse_policy("R <- P(score>=10)"))
        )
        assert checker.satisfy(restored, profile) is None

    def test_term_kinds_preserved(self):
        restored = policy_from_xml(policy_to_xml(parse_policy("R <- @c, $v, P")))
        assert [t.kind for t in restored.terms] == [
            TermKind.CONCEPT, TermKind.VARIABLE, TermKind.CREDENTIAL
        ]


class TestErrors:
    def test_wrong_root(self):
        with pytest.raises(PolicyParseError):
            policy_from_xml("<notapolicy/>")

    def test_missing_resource(self):
        with pytest.raises(PolicyParseError):
            policy_from_xml('<policy type="disclosure"><properties/></policy>')

    def test_disclosure_without_terms(self):
        with pytest.raises(PolicyParseError):
            policy_from_xml(
                '<policy type="disclosure">'
                '<resource target="R"/><properties/></policy>'
            )

    def test_certificate_without_type(self):
        with pytest.raises(PolicyParseError):
            policy_from_xml(
                '<policy type="disclosure"><resource target="R"/>'
                "<properties><certificate/></properties></policy>"
            )
