"""The policy DSL parser (paper Examples 1-2 and Section 5 policies)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PolicyParseError
from repro.policy.conditions import (
    AnyAttributeCondition,
    AttributeCondition,
    XPathCondition,
)
from repro.policy.parser import parse_policies, parse_policy
from repro.policy.terms import TermKind


class TestPaperExamples:
    """Every policy the paper writes must parse."""

    @pytest.mark.parametrize(
        "text",
        [
            "VoMembership <- WebDesignerQuality",
            "QualityCertification <- AAACreditation",
            "VoMembership ← WebDesignerQuality, {UNI EN ISO 9000}",
            "Certification() <- AAAccreditation()",
            "Certification() <- BalanceSheet",
            "Certification() <- PrivacyRegulator()",
            "PrivacyRegulator() <- PrivacyRegulator()",
        ],
    )
    def test_parses(self, text):
        policy = parse_policy(text)
        assert policy.target.name
        assert policy.terms

    def test_brace_shorthand_becomes_any_attribute_condition(self):
        policy = parse_policy(
            "VoMembership <- WebDesignerQuality, {UNI EN ISO 9000}"
        )
        assert len(policy.terms) == 1
        condition = policy.terms[0].conditions[0]
        assert isinstance(condition, AnyAttributeCondition)
        assert condition.value == "UNI EN ISO 9000"

    def test_unicode_arrow_equivalent(self):
        left = parse_policy("A <- B")
        right = parse_policy("A ← B")
        assert left.target == right.target
        assert left.terms == right.terms


class TestForms:
    def test_delivery_rule(self):
        policy = parse_policy("Mailbox <- DELIV")
        assert policy.is_delivery
        assert policy.terms == ()

    def test_multiple_terms(self):
        policy = parse_policy("R <- A, B, C")
        assert [term.name for term in policy.terms] == ["A", "B", "C"]

    def test_variable_term(self):
        policy = parse_policy("R <- $X(age>=18)")
        term = policy.terms[0]
        assert term.kind is TermKind.VARIABLE
        condition = term.conditions[0]
        assert isinstance(condition, AttributeCondition)
        assert condition.op == ">="
        assert condition.value == 18.0

    def test_concept_term(self):
        policy = parse_policy("R <- @gender(gender='F')")
        assert policy.terms[0].kind is TermKind.CONCEPT

    def test_quoted_string_values(self):
        policy = parse_policy("R <- P(country='IT'), Q(name=\"O'Hara Ltd\")")
        assert policy.terms[0].conditions[0].value == "IT"
        assert policy.terms[1].conditions[0].value == "O'Hara Ltd"

    def test_bare_word_value(self):
        policy = parse_policy("R <- P(level=gold)")
        assert policy.terms[0].conditions[0].value == "gold"

    def test_xpath_condition(self):
        policy = parse_policy("R <- P(xpath('//score > 5'))")
        assert isinstance(policy.terms[0].conditions[0], XPathCondition)

    def test_rterm_attrset(self):
        policy = parse_policy("Service(region, tier) <- P")
        assert policy.target.attrset == ("region", "tier")

    def test_conditions_with_commas_inside_parens(self):
        policy = parse_policy("R <- P(a=1, b=2), Q")
        assert len(policy.terms) == 2
        assert len(policy.terms[0].conditions) == 2

    def test_brace_attaches_to_last_term(self):
        policy = parse_policy("R <- A, B, {v}")
        assert policy.terms[0].conditions == ()
        assert len(policy.terms[1].conditions) == 1

    def test_brace_with_attribute_condition(self):
        policy = parse_policy("R <- A, {score>=10}")
        condition = policy.terms[0].conditions[0]
        assert isinstance(condition, AttributeCondition)

    def test_names_with_spaces_and_colons(self):
        policy = parse_policy("VoMembership:MyVO:Role1 <- ISO 9000 Certified")
        assert policy.target.name == "VoMembership:MyVO:Role1"
        assert policy.terms[0].name == "ISO 9000 Certified"

    def test_transient_flag(self):
        assert parse_policy("A <- B", transient=True).transient


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "no arrow here",
            "<- B",
            "R <-",
            "R <- ",
            "R <- P(",
            "R <- P)",
            "R <- DELIV, {x}",
            "R(9bad) <- P",
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(PolicyParseError):
            parse_policy(text)

    def test_unterminated_quote(self):
        with pytest.raises(PolicyParseError):
            parse_policy("R <- P(a='oops)")


class TestParseBlock:
    def test_block_with_comments_and_blanks(self):
        policies = parse_policies(
            """
            # protecting the quality certificate
            ISO 9000 Certified <- AAA Member

            ISO 9000 Certified <- BalanceSheet
            Mailbox <- DELIV
            """
        )
        assert len(policies) == 3

    def test_error_reports_line_number(self):
        with pytest.raises(PolicyParseError, match="line 3"):
            parse_policies("A <- B\n# ok\nbroken line\n")


class TestRoundtrip:
    @pytest.mark.parametrize(
        "text",
        [
            "R <- DELIV",
            "R <- A, B",
            "R <- $X(age>=18)",
            "R <- @gender",
            "Service(a, b) <- P(x='1')",
        ],
    )
    def test_dsl_roundtrip(self, text):
        once = parse_policy(text)
        twice = parse_policy(once.dsl())
        assert once.target == twice.target
        assert once.terms == twice.terms
        assert once.deliver == twice.deliver


_names = st.sampled_from(["A", "Res", "VoMembership", "ISO 9000 Certified"])
_terms = st.sampled_from(["P", "$X", "@gender", "P(a=1)", "Q(x>=2, y<5)"])


@given(head=_names, body=st.lists(_terms, min_size=1, max_size=4))
def test_parse_dsl_roundtrip_property(head, body):
    text = f"{head} <- {', '.join(body)}"
    once = parse_policy(text)
    twice = parse_policy(once.dsl())
    assert once.terms == twice.terms
    assert once.target == twice.target
