"""Disclosure-policy rules."""

import pytest

from repro.errors import PolicyError
from repro.policy.rules import DisclosurePolicy
from repro.policy.terms import RTerm, Term


class TestConstruction:
    def test_rule_with_terms(self):
        policy = DisclosurePolicy.rule("R", Term.credential("A"))
        assert not policy.is_delivery
        assert len(policy.terms) == 1

    def test_delivery(self):
        policy = DisclosurePolicy.delivery("R")
        assert policy.is_delivery

    def test_delivery_with_terms_rejected(self):
        with pytest.raises(PolicyError):
            DisclosurePolicy(RTerm("R"), (Term.credential("A"),), deliver=True)

    def test_empty_rule_rejected(self):
        with pytest.raises(PolicyError):
            DisclosurePolicy(RTerm("R"))

    def test_policy_ids_unique(self):
        first = DisclosurePolicy.delivery("R")
        second = DisclosurePolicy.delivery("R")
        assert first.policy_id != second.policy_id

    def test_transient_default_false(self):
        assert not DisclosurePolicy.delivery("R").transient
        assert DisclosurePolicy.delivery("R", transient=True).transient


class TestDsl:
    def test_rule_form(self):
        policy = DisclosurePolicy.rule(
            "R", Term.credential("A"), Term.variable("X")
        )
        assert policy.dsl() == "R <- A, $X"
        assert str(policy) == policy.dsl()

    def test_delivery_form(self):
        assert DisclosurePolicy.delivery("R").dsl() == "R <- DELIV"

    def test_equality_ignores_policy_id(self):
        left = DisclosurePolicy.rule("R", Term.credential("A"))
        right = DisclosurePolicy.rule("R", Term.credential("A"))
        assert left == right
