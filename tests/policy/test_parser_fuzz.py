"""Grammar-driven fuzzing of the policy DSL parser.

Hypothesis builds random policy ASTs, renders them to DSL, and checks
the parser reconstructs an equivalent policy — and that arbitrary junk
either parses or raises :class:`PolicyParseError`, never anything
else.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PolicyParseError
from repro.policy.conditions import AnyAttributeCondition, AttributeCondition
from repro.policy.groups import (
    AggregateCondition,
    CountCondition,
    DistinctIssuersCondition,
    SameIssuerCondition,
)
from repro.policy.parser import parse_policy
from repro.policy.rules import DisclosurePolicy
from repro.policy.terms import RTerm, Term, TermKind

_names = st.sampled_from([
    "A", "Res", "VoMembership", "ISO 9000 Certified", "Quality_Cert",
    "X.509 Thing", "balance-sheet",
])
_attr_names = st.sampled_from(["score", "age", "country", "fiscalYear"])
_ops = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])
_values = st.one_of(
    st.integers(min_value=-999, max_value=999).map(float),
    st.sampled_from(["IT", "gold", "UNI EN ISO 9000"]),
)

_attribute_conditions = st.builds(AttributeCondition, _attr_names, _ops, _values)
_any_conditions = st.builds(
    AnyAttributeCondition, st.sampled_from(["gold", "UNI EN ISO 9000"])
)
_conditions = st.one_of(_attribute_conditions, _any_conditions)

_kinds = st.sampled_from(list(TermKind))
_terms = st.builds(
    lambda kind, name, conds: Term(kind, name, tuple(conds)),
    _kinds, _names, st.lists(_conditions, max_size=3),
)

_group_conditions = st.one_of(
    st.builds(CountCondition, st.sampled_from(["*", "A", "Quality_Cert"]),
              _ops, st.integers(min_value=0, max_value=9).map(float)),
    st.builds(DistinctIssuersCondition, _ops,
              st.integers(min_value=0, max_value=5).map(float)),
    st.just(SameIssuerCondition()),
    st.builds(AggregateCondition, st.sampled_from(["sum", "min", "max"]),
              _attr_names, _ops,
              st.integers(min_value=-99, max_value=99).map(float)),
)

_policies = st.builds(
    lambda target, terms, groups: DisclosurePolicy(
        RTerm(target), tuple(terms), group_conditions=tuple(groups)
    ),
    _names,
    st.lists(_terms, min_size=1, max_size=4),
    st.lists(_group_conditions, max_size=2),
)


@settings(max_examples=200, deadline=None)
@given(policy=_policies)
def test_generated_policy_roundtrips(policy):
    reparsed = parse_policy(policy.dsl())
    assert reparsed.target == policy.target
    assert reparsed.terms == policy.terms
    assert reparsed.group_conditions == policy.group_conditions
    assert reparsed.deliver == policy.deliver
    # And the rendering is a fixed point.
    assert parse_policy(reparsed.dsl()).dsl() == reparsed.dsl()


@settings(max_examples=200, deadline=None)
@given(junk=st.text(alphabet=st.sampled_from("Rr <->()',{}|$@#=.0aZ "),
                    max_size=40))
def test_junk_never_crashes_with_foreign_exceptions(junk):
    try:
        policy = parse_policy(junk)
    except PolicyParseError:
        return
    # If something parsed, it must render back parseably.
    parse_policy(policy.dsl())
