"""Group conditions (the paper's §8 planned extension)."""

import pytest

from repro.credentials.profile import XProfile
from repro.errors import PolicyError, PolicyParseError
from repro.policy.compliance import ComplianceChecker
from repro.policy.groups import (
    AggregateCondition,
    CountCondition,
    DistinctIssuersCondition,
    SameIssuerCondition,
    parse_group_condition,
)
from repro.policy.parser import parse_policy
from tests.conftest import ISSUE_AT


@pytest.fixture()
def credentials(infn, aaa_authority, shared_keypair):
    fp = shared_keypair.fingerprint
    return [
        infn.issue("QualityCert", "Owner", fp, {"capacityTB": 40}, ISSUE_AT),
        infn.issue("QualityCert", "Owner", fp, {"capacityTB": 30}, ISSUE_AT),
        aaa_authority.issue("Badge", "Owner", fp, {"capacityTB": 50}, ISSUE_AT),
    ]


class TestConditionEvaluation:
    def test_count_by_type(self, credentials):
        assert CountCondition("QualityCert", ">=", 2).evaluate(credentials)
        assert not CountCondition("QualityCert", ">=", 3).evaluate(credentials)

    def test_count_star(self, credentials):
        assert CountCondition("*", "=", 3).evaluate(credentials)

    def test_distinct_issuers(self, credentials):
        assert DistinctIssuersCondition(">=", 2).evaluate(credentials)
        assert not DistinctIssuersCondition(">=", 3).evaluate(credentials)

    def test_same_issuer(self, credentials):
        assert SameIssuerCondition().evaluate(credentials[:2])
        assert not SameIssuerCondition().evaluate(credentials)
        assert SameIssuerCondition().evaluate([])

    def test_sum(self, credentials):
        assert AggregateCondition("sum", "capacityTB", ">=", 100).evaluate(
            credentials
        )
        assert not AggregateCondition("sum", "capacityTB", ">", 120).evaluate(
            credentials
        )

    def test_min_max(self, credentials):
        assert AggregateCondition("min", "capacityTB", ">=", 30).evaluate(
            credentials
        )
        assert AggregateCondition("max", "capacityTB", "=", 50).evaluate(
            credentials
        )

    def test_aggregate_over_missing_attribute_fails(self, credentials):
        assert not AggregateCondition("sum", "ghost", ">=", 0).evaluate(
            credentials
        )


class TestParsing:
    @pytest.mark.parametrize(
        "text,kind",
        [
            ("count(QualityCert) >= 2", CountCondition),
            ("count(*) = 3", CountCondition),
            ("distinct_issuers >= 2", DistinctIssuersCondition),
            ("same_issuer", SameIssuerCondition),
            ("sum(capacityTB) >= 100", AggregateCondition),
            ("min(score)>0", AggregateCondition),
        ],
    )
    def test_forms(self, text, kind):
        assert isinstance(parse_group_condition(text), kind)

    def test_invalid_rejected(self):
        with pytest.raises(PolicyParseError):
            parse_group_condition("median(x) > 1")

    def test_policy_with_group_suffix(self):
        policy = parse_policy(
            "Pool <- QualityCert, QualityCert | group(sum(capacityTB)>=60, "
            "distinct_issuers>=1)"
        )
        assert len(policy.terms) == 2
        assert len(policy.group_conditions) == 2

    def test_dsl_roundtrip(self):
        text = "Pool <- A, B | group(count(*)=2, same_issuer)"
        once = parse_policy(text)
        twice = parse_policy(once.dsl())
        assert once.group_conditions == twice.group_conditions
        assert once.terms == twice.terms

    def test_group_with_brace_shorthand(self):
        policy = parse_policy("R <- A, {v} | group(count(*)>=1)")
        assert policy.terms[0].conditions
        assert policy.group_conditions

    def test_delivery_with_group_rejected(self):
        with pytest.raises(PolicyParseError):
            parse_policy("R <- DELIV | group(count(*)=0)")

    def test_empty_group_rejected(self):
        with pytest.raises(PolicyParseError):
            parse_policy("R <- A | group()")


class TestCompliance:
    def test_group_satisfied_by_combination_search(self, credentials):
        """Greedy per-term choice picks the same credential twice; the
        combination search must find the distinct pair."""
        profile = XProfile.of("Owner", credentials)
        checker = ComplianceChecker()
        policy = parse_policy(
            "Pool <- QualityCert, QualityCert | group(sum(capacityTB)>=70)"
        )
        satisfaction = checker.satisfy(policy, profile)
        assert satisfaction is not None
        chosen = satisfaction.credentials()
        total = sum(c.value("capacityTB") for c in chosen)
        assert total >= 70
        assert chosen[0].cred_id != chosen[1].cred_id

    def test_group_unsatisfiable(self, credentials):
        profile = XProfile.of("Owner", credentials)
        checker = ComplianceChecker()
        policy = parse_policy(
            "Pool <- QualityCert, QualityCert | group(sum(capacityTB)>=200)"
        )
        assert checker.satisfy(policy, profile) is None

    def test_distinct_issuer_requirement(self, credentials):
        profile = XProfile.of("Owner", credentials)
        checker = ComplianceChecker()
        policy = parse_policy(
            "Pool <- $X, $Y | group(distinct_issuers>=2)"
        )
        satisfaction = checker.satisfy(policy, profile)
        assert satisfaction is not None
        issuers = {c.issuer for c in satisfaction.credentials()}
        assert len(issuers) == 2


class TestEngineEnforcement:
    def test_group_violation_fails_exchange(self, agent_factory, infn,
                                            shared_keypair, other_keypair):
        """The receiving party enforces group conditions over what was
        actually disclosed."""
        from repro.negotiation.engine import negotiate
        from repro.negotiation.outcomes import FailureReason
        from tests.conftest import NEGOTIATION_AT

        requester = agent_factory(
            "Req",
            [infn.issue("A", "Req", shared_keypair.fingerprint,
                        {"capacityTB": 10}, ISSUE_AT),
             infn.issue("B", "Req", shared_keypair.fingerprint,
                        {"capacityTB": 10}, ISSUE_AT)],
            "", shared_keypair,
        )
        controller = agent_factory(
            "Ctrl", [],
            "RES <- A, B | group(sum(capacityTB)>=100)",
            other_keypair,
        )
        result = negotiate(requester, controller, "RES", at=NEGOTIATION_AT)
        assert not result.success
        assert result.failure_reason is FailureReason.CREDENTIAL_REJECTED
        assert "group condition" in result.failure_detail

    def test_group_satisfied_passes_exchange(self, agent_factory, infn,
                                             shared_keypair, other_keypair):
        from repro.negotiation.engine import negotiate
        from tests.conftest import NEGOTIATION_AT

        requester = agent_factory(
            "Req",
            [infn.issue("A", "Req", shared_keypair.fingerprint,
                        {"capacityTB": 60}, ISSUE_AT),
             infn.issue("B", "Req", shared_keypair.fingerprint,
                        {"capacityTB": 60}, ISSUE_AT)],
            "", shared_keypair,
        )
        controller = agent_factory(
            "Ctrl", [],
            "RES <- A, B | group(sum(capacityTB)>=100, same_issuer)",
            other_keypair,
        )
        result = negotiate(requester, controller, "RES", at=NEGOTIATION_AT)
        assert result.success, result.failure_detail
