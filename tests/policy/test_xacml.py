"""XACML encoding of disclosure policies (paper §8 extension)."""

import pytest

from repro.errors import PolicyParseError
from repro.policy.parser import parse_policies, parse_policy
from repro.policy.xacml import policies_from_xacml, policies_to_xacml


def roundtrip(dsl_block: str):
    policies = parse_policies(dsl_block)
    resource = policies[0].target.name
    xacml = policies_to_xacml(resource, policies)
    return xacml, policies_from_xacml(xacml)


class TestEncoding:
    def test_xacml_structure(self):
        policies = parse_policies("""
VoMembership <- WebDesignerQuality, {UNI EN ISO 9000}
VoMembership <- VO Participation Ticket(outcome='fulfilled')
""")
        xacml = policies_to_xacml("VoMembership", policies)
        assert 'PolicyId="urn:repro:policyset:VoMembership"' in xacml
        assert "permit-overrides" in xacml
        assert xacml.count('Effect="Permit"') == 2
        assert "ResourceMatch" in xacml
        assert "SubjectAttributeDesignator" in xacml

    def test_delivery_rule_has_no_condition(self):
        xacml = policies_to_xacml(
            "Mailbox", parse_policies("Mailbox <- DELIV")
        )
        assert "<Condition>" not in xacml

    def test_mismatched_resource_rejected(self):
        with pytest.raises(PolicyParseError):
            policies_to_xacml("Other", parse_policies("R <- A"))

    def test_no_policies_rejected(self):
        with pytest.raises(PolicyParseError):
            policies_to_xacml("R", [])


class TestRoundtrip:
    @pytest.mark.parametrize(
        "dsl",
        [
            "R <- A, B",
            "R <- DELIV",
            "R <- $X(age>=18)",
            "R <- @gender(gender='F')",
            "R <- P(score>=10, country='IT'), Q",
            "R <- A, B | group(distinct_issuers>=2, sum(capacityTB)>=100)",
            "R <- P(xpath('//score > 5'))",
        ],
    )
    def test_single_policy(self, dsl):
        xacml, (resource, decoded) = roundtrip(dsl)
        original = parse_policy(dsl)
        assert resource == original.target.name
        assert len(decoded) == 1
        restored = decoded[0]
        assert restored.deliver == original.deliver
        assert [t.name for t in restored.terms] == [
            t.name for t in original.terms
        ]
        assert [t.kind for t in restored.terms] == [
            t.kind for t in original.terms
        ]
        assert restored.group_conditions == original.group_conditions

    def test_alternatives_preserved_in_order(self):
        _, (resource, decoded) = roundtrip("""
VoMembership <- WebDesignerQuality
VoMembership <- BalanceSheet(fiscalYear>=2009)
VoMembership <- DELIV
""")
        assert resource == "VoMembership"
        assert len(decoded) == 3
        assert decoded[0].terms[0].name == "WebDesignerQuality"
        assert decoded[2].is_delivery

    def test_attribute_conditions_survive(self):
        _, (_, decoded) = roundtrip("R <- P(score>=10, country='IT')")
        conditions = decoded[0].terms[0].conditions
        ops = {c.op for c in conditions}
        assert ops == {">=", "="}
        values = {c.value for c in conditions}
        assert 10.0 in values
        assert "IT" in values

    def test_semantics_survive(self, infn, shared_keypair):
        """A decoded policy evaluates identically against a profile."""
        from repro.credentials.profile import XProfile
        from repro.policy.compliance import ComplianceChecker
        from tests.conftest import ISSUE_AT

        credential = infn.issue(
            "P", "Owner", shared_keypair.fingerprint,
            {"score": 42, "country": "IT"}, ISSUE_AT,
        )
        profile = XProfile.of("Owner", [credential])
        _, (_, decoded) = roundtrip("R <- P(score>=10, country='IT')")
        assert ComplianceChecker().satisfy(decoded[0], profile) is not None
        _, (_, strict) = roundtrip("R <- P(score>=100)")
        assert ComplianceChecker().satisfy(strict[0], profile) is None


class TestDecodingErrors:
    def test_non_policy_root(self):
        with pytest.raises(PolicyParseError):
            policies_from_xacml("<NotAPolicy/>")

    def test_missing_target(self):
        with pytest.raises(PolicyParseError):
            policies_from_xacml("<Policy><Rule Effect='Permit'/></Policy>")

    def test_no_permit_rules(self):
        with pytest.raises(PolicyParseError):
            policies_from_xacml(
                "<Policy><Target><Resources><Resource><ResourceMatch>"
                "<AttributeValue>R</AttributeValue></ResourceMatch>"
                "</Resource></Resources></Target>"
                "<Rule Effect='Deny'/></Policy>"
            )
