"""Policy satisfaction against an X-Profile."""

import pytest

from repro.credentials.profile import XProfile
from repro.credentials.sensitivity import Sensitivity
from repro.policy.compliance import ComplianceChecker
from repro.policy.parser import parse_policy
from repro.policy.terms import Term
from tests.conftest import ISSUE_AT


@pytest.fixture()
def profile(infn, shared_keypair):
    fp = shared_keypair.fingerprint
    return XProfile.of("Owner", [
        infn.issue("Passport", "Owner", fp,
                   {"gender": "F", "country": "IT"}, ISSUE_AT,
                   sensitivity=Sensitivity.HIGH),
        infn.issue("DrivingLicense", "Owner", fp,
                   {"sex": "F"}, ISSUE_AT, sensitivity=Sensitivity.LOW),
        infn.issue("BalanceSheet", "Owner", fp,
                   {"Issuer": "BBB", "fiscalYear": 2009}, ISSUE_AT),
    ])


@pytest.fixture()
def checker():
    return ComplianceChecker()


class TestTermCandidates:
    def test_credential_term(self, checker, profile):
        candidates = checker.candidates(
            Term.credential("Passport"), profile
        )
        assert [c.cred_type for c in candidates] == ["Passport"]

    def test_credential_term_with_condition(self, checker, profile):
        term = parse_policy("R <- Passport(country='FR')").terms[0]
        assert checker.candidates(term, profile) == []

    def test_variable_term_scans_whole_profile(self, checker, profile):
        term = parse_policy("R <- $X(fiscalYear>=2009)").terms[0]
        candidates = checker.candidates(term, profile)
        assert [c.cred_type for c in candidates] == ["BalanceSheet"]

    def test_variable_term_prefers_low_sensitivity(self, checker, profile):
        term = parse_policy("R <- $X").terms[0]
        candidates = checker.candidates(term, profile)
        assert candidates[0].sensitivity is Sensitivity.LOW

    def test_concept_term_without_resolver_is_empty(self, checker, profile):
        assert checker.candidates(Term.concept("gender"), profile) == []

    def test_concept_term_with_resolver(self, profile):
        def resolver(name, prof):
            assert name == "gender"
            return prof.by_type("DrivingLicense")

        checker = ComplianceChecker(concept_resolver=resolver)
        candidates = checker.candidates(Term.concept("gender"), profile)
        assert [c.cred_type for c in candidates] == ["DrivingLicense"]


class TestPolicySatisfaction:
    def test_satisfiable_policy(self, checker, profile):
        policy = parse_policy("R <- Passport(gender='F'), BalanceSheet")
        satisfaction = checker.satisfy(policy, profile)
        assert satisfaction is not None
        assert len(satisfaction.assignments) == 2
        assert satisfaction.credential_ids()

    def test_unsatisfiable_policy(self, checker, profile):
        policy = parse_policy("R <- Passport, MissingCred")
        assert checker.satisfy(policy, profile) is None

    def test_delivery_policy_trivially_satisfied(self, checker, profile):
        satisfaction = checker.satisfy(parse_policy("R <- DELIV"), profile)
        assert satisfaction is not None
        assert satisfaction.credentials() == []

    def test_alternatives_recorded(self, checker, profile):
        policy = parse_policy("R <- $X")
        satisfaction = checker.satisfy(policy, profile)
        assert len(satisfaction.assignments[0].alternatives) == 3

    def test_first_satisfiable_order(self, checker, profile):
        policies = [
            parse_policy("R <- MissingCred"),
            parse_policy("R <- BalanceSheet"),
            parse_policy("R <- Passport"),
        ]
        chosen = checker.first_satisfiable(policies, profile)
        assert chosen.policy is policies[1]

    def test_first_satisfiable_none(self, checker, profile):
        assert checker.first_satisfiable(
            [parse_policy("R <- Nope")], profile
        ) is None
