"""Terms and R-Terms."""

import pytest

from repro.policy.conditions import AttributeCondition
from repro.policy.terms import RTerm, Term, TermKind
from tests.conftest import ISSUE_AT


@pytest.fixture()
def credential(infn, shared_keypair):
    return infn.issue(
        "Passport", "S", shared_keypair.fingerprint,
        {"gender": "F", "country": "IT"}, ISSUE_AT,
    )


class TestCredentialTerm:
    def test_matching_type_and_conditions(self, credential):
        term = Term.credential("Passport", AttributeCondition("gender", "=", "F"))
        assert term.matches_credential(credential)

    def test_wrong_type_rejected(self, credential):
        term = Term.credential("DrivingLicense")
        assert not term.matches_credential(credential)

    def test_failing_condition_rejected(self, credential):
        term = Term.credential("Passport", AttributeCondition("gender", "=", "M"))
        assert not term.matches_credential(credential)

    def test_no_conditions_type_only(self, credential):
        assert Term.credential("Passport").matches_credential(credential)


class TestVariableTerm:
    def test_any_type_with_condition(self, credential):
        """'The credential type P can be unspecified (denoted by a
        variable), so to express constraints on the counterpart
        properties'."""
        term = Term.variable("X", AttributeCondition("country", "=", "IT"))
        assert term.matches_credential(credential)

    def test_condition_must_hold(self, credential):
        term = Term.variable("X", AttributeCondition("country", "=", "FR"))
        assert not term.matches_credential(credential)


class TestConceptTerm:
    def test_never_matches_directly(self, credential):
        term = Term.concept("gender")
        assert not term.matches_credential(credential)

    def test_conditions_hold_ignores_kind(self, credential):
        term = Term.concept("gender", AttributeCondition("gender", "=", "F"))
        assert term.conditions_hold(credential)


class TestDsl:
    def test_credential_term(self):
        assert Term.credential("Passport").dsl() == "Passport"

    def test_variable_prefix(self):
        assert Term.variable("X").dsl() == "$X"

    def test_concept_prefix(self):
        assert Term.concept("gender").dsl() == "@gender"

    def test_conditions_rendered(self):
        term = Term.credential("P", AttributeCondition("a", ">", 3.0))
        assert term.dsl() == "P(a>3)"


class TestRTerm:
    def test_plain(self):
        assert RTerm("VoMembership").dsl() == "VoMembership"

    def test_with_attrset(self):
        assert RTerm("Service", ("a", "b")).dsl() == "Service(a, b)"
