"""OWL-subset import/export (paper Fig. 8)."""

import pytest

from repro.errors import OntologyError
from repro.ontology.builtin import (
    aerospace_reference_ontology,
    identity_example_ontology,
)
from repro.ontology.graph import Ontology
from repro.ontology.owl import ontology_from_owl, ontology_to_owl


class TestExport:
    def test_contains_owl_vocabulary(self):
        owl = ontology_to_owl(identity_example_ontology())
        assert "owl#}Class" in owl or "owl#\"" in owl or "Class" in owl
        assert "subClassOf" in owl

    def test_bindings_serialized(self):
        owl = ontology_to_owl(aerospace_reference_ontology())
        assert "ISO 9000 Certified" in owl
        assert "QualityRegulation" in owl


class TestRoundtrip:
    @pytest.mark.parametrize(
        "builder", [identity_example_ontology, aerospace_reference_ontology]
    )
    def test_full_roundtrip(self, builder):
        original = builder()
        restored = ontology_from_owl(ontology_to_owl(original))
        assert restored.name == original.name
        assert restored.names() == original.names()
        for concept in original:
            twin = restored.get(concept.name)
            assert twin.bindings == concept.bindings
            assert twin.attributes == concept.attributes

    def test_is_a_edges_roundtrip(self):
        original = identity_example_ontology()
        restored = ontology_from_owl(ontology_to_owl(original))
        assert restored.infers("Texas_DriverLicense", "IdentityDocument")
        assert restored.ancestors("Texas_DriverLicense") == (
            original.ancestors("Texas_DriverLicense")
        )

    def test_empty_ontology_roundtrip(self):
        empty = Ontology("empty")
        restored = ontology_from_owl(ontology_to_owl(empty))
        assert len(restored) == 0
        assert restored.name == "empty"


class TestErrors:
    def test_wrong_root(self):
        with pytest.raises(OntologyError):
            ontology_from_owl("<notrdf/>")

    def test_missing_name(self):
        with pytest.raises(OntologyError):
            ontology_from_owl(
                '<rdf:RDF xmlns:rdf='
                '"http://www.w3.org/1999/02/22-rdf-syntax-ns#"/>'
            )


class TestBuiltinOntologies:
    def test_aerospace_has_paper_concepts(self):
        onto = aerospace_reference_ontology()
        for name in ("WebDesignerQuality", "AAAccreditation", "BalanceSheet",
                     "PrivacyRegulator", "BusinessProof"):
            assert name in onto

    def test_aerospace_hierarchy(self):
        onto = aerospace_reference_ontology()
        assert onto.infers("WebDesignerQuality", "QualityCertification")
        assert onto.infers("BalanceSheet", "BusinessProof")

    def test_identity_has_gender_concept(self):
        onto = identity_example_ontology()
        gender = onto.get("gender")
        assert gender.credential_types() == {"Passport", "DrivingLicense"}
