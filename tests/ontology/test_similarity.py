"""Jaccard similarity (GLUE-style matching measure)."""

import pytest
from hypothesis import given, strategies as st

from repro.ontology.concept import Concept
from repro.ontology.similarity import compute_similarity, jaccard, name_similarity


class TestJaccard:
    def test_identical_sets(self):
        assert jaccard({"a", "b"}, {"a", "b"}) == 1.0

    def test_disjoint_sets(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_partial_overlap(self):
        assert jaccard({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)

    def test_empty_sets_are_zero(self):
        assert jaccard(set(), set()) == 0.0

    def test_one_empty_set(self):
        assert jaccard({"a"}, set()) == 0.0


class TestConceptSimilarity:
    def test_same_concept_different_casing(self):
        left = Concept.of("WebDesignerQuality")
        right = Concept.of("web_designer_quality")
        assert compute_similarity(left, right) == 1.0

    def test_unrelated_concepts_score_low(self):
        left = Concept.of("StorageCapacity")
        right = Concept.of("PrivacySeal")
        assert compute_similarity(left, right) == 0.0

    def test_bindings_contribute(self):
        left = Concept.of("quality", ["ISO 9000 Certified.regulation"])
        right = Concept.of("regulation", ["ISO 9000 Certified.regulation"])
        assert compute_similarity(left, right) > 0.5

    def test_symmetry(self):
        left = Concept.of("DesignQuality", ["Cert.design"])
        right = Concept.of("QualityDesign", ["Badge.quality"])
        assert compute_similarity(left, right) == compute_similarity(right, left)


class TestNameSimilarity:
    def test_shared_tokens(self):
        assert name_similarity("WebDesignerQuality", "designer quality") > 0.5

    def test_disjoint(self):
        assert name_similarity("alpha", "beta") == 0.0


_token_sets = st.sets(
    st.sampled_from(["a", "b", "c", "d", "e", "f"]), max_size=6
)


@given(left=_token_sets, right=_token_sets)
def test_jaccard_properties(left, right):
    score = jaccard(left, right)
    assert 0.0 <= score <= 1.0
    assert score == jaccard(right, left)  # symmetric
    if left and left == right:
        assert score == 1.0
    if not (left & right):
        assert score == 0.0


@given(left=_token_sets, right=_token_sets, extra=_token_sets)
def test_jaccard_monotone_in_intersection(left, right, extra):
    """Adding shared elements never lowers similarity below disjoint."""
    combined = jaccard(left | extra, right | extra)
    if extra:
        assert combined > 0.0
