"""Concepts and credential bindings."""

import pytest

from repro.errors import OntologyError
from repro.ontology.concept import Concept, CredentialBinding, tokenize_identifier
from tests.conftest import ISSUE_AT


class TestTokenize:
    def test_camel_case(self):
        assert tokenize_identifier("WebDesignerQuality") == {
            "web", "designer", "quality"
        }

    def test_snake_case_and_dots(self):
        assert tokenize_identifier("driving_license.sex") == {
            "driving", "license", "sex"
        }

    def test_spaces_and_numbers(self):
        assert "9000" in tokenize_identifier("ISO 9000 Certified")

    def test_acronym_boundary(self):
        assert tokenize_identifier("HPCService") == {"hpc", "service"}

    def test_empty(self):
        assert tokenize_identifier("") == frozenset()


class TestBinding:
    def test_parse_with_attribute(self):
        binding = CredentialBinding.parse("Passport.gender")
        assert binding.cred_type == "Passport"
        assert binding.attribute == "gender"

    def test_parse_type_only(self):
        binding = CredentialBinding.parse("AAA Member")
        assert binding.cred_type == "AAA Member"
        assert binding.attribute is None

    def test_parse_empty_rejected(self):
        with pytest.raises(OntologyError):
            CredentialBinding.parse("  ")

    def test_qualified_roundtrip(self):
        for text in ("Passport.gender", "AAA Member"):
            assert CredentialBinding.parse(text).qualified() == text

    def test_implemented_by_type_and_attribute(self, infn, shared_keypair):
        cred = infn.issue("Passport", "S", shared_keypair.fingerprint,
                          {"gender": "F"}, ISSUE_AT)
        assert CredentialBinding("Passport", "gender").implemented_by(cred)
        assert CredentialBinding("Passport").implemented_by(cred)
        assert not CredentialBinding("Passport", "age").implemented_by(cred)
        assert not CredentialBinding("Visa").implemented_by(cred)


class TestConcept:
    def test_paper_gender_example(self, infn, shared_keypair):
        """⟨gender; Passport.gender; DrivingLicense.sex⟩."""
        gender = Concept.of(
            "gender", ["Passport.gender", "DrivingLicense.sex"]
        )
        passport = infn.issue("Passport", "S", shared_keypair.fingerprint,
                              {"gender": "F"}, ISSUE_AT)
        license_ = infn.issue("DrivingLicense", "S", shared_keypair.fingerprint,
                              {"sex": "F"}, ISSUE_AT)
        other = infn.issue("LibraryCard", "S", shared_keypair.fingerprint,
                           {}, ISSUE_AT)
        assert gender.implemented_by(passport)
        assert gender.implemented_by(license_)
        assert not gender.implemented_by(other)

    def test_credential_types(self):
        concept = Concept.of("c", ["A.x", "B", "A.y"])
        assert concept.credential_types() == {"A", "B"}

    def test_feature_tokens_cover_all_parts(self):
        concept = Concept.of(
            "WebQuality", ["ISO 9000 Certified.QualityRegulation"],
            attributes=["regulation"],
        )
        tokens = concept.feature_tokens()
        for expected in ("web", "quality", "iso", "9000", "regulation"):
            assert expected in tokens
