"""Cross-ontology alignment."""

import pytest

from repro.ontology.concept import Concept
from repro.ontology.graph import Ontology
from repro.ontology.matching import best_match, match_ontologies
from repro.scenario.workloads import overlapping_ontologies


@pytest.fixture()
def pair():
    left = Ontology("left")
    left.add_concept("WebDesignerQuality",
                     bindings=["ISO 9000 Certified.QualityRegulation"])
    left.add_concept("StorageCapacity", bindings=["Storage Cert.capacityTB"])
    right = Ontology("right")
    right.add_concept("web_designer_quality",
                      bindings=["ISO 9000 Certified.QualityRegulation"])
    right.add_concept("privacy_seal", bindings=["PrivacySeal.regulation"])
    return left, right


class TestBestMatch:
    def test_finds_renamed_twin(self, pair):
        left, right = pair
        match = best_match(left.get("WebDesignerQuality"), right)
        assert match.target == "web_designer_quality"
        assert match.confidence == 1.0

    def test_confidence_in_unit_interval(self, pair):
        left, right = pair
        match = best_match(left.get("StorageCapacity"), right)
        assert 0.0 <= match.confidence <= 1.0

    def test_empty_target_ontology(self, pair):
        left, _ = pair
        assert best_match(left.get("StorageCapacity"), Ontology("empty")) is None

    def test_deterministic_tie_break(self):
        source = Concept.of("x")
        target = Ontology("t")
        target.add_concept("b_unrelated")
        target.add_concept("a_unrelated")
        match = best_match(source, target)
        assert match.target == "a_unrelated"  # lexicographically first


class TestMatchOntologies:
    def test_every_source_concept_mapped(self, pair):
        left, right = pair
        mapping = match_ontologies(left, right)
        assert len(mapping) == len(left)
        assert mapping.source_name == "left"
        assert mapping.target_name == "right"

    def test_confident_matches_filter_and_order(self, pair):
        left, right = pair
        mapping = match_ontologies(left, right)
        confident = mapping.confident_matches(0.9)
        assert [m.source for m in confident] == ["WebDesignerQuality"]

    def test_match_for_unknown_is_none(self, pair):
        left, right = pair
        assert match_ontologies(left, right).match_for("Ghost") is None

    def test_overlapping_workload_alignment_quality(self):
        """Shared concepts align with higher confidence than unrelated
        ones, across synthetic ontologies with 50% vocabulary overlap."""
        left, right = overlapping_ontologies(concepts=12, overlap=0.5)
        mapping = match_ontologies(left, right)
        shared_scores = []
        unrelated_scores = []
        for match in mapping.matches.values():
            if match.target.startswith("unrelated"):
                unrelated_scores.append(match.confidence)
            else:
                shared_scores.append(match.confidence)
        assert shared_scores
        assert max(shared_scores) > (
            max(unrelated_scores) if unrelated_scores else 0.0
        )
