"""The ontology graph and is_a inference."""

import pytest

from repro.errors import ConceptNotFoundError, OntologyError
from repro.ontology.graph import IS_A, Ontology
from repro.ontology.builtin import identity_example_ontology


@pytest.fixture()
def onto():
    graph = Ontology("test")
    for name in ("IdentityDocument", "Civilian_DriverLicense",
                 "Texas_DriverLicense", "Passport_Document"):
        graph.add_concept(name)
    graph.relate("Civilian_DriverLicense", "IdentityDocument")
    graph.relate("Passport_Document", "IdentityDocument")
    graph.relate("Texas_DriverLicense", "Civilian_DriverLicense")
    return graph


class TestConstruction:
    def test_duplicate_concept_rejected(self, onto):
        with pytest.raises(OntologyError):
            onto.add_concept("IdentityDocument")

    def test_relate_unknown_concept_rejected(self, onto):
        with pytest.raises(ConceptNotFoundError):
            onto.relate("Ghost", "IdentityDocument")

    def test_is_a_cycle_rejected(self, onto):
        with pytest.raises(OntologyError):
            onto.relate("IdentityDocument", "Texas_DriverLicense")

    def test_cycle_rejection_leaves_graph_clean(self, onto):
        try:
            onto.relate("IdentityDocument", "Texas_DriverLicense")
        except OntologyError:
            pass
        # The offending edge must not linger.
        assert "Texas_DriverLicense" not in onto.related(
            "IdentityDocument", IS_A
        )

    def test_non_is_a_relation_may_cycle(self, onto):
        onto.relate("IdentityDocument", "Passport_Document", "related_to")
        onto.relate("Passport_Document", "IdentityDocument", "related_to")


class TestInference:
    def test_paper_texas_example(self):
        """Texas_DriverLicense is_a Civilian_DriverLicense (Section 4.3)."""
        onto = identity_example_ontology()
        assert onto.infers("Texas_DriverLicense", "Civilian_DriverLicense")

    def test_transitive_ancestors(self, onto):
        assert onto.ancestors("Texas_DriverLicense") == {
            "Civilian_DriverLicense", "IdentityDocument"
        }

    def test_descendants(self, onto):
        assert onto.descendants("IdentityDocument") == {
            "Civilian_DriverLicense", "Texas_DriverLicense",
            "Passport_Document",
        }

    def test_infers_reflexive(self, onto):
        assert onto.infers("Passport_Document", "Passport_Document")

    def test_infers_not_downward(self, onto):
        assert not onto.infers("IdentityDocument", "Texas_DriverLicense")

    def test_conveying_order(self, onto):
        names = [c.name for c in onto.conveying("Civilian_DriverLicense")]
        assert names[0] == "Civilian_DriverLicense"
        assert "Texas_DriverLicense" in names


class TestGeneralize:
    def test_one_hop(self, onto):
        assert onto.generalize("Texas_DriverLicense") == (
            "Civilian_DriverLicense"
        )

    def test_two_hops(self, onto):
        assert onto.generalize("Texas_DriverLicense", hops=2) == (
            "IdentityDocument"
        )

    def test_root_has_no_generalization(self, onto):
        assert onto.generalize("IdentityDocument") is None

    def test_hops_beyond_root_saturate(self, onto):
        assert onto.generalize("Texas_DriverLicense", hops=10) == (
            "IdentityDocument"
        )


class TestAccess:
    def test_contains_len_names(self, onto):
        assert "IdentityDocument" in onto
        assert "Ghost" not in onto
        assert len(onto) == 4
        assert onto.names() == sorted(onto.names())

    def test_get_unknown_raises(self, onto):
        with pytest.raises(ConceptNotFoundError):
            onto.get("Ghost")
