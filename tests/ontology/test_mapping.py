"""Algorithm 1: concept-to-credential mapping."""

import pytest

from repro.credentials.profile import XProfile
from repro.credentials.sensitivity import Sensitivity
from repro.errors import MappingError
from repro.ontology.builtin import aerospace_reference_ontology
from repro.ontology.mapping import ConceptMapper
from tests.conftest import ISSUE_AT


@pytest.fixture()
def mapper():
    return ConceptMapper(aerospace_reference_ontology())


@pytest.fixture()
def profile(infn, bbb_authority, shared_keypair):
    fp = shared_keypair.fingerprint
    return XProfile.of("AerospaceCo", [
        infn.issue("ISO 9000 Certified", "AerospaceCo", fp,
                   {"QualityRegulation": "UNI EN ISO 9000"}, ISSUE_AT,
                   sensitivity=Sensitivity.MEDIUM),
        bbb_authority.issue("BalanceSheet", "AerospaceCo", fp,
                            {"Issuer": "BBB"}, ISSUE_AT,
                            sensitivity=Sensitivity.LOW),
    ])


class TestDirectHit:
    def test_concept_in_ontology(self, mapper, profile):
        outcome = mapper.map_concept("WebDesignerQuality", profile)
        assert outcome.resolved_concept == "WebDesignerQuality"
        assert outcome.confidence == 1.0
        assert outcome.credential.cred_type == "ISO 9000 Certified"

    def test_cluster_reported(self, mapper, profile):
        outcome = mapper.map_concept("WebDesignerQuality", profile)
        assert outcome.cluster is Sensitivity.MEDIUM

    def test_low_cluster_preferred(self, mapper, profile):
        """BalanceSheet (low) wins over any medium credential for the
        generic BusinessProof concept."""
        outcome = mapper.map_concept("BusinessProof", profile)
        assert outcome.credential.cred_type == "BalanceSheet"
        assert outcome.cluster is Sensitivity.LOW

    def test_is_a_descendants_convey_parent(self, mapper, profile):
        """QualityCertification has no direct binding but its is_a
        descendants do."""
        outcome = mapper.map_concept("QualityCertification", profile)
        assert outcome.credential.cred_type == "ISO 9000 Certified"


class TestSimilarityFallback:
    def test_absent_concept_resolves_by_similarity(self, mapper, profile):
        outcome = mapper.map_concept(
            "web designer quality certification", profile
        )
        assert outcome.confidence < 1.0
        assert outcome.credential is not None

    def test_threshold_blocks_garbage(self, profile):
        strict = ConceptMapper(
            aerospace_reference_ontology(), similarity_threshold=0.9
        )
        with pytest.raises(MappingError):
            strict.map_concept("zzz unrelated nonsense", profile)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(MappingError):
            ConceptMapper(aerospace_reference_ontology(), similarity_threshold=2.0)


class TestFailures:
    def test_no_implementing_credential(self, mapper, infn, shared_keypair):
        empty = XProfile.of("Nobody", [])
        with pytest.raises(MappingError):
            mapper.map_concept("WebDesignerQuality", empty)


class TestMapPolicy:
    def test_outer_loop(self, mapper, profile):
        outcomes = mapper.map_policy(
            ["WebDesignerQuality", "BusinessProof"], profile
        )
        assert [o.credential.cred_type for o in outcomes] == [
            "ISO 9000 Certified", "BalanceSheet"
        ]


class TestResolverAdapter:
    def test_candidates_ordered_by_cluster(self, mapper, profile):
        candidates = mapper.candidates("BusinessProof", profile)
        assert [c.cred_type for c in candidates] == ["BalanceSheet"]

    def test_candidates_for_unknown_concept_empty(self, profile):
        strict = ConceptMapper(
            aerospace_reference_ontology(), similarity_threshold=0.99
        )
        assert strict.candidates("nonsense", profile) == []

    def test_resolver_plugs_into_compliance(self, mapper, profile):
        from repro.policy.compliance import ComplianceChecker
        from repro.policy.parser import parse_policy

        checker = ComplianceChecker(concept_resolver=mapper.resolver())
        policy = parse_policy("R <- @WebDesignerQuality")
        satisfaction = checker.satisfy(policy, profile)
        assert satisfaction is not None
        assert satisfaction.credentials()[0].cred_type == "ISO 9000 Certified"
