"""Every worked example in the paper, executed end to end."""

import pytest

from repro.negotiation.engine import negotiate
from repro.policy.parser import parse_policy
from repro.scenario import build_aircraft_scenario
from repro.scenario.aircraft import ROLE_DESIGN_PORTAL


@pytest.fixture()
def scenario():
    return build_aircraft_scenario()


class TestExample1Policies:
    """Section 4.1, Example 1."""

    def test_vo_membership_policy(self):
        policy = parse_policy("VoMembership <- WebDesignerQuality")
        assert policy.target.name == "VoMembership"
        assert policy.terms[0].name == "WebDesignerQuality"

    def test_quality_certification_policy(self):
        policy = parse_policy("QualityCertification <- AAACreditation")
        assert policy.terms[0].name == "AAACreditation"


class TestExample2NegotiationTree:
    """Section 4.2, Example 2 / Fig. 2: the membership negotiation
    between the Aerospace and Aircraft companies, with the alternative
    AAA-accreditation / balance-sheet branch."""

    def test_tree_shape(self, scenario):
        scenario.initiator.define_vo_policies(scenario.contract)
        role = scenario.contract.role(ROLE_DESIGN_PORTAL)
        result = negotiate(
            scenario.member("AerospaceCo").agent,
            scenario.initiator.agent,
            role.membership_resource(scenario.contract.vo_name),
            at=scenario.contract.created_at,
        )
        assert result.success
        tree = result.tree
        # Root: the membership resource, owned by the Aircraft company.
        assert tree.root.owner == "AircraftCo"
        # One edge for the membership policy, leading to the quality
        # requirement owned by the Aerospace company.
        quality_edges = tree.edges_from(tree.root_id)
        assert len(quality_edges) == 1
        quality_node = tree.node(quality_edges[0].children[0])
        assert quality_node.owner == "AerospaceCo"
        # Two alternative edges below: AAA Member OR BalanceSheet.
        alternatives = tree.edges_from(quality_node.node_id)
        assert len(alternatives) == 2
        requested = {
            tree.node(edge.children[0]).label for edge in alternatives
        }
        assert requested == {"AAA Member", "BalanceSheet"}


class TestSection51FormationExample:
    """The Section 5.1 bullet-list walkthrough of the formation TN."""

    def test_full_walkthrough(self, scenario):
        scenario.initiator.define_vo_policies(scenario.contract)
        role = scenario.contract.role(ROLE_DESIGN_PORTAL)
        aero = scenario.member("AerospaceCo").agent
        result = negotiate(
            aero, scenario.initiator.agent,
            role.membership_resource(scenario.contract.vo_name),
            at=scenario.contract.created_at,
        )
        assert result.success
        # The Aerospace company disclosed its ISO 9000 certificate...
        assert any(
            "ISO 9000 Certified" in cred_id
            for cred_id in result.disclosed_by_requester
        )
        # ...after the Aircraft company proved its AAA accreditation.
        assert any(
            "AAA Member" in cred_id
            for cred_id in result.disclosed_by_controller
        )

    def test_concept_mapping_bridged_the_naming_gap(self, scenario):
        """The policy says 'WebDesignerQuality'; no such credential
        exists — the reasoning engine maps it to ISO 9000 Certified."""
        aero = scenario.member("AerospaceCo").agent
        assert not aero.profile.has_type("WebDesignerQuality")
        term = parse_policy(
            "X <- WebDesignerQuality, {UNI EN ISO 9000}"
        ).terms[0]
        candidates = aero.candidates_for(term)
        assert candidates
        assert candidates[0].cred_type == "ISO 9000 Certified"


class TestSection51OperationExample:
    """The ISO 002 re-verification with mutual privacy proofs."""

    def test_privacy_protected_reverification(self, scenario):
        optim = scenario.member("OptimCo").agent
        aero = scenario.member("AerospaceCo").agent
        result = negotiate(
            optim, aero, "ISO 002 Certification",
            at=scenario.contract.created_at,
        )
        assert result.success
        # Both parties proved privacy compliance.
        assert any("PrivacySeal" in c for c in result.disclosed_by_requester)
        assert any("PrivacySeal" in c for c in result.disclosed_by_controller)


class TestFig6Credential:
    """Fig. 6: the 'ISO 9000 Certified' credential by INFN with the
    QualityRegulation attribute."""

    def test_scenario_credential_matches_figure(self, scenario):
        iso = scenario.member("AerospaceCo").agent.profile.by_type(
            "ISO 9000 Certified"
        )[0]
        xml = iso.to_xml()
        assert "<credType>ISO 9000 Certified</credType>" in xml
        assert "<issuer>INFN</issuer>" in xml
        assert "QualityRegulation" in xml
        assert "UNI EN ISO 9000" in xml
        assert "2009-10-26T21:32:52" in xml  # the figure's notBefore


class TestFig7Policy:
    """Fig. 7: the disclosure policy for 'ISO 9000 Certified'."""

    def test_scenario_policy_matches_figure(self, scenario):
        from repro.policy.xmlcodec import policy_to_xml

        policies = scenario.member("AerospaceCo").agent.policies
        policy = policies.policies_for("ISO 9000 Certified")[0]
        xml = policy_to_xml(policy)
        assert 'target="ISO 9000 Certified"' in xml
        assert "certificate" in xml
