"""The fault matrix: every fault kind crossed with every strategy must
terminate deterministically — a NegotiationResult or a typed
ReproError, never a hang or an untyped exception."""

import pytest

from repro.errors import ReproError
from repro.faults.plan import FaultKind, FaultPlan
from repro.faults.demo import negotiate_under_faults
from repro.negotiation.outcomes import NegotiationResult
from repro.negotiation.strategies import Strategy
from repro.services.resilience import RetryPolicy

MATRIX_KINDS = (
    FaultKind.DROP,
    FaultKind.TIMEOUT,
    FaultKind.DUPLICATE,
    FaultKind.CRASH,
)
STRATEGIES = tuple(Strategy)


def outcome_key(outcome):
    """A comparable fingerprint of a run's terminal state."""
    if isinstance(outcome, NegotiationResult):
        return (
            "result",
            outcome.success,
            tuple(outcome.disclosed_by_requester),
            tuple(outcome.disclosed_by_controller),
            tuple(str(node.term) for node in outcome.sequence),
        )
    return ("error", type(outcome).__name__, str(outcome))


class TestFaultMatrix:
    @pytest.mark.parametrize("strategy", STRATEGIES,
                             ids=[s.value for s in STRATEGIES])
    @pytest.mark.parametrize("kind", MATRIX_KINDS,
                             ids=[k.value for k in MATRIX_KINDS])
    def test_single_fault_terminates_typed(self, kind, strategy):
        plan = FaultPlan().at(2, kind)
        outcome, injector, resilient = negotiate_under_faults(
            plan, strategy=strategy
        )
        assert isinstance(outcome, (NegotiationResult, ReproError))
        assert injector.total_injected() == 1
        # a single transient fault is absorbed by the retry layer: the
        # outcome matches the fault-free run of the same strategy (the
        # suspicious strategies fail even fault-free — that is the
        # negotiation's verdict, not a resilience failure).
        baseline, _, _ = negotiate_under_faults(
            FaultPlan(), strategy=strategy
        )
        assert outcome_key(outcome) == outcome_key(baseline)

    @pytest.mark.parametrize("strategy", STRATEGIES,
                             ids=[s.value for s in STRATEGIES])
    @pytest.mark.parametrize("seed", (1, 2, 3))
    def test_seeded_storm_terminates_typed(self, seed, strategy):
        plan = FaultPlan.seeded(seed, kinds=MATRIX_KINDS, faults=3,
                                horizon_calls=8)
        outcome, injector, resilient = negotiate_under_faults(
            plan, strategy=strategy
        )
        assert isinstance(outcome, (NegotiationResult, ReproError))

    @pytest.mark.parametrize("seed", (5, 11))
    def test_storm_is_deterministic(self, seed):
        runs = [
            negotiate_under_faults(
                FaultPlan.seeded(seed, kinds=MATRIX_KINDS, faults=3,
                                 horizon_calls=8)
            )
            for _ in range(2)
        ]
        (first, _, first_rt), (second, _, second_rt) = runs
        assert outcome_key(first) == outcome_key(second)
        assert first_rt.clock.elapsed_ms == second_rt.clock.elapsed_ms
        assert first_rt.stats.retries == second_rt.stats.retries

    def test_unrecoverable_barrage_raises_typed_error(self):
        plan = FaultPlan(timeout_wait_ms=100).always(FaultKind.DROP)
        outcome, injector, resilient = negotiate_under_faults(
            plan,
            retry=RetryPolicy(max_attempts=3, base_backoff_ms=10,
                              jitter_ms=0),
        )
        assert isinstance(outcome, ReproError)

    def test_crash_without_restart_hook_raises_typed_error(self):
        plan = FaultPlan(timeout_wait_ms=100).at(1, FaultKind.CRASH)
        outcome, injector, resilient = negotiate_under_faults(
            plan, with_restart=False,
            retry=RetryPolicy(max_attempts=3, base_backoff_ms=10,
                              jitter_ms=0),
        )
        assert isinstance(outcome, ReproError)

    def test_crash_recovery_matches_fault_free(self):
        baseline, _, _ = negotiate_under_faults(FaultPlan())
        crashed, injector, _ = negotiate_under_faults(
            FaultPlan().at(3, FaultKind.CRASH,
                           operation="CredentialExchange")
        )
        assert injector.crash_count("urn:vo:tn") == 1
        assert injector.restart_count("urn:vo:tn") == 1
        assert outcome_key(crashed) == outcome_key(baseline)
