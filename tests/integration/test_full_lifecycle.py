"""End-to-end: the complete VO lifecycle with interleaved TNs
(paper Figs. 1, 3, 4) driven through the toolkit."""

import pytest

from repro.scenario import build_aircraft_scenario
from repro.scenario.aircraft import (
    ROLE_DESIGN_PORTAL,
    ROLE_HPC,
    ROLE_OPTIMIZATION,
    ROLE_STORAGE,
)
from repro.vo.lifecycle import VOPhase
from repro.vo.monitoring import ViolationKind


@pytest.fixture()
def world():
    scenario = build_aircraft_scenario()
    edition = scenario.initiator_edition
    vo = edition.create_vo(scenario.contract)
    edition.enable_trust_negotiation()
    return scenario, edition, vo


ALL_ROLES = {
    "AerospaceCo": ROLE_DESIGN_PORTAL,
    "OptimCo": ROLE_OPTIMIZATION,
    "HPCServiceCo": ROLE_HPC,
    "StorageCo": ROLE_STORAGE,
}


def join_everyone(scenario, edition, with_negotiation=True):
    outcomes = {}
    for member_name, role in ALL_ROLES.items():
        outcomes[member_name] = edition.execute_join(
            scenario.app(member_name), role,
            with_negotiation=with_negotiation,
        )
    return outcomes


class TestFullLifecycle:
    def test_formation_through_dissolution(self, world):
        scenario, edition, vo = world
        outcomes = join_everyone(scenario, edition)
        assert all(outcome.joined for outcome in outcomes.values())

        vo.begin_operation()
        assert vo.lifecycle.phase is VOPhase.OPERATION

        # Fig. 1 operation workflow: the optimization partner accesses
        # the design-control file after re-verifying the portal's
        # certification; results flow HPC -> storage.
        auth = vo.authorize_operation(
            ROLE_OPTIMIZATION, ROLE_DESIGN_PORTAL, "ISO 002 Certification",
            at=scenario.clock.now(),
        )
        assert auth.success

        vo.dissolve()
        assert vo.lifecycle.is_dissolved
        for member_name in ALL_ROLES:
            assert not scenario.member(member_name).is_member_of(
                vo.contract.vo_name
            )

    def test_operation_phase_reverification_months_later(self, world):
        """'credentials used for the VO formation may expire or be
        revoked before the VO dissolution' — re-verification succeeds
        while the certificate is valid and fails after expiry."""
        scenario, edition, vo = world
        join_everyone(scenario, edition)
        vo.begin_operation()
        scenario.clock.advance_days(120)  # a few months pass
        ok = vo.authorize_operation(
            ROLE_OPTIMIZATION, ROLE_DESIGN_PORTAL, "ISO 002 Certification",
            at=scenario.clock.now(),
        )
        assert ok.success
        scenario.clock.advance_days(3000)  # far past expiry
        stale = vo.authorize_operation(
            ROLE_OPTIMIZATION, ROLE_DESIGN_PORTAL, "ISO 002 Certification",
            at=scenario.clock.now(),
        )
        assert not stale.success

    def test_violation_then_replacement(self, world):
        """The paper's third operation example: the HPC provider's
        reputation decreases due to a contract violation, and a new
        provider is enrolled using a TN."""
        from repro.vo.registry import ServiceDescription

        scenario, edition, vo = world
        join_everyone(scenario, edition)
        vo.begin_operation()

        vo.report_violation(
            "HPCServiceCo", ViolationKind.CONTRACT_BREACH,
            "failed to deliver flow solutions on time",
        )
        assert vo.reputation.score("HPCServiceCo") < 0.5

        # A spare provider registers and takes over.
        grid = scenario.authority("GridCA")
        spare = scenario.member("StorageCo")
        spare.agent.profile.add(grid.issue(
            "HPC QoS Certificate", "StorageCo",
            spare.agent.keypair.fingerprint,
            {"qosLevel": "gold", "gflops": 150},
            scenario.contract.created_at,
        ))
        scenario.host.registry.publish(ServiceDescription.of(
            "StorageCo", "BackupHPC", [ROLE_HPC], quality=0.7
        ))
        report = vo.replace_member(
            ROLE_HPC, scenario.host.registry, scenario.host.directory(),
            at=scenario.clock.now(),
        )
        assert report.admitted == "StorageCo"
        assert vo.member_for(ROLE_HPC).name == "StorageCo"

    def test_membership_tokens_authenticate_members(self, world):
        scenario, edition, vo = world
        join_everyone(scenario, edition)
        for member_name in ALL_ROLES:
            token = scenario.member(member_name).token_for(
                vo.contract.vo_name
            )
            assert vo.verify_member(token, scenario.clock.now())
            # Token embeds the VO public key used for intra-VO auth.
            assert token.vo_public_key == (
                scenario.initiator.vo_keypair.public
            )

    def test_mixed_joins(self, world):
        """Some members join with TN, others (pre-trusted) without."""
        scenario, edition, vo = world
        with_tn = edition.execute_join(
            scenario.app("AerospaceCo"), ROLE_DESIGN_PORTAL,
            with_negotiation=True,
        )
        without_tn = edition.execute_join(
            scenario.app("StorageCo"), ROLE_STORAGE, with_negotiation=False
        )
        assert with_tn.joined and without_tn.joined
        assert with_tn.elapsed_ms > without_tn.elapsed_ms
