"""The Fig. 9 result shape (paper Section 6.3.1).

The paper reports, on its Pentium-4 testbed: join without TN ≈ 3 s,
join with TN ≈ 4 s — "the join process execution time only increases
of 27[%]" — and the standalone TN cheaper than either.  These tests
pin the reproduced *shape* (who is slower, by roughly what factor);
the benchmark harness prints the actual series.
"""

import pytest

from repro.scenario import build_aircraft_scenario
from repro.scenario.aircraft import ROLE_DESIGN_PORTAL
from repro.services.tn_client import TNClient


def measure_join(with_negotiation: bool) -> float:
    scenario = build_aircraft_scenario()
    edition = scenario.initiator_edition
    edition.create_vo(scenario.contract)
    edition.enable_trust_negotiation()
    outcome = edition.execute_join(
        scenario.app("AerospaceCo"), ROLE_DESIGN_PORTAL,
        with_negotiation=with_negotiation,
    )
    assert outcome.joined
    return outcome.elapsed_ms


def measure_standalone_tn() -> float:
    scenario = build_aircraft_scenario()
    edition = scenario.initiator_edition
    edition.create_vo(scenario.contract)
    service = edition.enable_trust_negotiation()
    role = scenario.contract.role(ROLE_DESIGN_PORTAL)
    client = TNClient(
        scenario.transport, service.url,
        scenario.member("AerospaceCo").agent,
    )
    with scenario.transport.clock.measure() as stopwatch:
        result = client.negotiate(
            role.membership_resource(scenario.contract.vo_name)
        )
    assert result.success
    return stopwatch.elapsed_ms


@pytest.fixture(scope="module")
def timings():
    return {
        "join": measure_join(with_negotiation=False),
        "join_with_tn": measure_join(with_negotiation=True),
        "tn": measure_standalone_tn(),
    }


class TestFig9Shape:
    def test_join_is_about_three_seconds(self, timings):
        """Paper: 'around 3 s'."""
        assert 2400 <= timings["join"] <= 3600

    def test_join_with_tn_is_about_four_seconds(self, timings):
        """Paper: 'around 4 s'."""
        assert 3400 <= timings["join_with_tn"] <= 4600

    def test_overhead_ratio_in_paper_band(self, timings):
        """Paper: TN adds ~27-33%; DESIGN.md allows [1.15, 1.45]."""
        ratio = timings["join_with_tn"] / timings["join"]
        assert 1.15 <= ratio <= 1.45

    def test_standalone_tn_cheapest(self, timings):
        assert timings["tn"] < timings["join"]
        assert timings["tn"] < timings["join_with_tn"]

    def test_tn_overhead_equals_tn_cost(self, timings):
        """The join+TN flow is exactly the plain join plus the TN."""
        overhead = timings["join_with_tn"] - timings["join"]
        assert overhead == pytest.approx(timings["tn"], rel=0.05)

    def test_deterministic_timings(self):
        """The simulated latency model is exactly reproducible."""
        assert measure_join(False) == measure_join(False)
