"""Failure injection: adversarial and degraded conditions end to end.

Each test corrupts one link of the trust chain — forged signatures,
stolen credentials, stale revocation data, tampered wire formats —
and checks the system fails *closed* with the right diagnosis.
"""

import dataclasses

import pytest

from repro.credentials.credential import Credential
from repro.credentials.selective import SelectiveCredential
from repro.credentials.validation import OwnershipProof
from repro.crypto.keys import KeyPair
from repro.errors import SelectiveDisclosureError
from repro.negotiation.engine import negotiate
from repro.negotiation.messages import Disclosure
from repro.negotiation.outcomes import FailureReason
from repro.scenario import build_aircraft_scenario
from repro.scenario.aircraft import ROLE_DESIGN_PORTAL
from tests.conftest import ISSUE_AT, NEGOTIATION_AT


@pytest.fixture()
def scenario():
    sc = build_aircraft_scenario()
    sc.initiator.define_vo_policies(sc.contract)
    return sc


def membership_resource(scenario):
    role = scenario.contract.role(ROLE_DESIGN_PORTAL)
    return role.membership_resource(scenario.contract.vo_name)


class TestForgedCredentials:
    def test_self_signed_forgery_rejected(self, scenario):
        """A member forges a quality certificate signed with its own
        key instead of INFN's."""
        aero = scenario.member("AerospaceCo").agent
        genuine = aero.profile.by_type("ISO 9000 Certified")[0]
        aero.profile.remove(genuine.cred_id)
        forged_body = Credential.build(
            cred_type="ISO 9000 Certified",
            cred_id=genuine.cred_id,
            issuer="INFN",  # claims INFN...
            subject="AerospaceCo",
            subject_key=aero.keypair.fingerprint,
            validity=genuine.validity,
            attributes={"QualityRegulation": "UNI EN ISO 9000"},
        )
        forged = forged_body.with_signature(
            aero.keypair.private.sign_b64(forged_body.signing_bytes())
        )
        aero.profile.add(forged)
        result = negotiate(
            aero, scenario.initiator.agent, membership_resource(scenario),
            at=NEGOTIATION_AT,
        )
        assert not result.success
        assert result.failure_reason is FailureReason.CREDENTIAL_REJECTED
        assert "signature" in result.failure_detail

    def test_attribute_tampering_breaks_signature(self, scenario, infn):
        aero = scenario.member("AerospaceCo").agent
        genuine = aero.profile.by_type("ISO 9000 Certified")[0]
        tampered = Credential.from_xml(
            genuine.to_xml().replace("UNI EN ISO 9000", "FAKE REGULATION")
        )
        report = scenario.initiator.agent.validator.validate(
            tampered, NEGOTIATION_AT
        )
        assert not report.signature_ok


class TestStolenCredentials:
    def test_stolen_credential_fails_ownership(self, scenario):
        """A thief presents AerospaceCo's genuine certificate but
        cannot answer the ownership challenge."""
        aero = scenario.member("AerospaceCo").agent
        thief_keys = KeyPair.generate(512)
        genuine = aero.profile.by_type("ISO 9000 Certified")[0]
        verifier = scenario.initiator.agent
        nonce = verifier.validator.issue_challenge()
        stolen = Disclosure(
            sender="Thief",
            node_id=1,
            credential=genuine,
            proof=OwnershipProof.respond(nonce, thief_keys.private),
        )
        accepted, reason, _ = verifier.verify_disclosure(
            stolen, None, NEGOTIATION_AT, nonce
        )
        assert not accepted
        assert "ownership" in reason

    def test_replayed_ownership_proof_rejected(self, scenario):
        aero = scenario.member("AerospaceCo").agent
        genuine = aero.profile.by_type("ISO 9000 Certified")[0]
        verifier = scenario.initiator.agent
        old_nonce = verifier.validator.issue_challenge()
        replayed_proof = OwnershipProof.respond(old_nonce, aero.keypair.private)
        fresh_nonce = verifier.validator.issue_challenge()
        disclosure = Disclosure(
            sender=aero.name, node_id=1, credential=genuine,
            proof=replayed_proof,
        )
        accepted, reason, _ = verifier.verify_disclosure(
            disclosure, None, NEGOTIATION_AT, fresh_nonce
        )
        assert not accepted


class TestSelectiveDisclosureAttacks:
    def test_mixed_and_matched_openings_rejected(self, scenario):
        """Openings from one credential cannot be grafted onto another
        credential's signed commitments."""
        infn = scenario.authority("INFN")
        aero = scenario.member("AerospaceCo").agent
        iso = aero.profile.by_type("ISO 9000 Certified")[0]
        other = aero.profile.by_type("ISO 002 Certification")[0]
        sel_iso = SelectiveCredential.issue_from(iso, infn.keypair.private)
        sel_other = SelectiveCredential.issue_from(other, infn.keypair.private)
        frankenstein = dataclasses.replace(
            sel_iso.present(["QualityRegulation"]),
            credential=sel_other,
        )
        with pytest.raises(SelectiveDisclosureError):
            frankenstein.verify(infn.public_key)


class TestStaleInfrastructure:
    def test_unknown_authority_fails_closed(self, scenario):
        """A credential from an authority outside every keyring is
        rejected even if internally consistent."""
        from repro.credentials.authority import CredentialAuthority

        rogue = CredentialAuthority.create("RogueCA", key_bits=512)
        aero = scenario.member("AerospaceCo").agent
        rogue_cred = rogue.issue(
            "ISO 9000 Certified", "AerospaceCo", aero.keypair.fingerprint,
            {"QualityRegulation": "UNI EN ISO 9000"}, ISSUE_AT,
        )
        report = scenario.initiator.agent.validator.validate(
            rogue_cred, NEGOTIATION_AT
        )
        assert not report.signature_ok

    def test_expired_vo_membership_token_rejected(self, scenario):
        from repro.vo.organization import VirtualOrganization

        vo = VirtualOrganization(
            contract=scenario.contract, initiator=scenario.initiator
        )
        vo.identify()
        vo.enter_formation()
        member = scenario.member("AerospaceCo")
        token = vo.admit_member(
            ROLE_DESIGN_PORTAL, member, scenario.contract.created_at
        )
        assert vo.verify_member(token, scenario.contract.created_at)
        from datetime import timedelta

        long_after = scenario.contract.created_at + timedelta(days=3650)
        assert not vo.verify_member(token, long_after)

    def test_tampered_membership_token_rejected(self, scenario):
        from repro.credentials.x509 import VOMembershipToken
        from repro.vo.organization import VirtualOrganization

        vo = VirtualOrganization(
            contract=scenario.contract, initiator=scenario.initiator
        )
        vo.identify()
        vo.enter_formation()
        member = scenario.member("AerospaceCo")
        token = vo.admit_member(
            ROLE_DESIGN_PORTAL, member, scenario.contract.created_at
        )
        tampered = VOMembershipToken.from_xml(
            token.to_xml().replace("AerospaceCo", "Impostor Corp")
        )
        assert not vo.verify_member(tampered, scenario.contract.created_at)


class TestWireTampering:
    def test_tampered_policy_xml_still_parses_but_differs(self, scenario):
        """Policy messages are not signed (as in the paper); tampering
        is possible but only *tightens or loosens requirements* — the
        credential exchange still verifies cryptographically."""
        from repro.policy.xmlcodec import policy_from_xml, policy_to_xml
        from repro.policy.parser import parse_policy

        policy = parse_policy("R <- P(score>=10)")
        xml = policy_to_xml(policy).replace(">= 10", ">= 0")
        loosened = policy_from_xml(xml)
        assert loosened.terms[0].conditions != policy.terms[0].conditions

    def test_malformed_credential_xml_rejected(self):
        from repro.errors import CredentialFormatError, XMLError

        with pytest.raises((CredentialFormatError, XMLError)):
            Credential.from_xml("<credential><header>broken")
