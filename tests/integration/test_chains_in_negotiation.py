"""Credential chains inside a live negotiation.

"Each party discloses its credentials ... eventually retrieving those
credentials that are not immediately available through credentials
chains" (paper §4.2).  Here the requester's quality certificate is
issued by a regional authority the controller does not directly trust;
the controller's validator resolves the chain up to the root CA it
does trust.
"""

import pytest

from repro.credentials.authority import CredentialAuthority
from repro.credentials.chain import CERTIFIED_KEY_ATTRIBUTE, ChainResolver
from repro.credentials.profile import XProfile
from repro.credentials.revocation import RevocationRegistry
from repro.trust import TrustBus
from repro.credentials.validation import CredentialValidator
from repro.crypto.keys import KeyPair, Keyring
from repro.negotiation.agent import TrustXAgent
from repro.negotiation.engine import negotiate
from repro.negotiation.outcomes import FailureReason
from repro.policy.policybase import PolicyBase
from tests.conftest import ISSUE_AT, NEGOTIATION_AT


@pytest.fixture()
def world():
    root = CredentialAuthority.create("RootCA", key_bits=512)
    regional = CredentialAuthority.create("RegionalCA", key_bits=512)
    # The root accredits the regional authority; the link credential
    # carries the regional verification key.
    link = root.issue(
        "CA Accreditation", "RegionalCA", regional.keypair.fingerprint,
        {CERTIFIED_KEY_ATTRIBUTE: regional.public_key.to_json()},
        ISSUE_AT,
    )
    registry = RevocationRegistry()
    bus = TrustBus(registry=registry)
    bus.publish_crl(root.crl)
    bus.publish_crl(regional.crl)

    requester_keys = KeyPair.generate(512)
    quality = regional.issue(
        "Quality Cert", "Req", requester_keys.fingerprint,
        {"level": "gold"}, ISSUE_AT,
    )
    requester_ring = Keyring()
    requester_ring.add("RootCA", root.public_key)
    requester = TrustXAgent(
        name="Req",
        profile=XProfile.of("Req", [quality]),
        policies=PolicyBase.from_dsl("Req", "Quality Cert <- DELIV"),
        keypair=requester_keys,
        validator=CredentialValidator(requester_ring, registry),
    )

    controller_keys = KeyPair.generate(512)
    controller_ring = Keyring()
    controller_ring.add("RootCA", root.public_key)  # no RegionalCA!
    controller = TrustXAgent(
        name="Ctrl",
        profile=XProfile.of("Ctrl", []),
        policies=PolicyBase.from_dsl("Ctrl", "RES <- Quality Cert"),
        keypair=controller_keys,
        validator=CredentialValidator(
            controller_ring, registry,
            chain_resolver=ChainResolver(
                controller_ring, {"RegionalCA": link}.get
            ),
        ),
    )
    return root, regional, link, requester, controller


class TestChainsInNegotiation:
    def test_indirectly_trusted_issuer_accepted(self, world):
        _, _, _, requester, controller = world
        result = negotiate(requester, controller, "RES", at=NEGOTIATION_AT)
        assert result.success, result.failure_detail
        assert result.disclosures == 1

    def test_without_resolver_the_same_negotiation_fails(self, world):
        root, regional, _, requester, controller = world
        controller.validator.chain_resolver = None
        result = negotiate(requester, controller, "RES", at=NEGOTIATION_AT)
        assert not result.success
        assert result.failure_reason is FailureReason.CREDENTIAL_REJECTED
        assert "signature" in result.failure_detail

    def test_revoked_chain_link_fails_the_negotiation(self, world):
        root, regional, link, requester, controller = world
        TrustBus(registry=controller.validator.revocations).revoke(root, link)
        result = negotiate(requester, controller, "RES", at=NEGOTIATION_AT)
        assert not result.success
        assert result.failure_reason is FailureReason.CREDENTIAL_REJECTED
