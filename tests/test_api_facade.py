"""``repro.api`` — the blessed facade — and the deprecation shims."""

import warnings

import pytest

import repro.api as api
from repro.api import (
    Negotiator,
    ObsConfig,
    PerfConfig,
    ResilienceConfig,
    VOToolkit,
)
from repro.services.resilience import ResilientTransport
from repro.services.transport import LatencyModel, SimTransport

# Every repro.* symbol the examples/ scripts and the CLI import must be
# importable from the facade — the "one blessed surface" criterion.
EXAMPLE_AND_CLI_SYMBOLS = [
    # examples/
    "negotiate", "build_aircraft_scenario", "render_ascii", "render_dot",
    "build_fig1_workflow", "TrustSequence", "Strategy",
    "VirtualOrganization", "ROLE_DESIGN_PORTAL", "CachingNegotiator",
    "eager_negotiate", "CredentialAuthority", "Sensitivity", "XProfile",
    "run_fault_demo", "parse_policies", "parse_policy",
    "policies_to_xacml", "ConceptMapper", "ontology_to_owl",
    "aerospace_reference_ontology", "match_ontologies",
    "overlapping_ontologies", "ViolationKind", "ServiceDescription",
    # CLI
    "TNWebService", "FaultInjector", "FaultPlan", "SimClock",
    "LatencyModel", "SimTransport", "formation_workload",
    # the observability entry point rides along as a namespace
    "obs",
]


class TestSurface:
    @pytest.mark.parametrize("name", EXAMPLE_AND_CLI_SYMBOLS)
    def test_symbol_available(self, name):
        assert hasattr(api, name), f"repro.api.{name} missing"

    def test_all_is_complete_and_resolves(self):
        for name in api.__all__:
            assert hasattr(api, name)
        for name in EXAMPLE_AND_CLI_SYMBOLS:
            assert name in api.__all__

    def test_facade_classes_exported(self):
        for name in ("Negotiator", "VOToolkit", "ObsConfig",
                     "PerfConfig", "ResilienceConfig"):
            assert name in api.__all__


class TestConfigTrio:
    def test_kw_only_construction(self):
        with pytest.raises(TypeError):
            ResilienceConfig(3)
        with pytest.raises(TypeError):
            PerfConfig(False)
        with pytest.raises(TypeError):
            ObsConfig(True)

    def test_scenario_config_kw_only(self):
        from repro.api import ScenarioConfig

        with pytest.raises(TypeError):
            ScenarioConfig(42)
        config = ScenarioConfig(seed=42, rounds=5, agents=6, seats=2)
        assert config.seed == 42

    def test_workload_configs_kw_only(self):
        from repro.api import (
            IsolationConfig,
            MarketConfig,
            MatrixConfig,
            ScarcityConfig,
            SoakConfig,
        )

        for config_type in (MarketConfig, MatrixConfig, ScarcityConfig,
                            IsolationConfig, SoakConfig):
            with pytest.raises(TypeError):
                config_type(42)

    def test_resilience_config_maps_to_policies(self):
        config = ResilienceConfig(
            max_attempts=7, failure_threshold=2, deadline_ms=None,
        )
        assert config.retry_policy().max_attempts == 7
        assert config.breaker_policy().failure_threshold == 2
        wrapped = config.wrap(SimTransport(model=LatencyModel()))
        assert isinstance(wrapped, ResilientTransport)
        assert wrapped.deadline_ms is None

    def test_perf_config_builds_sized_cache(self):
        config = PerfConfig(sequence_cache_capacity=3)
        cache = config.sequence_cache()
        assert cache.capacity == 3

    def test_perf_config_apply_toggles_caches(self):
        from repro.perf import caches_disabled

        PerfConfig(caches_enabled=True).apply()
        with caches_disabled():
            pass  # context manager restores the enabled state
        PerfConfig().apply()


class TestVOToolkit:
    def test_kw_only(self):
        with pytest.raises(TypeError):
            VOToolkit(LatencyModel())

    def test_bare_stack(self):
        toolkit = VOToolkit()
        assert toolkit.transport is toolkit.base_transport
        assert toolkit.fault_injector is None
        assert toolkit.resilient_transport is None
        assert toolkit.clock is toolkit.base_transport.base_clock

    def test_full_stack_order(self):
        from repro.api import FaultPlan

        toolkit = VOToolkit(
            fault_plan=FaultPlan(specs=[]),
            resilience=ResilienceConfig(max_attempts=2),
        )
        # top: resilient -> fault injector -> base transport
        assert toolkit.transport is toolkit.resilient_transport
        assert toolkit.resilient_transport.inner is toolkit.fault_injector
        assert toolkit.fault_injector.inner is toolkit.base_transport

    def test_latency_and_transport_conflict(self):
        with pytest.raises(ValueError):
            VOToolkit(
                latency=LatencyModel(),
                transport=SimTransport(model=LatencyModel()),
            )


class TestNegotiator:
    def test_kw_only(self):
        with pytest.raises(TypeError):
            Negotiator(None)

    def test_negotiates_and_caches(self, agent_factory, infn,
                                    shared_keypair, other_keypair):
        from datetime import datetime

        from repro.api import SequenceCache

        requester = agent_factory(
            "Req",
            [infn.issue("Qual", "Req", shared_keypair.fingerprint,
                        {}, datetime(2009, 10, 26))],
            "Qual <- DELIV",
            shared_keypair,
        )
        controller = agent_factory(
            "Ctl", [], "RES <- Qual", other_keypair,
        )
        at = datetime(2010, 3, 1)
        plain = Negotiator().negotiate(requester, controller, "RES", at=at)
        assert plain.success

        cache = SequenceCache()
        cached = Negotiator(cache=cache)
        assert cached.negotiate(requester, controller, "RES", at=at).success
        assert cached.negotiate(requester, controller, "RES", at=at).success
        assert cache.hits >= 1


class TestDeprecationShims:
    def test_services_package_import_warns_but_works(self):
        import repro.services as services

        with pytest.warns(DeprecationWarning, match="repro.api"):
            cls = services.TNWebService
        from repro.services.tn_service import TNWebService

        assert cls is TNWebService

    def test_faults_package_import_warns_but_works(self):
        import repro.faults as faults

        with pytest.warns(DeprecationWarning):
            cls = faults.FaultInjector
        from repro.faults.injector import FaultInjector

        assert cls is FaultInjector

    def test_canonical_paths_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.faults.plan import FaultPlan  # noqa: F401
            from repro.services.clock import SimClock  # noqa: F401
            from repro.services.tn_service import TNWebService  # noqa: F401

    def test_unknown_attribute_still_raises(self):
        import repro.services as services

        with pytest.raises(AttributeError):
            services.NoSuchThing

    def test_tn_service_operation_aliases_warn(self):
        from repro.scenario.workloads import formation_workload

        fixture = formation_workload(1)
        edition = fixture.initiator_edition
        edition.create_vo(fixture.contract)
        service = edition.enable_trust_negotiation()
        member = fixture.member_apps["Role-00"].member
        with pytest.warns(DeprecationWarning, match="start_negotiation"):
            response = service._start_negotiation({
                "requester": member.agent,
                "resource": "Role-00",
                "requestId": "req-legacy-1",
            })
        assert response["negotiationId"]
