"""The XML document store (Oracle stand-in)."""

import pytest

from repro.errors import DocumentNotFoundError
from repro.storage.document_store import XMLDocumentStore


@pytest.fixture()
def store():
    store = XMLDocumentStore("test")
    store.put("credentials", "c1",
              "<credential><header><credType>ISO</credType></header>"
              "<content><score type='integer'>10</score></content>"
              "</credential>")
    store.put("credentials", "c2",
              "<credential><header><credType>AAA</credType></header>"
              "<content><score type='integer'>99</score></content>"
              "</credential>")
    return store


class TestCrud:
    def test_put_get(self, store):
        element = store.get("credentials", "c1")
        assert element.tag == "credential"

    def test_get_xml_is_canonical(self, store):
        xml = store.get_xml("credentials", "c1")
        assert xml.startswith("<credential>")

    def test_missing_document_raises(self, store):
        with pytest.raises(DocumentNotFoundError):
            store.get("credentials", "ghost")
        with pytest.raises(DocumentNotFoundError):
            store.get("nothere", "c1")

    def test_overwrite(self, store):
        store.put("credentials", "c1", "<credential><v>2</v></credential>")
        assert store.get("credentials", "c1").find("v").text == "2"
        assert store.count("credentials") == 2

    def test_delete(self, store):
        store.delete("credentials", "c1")
        assert store.count("credentials") == 1
        with pytest.raises(DocumentNotFoundError):
            store.delete("credentials", "c1")

    def test_ids_sorted(self, store):
        assert store.ids("credentials") == ["c1", "c2"]

    def test_collections(self, store):
        store.put("policies", "p1", "<policy/>")
        assert store.collections() == ["credentials", "policies"]


class TestQueries:
    def test_xpath_query(self, store):
        assert store.query("credentials", "//credType = 'ISO'") == ["c1"]

    def test_query_numeric(self, store):
        assert store.query("credentials", "//score > 50") == ["c2"]

    def test_query_no_match(self, store):
        assert store.query("credentials", "//credType = 'Nope'") == []

    def test_query_counts_scans(self, store):
        store.stats.reset()
        store.query("credentials", "//credType = 'ISO'")
        assert store.stats.queries == 1
        assert store.stats.scans == 2  # both documents scanned


class TestIndexes:
    def test_indexed_lookup(self, store):
        store.create_index("credentials", "//credType")
        store.stats.reset()
        assert store.query_eq("credentials", "//credType", "AAA") == ["c2"]
        assert store.stats.index_hits == 1
        assert store.stats.scans == 0

    def test_unindexed_eq_falls_back_to_scan(self, store):
        store.stats.reset()
        assert store.query_eq("credentials", "//credType", "AAA") == ["c2"]
        assert store.stats.index_hits == 0
        assert store.stats.scans == 2

    def test_index_maintained_on_put(self, store):
        store.create_index("credentials", "//credType")
        store.put("credentials", "c3",
                  "<credential><header><credType>AAA</credType></header>"
                  "</credential>")
        assert store.query_eq("credentials", "//credType", "AAA") == [
            "c2", "c3"
        ]

    def test_index_maintained_on_delete(self, store):
        store.create_index("credentials", "//credType")
        store.delete("credentials", "c2")
        assert store.query_eq("credentials", "//credType", "AAA") == []

    def test_index_maintained_on_overwrite(self, store):
        store.create_index("credentials", "//credType")
        store.put("credentials", "c1",
                  "<credential><header><credType>ZZZ</credType></header>"
                  "</credential>")
        assert store.query_eq("credentials", "//credType", "ISO") == []
        assert store.query_eq("credentials", "//credType", "ZZZ") == ["c1"]


class TestStats:
    def test_write_read_counters(self, store):
        store.stats.reset()
        store.put("x", "1", "<a/>")
        store.get("x", "1")
        store.delete("x", "1")
        assert store.stats.writes == 1
        assert store.stats.reads == 1
        assert store.stats.deletes == 1
