"""The key-value store (MySQL stand-in)."""

import pytest

from repro.errors import DocumentNotFoundError
from repro.storage.kvstore import KeyValueStore


@pytest.fixture()
def store():
    kv = KeyValueStore("test")
    kv.put("policies", "p1", "R <- A")
    kv.put("policies", "p2", "R <- B")
    kv.put("credentials", "c1", "<credential/>")
    return kv


class TestCrud:
    def test_get(self, store):
        assert store.get("policies", "p1") == "R <- A"

    def test_missing_raises(self, store):
        with pytest.raises(DocumentNotFoundError):
            store.get("policies", "ghost")

    def test_get_or_none(self, store):
        assert store.get_or_none("policies", "ghost") is None
        assert store.get_or_none("policies", "p1") == "R <- A"

    def test_delete(self, store):
        store.delete("policies", "p1")
        with pytest.raises(DocumentNotFoundError):
            store.get("policies", "p1")

    def test_delete_missing_raises(self, store):
        with pytest.raises(DocumentNotFoundError):
            store.delete("policies", "ghost")

    def test_keys_and_count(self, store):
        assert store.keys("policies") == ["p1", "p2"]
        assert store.count("policies") == 2
        assert store.count("empty") == 0

    def test_tables(self, store):
        assert store.tables() == ["credentials", "policies"]


class TestScans:
    def test_full_scan(self, store):
        rows = list(store.scan("policies"))
        assert rows == [("p1", "R <- A"), ("p2", "R <- B")]

    def test_predicate_scan(self, store):
        rows = list(store.scan("policies", lambda k, v: "B" in v))
        assert rows == [("p2", "R <- B")]

    def test_find(self, store):
        assert store.find("policies", lambda k, v: v.startswith("R")) == [
            "p1", "p2"
        ]

    def test_scan_always_touches_all_rows(self, store):
        """Unlike the document store, filtering cannot be indexed —
        the MySQL-migration trade-off of Section 6.3."""
        store.stats.reset()
        store.find("policies", lambda k, v: False)
        assert store.stats.scans == 2


class TestStats:
    def test_counters(self, store):
        store.stats.reset()
        store.put("t", "k", "v")
        store.get("t", "k")
        store.delete("t", "k")
        assert (store.stats.writes, store.stats.reads, store.stats.deletes) == (
            1, 1, 1
        )
