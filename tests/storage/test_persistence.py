"""Durable agent state (profile + policy base)."""

import pytest

from repro.errors import DocumentNotFoundError, PolicyParseError
from repro.policy.policybase import PolicyBase
from repro.storage.persistence import AgentStateStore
from tests.conftest import ISSUE_AT, NEGOTIATION_AT


class TestPolicyBaseXml:
    def test_roundtrip_preserves_everything(self):
        base = PolicyBase.from_dsl("Owner", """
ISO 9000 Certified <- AAA Member
ISO 9000 Certified <- BalanceSheet(fiscalYear>=2009)
Pool <- A, B | group(distinct_issuers>=2)
Mailbox <- DELIV
""")
        base.add_dsl("VoMembership <- Quality", transient=True)
        restored = PolicyBase.from_xml(base.to_xml())
        assert restored.owner == "Owner"
        assert len(restored) == len(base)
        assert restored.resources() == base.resources()
        assert len(restored.policies_for("ISO 9000 Certified")) == 2
        assert restored.is_freely_deliverable("Mailbox")
        pool = restored.policies_for("Pool")[0]
        assert len(pool.group_conditions) == 1

    def test_transient_flag_survives(self):
        base = PolicyBase.from_dsl("O", "")
        base.add_dsl("R <- A", transient=True)
        base.add_dsl("S <- B")
        restored = PolicyBase.from_xml(base.to_xml())
        assert restored.clear_transient() == 1
        assert restored.protects("S")

    def test_wrong_root_rejected(self):
        with pytest.raises(PolicyParseError):
            PolicyBase.from_xml("<notabase/>")

    def test_missing_owner_rejected(self):
        with pytest.raises(PolicyParseError):
            PolicyBase.from_xml("<policyBase/>")


class TestAgentStateStore:
    @pytest.fixture()
    def agent(self, agent_factory, infn, shared_keypair):
        return agent_factory(
            "AerospaceCo",
            [infn.issue("ISO 9000 Certified", "AerospaceCo",
                        shared_keypair.fingerprint,
                        {"QualityRegulation": "UNI EN ISO 9000"}, ISSUE_AT)],
            "ISO 9000 Certified <- AAA Member",
            shared_keypair,
        )

    def test_save_and_restore(self, agent):
        store = AgentStateStore()
        store.save_agent(agent)
        # Wipe the live state, then restore.
        original_cred = next(iter(agent.profile))
        agent.profile.remove(original_cred.cred_id)
        agent.policies.remove(
            agent.policies.policies_for("ISO 9000 Certified")[0]
        )
        store.restore_agent(agent)
        assert len(agent.profile) == 1
        restored_cred = agent.profile.by_type("ISO 9000 Certified")[0]
        assert restored_cred.signature_b64 == original_cred.signature_b64
        assert agent.policies.protects("ISO 9000 Certified")

    def test_restored_credentials_still_verify(self, agent, infn):
        from repro.crypto.keys import verify_b64

        store = AgentStateStore()
        store.save_agent(agent)
        restored = store.load_profile("AerospaceCo")
        credential = restored.by_type("ISO 9000 Certified")[0]
        assert verify_b64(
            infn.public_key, credential.signing_bytes(),
            credential.signature_b64,
        )

    def test_restored_agent_can_negotiate(self, agent, agent_factory,
                                          aaa_authority, other_keypair):
        from repro.negotiation.engine import negotiate

        store = AgentStateStore()
        store.save_agent(agent)
        store.restore_agent(agent)
        controller = agent_factory(
            "AircraftCo",
            [aaa_authority.issue("AAA Member", "AircraftCo",
                                 other_keypair.fingerprint,
                                 {"association": "AAA"}, ISSUE_AT)],
            "VoMembership <- WebDesignerQuality\nAAA Member <- DELIV",
            other_keypair,
        )
        result = negotiate(agent, controller, "VoMembership",
                           at=NEGOTIATION_AT)
        assert result.success

    def test_inventory(self, agent):
        store = AgentStateStore()
        assert not store.has_state_for("AerospaceCo")
        store.save_agent(agent)
        assert store.has_state_for("AerospaceCo")
        assert store.owners() == ["AerospaceCo"]

    def test_missing_owner_raises(self):
        store = AgentStateStore()
        with pytest.raises(DocumentNotFoundError):
            store.load_profile("nobody")
