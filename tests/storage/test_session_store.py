"""SessionStore backends: journal semantics, WAL recovery, torn writes."""

from xml.etree import ElementTree as ET

import pytest

from repro.errors import StorageError
from repro.storage.session_store import (
    InMemorySessionStore,
    WALSessionStore,
)


def checkpoint(session_id: str, phase: str) -> ET.Element:
    element = ET.Element("negotiationSession")
    element.set("id", session_id)
    element.set("phase", phase)
    return element


@pytest.fixture(params=["memory", "wal"])
def store(request, tmp_path):
    if request.param == "memory":
        yield InMemorySessionStore()
    else:
        wal = WALSessionStore(tmp_path / "sessions.wal")
        yield wal
        wal.close()


class TestJournalSemantics:
    def test_latest_returns_last_checkpoint_per_session(self, store):
        store.append("tn-1", checkpoint("tn-1", "started"))
        store.append("tn-2", checkpoint("tn-2", "started"))
        store.append("tn-1", checkpoint("tn-1", "policy"))
        latest = store.latest()
        assert set(latest) == {"tn-1", "tn-2"}
        assert latest["tn-1"].get("phase") == "policy"
        assert latest["tn-2"].get("phase") == "started"
        assert store.records() == 3

    def test_empty_store(self, store):
        assert store.latest() == {}
        assert store.records() == 0
        assert store.tear_last_record() is False

    def test_tear_discards_final_record(self, store):
        store.append("tn-1", checkpoint("tn-1", "started"))
        store.append("tn-1", checkpoint("tn-1", "policy"))
        assert store.tear_last_record() is True
        assert store.torn_discarded == 1
        assert store.latest()["tn-1"].get("phase") == "started"
        assert store.records() == 1

    def test_append_after_tear_overwrites_torn_tail(self, store):
        store.append("tn-1", checkpoint("tn-1", "started"))
        store.append("tn-1", checkpoint("tn-1", "policy"))
        store.tear_last_record()
        store.append("tn-1", checkpoint("tn-1", "exchange"))
        assert store.latest()["tn-1"].get("phase") == "exchange"
        assert store.records() == 2


class TestWALRecovery:
    def test_reopen_replays_journal(self, tmp_path):
        path = tmp_path / "sessions.wal"
        wal = WALSessionStore(path)
        wal.append("tn-1", checkpoint("tn-1", "started"))
        wal.append("tn-1", checkpoint("tn-1", "policy"))
        wal.append("tn-2", checkpoint("tn-2", "started"))
        wal.close()

        reopened = WALSessionStore(path)
        assert reopened.records() == 3
        assert reopened.last_lsn == 3
        latest = reopened.latest()
        assert latest["tn-1"].get("phase") == "policy"
        assert latest["tn-2"].get("phase") == "started"

    def test_reopen_discards_torn_final_record(self, tmp_path):
        path = tmp_path / "sessions.wal"
        wal = WALSessionStore(path)
        wal.append("tn-1", checkpoint("tn-1", "started"))
        wal.append("tn-1", checkpoint("tn-1", "policy"))
        wal.close()
        # chop the final line in half, as a mid-append power loss would
        data = path.read_bytes()
        cut = data[:-1].rfind(b"\n") + 1
        path.write_bytes(data[: cut + (len(data) - cut) // 2])

        recovered = WALSessionStore(path)
        assert recovered.torn_discarded == 1
        assert recovered.records() == 1
        assert recovered.latest()["tn-1"].get("phase") == "started"
        # recovery physically truncated the torn tail
        assert path.read_bytes().endswith(b"\n")

    def test_append_after_torn_recovery_continues_lsn(self, tmp_path):
        path = tmp_path / "sessions.wal"
        wal = WALSessionStore(path)
        wal.append("tn-1", checkpoint("tn-1", "started"))
        wal.append("tn-1", checkpoint("tn-1", "policy"))
        wal.tear_last_record()
        wal.append("tn-1", checkpoint("tn-1", "expired"))
        wal.close()

        reopened = WALSessionStore(path)
        assert reopened.records() == 2
        assert reopened.last_lsn == 2
        assert reopened.latest()["tn-1"].get("phase") == "expired"

    def test_mid_file_corruption_is_not_a_torn_write(self, tmp_path):
        path = tmp_path / "sessions.wal"
        wal = WALSessionStore(path)
        wal.append("tn-1", checkpoint("tn-1", "started"))
        wal.append("tn-1", checkpoint("tn-1", "policy"))
        wal.append("tn-1", checkpoint("tn-1", "exchange"))
        wal.close()
        lines = path.read_bytes().splitlines(keepends=True)
        assert b"policy" in lines[1]
        lines[1] = lines[1].replace(b"policy", b"hacked", 1)
        path.write_bytes(b"".join(lines))

        with pytest.raises(StorageError, match="corrupt at record 2"):
            WALSessionStore(path)

    def test_lsn_gap_is_corruption(self, tmp_path):
        path = tmp_path / "sessions.wal"
        wal = WALSessionStore(path)
        wal.append("tn-1", checkpoint("tn-1", "started"))
        wal.append("tn-1", checkpoint("tn-1", "policy"))
        wal.append("tn-1", checkpoint("tn-1", "exchange"))
        wal.close()
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(lines[0] + lines[2])

        with pytest.raises(StorageError, match="LSN gap"):
            WALSessionStore(path)

    def test_missing_file_is_an_empty_store(self, tmp_path):
        wal = WALSessionStore(tmp_path / "absent.wal")
        assert wal.records() == 0
        assert wal.latest() == {}
