"""ResilientTransport: retries, backoff, deadlines, circuit breaking."""

import pytest

from repro.errors import (
    CircuitOpenError,
    OverloadError,
    RetryExhaustedError,
    ServiceError,
    TimeoutError,
    TransportError,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan
from repro.services.resilience import (
    CircuitBreaker,
    CircuitBreakerPolicy,
    CircuitState,
    ResilientTransport,
    RetryPolicy,
)
from repro.services.transport import SimTransport


def make_stack(plan=None, **resilient_kwargs):
    transport = SimTransport()
    hits = []

    def handler(operation, payload):
        hits.append(operation)
        return {"ok": True, "hits": len(hits)}

    transport.bind("urn:svc", handler)
    injector = FaultInjector(transport, plan or FaultPlan())
    resilient = ResilientTransport(injector, **resilient_kwargs)
    return resilient, injector, hits


class TestRetries:
    def test_retry_succeeds_after_transient_drop(self):
        resilient, injector, hits = make_stack(
            FaultPlan().at(1, FaultKind.DROP)
        )
        response = resilient.call("urn:svc", "Echo", {})
        assert response["ok"]
        assert resilient.stats.retries == 1
        assert resilient.stats.attempts == 2

    def test_exhaustion_raises_typed_error_with_cause(self):
        resilient, injector, hits = make_stack(
            FaultPlan().always(FaultKind.DROP),
            retry=RetryPolicy(max_attempts=3, base_backoff_ms=10,
                              jitter_ms=0),
        )
        with pytest.raises(RetryExhaustedError) as excinfo:
            resilient.call("urn:svc", "Echo", {})
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last_error, TimeoutError)
        assert hits == []

    def test_backoff_charged_to_sim_clock(self):
        policy = RetryPolicy(max_attempts=3, base_backoff_ms=100,
                             multiplier=2.0, jitter_ms=0)
        resilient, injector, _ = make_stack(
            FaultPlan().at(1, FaultKind.DROP).at(2, FaultKind.DROP),
            retry=policy,
        )
        resilient.call("urn:svc", "Echo", {})
        # two backoffs: 100 and 200 ms
        assert resilient.stats.backoff_ms_total == pytest.approx(300.0)

    def test_jitter_is_deterministic(self):
        policy = RetryPolicy(jitter_ms=50, jitter_seed=9)
        first = policy.backoff_ms("urn:svc", "Echo", 2)
        second = policy.backoff_ms("urn:svc", "Echo", 2)
        assert first == second
        assert first >= policy.base_backoff_ms * policy.multiplier
        # different attempts decorrelate
        assert policy.backoff_ms("urn:svc", "Echo", 3) != first

    def test_backoff_capped(self):
        policy = RetryPolicy(base_backoff_ms=1000, multiplier=10,
                             max_backoff_ms=1500, jitter_ms=0)
        assert policy.backoff_ms("u", "o", 5) == 1500

    def test_application_errors_not_retried(self):
        transport = SimTransport()
        calls = []

        def handler(operation, payload):
            calls.append(operation)
            raise ServiceError("unknown operation")

        transport.bind("urn:svc", handler)
        resilient = ResilientTransport(transport)
        with pytest.raises(ServiceError):
            resilient.call("urn:svc", "Nope", {})
        assert len(calls) == 1
        assert resilient.stats.retries == 0


class TestDeadline:
    def test_deadline_expiry_raises_timeout(self):
        resilient, injector, _ = make_stack(
            FaultPlan(timeout_wait_ms=5000).always(FaultKind.DROP),
            retry=RetryPolicy(max_attempts=10, base_backoff_ms=1000,
                              jitter_ms=0),
            deadline_ms=8000,
        )
        with pytest.raises(TimeoutError):
            resilient.call("urn:svc", "Echo", {})
        assert resilient.stats.deadline_expiries == 1

    def test_retry_abandoned_when_backoff_would_overrun_deadline(self):
        # The first attempt fails at ~5000 ms; with a 5500 ms deadline
        # the 1000 ms backoff alone would overrun it, so the call gives
        # up immediately instead of sleeping and retrying past budget.
        resilient, injector, hits = make_stack(
            FaultPlan(timeout_wait_ms=5000).always(FaultKind.DROP),
            retry=RetryPolicy(max_attempts=5, base_backoff_ms=1000,
                              jitter_ms=0),
            deadline_ms=5500,
        )
        with pytest.raises(TimeoutError):
            resilient.call("urn:svc", "Echo", {})
        assert resilient.stats.attempts == 1
        assert resilient.stats.retries == 0
        assert resilient.stats.backoff_ms_total == 0
        assert resilient.stats.deadline_expiries == 1
        # budget overrun is bounded by the in-flight attempt, not by
        # further backoff waits
        assert resilient.clock.elapsed_ms < 5500 + resilient.model.message_cost() + 1

    def test_no_deadline_when_disabled(self):
        resilient, injector, _ = make_stack(
            FaultPlan(timeout_wait_ms=5000).at(1, FaultKind.DROP),
            deadline_ms=None,
        )
        assert resilient.call("urn:svc", "Echo", {})["ok"]


class TestCircuitBreaker:
    def test_state_machine(self):
        breaker = CircuitBreaker(
            policy=CircuitBreakerPolicy(failure_threshold=2,
                                        reset_timeout_ms=1000)
        )
        assert breaker.state is CircuitState.CLOSED
        breaker.record_failure(0.0)
        assert breaker.state is CircuitState.CLOSED
        breaker.record_failure(10.0)
        assert breaker.state is CircuitState.OPEN
        assert not breaker.allow(500.0)
        # reset timeout elapsed: one half-open probe allowed
        assert breaker.allow(1500.0)
        assert breaker.state is CircuitState.HALF_OPEN
        breaker.record_failure(1600.0)  # failed probe
        assert breaker.state is CircuitState.OPEN
        assert breaker.allow(3000.0)
        breaker.record_success()
        assert breaker.state is CircuitState.CLOSED
        assert breaker.opens == 2

    def test_breaker_opens_and_fails_fast(self):
        resilient, injector, _ = make_stack(
            FaultPlan(timeout_wait_ms=10).always(FaultKind.DROP),
            retry=RetryPolicy(max_attempts=2, base_backoff_ms=1,
                              jitter_ms=0),
            breaker_policy=CircuitBreakerPolicy(failure_threshold=3,
                                                reset_timeout_ms=10_000),
        )
        with pytest.raises(RetryExhaustedError):
            resilient.call("urn:svc", "Echo", {})  # 2 failures
        with pytest.raises((RetryExhaustedError, CircuitOpenError)):
            resilient.call("urn:svc", "Echo", {})  # trips at 3
        with pytest.raises(CircuitOpenError):
            resilient.call("urn:svc", "Echo", {})  # fast-fail
        assert resilient.breaker("urn:svc").state is CircuitState.OPEN
        assert resilient.stats.breaker_rejections >= 1

    def test_half_open_probe_recovers(self):
        plan = FaultPlan(timeout_wait_ms=10).always(FaultKind.DROP, limit=4)
        resilient, injector, _ = make_stack(
            plan,
            retry=RetryPolicy(max_attempts=2, base_backoff_ms=1, jitter_ms=0),
            breaker_policy=CircuitBreakerPolicy(failure_threshold=2,
                                                reset_timeout_ms=100),
        )
        with pytest.raises(RetryExhaustedError):
            resilient.call("urn:svc", "Echo", {})
        assert resilient.breaker("urn:svc").state is CircuitState.OPEN
        resilient.clock.advance(200)  # past the reset timeout
        plan.clear()  # network healed
        response = resilient.call("urn:svc", "Echo", {})
        assert response["ok"]
        assert resilient.breaker("urn:svc").state is CircuitState.CLOSED

    def test_per_endpoint_isolation(self):
        transport = SimTransport()
        transport.bind("urn:good", lambda op, p: {"ok": True})
        transport.bind("urn:bad", lambda op, p: {"ok": True})
        plan = FaultPlan(timeout_wait_ms=10).always(
            FaultKind.DROP, url="urn:bad"
        )
        injector = FaultInjector(transport, plan)
        resilient = ResilientTransport(
            injector,
            retry=RetryPolicy(max_attempts=2, base_backoff_ms=1, jitter_ms=0),
            breaker_policy=CircuitBreakerPolicy(failure_threshold=2,
                                                reset_timeout_ms=10_000),
        )
        with pytest.raises(RetryExhaustedError):
            resilient.call("urn:bad", "Echo", {})
        assert resilient.breaker("urn:bad").state is CircuitState.OPEN
        # the good endpoint is unaffected
        assert resilient.call("urn:good", "Echo", {})["ok"]
        assert resilient.breaker("urn:good").state is CircuitState.CLOSED


class TestHalfOpenProbeToken:
    """HALF_OPEN admits exactly one probe per reset window (the legacy
    breaker admitted unlimited concurrent probes)."""

    def make_open_breaker(self):
        breaker = CircuitBreaker(
            policy=CircuitBreakerPolicy(failure_threshold=1,
                                        reset_timeout_ms=1000)
        )
        breaker.record_failure(0.0)
        assert breaker.state is CircuitState.OPEN
        return breaker

    def test_second_probe_rejected_while_first_in_flight(self):
        breaker = self.make_open_breaker()
        assert breaker.allow(1500.0)  # probe token taken
        assert breaker.state is CircuitState.HALF_OPEN
        assert breaker.probe_in_flight
        assert not breaker.allow(1500.0)
        assert not breaker.allow(2500.0)  # still held — time is no excuse

    def test_probe_success_closes_and_frees_token(self):
        breaker = self.make_open_breaker()
        assert breaker.allow(1500.0)
        breaker.record_success()
        assert breaker.state is CircuitState.CLOSED
        assert not breaker.probe_in_flight
        assert breaker.allow(1500.0)

    def test_probe_failure_reopens_and_frees_token(self):
        breaker = self.make_open_breaker()
        assert breaker.allow(1500.0)
        breaker.record_failure(1600.0)
        assert breaker.state is CircuitState.OPEN
        assert not breaker.probe_in_flight
        # a new reset window hands out a new token
        assert breaker.allow(2601.0)
        assert breaker.state is CircuitState.HALF_OPEN

    def test_release_probe_hands_token_back_without_verdict(self):
        breaker = self.make_open_breaker()
        assert breaker.allow(1500.0)
        breaker.release_probe()
        assert breaker.state is CircuitState.HALF_OPEN
        assert not breaker.probe_in_flight
        assert breaker.allow(1500.0)  # next caller may probe

    def test_probe_holder_not_self_rejected_across_retries(self):
        # A probe that hits backpressure retries within the same call;
        # the holder must not be locked out by its own token.
        transport = SimTransport()
        script = [
            lambda: TransportError("dead"),
            lambda: OverloadError("busy", retry_after_ms=5.0),
            None,
        ]
        delivered = []

        def handler(operation, payload):
            index = len(delivered)
            delivered.append(operation)
            action = script[index] if index < len(script) else None
            if action is None:
                return {"ok": True}
            raise action()

        transport.bind("urn:svc", handler)
        resilient = ResilientTransport(
            transport,
            retry=RetryPolicy(max_attempts=3, base_backoff_ms=1, jitter_ms=0),
            breaker_policy=CircuitBreakerPolicy(failure_threshold=1,
                                                reset_timeout_ms=100),
        )
        # attempt 1 trips the breaker (threshold 1); attempt 2 of the
        # same call is rejected by it
        with pytest.raises(CircuitOpenError):
            resilient.call("urn:svc", "Echo", {})
        resilient.clock.advance(200)
        # one call: takes the probe token, gets shed, waits the hint,
        # retries while still holding the token, and succeeds.
        assert resilient.call("urn:svc", "Echo", {})["ok"]
        assert resilient.breaker("urn:svc").state is CircuitState.CLOSED
        assert resilient.stats.backpressure_waits == 1


class TestDeadlineNormalization:
    """Caller-supplied ``deadlineMs`` is re-stamped unless it is a
    valid, tighter-or-equal budget (the legacy transport forwarded
    stale values from reused payload dicts verbatim, so admission
    control shed perfectly healthy work)."""

    def make_recording_stack(self, deadline_ms=30_000.0):
        transport = SimTransport()
        seen = []

        def handler(operation, payload):
            seen.append(dict(payload))
            return {"ok": True}

        transport.bind("urn:svc", handler)
        return ResilientTransport(transport, deadline_ms=deadline_ms), seen

    def test_stale_deadline_from_reused_payload_is_restamped(self):
        resilient, seen = self.make_recording_stack()
        payload = {"resource": "r"}
        resilient.call("urn:svc", "Echo", payload)
        first_deadline = seen[0]["deadlineMs"]
        resilient.clock.advance(60_000)
        # a caller reusing the stamped payload dict must get a fresh
        # budget, not the long-expired one
        resilient.call("urn:svc", "Echo", dict(seen[0]))
        fresh = resilient.clock.elapsed_ms  # after the call's charge
        assert seen[1]["deadlineMs"] != first_deadline
        assert seen[1]["deadlineMs"] > fresh

    def test_bogus_deadline_values_are_restamped(self):
        for bogus in (True, "soon", None, -5.0):
            resilient, seen = self.make_recording_stack()
            resilient.call("urn:svc", "Echo", {"deadlineMs": bogus})
            assert seen[0]["deadlineMs"] == pytest.approx(30_000.0)

    def test_looser_deadline_is_tightened_to_call_budget(self):
        resilient, seen = self.make_recording_stack(deadline_ms=1000.0)
        resilient.call("urn:svc", "Echo", {"deadlineMs": 999_999.0})
        assert seen[0]["deadlineMs"] == pytest.approx(1000.0)

    def test_valid_tighter_deadline_preserved(self):
        resilient, seen = self.make_recording_stack(deadline_ms=30_000.0)
        resilient.call("urn:svc", "Echo", {"deadlineMs": 750.0})
        assert seen[0]["deadlineMs"] == 750.0
