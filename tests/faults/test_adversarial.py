"""Adversarial probe construction and injector probe accounting."""

import random

import pytest

from repro.faults.adversarial import build_probe
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan
from repro.hardening.config import HardeningConfig
from repro.services.tn_service import TNWebService
from repro.services.transport import SimTransport
from repro.storage.document_store import XMLDocumentStore
from tests.conftest import ISSUE_AT


def _rng():
    return random.Random(42)


class TestBuildProbe:
    def test_malformed_is_not_a_mapping(self):
        probe = build_probe(
            FaultKind.MALFORMED, "PolicyExchange", {"resource": "R"},
            (), _rng(),
        )
        assert not isinstance(probe.payload, dict)
        assert not probe.replay_tolerant

    def test_truncated_corrupts_a_string_field(self):
        payload = {"negotiationId": "tn-1", "resource": "R", "clientSeq": 1}
        probe = build_probe(
            FaultKind.TRUNCATED, "PolicyExchange", payload, (), _rng(),
        )
        assert probe.payload["resource"].startswith("<credential")
        # The original payload is untouched: probes are derived copies.
        assert payload["resource"] == "R"

    def test_oversized_blows_the_string_budget(self):
        probe = build_probe(
            FaultKind.OVERSIZED, "PolicyExchange",
            {"negotiationId": "tn-1", "resource": "R"}, (), _rng(),
        )
        limit = HardeningConfig().max_string_bytes
        assert any(
            isinstance(v, str) and len(v) > limit
            for v in probe.payload.values()
        )

    def test_replayed_draws_from_history_and_is_tolerant(self):
        history = [("PolicyExchange", {"negotiationId": "tn-9"})]
        probe = build_probe(
            FaultKind.REPLAYED, "CredentialExchange",
            {"negotiationId": "tn-1"}, history, _rng(),
        )
        assert probe.replay_tolerant
        assert (probe.operation, probe.payload) == history[0]

    def test_reordered_skips_the_sequence_ahead(self):
        probe = build_probe(
            FaultKind.REORDERED, "PolicyExchange",
            {"negotiationId": "tn-1", "resource": "R", "clientSeq": 2},
            (), _rng(),
        )
        assert probe.payload["clientSeq"] == 7
        assert not probe.replay_tolerant

    def test_reordered_without_session_targets_a_ghost(self):
        probe = build_probe(
            FaultKind.REORDERED, "StartNegotiation",
            {"strategy": "standard"}, (), _rng(),
        )
        assert probe.operation == "CredentialExchange"
        assert probe.payload["negotiationId"] == "tn-reordered-ghost"

    def test_byzantine_flips_strategy_under_recorded_request_id(self):
        probe = build_probe(
            FaultKind.BYZANTINE, "StartNegotiation",
            {"requestId": "rid-1", "strategy": "standard"}, (), _rng(),
        )
        assert probe.payload["requestId"] == "rid-1"
        assert probe.payload["strategy"] != "standard"
        assert not probe.replay_tolerant

    def test_non_adversarial_kind_rejected(self):
        with pytest.raises(ValueError):
            build_probe(FaultKind.DROP, "PolicyExchange", {}, (), _rng())


class TestInjectorProbeAccounting:
    @pytest.fixture()
    def stack(self, agent_factory, aaa_authority, other_keypair):
        controller = agent_factory(
            "AircraftCo",
            [aaa_authority.issue("AAA Member", "AircraftCo",
                                 other_keypair.fingerprint,
                                 {"association": "AAA"}, ISSUE_AT)],
            "AAA Member <- DELIV",
            other_keypair,
        )
        transport = SimTransport()
        service = TNWebService(
            controller, transport, XMLDocumentStore("tn"), "urn:tn",
            hardening=HardeningConfig(),
        )
        return service, transport

    def test_probe_fires_after_legit_call_and_is_rejected_typed(
        self, stack, agent_factory, infn, shared_keypair
    ):
        service, transport = stack
        requester = agent_factory(
            "AerospaceCo",
            [infn.issue("ISO 9000 Certified", "AerospaceCo",
                        shared_keypair.fingerprint,
                        {"QualityRegulation": "x"}, ISSUE_AT)],
            "ISO 9000 Certified <- AAA Member",
            shared_keypair,
        )
        plan = FaultPlan(seed=11)
        plan.at(2, FaultKind.TRUNCATED, url="urn:tn")
        injector = FaultInjector(transport, plan)
        first = injector.call("urn:tn", "StartNegotiation", {
            "requester": requester, "strategy": "standard",
            "requestId": "rid-adv-1",
        })
        # Call 2 carries the fault: the legitimate call succeeds, then
        # the derived hostile probe strikes and must be rejected typed.
        second = injector.call("urn:tn", "StartNegotiation", {
            "requester": requester, "strategy": "standard",
            "requestId": "rid-adv-2",
        })
        assert first["negotiationId"] != second["negotiationId"]
        assert injector.injected[FaultKind.TRUNCATED] == 1
        assert len(injector.probe_rejections) == 1
        kind, code = injector.probe_rejections[0]
        assert kind is FaultKind.TRUNCATED
        assert code is not None
        assert injector.probe_anomalies == []
        assert service.internal_errors == 0
