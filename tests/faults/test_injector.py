"""FaultInjector semantics against a toy endpoint."""

import pytest

from repro.errors import DatabaseUnavailableError, TimeoutError, TransportError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan
from repro.services.transport import SimTransport


@pytest.fixture()
def stack():
    """(injector, transport, hits) with a counting echo endpoint."""
    transport = SimTransport()
    hits = []

    def handler(operation, payload):
        hits.append(operation)
        return {"echo": payload.get("value"), "hits": len(hits)}

    transport.bind("urn:svc", handler)
    injector = FaultInjector(transport, FaultPlan())
    return injector, transport, hits


class TestPassThrough:
    def test_clean_call_delegates(self, stack):
        injector, transport, hits = stack
        response = injector.call("urn:svc", "Echo", {"value": 1})
        assert response == {"echo": 1, "hits": 1}
        assert transport.calls == 1

    def test_charge_helpers_delegate(self, stack):
        injector, transport, _ = stack
        before = injector.clock.elapsed_ms
        injector.charge_db(reads=2)
        injector.charge_crypto(signs=1)
        injector.charge_ui()
        injector.charge_mail()
        injector.charge_messages(1)
        assert injector.clock.elapsed_ms > before
        assert injector.clock is transport.clock

    def test_bind_unbind_delegate(self, stack):
        injector, transport, _ = stack
        injector.bind("urn:other", lambda op, p: {})
        assert injector.is_bound("urn:other")
        injector.unbind("urn:other")
        assert not transport.is_bound("urn:other")


class TestDropAndTimeout:
    def test_drop_skips_handler_and_charges_wait(self, stack):
        injector, transport, hits = stack
        injector.plan.at(1, FaultKind.DROP)
        before = injector.clock.elapsed_ms
        with pytest.raises(TimeoutError):
            injector.call("urn:svc", "Echo", {})
        assert hits == []  # the request never arrived
        waited = injector.clock.elapsed_ms - before
        assert waited >= injector.plan.timeout_wait_ms

    def test_timeout_executes_handler_but_loses_response(self, stack):
        injector, transport, hits = stack
        injector.plan.at(1, FaultKind.TIMEOUT)
        with pytest.raises(TimeoutError):
            injector.call("urn:svc", "Echo", {})
        assert hits == ["Echo"]  # side effects happened

    def test_duplicate_runs_handler_twice(self, stack):
        injector, transport, hits = stack
        injector.plan.at(1, FaultKind.DUPLICATE)
        response = injector.call("urn:svc", "Echo", {"value": 9})
        assert hits == ["Echo", "Echo"]
        assert response["hits"] == 2  # the second delivery's response

    def test_db_fail_raises_typed_error(self, stack):
        injector, _, hits = stack
        injector.plan.at(1, FaultKind.DB_FAIL)
        with pytest.raises(DatabaseUnavailableError):
            injector.call("urn:svc", "Echo", {})
        assert hits == []


class TestCrashRestart:
    def test_crash_unbinds_and_downtime_blocks(self, stack):
        injector, transport, hits = stack
        injector.plan.at(1, FaultKind.CRASH)
        with pytest.raises(TimeoutError):
            injector.call("urn:svc", "Echo", {})
        assert not transport.is_bound("urn:svc")
        assert injector.is_down("urn:svc")
        # still inside the downtime window: unreachable
        with pytest.raises(TimeoutError):
            injector.call("urn:svc", "Echo", {})
        assert hits == []

    def test_restart_hook_revives_after_downtime(self, stack):
        injector, transport, hits = stack
        revived = []

        def restart():
            transport.bind("urn:svc", lambda op, p: {"revived": True})
            revived.append(True)

        injector.register_endpoint("urn:svc", restart=restart)
        injector.plan.at(1, FaultKind.CRASH)
        with pytest.raises(TimeoutError):
            injector.call("urn:svc", "Echo", {})
        # wait out the downtime in simulated time
        injector.clock.advance(injector.plan.downtime_ms + 1)
        response = injector.call("urn:svc", "Echo", {})
        assert response == {"revived": True}
        assert revived == [True]
        assert injector.crash_count("urn:svc") == 1
        assert injector.restart_count("urn:svc") == 1

    def test_crash_hook_preferred_over_plain_unbind(self, stack):
        injector, transport, _ = stack
        crashed = []
        injector.register_endpoint(
            "urn:svc",
            crash=lambda: (crashed.append(True),
                           transport.unbind("urn:svc")),
        )
        injector.crash_endpoint("urn:svc")
        assert crashed == [True]
        assert not transport.is_bound("urn:svc")

    def test_no_restart_hook_leaves_endpoint_unbound(self, stack):
        injector, transport, _ = stack
        injector.plan.at(1, FaultKind.CRASH)
        with pytest.raises(TimeoutError):
            injector.call("urn:svc", "Echo", {})
        injector.clock.advance(injector.plan.downtime_ms + 1)
        with pytest.raises(TransportError):
            injector.call("urn:svc", "Echo", {})


class TestAccounting:
    def test_injected_counters(self, stack):
        injector, _, _ = stack
        injector.plan.at(1, FaultKind.DROP).at(2, FaultKind.DUPLICATE)
        with pytest.raises(TimeoutError):
            injector.call("urn:svc", "Echo", {})
        injector.call("urn:svc", "Echo", {})
        assert injector.injected[FaultKind.DROP] == 1
        assert injector.injected[FaultKind.DUPLICATE] == 1
        assert injector.total_injected() == 2

    def test_call_index_counts_faulted_calls(self, stack):
        injector, _, _ = stack
        injector.plan.at(2, FaultKind.DROP)
        injector.call("urn:svc", "Echo", {})
        with pytest.raises(TimeoutError):
            injector.call("urn:svc", "Echo", {})
        injector.call("urn:svc", "Echo", {})
        assert injector.call_index == 3

    def test_fault_scheduled_during_downtime_drains_as_skip(self, stack):
        # A single-shot fault whose call index falls while the endpoint
        # is down must still be consumed from the plan (as a skip), or
        # FaultPlan.pending() never converges and report counts skew.
        injector, _, hits = stack
        injector.plan.at(1, FaultKind.CRASH).at(2, FaultKind.DROP)
        with pytest.raises(TimeoutError):
            injector.call("urn:svc", "Echo", {})
        assert injector.is_down("urn:svc")
        with pytest.raises(TimeoutError):
            injector.call("urn:svc", "Echo", {})  # index 2: down
        assert injector.plan.pending() == 0
        assert injector.skipped[FaultKind.DROP] == 1
        assert injector.injected[FaultKind.DROP] == 0
        assert injector.total_skipped() == 1
        assert hits == []
