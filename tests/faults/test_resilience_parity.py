"""Three-way resilience parity: legacy loop vs sync driver vs asyncio driver.

The sans-IO extraction (``repro.services.resilience_core``) promises
that the new sync :class:`ResilientTransport` is *bit-identical* to
the pre-extraction implementation — same stats, same simulated-clock
charges, same exception types, messages, and ``__cause__`` chaining,
same breaker transitions — and that the asyncio
:class:`AioResilientTransport` matches the sync driver on the same
script.  This suite proves it by embedding the frozen pre-refactor
``call`` loop (``LegacyResilientTransport``, copied verbatim from the
git history) and running every scenario through all three stacks.

Two behavioral changes are *intentional* and excluded from the parity
contract; each gets its own divergence test at the bottom:

- stale/looser caller-supplied ``deadlineMs`` values are re-stamped
  (the legacy loop forwarded them verbatim);
- HALF_OPEN admits exactly one probe (the legacy breaker admitted
  unlimited concurrent probes).  Sequential single-caller use — which
  is all the legacy sync transport ever saw — is unaffected, so it
  stays inside the parity contract.
"""

from __future__ import annotations

import asyncio
import dataclasses
from dataclasses import dataclass, field

import pytest

from repro.errors import (
    CircuitOpenError,
    DatabaseUnavailableError,
    OverloadError,
    RetryExhaustedError,
    SessionError,
    TimeoutError,
    TransportError,
)
from repro.obs import (
    count as obs_count,
    enabled as obs_enabled,
    event as obs_event,
    observe as obs_observe,
)
from repro.services.aio import AioSimTransport
from repro.services.aio_resilience import AioResilientTransport
from repro.services.resilience import (
    TRANSIENT_ERRORS,
    CircuitBreakerPolicy,
    CircuitState,
    ResilienceStats,
    ResilientTransport,
    RetryPolicy,
)
from repro.services.transport import SimTransport

URL = "urn:parity:svc"
OP = "Probe"


# -- the frozen pre-refactor implementation ---------------------------------------
#
# Copied from the last commit before the sans-IO extraction (git show
# HEAD~1:src/repro/services/resilience.py at the time of the refactor)
# with only renames.  Policy/stats dataclasses are shared with the new
# module — they were moved, not changed.


@dataclass
class LegacyCircuitBreaker:
    """The pre-refactor breaker: HALF_OPEN admits unlimited probes."""

    policy: CircuitBreakerPolicy = field(default_factory=CircuitBreakerPolicy)
    state: CircuitState = CircuitState.CLOSED
    consecutive_failures: int = 0
    opened_at_ms: float = 0.0
    opens: int = 0

    def allow(self, now_ms: float) -> bool:
        if self.state is CircuitState.OPEN:
            if now_ms - self.opened_at_ms >= self.policy.reset_timeout_ms:
                self.state = CircuitState.HALF_OPEN
                return True
            return False
        return True  # CLOSED or HALF_OPEN (probe in flight)

    def record_success(self) -> None:
        self.state = CircuitState.CLOSED
        self.consecutive_failures = 0

    def record_failure(self, now_ms: float) -> None:
        self.consecutive_failures += 1
        if self.state is CircuitState.HALF_OPEN:
            self._open(now_ms)
        elif self.consecutive_failures >= self.policy.failure_threshold:
            self._open(now_ms)

    def _open(self, now_ms: float) -> None:
        self.state = CircuitState.OPEN
        self.opened_at_ms = now_ms
        self.opens += 1


@dataclass
class LegacyResilientTransport:
    """The pre-refactor ``call`` loop, verbatim."""

    inner: SimTransport
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_policy: CircuitBreakerPolicy = field(
        default_factory=CircuitBreakerPolicy
    )
    deadline_ms: float | None = 30_000.0
    stats: ResilienceStats = field(default_factory=ResilienceStats)
    _breakers: dict[str, LegacyCircuitBreaker] = field(default_factory=dict)

    @property
    def clock(self):
        return self.inner.clock

    def breaker(self, url: str) -> LegacyCircuitBreaker:
        breaker = self._breakers.get(url)
        if breaker is None:
            breaker = LegacyCircuitBreaker(policy=self.breaker_policy)
            self._breakers[url] = breaker
        return breaker

    def call(self, url: str, operation: str, payload: dict) -> dict:
        self.stats.calls += 1
        obs_count("resilience.calls")
        breaker = self.breaker(url)
        started_ms = self.clock.elapsed_ms
        if (
            self.deadline_ms is not None
            and isinstance(payload, dict)
            and "deadlineMs" not in payload
        ):
            payload = {**payload, "deadlineMs": started_ms + self.deadline_ms}
        last_error: Exception | None = None
        for attempt in range(1, self.retry.max_attempts + 1):
            now = self.clock.elapsed_ms
            if not breaker.allow(now):
                self.stats.breaker_rejections += 1
                if obs_enabled():
                    obs_count("resilience.breaker_rejections")
                    obs_event(
                        "resilience.breaker_open",
                        clock=self.clock,
                        url=url,
                        operation=operation,
                        consecutive_failures=breaker.consecutive_failures,
                    )
                raise CircuitOpenError(
                    f"circuit for {url!r} is open "
                    f"({breaker.consecutive_failures} consecutive failures; "
                    f"retry after {self.breaker_policy.reset_timeout_ms:.0f} "
                    "simulated ms)"
                ) from last_error
            if (
                self.deadline_ms is not None
                and now - started_ms >= self.deadline_ms
            ):
                self.stats.deadline_expiries += 1
                obs_count("resilience.deadline_expiries")
                raise TimeoutError(
                    f"deadline of {self.deadline_ms:.0f} ms exceeded calling "
                    f"{operation!r} at {url!r} (attempt {attempt})"
                ) from last_error
            self.stats.attempts += 1
            try:
                response = self.inner.call(url, operation, payload)
            except OverloadError as exc:
                last_error = exc
                if attempt >= self.retry.max_attempts:
                    continue
                delay = max(
                    self.retry.backoff_ms(url, operation, attempt),
                    exc.retry_after_ms,
                )
                if (
                    self.deadline_ms is not None
                    and self.clock.elapsed_ms - started_ms + delay
                    >= self.deadline_ms
                ):
                    self.stats.deadline_expiries += 1
                    obs_count("resilience.deadline_expiries")
                    raise TimeoutError(
                        f"deadline of {self.deadline_ms:.0f} ms exceeded "
                        f"calling {operation!r} at {url!r} (attempt "
                        f"{attempt}; honoring a {delay:.0f} ms overload "
                        "hint would overrun)"
                    ) from exc
                self.clock.advance(delay)
                self.stats.backoff_ms_total += delay
                self.stats.retries += 1
                self.stats.backpressure_waits += 1
                if obs_enabled():
                    obs_count("resilience.retries")
                    obs_count("resilience.backpressure_waits")
                    obs_observe("resilience.backoff_ms", delay)
                    obs_event(
                        "resilience.backpressure",
                        clock=self.clock,
                        url=url,
                        operation=operation,
                        attempt=attempt,
                        retry_after_ms=round(exc.retry_after_ms, 3),
                    )
                continue
            except TRANSIENT_ERRORS as exc:
                breaker.record_failure(self.clock.elapsed_ms)
                last_error = exc
                if attempt < self.retry.max_attempts:
                    delay = self.retry.backoff_ms(url, operation, attempt)
                    if (
                        self.deadline_ms is not None
                        and self.clock.elapsed_ms - started_ms + delay
                        >= self.deadline_ms
                    ):
                        self.stats.deadline_expiries += 1
                        obs_count("resilience.deadline_expiries")
                        raise TimeoutError(
                            f"deadline of {self.deadline_ms:.0f} ms "
                            f"exceeded calling {operation!r} at {url!r} "
                            f"(attempt {attempt}; backing off "
                            f"{delay:.0f} ms would overrun)"
                        ) from exc
                    self.clock.advance(delay)
                    self.stats.backoff_ms_total += delay
                    self.stats.retries += 1
                    if obs_enabled():
                        obs_count("resilience.retries")
                        obs_observe("resilience.backoff_ms", delay)
                        obs_event(
                            "resilience.retry",
                            clock=self.clock,
                            url=url,
                            operation=operation,
                            attempt=attempt,
                            backoff_ms=round(delay, 3),
                            error=type(exc).__name__,
                        )
                continue
            breaker.record_success()
            return response
        self.stats.exhausted += 1
        obs_count("resilience.exhausted")
        raise RetryExhaustedError(
            f"{operation!r} at {url!r} failed after "
            f"{self.retry.max_attempts} attempts: {last_error}",
            attempts=self.retry.max_attempts,
            last_error=last_error,
        ) from last_error


# -- harness ----------------------------------------------------------------------


def _make_handler(script, seen):
    """A scripted endpoint: one action per delivered attempt, across
    all calls of a scenario.  ``None`` answers, an exception factory
    raises, ``("advance", ms, factory)`` burns simulated time first
    (a slow endpoint).  Every delivered payload is recorded so
    ``deadlineMs`` propagation is part of the parity contract."""
    state = {"i": 0}

    def handler(operation, payload):
        seen.append(dict(payload))
        index = state["i"]
        state["i"] += 1
        action = script[index] if index < len(script) else None
        if action is None:
            return {"ok": True, "attempt": index + 1}
        if isinstance(action, tuple):
            _, advance_ms, factory = action
            handler.transport.clock.advance(advance_ms)
            if factory is None:
                return {"ok": True, "attempt": index + 1}
            raise factory()
        raise action()

    return handler


_DRIVERS = ("legacy", "sync", "async")


def _run(driver, spec):
    """Run one scenario through one stack and distill everything
    observable into a comparable record."""
    transport = (
        AioSimTransport() if driver == "async"
        else SimTransport(single_threaded=True)
    )
    seen = []
    handler = _make_handler(spec.get("script", []), seen)
    handler.transport = transport
    transport.bind(URL, handler)
    cls = {
        "legacy": LegacyResilientTransport,
        "sync": ResilientTransport,
        "async": AioResilientTransport,
    }[driver]
    resilient = cls(
        transport,
        retry=spec.get("retry", RetryPolicy()),
        breaker_policy=spec.get("breaker", CircuitBreakerPolicy()),
        deadline_ms=spec.get("deadline_ms", 30_000.0),
    )
    outcomes = []
    for advance_ms, payload in spec["calls"]:
        if advance_ms:
            transport.clock.advance(advance_ms)
        try:
            if driver == "async":
                response = asyncio.run(resilient.acall(URL, OP, payload))
            else:
                response = resilient.call(URL, OP, payload)
        except Exception as exc:  # noqa: BLE001 - the exception IS the data
            cause = exc.__cause__
            outcomes.append((
                "error",
                type(exc).__name__,
                str(exc),
                type(cause).__name__ if cause is not None else None,
            ))
        else:
            outcomes.append(("ok", response))
    breaker = resilient._breakers.get(URL)
    return {
        "outcomes": outcomes,
        "stats": dataclasses.asdict(resilient.stats),
        "elapsed_ms": transport.clock.elapsed_ms,
        "transport_calls": transport.calls,
        "service_saw": seen,
        "breaker": None if breaker is None else (
            breaker.state.value,
            breaker.consecutive_failures,
            breaker.opens,
        ),
    }


SCENARIOS = {
    "clean_success": {
        "script": [None],
        "calls": [(0.0, {"resource": "r"})],
    },
    "transient_retries_then_success": {
        "script": [
            lambda: TransportError("link flapped"),
            lambda: TimeoutError("peer slow"),
            None,
        ],
        "calls": [(0.0, {})],
    },
    "retry_exhaustion": {
        "script": [lambda: DatabaseUnavailableError("oracle down")] * 3,
        "retry": RetryPolicy(max_attempts=3),
        "calls": [(0.0, {})],
    },
    "breaker_opens_mid_call": {
        # threshold 2 trips inside one logical call; the rejection
        # chains from the last transient error.
        "script": [lambda: TransportError("down")] * 2,
        "retry": RetryPolicy(max_attempts=4),
        "breaker": CircuitBreakerPolicy(failure_threshold=2,
                                        reset_timeout_ms=60_000.0),
        "calls": [(0.0, {})],
    },
    "breaker_fast_fail_then_probe_recovery": {
        # three one-attempt calls open the breaker, the fourth fails
        # fast, then the reset window elapses and the half-open probe
        # succeeds and closes it.
        "script": [lambda: TransportError("down")] * 3 + [None],
        "retry": RetryPolicy(max_attempts=1),
        "breaker": CircuitBreakerPolicy(failure_threshold=3,
                                        reset_timeout_ms=1000.0),
        "calls": [(0.0, {}), (0.0, {}), (0.0, {}), (0.0, {}), (1001.0, {})],
    },
    "backpressure_hint_honored": {
        "script": [
            lambda: OverloadError("queue full", retry_after_ms=700.0),
            None,
        ],
        "calls": [(0.0, {})],
    },
    "overload_exhaustion": {
        "script": [
            lambda: OverloadError("queue full", retry_after_ms=10.0),
        ] * 2,
        "retry": RetryPolicy(max_attempts=2),
        "calls": [(0.0, {})],
    },
    "deadline_expired_before_attempt": {
        "script": [],
        "deadline_ms": 0.0,
        "calls": [(0.0, {})],
    },
    "deadline_backoff_would_overrun": {
        "script": [lambda: TransportError("down")],
        "retry": RetryPolicy(max_attempts=3, base_backoff_ms=600.0),
        "deadline_ms": 500.0,
        "calls": [(0.0, {})],
    },
    "deadline_overload_hint_would_overrun": {
        "script": [lambda: OverloadError("queue full", retry_after_ms=800.0)],
        "retry": RetryPolicy(max_attempts=2),
        "deadline_ms": 500.0,
        "calls": [(0.0, {})],
    },
    "slow_endpoint_burns_budget": {
        # the endpoint answers, but only after burning most of the
        # budget; the next transient failure's backoff overruns.
        "script": [
            ("advance", 400.0, None),
            lambda: TransportError("down"),
        ],
        "retry": RetryPolicy(max_attempts=3, base_backoff_ms=200.0),
        "deadline_ms": 600.0,
        "calls": [(0.0, {}), (0.0, {})],
    },
    "app_error_not_retried": {
        "script": [lambda: SessionError("unknown session 42"), None],
        "calls": [(0.0, {}), (0.0, {})],
    },
    "valid_tighter_deadline_preserved": {
        "script": [None],
        "deadline_ms": 30_000.0,
        "calls": [(10.0, {"deadlineMs": 1000.0})],
    },
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_sync_driver_is_bit_identical_to_legacy(name):
    spec = SCENARIOS[name]
    legacy = _run("legacy", spec)
    sync = _run("sync", spec)
    assert sync == legacy


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_async_driver_matches_sync_driver(name):
    spec = SCENARIOS[name]
    sync = _run("sync", spec)
    aio = _run("async", spec)
    assert aio == sync


def test_scenarios_cover_every_terminal_outcome():
    """The parity matrix exercises success, exhaustion, breaker
    rejection, deadline expiry (all three variants), backpressure,
    and app-error passthrough — keep it honest if scenarios change."""
    sync = {name: _run("sync", spec) for name, spec in SCENARIOS.items()}
    kinds = {
        outcome[1] if outcome[0] == "error" else "ok"
        for record in sync.values()
        for outcome in record["outcomes"]
    }
    assert {"ok", "RetryExhaustedError", "CircuitOpenError",
            "TimeoutError", "SessionError"} <= kinds
    messages = " | ".join(
        outcome[2]
        for record in sync.values()
        for outcome in record["outcomes"]
        if outcome[0] == "error"
    )
    assert "would overrun" in messages
    assert "overload hint" in messages
    assert "circuit for" in messages
    total_backpressure = sum(
        record["stats"]["backpressure_waits"] for record in sync.values()
    )
    assert total_backpressure >= 1


# -- intentional divergences (the two satellite bug fixes) ------------------------


def test_divergence_stale_deadline_is_restamped():
    """Legacy forwarded a stale caller-supplied ``deadlineMs``
    verbatim; the core re-stamps it from this call's budget."""
    spec = {
        "script": [None],
        "deadline_ms": 30_000.0,
        # clock starts at 500 after the advance; a deadline of 400 is
        # already in the past.
        "calls": [(500.0, {"deadlineMs": 400.0})],
    }
    legacy = _run("legacy", spec)
    sync = _run("sync", spec)
    assert legacy["service_saw"][0]["deadlineMs"] == 400.0  # the bug
    assert sync["service_saw"][0]["deadlineMs"] == 500.0 + 30_000.0
    # everything else still matches
    assert sync["stats"] == legacy["stats"]
    assert sync["outcomes"][0][0] == legacy["outcomes"][0][0] == "ok"


def test_divergence_half_open_admits_single_probe():
    """The legacy breaker admitted unlimited HALF_OPEN probes; the new
    one hands out a single probe token per reset window."""
    from repro.services.resilience import CircuitBreaker

    policy = CircuitBreakerPolicy(failure_threshold=1,
                                  reset_timeout_ms=100.0)
    legacy = LegacyCircuitBreaker(policy=policy)
    fixed = CircuitBreaker(policy=policy)
    for breaker in (legacy, fixed):
        breaker.record_failure(0.0)
        assert breaker.state is CircuitState.OPEN
    # reset window elapses: first caller goes through on both
    assert legacy.allow(200.0)
    assert fixed.allow(200.0)
    # second caller while the probe is in flight: legacy stampedes,
    # fixed fails fast
    assert legacy.allow(200.0)
    assert not fixed.allow(200.0)
    # the probe's verdict frees the token
    fixed.record_success()
    assert fixed.state is CircuitState.CLOSED
    assert fixed.allow(200.0)
