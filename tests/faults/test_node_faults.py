"""Node-level fault kinds: NODE_CRASH, NODE_RESTART, WAL_TORN_WRITE."""

import pytest

from repro.errors import TimeoutError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan
from repro.services.transport import SimTransport


@pytest.fixture()
def stack():
    """(injector, transport, log) with an endpoint wearing crash,
    restart, and tear hooks that record their firings."""
    transport = SimTransport()
    log = []

    def handler(operation, payload):
        log.append(("call", operation))
        return {"ok": True}

    transport.bind("urn:node", handler)
    injector = FaultInjector(transport, FaultPlan(timeout_wait_ms=100.0))
    injector.register_endpoint(
        "urn:node",
        crash=lambda: (log.append(("crash", None)),
                       transport.unbind("urn:node"))[1],
        restart=lambda: (log.append(("restart", None)),
                         transport.bind("urn:node", handler))[1],
        tear=lambda: log.append(("tear", None)),
    )
    return injector, transport, log


class TestNodeCrash:
    def test_node_crash_downs_endpoint_then_restart_hook_revives(
        self, stack
    ):
        injector, transport, log = stack
        injector.plan.at(1, FaultKind.NODE_CRASH, url="urn:node")
        with pytest.raises(TimeoutError, match="crashed"):
            injector.call("urn:node", "Op", {})
        assert ("crash", None) in log
        assert injector.is_down("urn:node")
        assert not transport.is_bound("urn:node")

        # during downtime, calls time out without reaching the handler
        with pytest.raises(TimeoutError, match="down"):
            injector.call("urn:node", "Op", {})
        assert ("call", "Op") not in log

        # after the downtime window, the restart hook revives the node
        injector.clock.advance(injector.plan.downtime_ms + 1.0)
        response = injector.call("urn:node", "Op", {})
        assert response == {"ok": True}
        assert ("restart", None) in log
        assert injector.restart_count("urn:node") == 1


class TestNodeRestart:
    def test_node_restart_revives_immediately_and_delivers(self, stack):
        injector, transport, log = stack
        injector.plan.at(1, FaultKind.NODE_CRASH, url="urn:node")
        with pytest.raises(TimeoutError):
            injector.call("urn:node", "Op", {})
        assert injector.is_down("urn:node")

        # NODE_RESTART cancels the remaining downtime: the very next
        # call restarts the node and is served by it
        injector.plan.at(2, FaultKind.NODE_RESTART, url="urn:node")
        response = injector.call("urn:node", "Op", {})
        assert response == {"ok": True}
        assert not injector.is_down("urn:node")
        assert log[-2:] == [("restart", None), ("call", "Op")]

    def test_node_restart_on_live_node_is_a_delivery(self, stack):
        injector, transport, log = stack
        injector.plan.at(1, FaultKind.NODE_RESTART, url="urn:node")
        response = injector.call("urn:node", "Op", {})
        assert response == {"ok": True}
        # the node never went down, so the hook must not re-fire
        assert ("restart", None) not in log


class TestWalTornWrite:
    def test_torn_write_applies_effects_tears_then_crashes(self, stack):
        injector, transport, log = stack
        injector.plan.at(1, FaultKind.WAL_TORN_WRITE, url="urn:node")
        with pytest.raises(TimeoutError, match="mid-WAL-append"):
            injector.call("urn:node", "Op", {})
        # handler ran (effects landed), then the tear, then the crash
        assert log == [("call", "Op"), ("tear", None), ("crash", None)]
        assert injector.is_down("urn:node")
        assert injector.torn_write_count("urn:node") == 1

    def test_counters(self, stack):
        injector, transport, _ = stack
        injector.plan.at(1, FaultKind.WAL_TORN_WRITE, url="urn:node")
        with pytest.raises(TimeoutError):
            injector.call("urn:node", "Op", {})
        assert injector.injected[FaultKind.WAL_TORN_WRITE] == 1


class TestKindRegistry:
    def test_new_kinds_parse_and_are_not_adversarial(self):
        for name in ("node_crash", "node_restart", "wal_torn_write"):
            kind = FaultKind.parse(name)
            assert kind.value == name
            assert not kind.adversarial
