"""FaultPlan: deterministic schedules and matching semantics."""

import pytest

from repro.faults.plan import FaultKind, FaultPlan, FaultSpec


class TestSeededDeterminism:
    def test_same_seed_same_schedule(self):
        a = FaultPlan.seeded(42, faults=5, horizon_calls=50)
        b = FaultPlan.seeded(42, faults=5, horizon_calls=50)
        assert [(s.kind, s.call_index) for s in a.specs] == \
               [(s.kind, s.call_index) for s in b.specs]

    def test_different_seeds_differ(self):
        schedules = {
            tuple((s.kind, s.call_index)
                  for s in FaultPlan.seeded(seed, faults=4,
                                            horizon_calls=40).specs)
            for seed in range(20)
        }
        assert len(schedules) > 1

    def test_indices_sorted_unique_within_horizon(self):
        plan = FaultPlan.seeded(7, faults=10, horizon_calls=30)
        indices = [s.call_index for s in plan.specs]
        assert indices == sorted(indices)
        assert len(set(indices)) == len(indices)
        assert all(1 <= i <= 30 for i in indices)

    def test_faults_clamped_to_horizon(self):
        plan = FaultPlan.seeded(1, faults=99, horizon_calls=5)
        assert len(plan.specs) == 5

    def test_seed_recorded(self):
        assert FaultPlan.seeded(13).seed == 13

    def test_kind_restriction_respected(self):
        plan = FaultPlan.seeded(3, kinds=(FaultKind.CRASH,), faults=6,
                                horizon_calls=20)
        assert {s.kind for s in plan.specs} == {FaultKind.CRASH}


class TestMatching:
    def test_single_shot_consumed(self):
        plan = FaultPlan().at(2, FaultKind.DROP)
        assert plan.take("urn:x", "Op", 1) is None
        spec = plan.take("urn:x", "Op", 2)
        assert spec is not None and spec.kind is FaultKind.DROP
        # consumed: never fires again
        assert plan.take("urn:x", "Op", 2) is None
        assert plan.pending() == 0

    def test_url_and_operation_filters(self):
        plan = FaultPlan().always(FaultKind.DROP, url="urn:a",
                                  operation="Ping")
        assert plan.take("urn:b", "Ping", 1) is None
        assert plan.take("urn:a", "Pong", 2) is None
        assert plan.take("urn:a", "Ping", 3) is not None

    def test_always_with_limit(self):
        plan = FaultPlan().always(FaultKind.TIMEOUT, limit=2)
        assert plan.take("u", "o", 1) is not None
        assert plan.take("u", "o", 2) is not None
        assert plan.take("u", "o", 3) is None

    def test_clear(self):
        plan = FaultPlan().at(1, FaultKind.DROP).always(FaultKind.TIMEOUT)
        plan.clear()
        assert plan.take("u", "o", 1) is None

    def test_parse_kind(self):
        assert FaultKind.parse("db-fail") is FaultKind.DB_FAIL
        assert FaultKind.parse("CRASH") is FaultKind.CRASH
        with pytest.raises(ValueError):
            FaultKind.parse("gremlins")

    def test_first_match_wins(self):
        plan = FaultPlan()
        plan.specs.append(FaultSpec(kind=FaultKind.DROP, call_index=1))
        plan.specs.append(FaultSpec(kind=FaultKind.TIMEOUT, call_index=1))
        assert plan.take("u", "o", 1).kind is FaultKind.DROP
        # the second spec at the same index remains available
        assert plan.take("u", "o", 1).kind is FaultKind.TIMEOUT
