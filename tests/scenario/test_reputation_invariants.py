"""Reputation invariants: monotone-down, bounded-time isolation, and
TN-gated (no-bypass) churn replacement."""

import pytest

from repro.scenario.engine import ScenarioConfig, run_scenario
from repro.scenario.experiments import IsolationConfig, cheater_isolation
from repro.scenario.market import MarketConfig
from repro.vo.reputation import ReputationEvent

SCARCE = MarketConfig(
    capacity_per_provider=2, demand_per_seeker=4, gossip_scale=0.75,
)


def scarce_scenario(seed):
    return run_scenario(ScenarioConfig(
        seed=seed, rounds=14, agents=8, cheaters=1, seats=2,
        churn_every=3, market=SCARCE,
    ))


class TestMonotoneDown:
    def test_defection_deltas_never_positive(self):
        report = scarce_scenario(42)
        assert report.ok
        assert not any(
            v.invariant == "reputation-monotone-down"
            for v in report.violations
        )

    def test_every_ledger_is_monotone_on_violations(self):
        """Directly inspect the decentralized ledgers, not just the
        engine's own verdict."""
        from repro.scenario.population import Population
        import random
        from repro.scenario.market import run_market_round

        population = Population.build(
            agents=8, cheaters=2, seats=2, market=SCARCE,
        )
        rng = random.Random(11)
        for _ in range(10):
            run_market_round(
                population.traders, rng=rng, config=SCARCE,
            )
        saw_violation = False
        for trader in population.traders:
            last = {}
            for record in trader.ledger.history():
                if record.event is ReputationEvent.CONTRACT_VIOLATION:
                    saw_violation = True
                    assert record.delta < 0
                    if record.member in last:
                        assert record.score_after <= last[record.member]
                last[record.member] = record.score_after
        assert saw_violation, "scenario produced no defections to check"


class TestBoundedIsolation:
    @pytest.mark.parametrize("seed", [1, 2, 42])
    def test_cheater_isolated_within_15_rounds(self, seed):
        report = cheater_isolation(IsolationConfig(seed=seed))
        assert report.ok, (report.findings, [
            v.to_dict() for v in report.scenario.violations
        ])
        for record in report.scenario.cheater_records:
            assert record.detection_round is not None
            assert record.detection_round <= 15

    def test_isolation_is_sticky(self):
        report = scarce_scenario(42)
        for record in report.cheater_records:
            if record.detection_round is not None:
                assert record.final_reputation < SCARCE.isolation_threshold


class TestTNGatedChurn:
    def test_replacement_goes_through_real_admission(self):
        """Churn replacement negotiates through the guarded service —
        every admission is backed by a successful TN whose three
        operations the ProtocolGuard validated (no bypass)."""
        report = scarce_scenario(42)
        assert report.departures > 0
        assert report.replacements > 0
        assert report.admissions_total <= report.tn_successes
        assert report.guard_validated >= 3 * report.tn_successes
        assert report.guard_validated > 0

    def test_detected_cheater_never_wins_again(self):
        report = scarce_scenario(42)
        record = report.cheater_records[0]
        assert record.detection_round is not None
        assert record.wins_after_detection == 0
        assert not any(
            v.invariant == "isolated-cheater-admission"
            for v in report.violations
        )

    def test_impostor_readmission_rejected(self):
        report = scarce_scenario(42)
        assert report.byzantine_attempts > 0
        assert report.byzantine_successes == 0
