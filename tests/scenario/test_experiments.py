"""Exemplar experiments: the qualitative findings must hold."""

from repro.scenario.experiments import (
    IsolationConfig,
    MatrixConfig,
    ScarcityConfig,
    cheater_isolation,
    scarcity_market,
    two_agent_matrix,
)
from repro.scenario.market import AgentStrategy


class TestTwoAgentMatrix:
    def test_findings_hold(self):
        report = two_agent_matrix(MatrixConfig(seed=42))
        assert report.ok, report.findings
        assert report.findings["fair_fair_closes"]
        assert report.findings["fair_adaptive_closes"]
        assert report.findings["adaptive_adaptive_closes"]
        assert report.findings["greedy_patient_deadlocks"]
        assert report.findings["greedy_greedy_deadlocks"]
        assert report.findings["adaptive_converges"]

    def test_matrix_covers_all_pairs(self):
        report = two_agent_matrix(MatrixConfig(seed=1, rounds=5))
        assert len(report.cells) == 25
        for cell in report.cells.values():
            assert cell.encounters == 5

    def test_cell_rates(self):
        report = two_agent_matrix(MatrixConfig(seed=42))
        fair = report.cell(AgentStrategy.FAIR, AgentStrategy.FAIR)
        dead = report.cell(AgentStrategy.GREEDY, AgentStrategy.PATIENT)
        assert fair.close_rate > dead.close_rate

    def test_adaptive_steps_decline(self):
        config = MatrixConfig(seed=42)
        report = two_agent_matrix(config)
        cell = report.cell(AgentStrategy.ADAPTIVE, AgentStrategy.ADAPTIVE)
        early = cell.mean_steps(slice(None, config.window))
        late = cell.mean_steps(slice(-config.window, None))
        assert late < early

    def test_deterministic(self):
        config = MatrixConfig(seed=7, rounds=10)
        assert (two_agent_matrix(config).to_json()
                == two_agent_matrix(config).to_json())


class TestScarcityMarket:
    def test_findings_hold(self):
        report = scarcity_market(ScarcityConfig(seed=42))
        assert report.ok, report.findings
        assert report.findings["fair_provider_out_earns"]
        assert report.findings["adaptive_seeker_out_trades_greedy"]
        assert report.findings["rush_raises_prices"]
        assert report.findings["rush_lowers_service_ratio"]

    def test_rush_window_effects(self):
        report = scarcity_market(ScarcityConfig(seed=42))
        assert report.mean_price_rush > report.mean_price_normal
        assert report.service_ratio_rush < report.service_ratio_normal

    def test_deterministic(self):
        config = ScarcityConfig(seed=3, rounds=30, rush_start=15,
                                rush_end=20)
        assert (scarcity_market(config).to_json()
                == scarcity_market(config).to_json())


class TestCheaterIsolation:
    def test_findings_hold(self):
        report = cheater_isolation(IsolationConfig(seed=42))
        assert report.ok, report.findings
        assert report.findings["all_cheaters_detected"]
        assert report.findings["all_cheaters_expelled"]
        assert report.findings["win_rate_collapses"]
        assert report.findings["isolation_sticks"]

    def test_isolated_within_bound(self):
        config = IsolationConfig(seed=42)
        report = cheater_isolation(config)
        for record in report.scenario.cheater_records:
            assert record.detection_round is not None
            assert record.detection_round <= config.detection_rounds

    def test_win_rate_collapses_after_detection(self):
        """The acceptance claim: admissions before detection, none
        after."""
        report = cheater_isolation(IsolationConfig(seed=42))
        for record in report.scenario.cheater_records:
            assert record.wins_before_detection > 0
            assert record.wins_after_detection == 0

    def test_runs_on_real_tn_path(self):
        scenario = cheater_isolation(IsolationConfig(seed=42)).scenario
        assert scenario.tn_attempts > 0
        assert scenario.guard_validated >= 3 * scenario.tn_successes

    def test_deterministic(self):
        config = IsolationConfig(seed=5, rounds=10)
        assert (cheater_isolation(config).to_json()
                == cheater_isolation(config).to_json())
