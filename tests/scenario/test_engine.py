"""The open-world scenario engine on the real TN service path."""

import json

import pytest

from repro.scenario.engine import ScenarioConfig, run_scenario
from repro.scenario.market import MarketConfig
from repro.scenario.population import Population

SMALL = dict(seed=42, rounds=8, agents=6, cheaters=1, seats=2,
             churn_every=3)

#: Scarce market + strong gossip: cheaters keep finding victims until
#: decentralized reputation isolates them.
SCARCE = MarketConfig(
    capacity_per_provider=2, demand_per_seeker=4, gossip_scale=0.75,
)


class TestPopulation:
    def test_build_shape(self):
        population = Population.build(agents=7, cheaters=2, seats=2)
        assert len(population.traders) == 7
        assert len(population.cheaters()) == 2
        assert all(t.cheater for t in population.traders[:2])
        assert population.providers() and population.seekers()

    def test_validation(self):
        with pytest.raises(ValueError):
            Population.build(agents=1)
        with pytest.raises(ValueError):
            Population.build(agents=4, cheaters=3)

    def test_tn_agents_are_lazy(self):
        population = Population.build(agents=20, cheaters=0, seats=1)
        assert not population._tn_agents
        agent = population.tn_agent("agent-003")
        assert agent.name == "agent-003"
        assert population.tn_agent("agent-003") is agent
        assert len(population._tn_agents) == 1
        with pytest.raises(KeyError):
            population.tn_agent("agent-999")

    def test_impostor_has_wrong_key(self):
        population = Population.build(agents=4, cheaters=0, seats=1)
        victim = population.tn_agent("agent-001")
        impostor = population.impostor_of("agent-001")
        assert impostor.name == victim.name
        assert impostor.profile is victim.profile
        assert (impostor.keypair.fingerprint
                != victim.keypair.fingerprint)


class TestEngine:
    def test_small_scenario_passes(self):
        report = run_scenario(ScenarioConfig(**SMALL))
        assert report.ok, [v.to_dict() for v in report.violations]
        assert report.deals_closed > 0
        assert report.admissions_total > 0
        assert report.tn_successes >= report.admissions_total
        assert report.internal_errors == 0

    def test_deterministic_byte_identical(self):
        config = ScenarioConfig(**SMALL)
        assert (run_scenario(config).to_json()
                == run_scenario(config).to_json())

    def test_seed_changes_report(self):
        a = run_scenario(ScenarioConfig(**{**SMALL, "seed": 1}))
        b = run_scenario(ScenarioConfig(**{**SMALL, "seed": 2}))
        assert a.to_json() != b.to_json()

    def test_report_json_schema(self):
        report = run_scenario(ScenarioConfig(**SMALL))
        data = json.loads(report.to_json())
        for key in ("ok", "seed", "market", "tn", "membership",
                    "service", "cheaterRecords", "roundStates",
                    "finalWealth", "initiatorView", "violations"):
            assert key in data
        assert len(data["roundStates"]) == SMALL["rounds"]
        assert data["tn"]["attempts"] >= data["tn"]["successes"]

    def test_admissions_are_tn_gated(self):
        """Every admission corresponds to a successful negotiation
        through the guarded service path — 3 validated ops each."""
        report = run_scenario(ScenarioConfig(**SMALL))
        assert report.admissions_total <= report.tn_successes
        assert report.guard_validated >= 3 * report.tn_successes

    def test_dissolution_releases_sessions(self):
        report = run_scenario(ScenarioConfig(**SMALL))
        # The dissolution-release invariant did not fire, and the TTL
        # reaper closed whatever the lifecycle left open.
        assert report.ok
        assert not any(
            v.invariant == "dissolution-release"
            for v in report.violations
        )

    def test_rush_rounds_marked(self):
        report = run_scenario(ScenarioConfig(
            **SMALL, rush_start=2, rush_end=4,
        ))
        rushes = [state.rush for state in report.round_states]
        assert rushes[2] and rushes[3]
        assert not rushes[0] and not rushes[4]
        rush_demand = report.round_states[2].demand_units
        calm_demand = report.round_states[0].demand_units
        assert rush_demand > calm_demand

    def test_churn_produces_departures_and_replacements(self):
        report = run_scenario(ScenarioConfig(**SMALL))
        assert report.departures > 0
        assert report.replacements > 0

    def test_cheater_detected_in_scarce_market(self):
        report = run_scenario(ScenarioConfig(
            seed=42, rounds=12, agents=8, cheaters=1, seats=2,
            churn_every=3, market=SCARCE,
        ))
        assert report.ok, [v.to_dict() for v in report.violations]
        record = report.cheater_records[0]
        assert record.detection_round is not None
        assert record.wins_after_detection == 0
        assert record.expelled_round is not None
        assert record.final_reputation < SCARCE.isolation_threshold

    def test_expelled_cheater_impostor_rejected(self):
        report = run_scenario(ScenarioConfig(
            seed=42, rounds=12, agents=8, cheaters=1, seats=2,
            churn_every=3, market=SCARCE,
        ))
        assert report.byzantine_attempts > 0
        assert report.byzantine_successes == 0

    def test_config_validation(self):
        with pytest.raises(ValueError, match="seats"):
            ScenarioConfig(agents=3, seats=3)
        with pytest.raises(ValueError, match="round"):
            ScenarioConfig(rounds=0)
        with pytest.raises(TypeError):
            ScenarioConfig(42)

    def test_wealth_ledger_balances(self):
        report = run_scenario(ScenarioConfig(**SMALL))
        initial = len(report.final_wealth) * 100.0
        assert sum(report.final_wealth.values()) == pytest.approx(
            initial + report.value_created, rel=1e-6,
        )


class TestEngineCluster:
    def test_sharded_scenario_passes(self):
        report = run_scenario(ScenarioConfig(
            **SMALL, cluster_shards=2,
        ))
        assert report.ok, [v.to_dict() for v in report.violations]
        assert report.admissions_total > 0

    def test_cluster_cap_reported(self):
        report = run_scenario(ScenarioConfig(
            **SMALL, cluster_shards=2, cluster_max_in_flight=64,
        ))
        assert report.ok
        # Sequential negotiations never pile up 64 sessions.
        assert report.cluster_sheds == 0
