"""Synthetic workload generators."""

import pytest

from repro.negotiation.engine import negotiate
from repro.scenario.workloads import (
    bushy_workload,
    chain_workload,
    make_portfolio,
    overlapping_ontologies,
    random_ontology,
)
from repro.credentials.authority import CredentialAuthority


class TestChainWorkload:
    @pytest.mark.parametrize("depth", [1, 2, 5])
    def test_chain_depth_equals_disclosures(self, depth):
        fixture = chain_workload(depth)
        result = negotiate(
            fixture.requester, fixture.controller, fixture.resource,
            at=fixture.negotiation_time(),
        )
        assert result.success
        assert result.disclosures == depth

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            chain_workload(0)

    def test_deterministic_structure(self):
        left = chain_workload(3)
        right = chain_workload(3)
        assert len(left.requester.profile) == len(right.requester.profile)
        assert left.requester.policies.resources() == (
            right.requester.policies.resources()
        )


class TestBushyWorkload:
    def test_only_chosen_alternative_satisfiable(self):
        fixture = bushy_workload(alternatives=5, satisfiable_index=2)
        result = negotiate(
            fixture.requester, fixture.controller, fixture.resource,
            at=fixture.negotiation_time(),
        )
        assert result.success
        assert result.disclosures == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            bushy_workload(0)
        with pytest.raises(ValueError):
            bushy_workload(3, satisfiable_index=5)


class TestPortfolio:
    def test_size_and_owner(self):
        ca = CredentialAuthority.create("CA", key_bits=512)
        profile, keypair = make_portfolio("Owner", 10, ca)
        assert len(profile) == 10
        assert all(cred.subject == "Owner" for cred in profile)
        assert all(
            cred.subject_key == keypair.fingerprint for cred in profile
        )

    def test_seeded_determinism(self):
        ca = CredentialAuthority.create("CA", key_bits=512)
        left, _ = make_portfolio("O", 5, ca, seed=3)
        right, _ = make_portfolio("O", 5, ca, seed=3)
        assert [c.sensitivity for c in left] == [c.sensitivity for c in right]


class TestRandomOntology:
    def test_size(self):
        onto = random_ontology("x", 20)
        assert len(onto) == 20

    def test_seeded_determinism(self):
        assert random_ontology("x", 10, seed=5).names() == (
            random_ontology("x", 10, seed=5).names()
        )

    def test_no_cycles(self):
        onto = random_ontology("x", 30, is_a_probability=0.9)
        for name in onto.names():
            assert name not in onto.ancestors(name)


class TestOverlappingOntologies:
    def test_overlap_bounds(self):
        with pytest.raises(ValueError):
            overlapping_ontologies(10, 1.5)

    def test_shared_fraction(self):
        left, right = overlapping_ontologies(10, 0.5)
        unrelated = [n for n in right.names() if n.startswith("unrelated")]
        assert len(unrelated) == 5
