"""The Aircraft Optimization scenario builder."""

import pytest

from repro.negotiation.strategies import Strategy
from repro.scenario import build_aircraft_scenario
from repro.scenario.aircraft import (
    ROLE_DESIGN_PORTAL,
    ROLE_HPC,
    ROLE_OPTIMIZATION,
    ROLE_STORAGE,
    build_contract,
    enable_selective_disclosure,
)


@pytest.fixture(scope="module")
def scenario():
    return build_aircraft_scenario()


class TestContract:
    def test_four_roles(self):
        contract = build_contract()
        assert contract.role_names() == [
            ROLE_DESIGN_PORTAL, ROLE_OPTIMIZATION, ROLE_HPC, ROLE_STORAGE
        ]

    def test_design_portal_requirement_is_papers_policy(self):
        contract = build_contract()
        requirement = contract.role(ROLE_DESIGN_PORTAL).requirements[0]
        assert "WebDesignerQuality" in requirement
        assert "UNI EN ISO 9000" in requirement

    def test_hpc_has_alternative_requirements(self):
        contract = build_contract()
        assert len(contract.role(ROLE_HPC).requirements) == 2


class TestParties:
    def test_five_parties(self, scenario):
        assert scenario.initiator.name == "AircraftCo"
        assert set(scenario.members) == {
            "AerospaceCo", "OptimCo", "HPCServiceCo", "StorageCo"
        }

    def test_aerospace_holds_iso_9000(self, scenario):
        profile = scenario.member("AerospaceCo").agent.profile
        iso = profile.by_type("ISO 9000 Certified")[0]
        assert iso.value("QualityRegulation") == "UNI EN ISO 9000"
        assert iso.issuer == "INFN"  # as in paper Fig. 6

    def test_aerospace_policy_alternatives(self, scenario):
        """Paper Section 5.1: AAA accreditation OR balance sheet."""
        policies = scenario.member("AerospaceCo").agent.policies
        alternatives = policies.policies_for("ISO 9000 Certified")
        requested = {p.terms[0].name for p in alternatives}
        assert requested == {"AAA Member", "BalanceSheet"}

    def test_all_parties_share_the_reference_ontology(self, scenario):
        agents = [scenario.initiator.agent] + [
            member.agent for member in scenario.members.values()
        ]
        for agent in agents:
            assert agent.mapper is not None
            assert "WebDesignerQuality" in agent.mapper.ontology

    def test_keyrings_trust_all_authorities(self, scenario):
        agent = scenario.member("OptimCo").agent
        for name in scenario.authorities:
            assert agent.validator.keyring.trusts(name)


class TestSelectiveDisclosureEnablement:
    def test_every_credential_gets_selective_form(self):
        scenario = build_aircraft_scenario()
        enable_selective_disclosure(scenario)
        for member in scenario.members.values():
            agent = member.agent
            assert set(agent.selective) == {
                cred.cred_id for cred in agent.profile
            }

    def test_suspicious_formation_negotiation_succeeds(self):
        scenario = build_aircraft_scenario()
        enable_selective_disclosure(scenario)
        aero = scenario.member("AerospaceCo").agent
        aircraft = scenario.initiator.agent
        aero.strategy = Strategy.SUSPICIOUS
        aircraft.strategy = Strategy.SUSPICIOUS
        scenario.initiator.define_vo_policies(scenario.contract)
        from repro.negotiation.engine import negotiate

        role = scenario.contract.role(ROLE_DESIGN_PORTAL)
        result = negotiate(
            aero, aircraft,
            role.membership_resource(scenario.contract.vo_name),
            at=scenario.contract.created_at,
        )
        assert result.success, result.failure_detail
