"""`repro scenarios`: deterministic JSON and the acceptance claims."""

import json

from repro.cli import main


def run_report(tmp_path, name, argv):
    path = tmp_path / name
    code = main(argv + ["--report", str(path)])
    return code, path.read_bytes()


class TestScenariosCommand:
    def test_quick_run_exits_zero(self, tmp_path, capsys):
        code, raw = run_report(
            tmp_path, "report.json",
            ["scenarios", "--seed", "42", "--quick"],
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        data = json.loads(raw)
        assert data["ok"] is True
        assert data["seed"] == 42

    def test_seed_42_is_byte_identical(self, tmp_path):
        """Acceptance: two runs of `repro scenarios --seed 42` emit
        byte-identical JSON."""
        argv = ["scenarios", "--seed", "42", "--quick"]
        _, first = run_report(tmp_path, "a.json", argv)
        _, second = run_report(tmp_path, "b.json", argv)
        assert first == second

    def test_cheater_win_rate_collapses(self, tmp_path):
        """Acceptance: the cheater-isolation experiment shows the
        admission win rate collapsing after detection."""
        code, raw = run_report(
            tmp_path, "report.json",
            ["scenarios", "--seed", "42", "--quick"],
        )
        assert code == 0
        isolation = json.loads(raw)["experiments"]["cheaterIsolation"]
        assert isolation["findings"]["win_rate_collapses"] is True
        for record in isolation["scenario"]["cheaterRecords"]:
            assert record["winsBeforeDetection"] > 0
            assert record["winsAfterDetection"] == 0

    def test_open_world_preset_only(self, tmp_path, capsys):
        code, raw = run_report(
            tmp_path, "report.json",
            ["scenarios", "--seed", "7", "--preset", "open-world",
             "--quick", "--agents", "8", "--cheaters", "1",
             "--seats", "2"],
        )
        assert code == 0
        data = json.loads(raw)
        assert "openWorld" in data
        assert "experiments" not in data
        assert len(data["openWorld"]["roundStates"]) > 0

    def test_matrix_preset(self, tmp_path):
        code, raw = run_report(
            tmp_path, "report.json",
            ["scenarios", "--seed", "3", "--preset", "matrix", "--quick"],
        )
        assert code == 0
        data = json.loads(raw)
        assert set(data["experiments"]) == {"twoAgentMatrix"}

    def test_sharded_open_world(self, tmp_path):
        code, raw = run_report(
            tmp_path, "report.json",
            ["scenarios", "--seed", "42", "--preset", "open-world",
             "--quick", "--shards", "2", "--agents", "8",
             "--cheaters", "1", "--seats", "2"],
        )
        assert code == 0
        assert json.loads(raw)["openWorld"]["ok"] is True
