"""The WorkloadRunner: presets, dispatch, and the soak shim."""

import pytest

from repro.errors import VOError
from repro.hardening.soak import SoakConfig, run_soak
from repro.scenario.experiments import MatrixConfig
from repro.scenario.runner import WorkloadPreset, WorkloadRunner


class TestRegistry:
    def test_default_presets(self):
        runner = WorkloadRunner()
        assert runner.names() == [
            "cheater-isolation", "scarcity", "scenario", "soak",
            "two-agent-matrix",
        ]

    def test_preset_lookup(self):
        runner = WorkloadRunner()
        preset = runner.preset("soak")
        assert preset.config_type is SoakConfig
        with pytest.raises(VOError, match="unknown workload"):
            runner.preset("bake-off")

    def test_duplicate_register_rejected(self):
        runner = WorkloadRunner()
        with pytest.raises(VOError, match="duplicate"):
            runner.register(WorkloadPreset(
                name="soak", config_type=SoakConfig,
                description="again", run=lambda config: None,
            ))

    def test_custom_preset_runs(self):
        runner = WorkloadRunner(presets=())
        runner.register(WorkloadPreset(
            name="echo", config_type=MatrixConfig,
            description="echo the config",
            run=lambda config: config.seed,
        ))
        assert runner.run("echo", seed=9) == 9
        assert runner.run(MatrixConfig(seed=11)) == 11


class TestDispatch:
    def test_run_by_name_with_overrides(self):
        report = WorkloadRunner().run(
            "two-agent-matrix", seed=1, rounds=5,
        )
        assert report.seed == 1 and report.rounds == 5

    def test_run_by_config_instance(self):
        report = WorkloadRunner().run(MatrixConfig(seed=2, rounds=4))
        assert report.seed == 2 and report.rounds == 4

    def test_instance_plus_overrides_rejected(self):
        with pytest.raises(VOError, match="overrides"):
            WorkloadRunner().run(MatrixConfig(seed=2), rounds=4)

    def test_unknown_config_type_rejected(self):
        with pytest.raises(VOError, match="no workload preset"):
            WorkloadRunner().run(object())

    def test_bad_override_reports_workload(self):
        with pytest.raises(VOError, match="two-agent-matrix"):
            WorkloadRunner().config("two-agent-matrix", bogus=True)

    def test_config_builds_with_overrides(self):
        config = WorkloadRunner().config("soak", seed=3, negotiations=7)
        assert isinstance(config, SoakConfig)
        assert (config.seed, config.negotiations) == (3, 7)


class TestSoakPreset:
    def test_soak_is_a_preset(self):
        report = WorkloadRunner().run(
            "soak", seed=7, negotiations=10, roles=2,
        )
        assert report.ok, [v.to_dict() for v in report.violations]

    def test_deprecated_run_soak_warns_and_matches(self):
        """The old direct call warns but produces the identical
        report."""
        config = SoakConfig(seed=7, negotiations=10, roles=2)
        with pytest.warns(DeprecationWarning, match="WorkloadRunner"):
            legacy = run_soak(config)
        modern = WorkloadRunner().run(config)
        assert legacy.to_json() == modern.to_json()

    def test_runner_path_does_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            WorkloadRunner().run("soak", seed=7, negotiations=5, roles=2)
