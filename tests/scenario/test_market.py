"""The market layer: strategies, haggling, settlement, gossip."""

import random

import pytest

from repro.errors import VOError
from repro.scenario.market import (
    AgentStrategy,
    MarketConfig,
    haggle,
    make_trader,
    record_defection,
    run_market_round,
)
from repro.vo.reputation import ReputationEvent


def traders_for(*specs, config=None):
    config = config or MarketConfig()
    return [
        make_trader(f"t{i}-{strategy.value}", strategy,
                    provider=provider, config=config)
        for i, (strategy, provider) in enumerate(specs)
    ]


class TestStrategy:
    def test_parse_roundtrip(self):
        for strategy in AgentStrategy:
            assert AgentStrategy.parse(strategy.value) is strategy
        assert AgentStrategy.parse("  Fair ") is AgentStrategy.FAIR

    def test_parse_unknown_raises(self):
        with pytest.raises(VOError, match="unknown agent strategy"):
            AgentStrategy.parse("ruthless")

    def test_cheater_flag(self):
        cheater, honest = traders_for(
            (AgentStrategy.CHEATER, True), (AgentStrategy.FAIR, True),
        )
        assert cheater.cheater and not honest.cheater


class TestHaggle:
    def test_fair_fair_closes(self):
        config = MarketConfig()
        provider, seeker = traders_for(
            (AgentStrategy.FAIR, True), (AgentStrategy.FAIR, False),
        )
        outcome = haggle(provider, seeker, cost=8.0, valuation=14.0,
                         config=config)
        assert outcome.closed
        assert 8.0 <= outcome.price <= 14.0

    def test_greedy_patient_deadlocks(self):
        config = MarketConfig()
        provider, seeker = traders_for(
            (AgentStrategy.GREEDY, True), (AgentStrategy.PATIENT, False),
        )
        outcome = haggle(provider, seeker, cost=8.0, valuation=14.0,
                         config=config)
        assert not outcome.closed

    def test_price_respects_reservations(self):
        config = MarketConfig()
        for p in AgentStrategy:
            for s in AgentStrategy:
                provider, seeker = traders_for((p, True), (s, False))
                outcome = haggle(provider, seeker, cost=8.0,
                                 valuation=14.0, config=config)
                if outcome.closed:
                    # Midpoint closes may sit half an accept-window
                    # outside the reservations, never more.
                    slack = config.accept_window * config.base_price / 2
                    assert 8.0 - slack <= outcome.price <= 14.0 + slack

    def test_adaptive_estimate_learns(self):
        config = MarketConfig()
        provider, seeker = traders_for(
            (AgentStrategy.FAIR, True), (AgentStrategy.ADAPTIVE, False),
        )
        before = seeker.price_estimate
        assert before < config.base_price  # seeded deliberately low
        for _ in range(10):
            haggle(provider, seeker, cost=8.0, valuation=14.0,
                   config=config)
        assert seeker.price_estimate > before


class TestRound:
    def test_round_is_deterministic(self):
        config = MarketConfig()

        def run():
            traders = traders_for(
                (AgentStrategy.FAIR, True), (AgentStrategy.GREEDY, True),
                (AgentStrategy.ADAPTIVE, False), (AgentStrategy.FAIR, False),
            )
            rng = random.Random(9)
            outs = [
                run_market_round(traders, rng=rng, config=config)
                for _ in range(5)
            ]
            return [
                (len(o.deals), o.failed, o.mean_price, o.unserved_units)
                for o in outs
            ], [t.wealth for t in traders]

        assert run() == run()

    def test_rush_multiplies_demand(self):
        config = MarketConfig()
        traders = traders_for(
            (AgentStrategy.FAIR, True), (AgentStrategy.FAIR, False),
        )
        normal = run_market_round(
            traders, rng=random.Random(1), config=config, rush=False,
        )
        rush = run_market_round(
            traders, rng=random.Random(1), config=config, rush=True,
        )
        assert rush.demand_units == (
            normal.demand_units * config.rush_multiplier
        )

    def test_wealth_conserved_up_to_value_created(self):
        config = MarketConfig()
        traders = traders_for(
            (AgentStrategy.CHEATER, True), (AgentStrategy.FAIR, True),
            (AgentStrategy.FAIR, False), (AgentStrategy.ADAPTIVE, False),
        )
        initial = sum(t.wealth for t in traders)
        rng = random.Random(3)
        created = 0.0
        for _ in range(10):
            outcome = run_market_round(traders, rng=rng, config=config)
            created += outcome.value_created
        assert sum(t.wealth for t in traders) == pytest.approx(
            initial + created
        )

    def test_isolated_counterpart_is_refused(self):
        config = MarketConfig()
        provider, seeker = traders_for(
            (AgentStrategy.FAIR, True), (AgentStrategy.FAIR, False),
        )
        seeker.ledger.record(
            provider.name, ReputationEvent.CONTRACT_VIOLATION,
            scale=2.0,  # 0.5 - 0.4 < 0.3 -> isolated
        )
        outcome = run_market_round(
            [provider, seeker], rng=random.Random(4), config=config,
        )
        assert not outcome.deals
        assert outcome.isolation_refusals > 0

    def test_cheater_defects_and_everyone_hears(self):
        config = MarketConfig()  # cheat_probability = 1.0
        traders = traders_for(
            (AgentStrategy.CHEATER, True), (AgentStrategy.FAIR, False),
            (AgentStrategy.FAIR, True), (AgentStrategy.FAIR, False),
        )
        cheater = traders[0]
        outcome = run_market_round(
            traders, rng=random.Random(5), config=config,
        )
        assert outcome.defections
        victim_names = {d.victim for d in outcome.defections}
        for trader in traders[1:]:
            expected = (
                config.defection_scale if trader.name in victim_names
                else config.defection_scale * config.gossip_scale
            )
            history = trader.ledger.history(cheater.name)
            violations = [
                r for r in history
                if r.event is ReputationEvent.CONTRACT_VIOLATION
            ]
            assert violations, f"{trader.name} never heard the gossip"
            assert violations[0].delta == pytest.approx(
                ReputationEvent.CONTRACT_VIOLATION.delta * expected
            )

    def test_defected_deal_delivers_nothing(self):
        config = MarketConfig()
        traders = traders_for(
            (AgentStrategy.CHEATER, True), (AgentStrategy.FAIR, False),
        )
        outcome = run_market_round(
            traders, rng=random.Random(6), config=config,
        )
        assert all(d.defected for d in outcome.deals)
        assert traders[1].resources == 0
        assert outcome.value_created == 0.0


class TestRecordDefection:
    def test_offender_does_not_indict_itself(self):
        config = MarketConfig()
        traders = traders_for(
            (AgentStrategy.CHEATER, True), (AgentStrategy.FAIR, False),
        )
        record_defection(
            traders, traders[0].name, traders[1].name, config,
        )
        assert not traders[0].ledger.history(traders[0].name)

    def test_extra_observers_hear_gossip(self):
        from repro.vo.reputation import ReputationSystem

        config = MarketConfig()
        traders = traders_for(
            (AgentStrategy.CHEATER, True), (AgentStrategy.FAIR, False),
        )
        initiator = ReputationSystem()
        record_defection(
            traders, traders[0].name, traders[1].name, config,
            extra_observers=(initiator,),
        )
        assert initiator.score(traders[0].name) < 0.5

    def test_deltas_strictly_negative(self):
        config = MarketConfig()
        traders = traders_for(
            (AgentStrategy.CHEATER, True), (AgentStrategy.FAIR, False),
            (AgentStrategy.FAIR, True),
        )
        record_defection(
            traders, traders[0].name, traders[1].name, config,
        )
        for trader in traders[1:]:
            for record in trader.ledger.history(traders[0].name):
                assert record.delta < 0
