"""The hot-path memoization layer (``repro.perf``)."""

import pytest

from repro.perf import (
    CANONICAL_CACHE,
    DIGEST_CACHE,
    SIGNATURE_CACHE,
    XPATH_CACHE,
    LRUCache,
    all_caches,
    all_stats,
    caches_disabled,
    caches_enabled,
    clear_all_caches,
    drop_issuer_signatures,
    invalidate_issuer_signatures,
    set_caches_enabled,
)


@pytest.fixture(autouse=True)
def fresh_caches():
    """Every test starts and ends with empty shared caches."""
    clear_all_caches(reset_counters=True)
    yield
    set_caches_enabled(True)
    clear_all_caches(reset_counters=True)


class TestLRUCache:
    def test_put_get_and_counters(self):
        cache = LRUCache("t-basic", capacity=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_get_or_compute_memoizes(self):
        cache = LRUCache("t-memo", capacity=4)
        calls = []
        value = cache.get_or_compute("k", lambda: calls.append(1) or 42)
        again = cache.get_or_compute("k", lambda: calls.append(1) or 42)
        assert value == again == 42
        assert len(calls) == 1

    def test_eviction_is_lru_ordered(self):
        cache = LRUCache("t-evict", capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now oldest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats().evictions == 1
        assert len(cache) == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUCache("t-bad", capacity=0)

    def test_invalidate_single_key(self):
        cache = LRUCache("t-inv", capacity=4)
        cache.put("a", 1)
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        assert cache.get("a") is None
        assert cache.stats().invalidations == 1

    def test_invalidate_tag_drops_only_that_tag(self):
        cache = LRUCache("t-tag", capacity=8)
        cache.put("a1", 1, tag="alice")
        cache.put("a2", 2, tag="alice")
        cache.put("b1", 3, tag="bob")
        cache.put("plain", 4)
        assert cache.invalidate_tag("alice") == 2
        assert cache.get("a1") is None and cache.get("a2") is None
        assert cache.get("b1") == 3
        assert cache.get("plain") == 4
        assert cache.invalidate_tag("alice") == 0

    def test_retag_moves_entry_between_tags(self):
        cache = LRUCache("t-retag", capacity=8)
        cache.put("k", 1, tag="old")
        cache.put("k", 2, tag="new")
        assert cache.invalidate_tag("old") == 0
        assert cache.get("k") == 2
        assert cache.invalidate_tag("new") == 1

    def test_invalidate_where(self):
        cache = LRUCache("t-where", capacity=8)
        for index in range(6):
            cache.put(("k", index), index)
        dropped = cache.invalidate_where(lambda key: key[1] % 2 == 0)
        assert dropped == 3
        assert cache.get(("k", 1)) == 1
        assert cache.get(("k", 2)) is None

    def test_clear_counts_invalidations_reset_zeroes(self):
        cache = LRUCache("t-clear", capacity=8)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().invalidations == 2
        cache.reset()
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.evictions,
                stats.invalidations) == (0, 0, 0, 0)

    def test_eviction_drops_tag_bookkeeping(self):
        cache = LRUCache("t-evtag", capacity=1)
        cache.put("a", 1, tag="shared")
        cache.put("b", 2, tag="shared")  # evicts "a"
        assert cache.invalidate_tag("shared") == 1  # only "b" remains


class TestRegistryAndSwitch:
    def test_shared_instances_are_registered(self):
        caches = all_caches()
        for instance in (XPATH_CACHE, CANONICAL_CACHE, DIGEST_CACHE,
                         SIGNATURE_CACHE):
            assert instance in caches
        stats = all_stats()
        assert "xpath_ast" in stats and "signature_verify" in stats

    def test_disabled_bypasses_and_clears(self):
        cache = LRUCache("t-switch", capacity=4)
        cache.put("k", 1)
        calls = []
        with caches_disabled():
            assert not caches_enabled()
            # Bypass: compute runs every time, nothing is stored.
            cache.get_or_compute("k", lambda: calls.append(1) or 99)
            cache.get_or_compute("k", lambda: calls.append(1) or 99)
            assert len(calls) == 2
            cache.put("other", 2)
            assert len(cache) == 0
        assert caches_enabled()
        # Disabling cleared the pre-existing entry too.
        assert cache.get("k") is None

    def test_clear_all_caches(self):
        cache = LRUCache("t-global", capacity=4)
        cache.put("k", 1)
        clear_all_caches()
        assert len(cache) == 0


class TestXPathCache:
    def test_ast_is_shared_between_compilations(self):
        from repro.xmlutil.xpath import XPath

        first = XPath("/Credential/Attr[@name='x']")
        second = XPath("/Credential/Attr[@name='x']")
        assert first._ast is second._ast
        assert XPATH_CACHE.stats().hits >= 1

    def test_disabled_still_parses(self):
        from repro.xmlutil.xpath import XPath

        with caches_disabled():
            first = XPath("/Credential/Other")
            second = XPath("/Credential/Other")
            assert first._ast is not second._ast
        assert len(XPATH_CACHE) == 0


class TestSignatureCacheInvalidation:
    def test_issuer_sweep_targets_one_issuer(self):
        """The whole-issuer sweep matches both the per-credential
        ``(issuer, serial)`` tags and the legacy bare issuer tag."""
        SIGNATURE_CACHE.put(("fp1", b"d1", "sig1"), True, tag=("INFN", 1))
        SIGNATURE_CACHE.put(("fp1", b"d2", "sig2"), True, tag="INFN")
        SIGNATURE_CACHE.put(("fp2", b"d3", "sig3"), True, tag=("GridCA", 7))
        assert drop_issuer_signatures("INFN") == 2
        assert SIGNATURE_CACHE.get(("fp2", b"d3", "sig3")) is True
        assert SIGNATURE_CACHE.get(("fp1", b"d1", "sig1")) is None

    def test_serial_invalidation_spares_issuer_siblings(self):
        """Retraction-grade precision: evicting one ``(issuer, serial)``
        tag leaves the issuer's other credentials cached."""
        SIGNATURE_CACHE.put(("fp1", b"d1", "sig1"), True, tag=("INFN", 1))
        SIGNATURE_CACHE.put(("fp1", b"d2", "sig2"), True, tag=("INFN", 2))
        assert SIGNATURE_CACHE.invalidate_tag(("INFN", 1)) == 1
        assert SIGNATURE_CACHE.get(("fp1", b"d1", "sig1")) is None
        assert SIGNATURE_CACHE.get(("fp1", b"d2", "sig2")) is True

    def test_invalidate_tags_predicate(self):
        SIGNATURE_CACHE.put(("fp1", b"d1", "sig1"), True, tag=("INFN", 1))
        SIGNATURE_CACHE.put(("fp1", b"d2", "sig2"), True, tag=("INFN", 9))
        evicted = SIGNATURE_CACHE.invalidate_tags(
            lambda tag: isinstance(tag, tuple) and tag[1] > 5
        )
        assert evicted == 1
        assert SIGNATURE_CACHE.get(("fp1", b"d1", "sig1")) is True

    def test_deprecated_alias_warns_and_sweeps(self):
        SIGNATURE_CACHE.put(("fp1", b"d1", "sig1"), True, tag=("INFN", 1))
        with pytest.deprecated_call():
            assert invalidate_issuer_signatures("INFN") == 1
