"""Revocation must never be masked by the signature-verification cache.

Revocation is the one nonmonotonic event of the trust model: a
credential whose signature verified (and was memoized) can stop being
acceptable at any moment.  Two paths must both stay correct:

- a *published* revocation list drops the issuer's cached verdicts
  (:meth:`RevocationRegistry.publish` → tag invalidation), and
- even an *in-place* CRL mutation (no re-publish) is caught, because
  the cache memoizes only the pure cryptographic verdict — the
  revocation check itself runs fresh on every validation.
"""

import pytest

from repro.credentials.authority import CredentialAuthority
from repro.credentials.revocation import RevocationRegistry
from repro.credentials.validation import CredentialValidator
from repro.crypto.keys import KeyPair, Keyring
from repro.errors import CredentialRevokedError
from repro.perf import SIGNATURE_CACHE, clear_all_caches
from repro.trust import TrustBus
from tests.conftest import ISSUE_AT, NEGOTIATION_AT


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_all_caches(reset_counters=True)
    yield
    clear_all_caches(reset_counters=True)


@pytest.fixture()
def world():
    ca = CredentialAuthority.create("CA", key_bits=512)
    ring = Keyring()
    ring.add("CA", ca.public_key)
    registry = RevocationRegistry()
    TrustBus(registry=registry).publish_crl(ca.crl)
    holder_key = KeyPair.generate(512)
    credential = ca.issue(
        "Badge", "Holder", holder_key.fingerprint, {"a": 1}, ISSUE_AT,
        days=365,
    )
    return ca, registry, credential, CredentialValidator(ring, registry)


class TestRevokedAfterCachedVerification:
    def test_published_revocation_fails_reverification(self, world):
        ca, registry, credential, validator = world
        assert validator.validate(credential, NEGOTIATION_AT).ok
        before = SIGNATURE_CACHE.stats()
        assert before.size >= 1  # the verdict was memoized
        # Re-validation hits the cache while the credential is good.
        assert validator.validate(credential, NEGOTIATION_AT).ok
        assert SIGNATURE_CACHE.stats().hits > before.hits

        TrustBus(registry=registry).revoke(ca, credential)
        # The retraction dropped the revoked serial's cached verdicts...
        assert SIGNATURE_CACHE.stats().invalidations >= 1
        # ...and re-verification now fails on the revocation check.
        report = validator.validate(credential, NEGOTIATION_AT)
        assert not report.ok
        assert report.signature_ok  # the signature itself is still valid
        assert not report.not_revoked
        with pytest.raises(CredentialRevokedError):
            report.raise_for_failure()

    def test_in_place_revocation_not_masked_by_cache(self, world):
        ca, registry, credential, validator = world
        assert validator.validate(credential, NEGOTIATION_AT).ok
        # Mutate the already-published CRL without re-publishing: no
        # cache invalidation fires, so a cached signature verdict is
        # still served — and the validation must fail anyway.
        ca.crl.revoke(credential.serial)
        hits_before = SIGNATURE_CACHE.stats().hits
        report = validator.validate(credential, NEGOTIATION_AT)
        assert SIGNATURE_CACHE.stats().hits > hits_before
        assert not report.ok
        assert not report.not_revoked

    def test_stale_crl_republish_is_rejected(self, world):
        ca, registry, credential, validator = world
        from repro.credentials.revocation import RevocationList
        from repro.errors import SignatureError

        bus = TrustBus(registry=registry)
        bus.revoke(ca, credential)
        stale = RevocationList(issuer="CA", version=0)
        with pytest.raises(SignatureError):
            bus.publish_crl(stale)
