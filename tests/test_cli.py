"""The command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "SUCCESS" in out
        assert "disclose" in out

    def test_lifecycle(self, capsys):
        assert main(["lifecycle"]) == 0
        out = capsys.readouterr().out
        assert "formation" in out
        assert "dissolution: 4 participation tickets issued" in out

    def test_negotiate_success(self, capsys):
        code = main([
            "negotiate", "ISO 002 Certification",
            "--requester", "OptimCo", "--controller", "AerospaceCo",
        ])
        assert code == 0
        assert "SUCCESS" in capsys.readouterr().out

    def test_negotiate_failure_exit_code(self, capsys):
        code = main([
            "negotiate", "PrimeContractorLicense",
            "--requester", "StorageCo", "--controller", "AircraftCo",
        ])
        # StorageCo holds no AAA membership: the license stays locked.
        assert code == 1
        assert "FAILURE" in capsys.readouterr().out

    def test_negotiate_unknown_party(self, capsys):
        with pytest.raises(SystemExit):
            main(["negotiate", "X", "--requester", "Nobody"])

    def test_negotiate_verbose_prints_transcript(self, capsys):
        main([
            "negotiate", "ISO 002 Certification",
            "--requester", "OptimCo", "--controller", "AerospaceCo", "-v",
        ])
        assert "policy" in capsys.readouterr().out

    def test_policy_roundtrip(self, capsys):
        code = main([
            "policy", "--text", "R <- A(score>=3), B", "--xml", "--xacml",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "DSL:" in out
        assert "X-TNL:" in out
        assert "XACML" in out

    def test_policy_empty_input(self, capsys):
        assert main(["policy", "--text", "# only a comment"]) == 1

    def test_tree_ascii(self, capsys):
        assert main(["tree"]) == 0
        out = capsys.readouterr().out
        assert "alt 0" in out
        assert "[AerospaceCo]" in out

    def test_tree_dot(self, capsys):
        assert main(["tree", "--format", "dot"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_fig9(self, capsys):
        assert main(["fig9"]) == 0
        out = capsys.readouterr().out
        assert "overhead ratio" in out
        assert "paper ~3000" in out

    def test_trace_parallel(self, capsys):
        from repro import obs

        assert main(["trace", "--roles", "3"]) == 0
        obs.disable()
        out = capsys.readouterr().out
        assert "3/3 joined (parallel" in out
        assert "1 root(s), 0 orphan(s)" in out
        assert "vo.formation" in out
        assert "tn.negotiation" in out

    def test_trace_json_and_events(self, capsys, tmp_path):
        import json

        from repro import obs

        path = tmp_path / "trace.json"
        code = main([
            "trace", "--roles", "2", "--serial",
            "--json", str(path), "--events",
        ])
        obs.disable()
        assert code == 0
        out = capsys.readouterr().out
        assert "2/2 joined (serial" in out
        assert f"chrome trace written to {path}" in out
        trace = json.loads(path.read_text())
        assert any(
            e["name"] == "vo.formation" for e in trace["traceEvents"]
        )
