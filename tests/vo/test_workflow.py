"""The Fig. 1 operation workflow."""

import pytest

from repro.errors import LifecycleError, VOError
from repro.scenario import build_aircraft_scenario
from repro.scenario.aircraft import (
    ROLE_DESIGN_PORTAL,
    ROLE_HPC,
    ROLE_OPTIMIZATION,
    build_fig1_workflow,
)
from repro.vo.organization import VirtualOrganization
from repro.vo.workflow import OperationWorkflow, WorkflowStep


@pytest.fixture()
def operating():
    scenario = build_aircraft_scenario()
    vo = VirtualOrganization(
        contract=scenario.contract, initiator=scenario.initiator
    )
    vo.identify()
    vo.form(
        scenario.host.registry, scenario.host.directory(),
        at=scenario.contract.created_at,
    )
    vo.begin_operation()
    return scenario, vo


class TestFig1Workflow:
    def test_full_run_completes(self, operating):
        scenario, vo = operating
        workflow = build_fig1_workflow(vo)
        run = workflow.execute(
            at=scenario.contract.created_at, iterations=3
        )
        assert run.completed
        assert run.iterations == 3
        # 4 one-shot steps + 2 iterative steps x 3 iterations.
        assert run.steps_run() == 4 + 2 * 3

    def test_certification_recheck_negotiated_once(self, operating):
        """The dashed-arrow TN of Fig. 1 (arrow 3a) runs exactly once,
        for the protected control-file access."""
        scenario, vo = operating
        workflow = build_fig1_workflow(vo)
        run = workflow.execute(at=scenario.contract.created_at)
        assert run.negotiations_run() == 1
        protected = [
            execution for execution in run.executions
            if execution.negotiation is not None
        ]
        assert protected[0].step.name == "fetch-control-file"
        assert protected[0].negotiation.success

    def test_interactions_monitored(self, operating):
        scenario, vo = operating
        workflow = build_fig1_workflow(vo)
        run = workflow.execute(at=scenario.contract.created_at, iterations=2)
        assert len(vo.monitor.interactions()) == run.steps_run()

    def test_convergence_callback(self, operating):
        scenario, vo = operating
        workflow = build_fig1_workflow(vo)
        run = workflow.execute(
            at=scenario.contract.created_at,
            converged=lambda iteration: iteration >= 5,
        )
        assert run.iterations == 5

    def test_iteration_bound(self, operating):
        scenario, vo = operating
        workflow = build_fig1_workflow(vo)
        workflow.max_iterations = 4
        run = workflow.execute(
            at=scenario.contract.created_at,
            converged=lambda iteration: False,  # never converges
        )
        assert run.iterations == 4
        assert run.completed

    def test_failed_authorization_aborts(self, operating):
        """Revoking the portal's privacy seal breaks the control-file
        TN, aborting the workflow at that step."""
        scenario, vo = operating
        privacy = scenario.authority("PrivacyBoard")
        seal = scenario.member("OptimCo").agent.profile.by_type(
            "PrivacySealCertificate"
        )[0]
        scenario.bus.revoke(privacy, seal)
        workflow = build_fig1_workflow(vo)
        run = workflow.execute(at=scenario.contract.created_at)
        assert not run.completed
        assert run.aborted_at == "fetch-control-file"
        # The iterative block never started.
        assert run.steps_run() == 3


class TestWorkflowValidation:
    def test_unknown_role_rejected(self, operating):
        _, vo = operating
        with pytest.raises(VOError):
            OperationWorkflow(vo=vo, steps=(
                WorkflowStep("x", "GhostRole", ROLE_HPC, "op"),
            ))

    def test_requires_operation_phase(self):
        scenario = build_aircraft_scenario()
        vo = VirtualOrganization(
            contract=scenario.contract, initiator=scenario.initiator
        )
        workflow = build_fig1_workflow(vo)
        with pytest.raises(LifecycleError):
            workflow.execute()
