"""VO participation tickets issued at dissolution and used in the
next formation ("tickets attesting their participation to other VOs",
paper Section 5.1)."""

import pytest

from repro.scenario import build_aircraft_scenario
from repro.scenario.aircraft import ROLE_DESIGN_PORTAL, ROLE_HPC
from repro.vo.contract import Contract
from repro.vo.monitoring import ViolationKind
from repro.vo.organization import VirtualOrganization
from repro.vo.roles import Role


@pytest.fixture()
def dissolved():
    scenario = build_aircraft_scenario()
    vo = VirtualOrganization(
        contract=scenario.contract, initiator=scenario.initiator
    )
    vo.identify()
    vo.form(scenario.host.registry, scenario.host.directory(),
            at=scenario.contract.created_at)
    vo.begin_operation()
    vo.report_violation("HPCServiceCo", ViolationKind.QOS_DEGRADATION)
    tickets = vo.dissolve(at=scenario.contract.created_at)
    return scenario, vo, tickets


class TestTicketIssuance:
    def test_one_ticket_per_member(self, dissolved):
        scenario, vo, tickets = dissolved
        assert len(tickets) == 4
        subjects = {ticket.subject for ticket in tickets}
        assert subjects == {
            "AerospaceCo", "OptimCo", "HPCServiceCo", "StorageCo"
        }

    def test_tickets_land_in_member_profiles(self, dissolved):
        scenario, vo, tickets = dissolved
        for member in scenario.members.values():
            held = [
                cred
                for cred in member.agent.profile.by_type(
                    "VO Participation Ticket"
                )
                if cred.value("voName") == "AircraftOptimizationVO"
            ]
            assert len(held) == 1

    def test_outcome_reflects_conduct(self, dissolved):
        scenario, vo, tickets = dissolved
        by_subject = {ticket.subject: ticket for ticket in tickets}
        # AerospaceCo negotiated successfully and behaved: fulfilled.
        assert by_subject["AerospaceCo"].value("outcome") == "fulfilled"
        # HPCServiceCo violated QoS: the ticket says so.
        assert by_subject["HPCServiceCo"].value("outcome") == "violated"

    def test_ticket_records_role_and_reputation(self, dissolved):
        scenario, vo, tickets = dissolved
        by_subject = {ticket.subject: ticket for ticket in tickets}
        assert by_subject["AerospaceCo"].value("role") == ROLE_DESIGN_PORTAL
        assert 0.0 <= by_subject["AerospaceCo"].value("finalReputation") <= 1.0

    def test_ticket_verifies_under_initiator_key(self, dissolved):
        scenario, vo, tickets = dissolved
        member = scenario.member("OptimCo")
        report = member.agent.validator.validate(
            tickets[0], scenario.contract.created_at
        )
        assert report.signature_ok


class TestTicketsInNextFormation:
    def test_next_vo_requires_fulfilled_participation(self, dissolved):
        """A follow-up VO admits only members with a clean ticket."""
        scenario, old_vo, _ = dissolved
        followup = Contract(
            vo_name="FollowUpVO",
            business_goal="second project",
            roles=(
                Role(
                    "VeteranRole",
                    requirements=(
                        "VO Participation Ticket("
                        "voName='AircraftOptimizationVO', "
                        "outcome='fulfilled')",
                    ),
                ),
            ),
            created_at=scenario.contract.created_at,
        )
        from repro.vo.registry import ServiceDescription

        for provider in ("AerospaceCo", "HPCServiceCo"):
            scenario.host.registry.publish(ServiceDescription.of(
                provider, "veteran-service", ["VeteranRole"],
                quality=0.9 if provider == "HPCServiceCo" else 0.8,
            ))
        vo2 = VirtualOrganization(
            contract=followup, initiator=scenario.initiator
        )
        vo2.identify()
        reports = vo2.form(
            scenario.host.registry, scenario.host.directory(),
            at=scenario.contract.created_at,
        )
        report = reports["VeteranRole"]
        # HPCServiceCo's ticket says 'violated': its negotiation fails.
        assert "HPCServiceCo" in report.failed_negotiation
        # AerospaceCo's 'fulfilled' ticket admits it.
        assert report.admitted == "AerospaceCo"


class TestAutomatedSensitivity:
    def test_keyword_classifier(self):
        from repro.credentials.sensitivity import (
            Sensitivity, classify_sensitivity,
        )

        assert classify_sensitivity("BalanceSheet") is Sensitivity.HIGH
        assert classify_sensitivity("Passport", ["gender"]) is Sensitivity.HIGH
        assert classify_sensitivity("DrivingLicense") is Sensitivity.MEDIUM
        assert classify_sensitivity("PrivacySealCertificate") is (
            Sensitivity.MEDIUM
        )
        assert classify_sensitivity("AAA Member") is Sensitivity.LOW
        assert classify_sensitivity("HPC QoS Certificate") is Sensitivity.LOW

    def test_attributes_contribute(self):
        from repro.credentials.sensitivity import (
            Sensitivity, classify_sensitivity,
        )

        assert classify_sensitivity(
            "EmployeeRecord", ["salary", "grade"]
        ) is Sensitivity.HIGH

    def test_auto_labelling_at_issuance(self, infn, shared_keypair):
        from repro.credentials.sensitivity import AUTO, Sensitivity
        from tests.conftest import ISSUE_AT

        credential = infn.issue(
            "BalanceSheet", "S", shared_keypair.fingerprint,
            {"Issuer": "BBB"}, ISSUE_AT, sensitivity=AUTO,
        )
        assert credential.sensitivity is Sensitivity.HIGH
        plain = infn.issue(
            "AAA Member", "S", shared_keypair.fingerprint, {}, ISSUE_AT,
            sensitivity=AUTO,
        )
        assert plain.sensitivity is Sensitivity.LOW
