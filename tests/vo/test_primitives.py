"""VO primitives: roles, contracts, registry, reputation, invitations,
lifecycle, monitoring."""

import pytest

from repro.errors import (
    ContractError,
    InvitationError,
    LifecycleError,
    VOError,
)
from repro.vo.contract import Contract
from repro.vo.invitations import Invitation, InvitationStatus, Mailbox
from repro.vo.lifecycle import LifecycleTracker, VOPhase
from repro.vo.monitoring import OperationMonitor, ViolationKind
from repro.vo.registry import ServiceDescription, ServiceRegistry
from repro.vo.reputation import ReputationEvent, ReputationSystem
from repro.vo.roles import Role


class TestRole:
    def test_membership_resource_is_role_qualified(self):
        role = Role("HPCService")
        assert role.membership_resource("MyVO") == "VoMembership:MyVO:HPCService"

    def test_requirements_become_alternative_policies(self):
        role = Role("R", requirements=("A", "B(x>=1)"))
        dsl = role.membership_policies_dsl("MyVO")
        lines = dsl.splitlines()
        assert len(lines) == 2
        assert all(line.startswith("VoMembership:MyVO:R <- ") for line in lines)

    def test_no_requirements_is_delivery(self):
        assert Role("R").membership_policies_dsl("V").endswith("<- DELIV")

    def test_invalid_reputation_threshold(self):
        with pytest.raises(ContractError):
            Role("R", min_reputation=1.5)

    def test_empty_name_rejected(self):
        with pytest.raises(ContractError):
            Role("")


class TestContract:
    def _roles(self):
        return (Role("A"), Role("B"))

    def test_role_lookup(self):
        contract = Contract("VO", "goal", self._roles())
        assert contract.role("A").name == "A"
        with pytest.raises(ContractError):
            contract.role("C")

    def test_duplicate_roles_rejected(self):
        with pytest.raises(ContractError):
            Contract("VO", "goal", (Role("A"), Role("A")))

    def test_no_roles_rejected(self):
        with pytest.raises(ContractError):
            Contract("VO", "goal", ())

    def test_bad_duration_rejected(self):
        with pytest.raises(ContractError):
            Contract("VO", "goal", self._roles(), duration_days=0)

    def test_terms_text_mentions_requirements_and_rules(self):
        role = Role("A", description="does A", requirements=("Quality",))
        contract = Contract(
            "VO", "goal", (role,), collaboration_rules=("be nice",)
        )
        text = contract.terms_text(role)
        assert "Quality" in text
        assert "be nice" in text
        assert "does A" in text


class TestRegistry:
    def _description(self, provider="P", quality=0.5, roles=("R",)):
        return ServiceDescription.of(provider, "svc", list(roles),
                                     quality=quality)

    def test_publish_and_find_by_role(self):
        registry = ServiceRegistry()
        registry.publish(self._description())
        assert len(registry.find_by_role("R")) == 1
        assert registry.find_by_role("Other") == []

    def test_quality_ordering(self):
        registry = ServiceRegistry()
        registry.publish(self._description("Low", 0.2))
        registry.publish(self._description("High", 0.9))
        assert [d.provider for d in registry.find_by_role("R")] == [
            "High", "Low"
        ]

    def test_republish_overwrites(self):
        registry = ServiceRegistry()
        registry.publish(self._description(quality=0.2))
        registry.publish(self._description(quality=0.9))
        assert len(registry) == 1
        assert registry.find_by_role("R")[0].quality == 0.9

    def test_withdraw(self):
        registry = ServiceRegistry()
        registry.publish(self._description())
        registry.withdraw("P", "svc")
        assert len(registry) == 0
        with pytest.raises(VOError):
            registry.withdraw("P", "svc")

    def test_find_by_capability(self):
        registry = ServiceRegistry()
        registry.publish(ServiceDescription.of(
            "P", "svc", ["R"], capabilities={"qos": "gold"}
        ))
        assert len(registry.find_by_capability("qos", "gold")) == 1
        assert registry.find_by_capability("qos", "silver") == []

    def test_invalid_quality_rejected(self):
        with pytest.raises(VOError):
            ServiceDescription.of("P", "svc", ["R"], quality=1.5)


class TestReputation:
    def test_newcomer_default(self):
        assert ReputationSystem().score("anyone") == 0.5

    def test_positive_and_negative_events(self):
        system = ReputationSystem()
        system.record("M", ReputationEvent.OPERATION_SUCCESS)
        assert system.score("M") == pytest.approx(0.55)
        system.record("M", ReputationEvent.CONTRACT_VIOLATION)
        assert system.score("M") == pytest.approx(0.35)

    def test_clamped_to_unit_interval(self):
        system = ReputationSystem()
        for _ in range(10):
            system.record("Bad", ReputationEvent.RESOURCE_MISUSE)
        assert system.score("Bad") == 0.0
        for _ in range(30):
            system.record("Good", ReputationEvent.HIGH_QUALITY_SERVICE)
        assert system.score("Good") == 1.0

    def test_meets_threshold(self):
        system = ReputationSystem()
        assert system.meets("M", 0.5)
        assert not system.meets("M", 0.6)

    def test_history_is_audited(self):
        system = ReputationSystem()
        system.record("M", ReputationEvent.FAILED_NEGOTIATION, detail="x")
        records = system.history("M")
        assert len(records) == 1
        assert records[0].detail == "x"
        assert records[0].score_after == pytest.approx(0.45)

    def test_ranking(self):
        system = ReputationSystem()
        system.register("A", 0.9)
        system.register("B", 0.3)
        assert [name for name, _ in system.ranking()] == ["A", "B"]

    def test_scale(self):
        system = ReputationSystem()
        system.record("M", ReputationEvent.OPERATION_SUCCESS, scale=2.0)
        assert system.score("M") == pytest.approx(0.6)
        with pytest.raises(VOError):
            system.record("M", ReputationEvent.OPERATION_SUCCESS, scale=0)

    def test_invalid_initial_rejected(self):
        with pytest.raises(VOError):
            ReputationSystem().register("M", 2.0)


class TestInvitations:
    def _invitation(self):
        return Invitation("VO", "R", "Initiator", "Member", "terms")

    def test_accept(self):
        invitation = self._invitation()
        invitation.accept()
        assert invitation.status is InvitationStatus.ACCEPTED

    def test_double_response_rejected(self):
        invitation = self._invitation()
        invitation.decline()
        with pytest.raises(InvitationError):
            invitation.accept()

    def test_withdraw(self):
        invitation = self._invitation()
        invitation.withdraw()
        assert invitation.status is InvitationStatus.WITHDRAWN

    def test_mailbox_delivery(self):
        mailbox = Mailbox("Member")
        invitation = self._invitation()
        mailbox.deliver(invitation)
        assert mailbox.unread() == [invitation]
        assert mailbox.pending() == [invitation]
        assert len(mailbox) == 1

    def test_wrong_recipient_rejected(self):
        mailbox = Mailbox("SomeoneElse")
        with pytest.raises(InvitationError):
            mailbox.deliver(self._invitation())

    def test_mark_read(self):
        mailbox = Mailbox("Member")
        invitation = self._invitation()
        mailbox.deliver(invitation)
        mailbox.mark_read(invitation.invitation_id)
        assert mailbox.unread() == []
        assert mailbox.find(invitation.invitation_id) is invitation

    def test_find_unknown(self):
        assert Mailbox("M").find("ghost") is None


class TestLifecycle:
    def test_linear_progression(self):
        tracker = LifecycleTracker()
        for phase in (VOPhase.IDENTIFICATION, VOPhase.FORMATION,
                      VOPhase.OPERATION, VOPhase.DISSOLUTION):
            tracker.advance(phase)
        assert tracker.is_dissolved
        assert tracker.trace()[0] is VOPhase.PREPARATION

    def test_skipping_rejected(self):
        tracker = LifecycleTracker()
        with pytest.raises(LifecycleError):
            tracker.advance(VOPhase.OPERATION)

    def test_backwards_rejected(self):
        tracker = LifecycleTracker()
        tracker.advance(VOPhase.IDENTIFICATION)
        with pytest.raises(LifecycleError):
            tracker.advance(VOPhase.PREPARATION)

    def test_require_guard(self):
        tracker = LifecycleTracker()
        tracker.require(VOPhase.PREPARATION)
        with pytest.raises(LifecycleError):
            tracker.require(VOPhase.OPERATION)
        tracker.require(VOPhase.PREPARATION, VOPhase.OPERATION)


class TestMonitoring:
    def test_violation_notifies_subscribers(self):
        monitor = OperationMonitor()
        seen = []
        monitor.subscribe(seen.append)
        event = monitor.report_violation("M", ViolationKind.CONTRACT_BREACH)
        assert seen == [event]

    def test_violations_filtered_by_member(self):
        monitor = OperationMonitor()
        monitor.report_violation("A", ViolationKind.RESOURCE_MISUSE)
        monitor.report_violation("B", ViolationKind.QOS_DEGRADATION)
        assert len(monitor.violations()) == 2
        assert monitor.violation_count("A") == 1
        assert monitor.violations("B")[0].kind is ViolationKind.QOS_DEGRADATION

    def test_interactions_recorded(self):
        monitor = OperationMonitor()
        monitor.record_interaction("A", "B", "op", authorized=True)
        monitor.record_interaction("B", "C", "op2", authorized=False)
        interactions = monitor.interactions()
        assert len(interactions) == 2
        assert not interactions[1].authorized
