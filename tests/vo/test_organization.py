"""The Virtual Organization across its lifecycle (paper Figs. 3-4)."""

import pytest

from repro.errors import LifecycleError, MembershipError
from repro.scenario import build_aircraft_scenario
from repro.scenario.aircraft import (
    ROLE_DESIGN_PORTAL,
    ROLE_HPC,
    ROLE_OPTIMIZATION,
    ROLE_STORAGE,
)
from repro.vo.lifecycle import VOPhase
from repro.vo.monitoring import ViolationKind
from repro.vo.organization import VirtualOrganization
from repro.vo.reputation import ReputationEvent


@pytest.fixture()
def scenario():
    return build_aircraft_scenario()


@pytest.fixture()
def vo(scenario):
    return VirtualOrganization(
        contract=scenario.contract, initiator=scenario.initiator
    )


def form_vo(scenario, vo, **kwargs):
    vo.identify()
    return vo.form(
        scenario.host.registry, scenario.host.directory(),
        at=scenario.contract.created_at, **kwargs,
    )


class TestIdentification:
    def test_identify_installs_policies_and_advances(self, scenario, vo):
        installed = vo.identify()
        assert installed >= len(scenario.contract.roles)
        assert vo.lifecycle.phase is VOPhase.IDENTIFICATION

    def test_identify_twice_rejected(self, scenario, vo):
        vo.identify()
        with pytest.raises(LifecycleError):
            vo.identify()


class TestFormation:
    def test_all_roles_covered(self, scenario, vo):
        reports = form_vo(scenario, vo)
        assert all(report.covered for report in reports.values())
        assert vo.member_for(ROLE_DESIGN_PORTAL).name == "AerospaceCo"
        assert vo.member_for(ROLE_OPTIMIZATION).name == "OptimCo"
        assert vo.member_for(ROLE_HPC).name == "HPCServiceCo"
        assert vo.member_for(ROLE_STORAGE).name == "StorageCo"

    def test_members_hold_tokens(self, scenario, vo):
        form_vo(scenario, vo)
        for member in vo.members().values():
            token = member.token_for(vo.contract.vo_name)
            assert vo.verify_member(token, scenario.contract.created_at)

    def test_formation_negotiations_recorded(self, scenario, vo):
        reports = form_vo(scenario, vo)
        assert all(report.negotiations for report in reports.values())
        assert all(
            report.negotiations[-1].success for report in reports.values()
        )

    def test_successful_negotiation_boosts_reputation(self, scenario, vo):
        form_vo(scenario, vo)
        assert vo.reputation.score("AerospaceCo") > 0.5

    def test_reputation_gate_blocks_candidates(self, scenario, vo):
        vo.reputation.register("HPCServiceCo", 0.1)  # below the 0.3 gate
        reports = form_vo(scenario, vo)
        assert not reports[ROLE_HPC].covered
        assert "HPCServiceCo" in reports[ROLE_HPC].below_reputation

    def test_failed_negotiation_removes_candidate(self, scenario, vo):
        infn = scenario.authority("INFN")
        iso = scenario.member("AerospaceCo").agent.profile.by_type(
            "ISO 9000 Certified"
        )[0]
        scenario.bus.revoke(infn, iso)
        reports = form_vo(scenario, vo)
        assert not reports[ROLE_DESIGN_PORTAL].covered
        assert "AerospaceCo" in reports[ROLE_DESIGN_PORTAL].failed_negotiation
        assert vo.reputation.score("AerospaceCo") < 0.5

    def test_declining_member_recorded(self, scenario, vo):
        scenario.member("StorageCo").decision = lambda invitation: False
        reports = form_vo(scenario, vo)
        assert "StorageCo" in reports[ROLE_STORAGE].declined
        assert not reports[ROLE_STORAGE].covered

    def test_begin_operation_requires_full_coverage(self, scenario, vo):
        scenario.member("StorageCo").decision = lambda invitation: False
        form_vo(scenario, vo)
        with pytest.raises(MembershipError):
            vo.begin_operation()

    def test_begin_operation(self, scenario, vo):
        form_vo(scenario, vo)
        vo.begin_operation()
        assert vo.lifecycle.phase is VOPhase.OPERATION


class TestOperation:
    @pytest.fixture()
    def operating(self, scenario, vo):
        form_vo(scenario, vo)
        vo.begin_operation()
        return scenario, vo

    def test_authorization_tn(self, operating):
        """Paper Section 5.1: OptimCo re-verifies the ISO 002
        certification of the design portal months into the operation."""
        scenario, vo = operating
        result = vo.authorize_operation(
            ROLE_OPTIMIZATION, ROLE_DESIGN_PORTAL, "ISO 002 Certification",
            at=scenario.contract.created_at,
        )
        assert result.success
        assert vo.monitor.interactions()[-1].authorized

    def test_failed_authorization_hits_reputation(self, operating):
        """OptimCo's privacy seal was revoked, so the ISO 002
        re-verification TN fails and its reputation drops."""
        scenario, vo = operating
        privacy = scenario.authority("PrivacyBoard")
        seal = scenario.member("OptimCo").agent.profile.by_type(
            "PrivacySealCertificate"
        )[0]
        scenario.bus.revoke(privacy, seal)
        before = vo.reputation.score("OptimCo")
        result = vo.authorize_operation(
            ROLE_OPTIMIZATION, ROLE_DESIGN_PORTAL, "ISO 002 Certification",
            at=scenario.contract.created_at,
        )
        assert not result.success
        assert vo.reputation.score("OptimCo") < before
        assert not vo.monitor.interactions()[-1].authorized

    def test_violation_updates_reputation(self, operating):
        scenario, vo = operating
        before = vo.reputation.score("HPCServiceCo")
        vo.report_violation(
            "HPCServiceCo", ViolationKind.CONTRACT_BREACH, "missed deadline"
        )
        assert vo.reputation.score("HPCServiceCo") < before
        assert vo.monitor.violation_count("HPCServiceCo") == 1

    def test_replace_member_runs_formation_protocol(self, operating):
        """Section 5.1: 'the new member is enrolled, using a TN'."""
        scenario, vo = operating
        # Register a second HPC provider able to cover the role.
        from repro.vo.registry import ServiceDescription

        spare = scenario.member("StorageCo")
        old_token = vo.token_for_role(ROLE_HPC)
        grid = scenario.authority("GridCA")
        spare.agent.profile.add(grid.issue(
            "HPC QoS Certificate", "StorageCo",
            spare.agent.keypair.fingerprint,
            {"qosLevel": "gold", "gflops": 200},
            scenario.contract.created_at,
        ))
        scenario.host.registry.publish(ServiceDescription.of(
            "StorageCo", "BackupHPC", [ROLE_HPC], quality=0.6
        ))
        report = vo.replace_member(
            ROLE_HPC, scenario.host.registry, scenario.host.directory(),
            at=scenario.contract.created_at,
        )
        assert report.covered
        assert vo.member_for(ROLE_HPC).name == "StorageCo"
        # The outgoing member's token is now invalid.
        assert not vo.verify_member(old_token, scenario.contract.created_at)

    def test_replace_without_candidates_raises(self, operating):
        scenario, vo = operating
        scenario.host.registry.withdraw("HPCServiceCo", "HPCPartnerService")
        with pytest.raises(MembershipError):
            vo.replace_member(
                ROLE_HPC, scenario.host.registry, scenario.host.directory(),
                at=scenario.contract.created_at,
            )

    def test_operation_before_formation_rejected(self, scenario, vo):
        with pytest.raises(LifecycleError):
            vo.authorize_operation(
                ROLE_OPTIMIZATION, ROLE_DESIGN_PORTAL, "X"
            )


class TestDissolution:
    def test_dissolve_nullifies_bindings(self, scenario, vo):
        form_vo(scenario, vo)
        vo.begin_operation()
        members = list(vo.members().values())
        tokens = [
            member.token_for(vo.contract.vo_name) for member in members
        ]
        vo.dissolve()
        assert vo.lifecycle.is_dissolved
        assert vo.members() == {}
        for member, token in zip(members, tokens):
            assert not member.is_member_of(vo.contract.vo_name)
            assert not vo.verify_member(token, scenario.contract.created_at)

    def test_dissolve_clears_initiator_transient_policies(self, scenario, vo):
        form_vo(scenario, vo)
        vo.begin_operation()
        vo.dissolve()
        portal_resource = scenario.contract.role(
            ROLE_DESIGN_PORTAL
        ).membership_resource(scenario.contract.vo_name)
        assert not scenario.initiator.agent.policies.protects(portal_resource)

    def test_dissolve_requires_operation_phase(self, scenario, vo):
        vo.identify()
        with pytest.raises(LifecycleError):
            vo.dissolve()


class TestNegotiateAll:
    def test_multiple_negotiations_pick_best_reputation(self, scenario, vo):
        """'The VO Initiator may engage multiple negotiations for a
        same role.'"""
        from repro.vo.registry import ServiceDescription

        # A second storage provider with better advertised quality but
        # worse reputation.
        grid = scenario.authority("GridCA")
        rival = scenario.member("HPCServiceCo")
        rival.agent.profile.add(grid.issue(
            "Storage QoS Certificate", "HPCServiceCo",
            rival.agent.keypair.fingerprint,
            {"qosLevel": "gold", "capacityTB": 99},
            scenario.contract.created_at,
        ))
        scenario.host.registry.publish(ServiceDescription.of(
            "HPCServiceCo", "SideStorage", [ROLE_STORAGE], quality=0.99
        ))
        vo.reputation.register("StorageCo", 0.9)
        vo.reputation.register("HPCServiceCo", 0.4)
        reports = form_vo(scenario, vo, negotiate_all=True)
        assert reports[ROLE_STORAGE].admitted == "StorageCo"
        assert len(reports[ROLE_STORAGE].negotiations) == 2
