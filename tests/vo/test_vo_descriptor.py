"""VO-property credentials (the paper's §8 planned extension)."""

import pytest

from repro.negotiation.engine import negotiate
from repro.scenario import build_aircraft_scenario
from repro.scenario.aircraft import ROLE_DESIGN_PORTAL


@pytest.fixture()
def scenario():
    return build_aircraft_scenario()


class TestDescriptorIssuance:
    def test_descriptor_describes_the_vo(self, scenario):
        descriptor = scenario.initiator.issue_vo_descriptor(
            scenario.contract, scenario.contract.created_at
        )
        assert descriptor.cred_type == "VO Descriptor"
        assert descriptor.value("voName") == "AircraftOptimizationVO"
        assert descriptor.value("rolesCount") == 4
        assert descriptor.value("durationDays") == 365
        assert descriptor.issuer == "AircraftCo"

    def test_descriptor_verifies_under_initiator_key(self, scenario):
        descriptor = scenario.initiator.issue_vo_descriptor(
            scenario.contract, scenario.contract.created_at
        )
        member = scenario.member("AerospaceCo")
        report = member.agent.validator.validate(
            descriptor, scenario.contract.created_at
        )
        assert report.ok

    def test_reissue_replaces_previous(self, scenario):
        first = scenario.initiator.issue_vo_descriptor(
            scenario.contract, scenario.contract.created_at
        )
        second = scenario.initiator.issue_vo_descriptor(
            scenario.contract, scenario.contract.created_at
        )
        profile = scenario.initiator.agent.profile
        assert profile.get(second.cred_id) == second
        assert len(profile.by_type("VO Descriptor")) == 1

    def test_descriptor_released_freely(self, scenario):
        scenario.initiator.issue_vo_descriptor(
            scenario.contract, scenario.contract.created_at
        )
        assert scenario.initiator.agent.releases_freely("VO Descriptor")


class TestDescriptorInNegotiation:
    def test_candidate_checks_vo_properties_before_joining(self, scenario):
        """A candidate's transient policy demands proof of the VO's
        properties; the descriptor is disclosed during the mutual TN."""
        scenario.initiator.define_vo_policies(scenario.contract)
        scenario.initiator.issue_vo_descriptor(
            scenario.contract, scenario.contract.created_at
        )
        member = scenario.member("AerospaceCo")
        member.install_transient_policies(
            "ISO 9000 Certified <- VO Descriptor("
            "voName='AircraftOptimizationVO', durationDays<=365)"
        )
        # Make the descriptor check the only way to unlock the quality
        # certificate for this negotiation.
        for policy in member.agent.policies.policies_for("ISO 9000 Certified"):
            if not policy.transient:
                member.agent.policies.remove(policy)
        role = scenario.contract.role(ROLE_DESIGN_PORTAL)
        result = negotiate(
            member.agent, scenario.initiator.agent,
            role.membership_resource(scenario.contract.vo_name),
            at=scenario.contract.created_at,
        )
        assert result.success, result.failure_detail
        assert any(
            "VO Descriptor" in cred_id
            for cred_id in result.disclosed_by_controller
        )

    def test_wrong_vo_properties_block_the_join(self, scenario):
        """If the descriptor does not meet the candidate's demands, the
        candidate's credential stays locked and the TN fails."""
        scenario.initiator.define_vo_policies(scenario.contract)
        scenario.initiator.issue_vo_descriptor(
            scenario.contract, scenario.contract.created_at
        )
        member = scenario.member("AerospaceCo")
        member.install_transient_policies(
            # Replace the permissive alternatives for this negotiation:
            # demand an impossibly short VO.
            "ISO 9000 Certified <- VO Descriptor(durationDays<=10)"
        )
        # Drop the persistent alternatives so only the strict transient
        # policy applies.
        for policy in member.agent.policies.policies_for("ISO 9000 Certified"):
            if not policy.transient:
                member.agent.policies.remove(policy)
        role = scenario.contract.role(ROLE_DESIGN_PORTAL)
        result = negotiate(
            member.agent, scenario.initiator.agent,
            role.membership_resource(scenario.contract.vo_name),
            at=scenario.contract.created_at,
        )
        assert not result.success
