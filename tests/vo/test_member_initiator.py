"""Member-side and initiator-side VO logic."""

import pytest

from repro.errors import InvitationError, MembershipError
from repro.vo.contract import Contract
from repro.vo.initiator import VOInitiator
from repro.vo.member import VOMember
from repro.vo.registry import ServiceDescription, ServiceRegistry
from repro.vo.roles import Role
from tests.conftest import ISSUE_AT, NEGOTIATION_AT


@pytest.fixture()
def contract():
    return Contract(
        "TestVO", "goal",
        (Role("Portal", requirements=("WebDesignerQuality",)),
         Role("Open")),
        created_at=NEGOTIATION_AT,
    )


@pytest.fixture()
def initiator(agent_factory, other_keypair):
    agent = agent_factory("Initiator", [], "", other_keypair)
    return VOInitiator(name="Initiator", agent=agent)


@pytest.fixture()
def member(agent_factory, infn, shared_keypair):
    creds = [
        infn.issue("ISO 9000 Certified", "MemberCo",
                   shared_keypair.fingerprint,
                   {"QualityRegulation": "UNI EN ISO 9000"}, ISSUE_AT),
    ]
    agent = agent_factory("MemberCo", creds, "", shared_keypair)
    vo_member = VOMember(name="MemberCo", agent=agent)
    vo_member.offer_service(
        ServiceDescription.of("MemberCo", "portal", ["Portal"], quality=0.8)
    )
    return vo_member


class TestMember:
    def test_name_must_match_agent(self, agent_factory, shared_keypair):
        agent = agent_factory("X", [], "", shared_keypair)
        with pytest.raises(MembershipError):
            VOMember(name="Y", agent=agent)

    def test_prepare_publishes_services(self, member):
        registry = ServiceRegistry()
        member.prepare(registry)
        assert registry.find_by_role("Portal")[0].provider == "MemberCo"

    def test_cannot_offer_foreign_service(self, member):
        with pytest.raises(MembershipError):
            member.offer_service(
                ServiceDescription.of("OtherCo", "svc", ["R"])
            )

    def test_respond_requires_mailbox_delivery(self, member, initiator,
                                               contract):
        stray = initiator.invite(contract, contract.role("Portal"), member)
        # Remove it from the mailbox to simulate a stray invitation.
        member.mailbox._messages.clear()
        with pytest.raises(InvitationError):
            member.respond_to_invitation(stray)

    def test_decision_function_declines(self, member, initiator, contract):
        member.decision = lambda invitation: False
        invitation = initiator.invite(contract, contract.role("Portal"), member)
        assert member.respond_to_invitation(invitation) is False

    def test_transient_policies_lifecycle(self, member):
        installed = member.install_transient_policies(
            "SecretCred <- CounterpartProof"
        )
        assert installed == 1
        assert member.agent.policies.protects("SecretCred")
        assert member.clear_transient_policies() == 1
        assert not member.agent.policies.protects("SecretCred")

    def test_token_bookkeeping(self, member, initiator, contract):
        initiator.define_vo_policies(contract)
        token = initiator.issue_membership_token(
            contract, contract.role("Open"), member, NEGOTIATION_AT
        )
        assert member.is_member_of("TestVO")
        assert member.token_for("TestVO") is token
        assert member.memberships() == ["TestVO"]
        member.drop_token("TestVO")
        with pytest.raises(MembershipError):
            member.token_for("TestVO")


class TestInitiator:
    def test_name_must_match_agent(self, agent_factory, shared_keypair):
        agent = agent_factory("A", [], "", shared_keypair)
        with pytest.raises(MembershipError):
            VOInitiator(name="B", agent=agent)

    def test_define_vo_policies_installs_per_role(self, initiator, contract):
        installed = initiator.define_vo_policies(contract)
        assert installed == 2  # one requirement + one delivery rule
        assert initiator.vo_keypair is not None
        portal_resource = contract.role("Portal").membership_resource("TestVO")
        assert initiator.agent.policies.protects(portal_resource)

    def test_clear_vo_policies(self, initiator, contract):
        initiator.define_vo_policies(contract)
        assert initiator.clear_vo_policies() == 2

    def test_invite_lands_in_mailbox(self, initiator, member, contract):
        invitation = initiator.invite(contract, contract.role("Portal"), member)
        assert member.mailbox.pending() == [invitation]
        assert "TestVO" in invitation.terms

    def test_negotiate_membership_success(self, initiator, member, contract):
        initiator.define_vo_policies(contract)
        result = initiator.negotiate_membership(
            contract, contract.role("Portal"), member, at=NEGOTIATION_AT
        )
        assert result.success

    def test_negotiate_membership_failure_without_credentials(
        self, initiator, contract, agent_factory
    ):
        from repro.crypto.keys import KeyPair

        initiator.define_vo_policies(contract)
        poor_kp = KeyPair.generate(512)
        poor = VOMember(
            name="PoorCo",
            agent=agent_factory("PoorCo", [], "", poor_kp),
        )
        result = initiator.negotiate_membership(
            contract, contract.role("Portal"), poor, at=NEGOTIATION_AT
        )
        assert not result.success

    def test_token_requires_identification_first(self, initiator, member,
                                                 contract):
        with pytest.raises(MembershipError):
            initiator.issue_membership_token(
                contract, contract.role("Open"), member, NEGOTIATION_AT
            )

    def test_token_verification(self, initiator, member, contract):
        initiator.define_vo_policies(contract)
        token = initiator.issue_membership_token(
            contract, contract.role("Open"), member, NEGOTIATION_AT
        )
        assert initiator.verify_membership_token(token)
        assert token.vo_public_key == initiator.vo_keypair.public

    def test_token_serials_increment(self, initiator, member, contract,
                                     agent_factory):
        from repro.crypto.keys import KeyPair

        initiator.define_vo_policies(contract)
        first = initiator.issue_membership_token(
            contract, contract.role("Open"), member, NEGOTIATION_AT
        )
        other_kp = KeyPair.generate(512)
        other = VOMember(
            name="OtherCo", agent=agent_factory("OtherCo", [], "", other_kp)
        )
        second = initiator.issue_membership_token(
            contract, contract.role("Portal"), other, NEGOTIATION_AT
        )
        assert second.certificate.serial == first.certificate.serial + 1
