"""Shared fixtures.

Key generation is the only genuinely slow operation in the suite, so
authorities and key pairs are session-scoped; tests must not mutate
them (tests needing revocation or fresh state build their own).
"""

from __future__ import annotations

from datetime import datetime

import pytest

from repro.credentials.authority import CredentialAuthority
from repro.credentials.profile import XProfile
from repro.credentials.revocation import RevocationRegistry
from repro.credentials.validation import CredentialValidator
from repro.crypto.keys import KeyPair, Keyring
from repro.negotiation.agent import TrustXAgent
from repro.negotiation.strategies import Strategy
from repro.trust import TrustBus
from repro.ontology.builtin import aerospace_reference_ontology
from repro.ontology.mapping import ConceptMapper
from repro.policy.policybase import PolicyBase

ISSUE_AT = datetime(2009, 10, 26, 21, 32, 52)
NEGOTIATION_AT = datetime(2010, 3, 1, 12, 0, 0)


@pytest.fixture(scope="session")
def shared_keypair() -> KeyPair:
    return KeyPair.generate(512)

@pytest.fixture(scope="session")
def other_keypair() -> KeyPair:
    return KeyPair.generate(512)


@pytest.fixture(scope="session")
def infn() -> CredentialAuthority:
    return CredentialAuthority.create("INFN", key_bits=512)


@pytest.fixture(scope="session")
def aaa_authority() -> CredentialAuthority:
    return CredentialAuthority.create("AmericanAircraftAssociation", key_bits=512)


@pytest.fixture(scope="session")
def bbb_authority() -> CredentialAuthority:
    return CredentialAuthority.create("BBB", key_bits=512)


@pytest.fixture()
def authorities(infn, aaa_authority, bbb_authority):
    return {
        ca.name: ca for ca in (infn, aaa_authority, bbb_authority)
    }


@pytest.fixture()
def trusted_keyring(authorities) -> Keyring:
    ring = Keyring()
    for authority in authorities.values():
        ring.add(authority.name, authority.public_key)
    return ring


@pytest.fixture()
def revocations(authorities) -> RevocationRegistry:
    registry = RevocationRegistry()
    bus = TrustBus(registry=registry)
    for authority in authorities.values():
        bus.publish_crl(authority.crl)
    return registry


@pytest.fixture()
def iso_credential(infn, shared_keypair):
    """The paper's Fig. 6 credential: 'ISO 9000 Certified' by INFN."""
    return infn.issue(
        "ISO 9000 Certified",
        "AerospaceCo",
        shared_keypair.fingerprint,
        {"QualityRegulation": "UNI EN ISO 9000"},
        ISSUE_AT,
        days=365,
    )


def make_agent(
    name: str,
    credentials,
    policies_dsl: str,
    keypair: KeyPair,
    keyring: Keyring,
    revocations: RevocationRegistry,
    strategy: Strategy = Strategy.STANDARD,
    with_mapper: bool = True,
) -> TrustXAgent:
    """Builder used across negotiation/VO tests."""
    return TrustXAgent(
        name=name,
        profile=XProfile.of(name, credentials),
        policies=PolicyBase.from_dsl(name, policies_dsl),
        keypair=keypair,
        validator=CredentialValidator(keyring, revocations),
        strategy=strategy,
        mapper=(
            ConceptMapper(aerospace_reference_ontology())
            if with_mapper
            else None
        ),
    )


@pytest.fixture()
def agent_factory(trusted_keyring, revocations):
    def build(name, credentials, policies_dsl, keypair, **kwargs):
        return make_agent(
            name, credentials, policies_dsl, keypair,
            trusted_keyring, revocations, **kwargs,
        )
    return build
