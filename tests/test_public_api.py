"""The public API surface of the ``repro`` package."""

import importlib

import pytest

import repro


class TestTopLevelApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.credentials",
            "repro.crypto",
            "repro.policy",
            "repro.ontology",
            "repro.negotiation",
            "repro.perf",
            "repro.storage",
            "repro.services",
            "repro.faults",
            "repro.vo",
            "repro.scenario",
            "repro.xmlutil",
            "repro.cli",
            "repro.obs",
            "repro.api",
        ],
    )
    # repro.services / repro.faults resolve __all__ through deprecation
    # shims; this test deliberately exercises them, so relax the
    # error-on-shim-warning filter from pyproject for this test only.
    @pytest.mark.filterwarnings("default::DeprecationWarning")
    def test_subpackage_alls_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name} missing"

    def test_errors_module_hierarchy(self):
        from repro import errors

        base = errors.ReproError
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) \
                    and obj is not base:
                assert issubclass(obj, base), (
                    f"{name} does not derive from ReproError"
                )

    def test_scenario_surface_pinned(self):
        """The open-world scenario surface is part of the facade."""
        import repro.api as api

        for name in (
            "Strategy",            # trust-negotiation strategy enum
            "AgentStrategy",       # market-haggling strategy enum
            "MarketConfig",
            "Trader",
            "run_market_round",
            "Population",
            "seat_name",
            "ScenarioConfig",
            "ScenarioReport",
            "RoundState",
            "run_scenario",
            "MatrixConfig",
            "two_agent_matrix",
            "ScarcityConfig",
            "scarcity_market",
            "IsolationConfig",
            "cheater_isolation",
            "WorkloadPreset",
            "WorkloadRunner",
        ):
            assert hasattr(api, name), f"repro.api.{name} missing"
            assert name in api.__all__, f"repro.api.{name} not in __all__"

    def test_strategy_names_stay_distinct(self):
        """`Strategy` (credential disclosure) and `AgentStrategy`
        (market haggling) must remain different enums."""
        import repro.api as api
        from repro.negotiation.strategies import Strategy
        from repro.scenario.market import AgentStrategy

        assert api.Strategy is Strategy
        assert api.AgentStrategy is AgentStrategy
        assert api.Strategy is not api.AgentStrategy

    def test_quickstart_docstring_example_runs(self):
        """The __init__ docstring quickstart must actually work."""
        from repro.scenario import build_aircraft_scenario
        from repro.scenario.aircraft import ROLE_DESIGN_PORTAL

        scenario = build_aircraft_scenario()
        edition = scenario.initiator_edition
        edition.create_vo(scenario.contract)
        edition.enable_trust_negotiation()
        outcome = edition.execute_join(
            scenario.app("AerospaceCo"), ROLE_DESIGN_PORTAL,
            with_negotiation=True,
        )
        assert outcome.joined
