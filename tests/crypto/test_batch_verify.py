"""Batched signature verification — vectorized RSA with scalar verdicts."""

from __future__ import annotations

import hashlib

import pytest

from repro.credentials.validation import batch_prewarm_signatures
from repro.crypto import keys, rsa
from repro.negotiation.engine import NegotiationEngine
from repro.perf import SIGNATURE_CACHE, caches_disabled, clear_all_caches
from repro.scenario.workloads import chain_workload


@pytest.fixture(autouse=True)
def _cold_caches():
    clear_all_caches()
    yield
    clear_all_caches()


def _signed(keypair: keys.KeyPair, message: bytes):
    """(raw_key, digest, signature) triple for the rsa-level batch."""
    return (
        keypair.public.raw,
        hashlib.sha256(message).digest(),
        keypair.private.sign(message),
    )


class TestRsaVerifyBatch:
    def test_matches_scalar_verify_item_by_item(self):
        alice = keys.KeyPair.generate(512)
        bob = keys.KeyPair.generate(512)
        good_a = _signed(alice, b"alpha")
        good_b = _signed(bob, b"beta")
        # Signature from the wrong key.
        crossed = (alice.public.raw, good_a[1], good_b[2])
        # Right key, digest of a different message.
        wrong_digest = (
            alice.public.raw,
            hashlib.sha256(b"tampered").digest(),
            good_a[2],
        )
        # Corrupted signature bytes (still the right length).
        corrupt = (
            alice.public.raw, good_a[1],
            bytes(good_a[2][:-1]) + bytes([good_a[2][-1] ^ 1]),
        )
        items = [good_a, crossed, good_b, wrong_digest, corrupt]
        assert rsa.verify_batch(items) == [True, False, True, False, False]
        # Scalar oracle on the valid ones: same key, same message.
        assert rsa.verify(alice.public.raw, b"alpha", good_a[2])
        assert not rsa.verify(alice.public.raw, b"alpha", corrupt[2])

    def test_duplicate_items_share_one_verification(self):
        pair = keys.KeyPair.generate(512)
        triple = _signed(pair, b"repeat")
        verdicts = rsa.verify_batch([triple] * 5)
        assert verdicts == [True] * 5

    def test_empty_batch(self):
        assert rsa.verify_batch([]) == []


class TestVerifyB64Batch:
    def test_malformed_base64_is_invalid_in_place(self):
        pair = keys.KeyPair.generate(512)
        message = b"payload"
        digest = hashlib.sha256(message).digest()
        good = pair.private.sign_b64(message)
        verdicts = keys.verify_b64_batch([
            (pair.public, digest, good),
            (pair.public, digest, "%%% not base64 %%%"),
            (pair.public, digest, good),
        ])
        assert verdicts == [True, False, True]

    def test_accepts_a_generator(self):
        pair = keys.KeyPair.generate(512)
        digest = hashlib.sha256(b"gen").digest()
        good = pair.private.sign_b64(b"gen")
        verdicts = keys.verify_b64_batch(
            (pair.public, digest, good) for _ in range(3)
        )
        assert verdicts == [True, True, True]


class TestPrewarm:
    def test_prewarm_fills_cache_then_noops(self):
        fixture = chain_workload(4)
        validator = fixture.controller.validator
        credentials = list(fixture.requester.profile)
        assert credentials
        fresh = batch_prewarm_signatures(validator, credentials)
        assert fresh == len(credentials)
        # Everything is cached now: a second pass verifies nothing.
        assert batch_prewarm_signatures(validator, credentials) == 0
        # The warmed verdicts are the ones validate() consumes.
        hits_before = SIGNATURE_CACHE.stats().hits
        for credential in credentials:
            report = validator.validate(
                credential, fixture.negotiation_time()
            )
            assert report.signature_ok
        assert SIGNATURE_CACHE.stats().hits >= hits_before + len(credentials)

    def test_prewarm_disabled_with_caches(self):
        fixture = chain_workload(2)
        credentials = list(fixture.requester.profile)
        with caches_disabled():
            assert batch_prewarm_signatures(
                fixture.controller.validator, credentials
            ) == 0

    def test_engine_results_identical_with_and_without_batching(self):
        records = []
        for batch in (True, False):
            clear_all_caches()
            fixture = chain_workload(5)
            engine = NegotiationEngine(
                fixture.requester, fixture.controller, batch_verify=batch
            )
            result = engine.run(
                fixture.resource, at=fixture.negotiation_time()
            )
            assert result.success
            records.append(result.to_audit_record())
        batched, scalar = records
        # Audit records embed party names and credential ids, which the
        # two fixtures share; only RSA scheduling differed.
        assert batched == scalar
