"""Number-theoretic primitives."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.numbers import (
    SMALL_PRIMES,
    generate_prime,
    is_probable_prime,
    modular_inverse,
)
from repro.errors import CryptoError


class TestPrimality:
    @pytest.mark.parametrize("prime", [2, 3, 5, 7, 997, 7919, 104729])
    def test_known_primes(self, prime):
        assert is_probable_prime(prime)

    @pytest.mark.parametrize("composite", [0, 1, 4, 9, 561, 104730, 997 * 7919])
    def test_known_composites(self, composite):
        assert not is_probable_prime(composite)

    def test_negative_numbers_are_not_prime(self):
        assert not is_probable_prime(-7)

    def test_carmichael_numbers_rejected(self):
        # Carmichael numbers fool Fermat but not Miller-Rabin.
        for carmichael in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_probable_prime(carmichael)

    def test_small_primes_table_is_prime(self):
        for prime in SMALL_PRIMES:
            assert is_probable_prime(prime)


class TestGeneratePrime:
    def test_generated_prime_has_exact_bit_length(self):
        for bits in (16, 32, 64):
            prime = generate_prime(bits)
            assert prime.bit_length() == bits
            assert is_probable_prime(prime)

    def test_generated_prime_is_odd(self):
        assert generate_prime(32) % 2 == 1

    def test_too_small_raises(self):
        with pytest.raises(CryptoError):
            generate_prime(4)


class TestModularInverse:
    def test_known_inverse(self):
        assert modular_inverse(3, 11) == 4  # 3*4 = 12 ≡ 1 (mod 11)

    def test_non_invertible_raises(self):
        with pytest.raises(CryptoError):
            modular_inverse(6, 9)

    @given(
        value=st.integers(min_value=2, max_value=10_000),
        modulus=st.sampled_from([101, 997, 65537, 104729]),
    )
    def test_inverse_property(self, value, modulus):
        if value % modulus == 0:
            return
        inverse = modular_inverse(value, modulus)
        assert (value * inverse) % modulus == 1
