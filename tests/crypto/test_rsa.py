"""RSA key generation and signatures."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import rsa
from repro.errors import CryptoError, SignatureError


@pytest.fixture(scope="module")
def key():
    return rsa.generate_keypair(512)


class TestKeyGeneration:
    def test_modulus_bit_length(self, key):
        assert key.modulus.bit_length() == 512

    def test_public_exponent(self, key):
        assert key.public_exponent == 65537

    def test_modulus_is_product_of_primes(self, key):
        assert key.prime_p * key.prime_q == key.modulus

    def test_private_exponent_inverts_public(self, key):
        phi = (key.prime_p - 1) * (key.prime_q - 1)
        assert (key.private_exponent * key.public_exponent) % phi == 1

    def test_too_small_modulus_rejected(self):
        with pytest.raises(CryptoError):
            rsa.generate_keypair(128)

    def test_distinct_keys(self):
        assert rsa.generate_keypair(512).modulus != rsa.generate_keypair(512).modulus


class TestSignVerify:
    def test_roundtrip(self, key):
        message = b"the design-optimization control file"
        signature = rsa.sign(key, message)
        assert rsa.verify(key.public_key, message, signature)

    def test_tampered_message_fails(self, key):
        signature = rsa.sign(key, b"original")
        assert not rsa.verify(key.public_key, b"tampered", signature)

    def test_tampered_signature_fails(self, key):
        signature = bytearray(rsa.sign(key, b"msg"))
        signature[0] ^= 0xFF
        assert not rsa.verify(key.public_key, b"msg", bytes(signature))

    def test_wrong_key_fails(self, key):
        other = rsa.generate_keypair(512)
        signature = rsa.sign(key, b"msg")
        assert not rsa.verify(other.public_key, b"msg", signature)

    def test_wrong_length_signature_rejected(self, key):
        assert not rsa.verify(key.public_key, b"msg", b"short")

    def test_signature_value_above_modulus_rejected(self, key):
        blob = (key.modulus + 1).to_bytes(key.byte_length, "big") \
            if (key.modulus + 1).bit_length() <= key.byte_length * 8 \
            else b"\xff" * key.byte_length
        assert not rsa.verify(key.public_key, b"msg", blob)

    def test_signature_length_matches_key(self, key):
        assert len(rsa.sign(key, b"x")) == key.byte_length

    def test_signing_is_deterministic(self, key):
        assert rsa.sign(key, b"same") == rsa.sign(key, b"same")

    def test_empty_message_roundtrip(self, key):
        signature = rsa.sign(key, b"")
        assert rsa.verify(key.public_key, b"", signature)

    def test_key_too_small_to_sign(self):
        # A 256-bit key cannot hold the 51-byte DigestInfo + padding.
        tiny = rsa.generate_keypair(256)
        with pytest.raises(SignatureError):
            rsa.sign(tiny, b"msg")


@settings(max_examples=20, deadline=None)
@given(message=st.binary(max_size=256))
def test_sign_verify_property(message):
    key = _PROPERTY_KEY
    signature = rsa.sign(key, message)
    assert rsa.verify(key.public_key, message, signature)
    assert not rsa.verify(key.public_key, message + b"x", signature)


_PROPERTY_KEY = rsa.generate_keypair(512)
