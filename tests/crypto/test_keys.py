"""Key wrappers, serialization, and keyrings."""

import pytest

from repro.crypto.keys import KeyPair, Keyring, PublicKey, verify_b64
from repro.errors import KeyError_, SignatureError


@pytest.fixture(scope="module")
def keypair():
    return KeyPair.generate(512)


@pytest.fixture(scope="module")
def other():
    return KeyPair.generate(512)


class TestPublicKey:
    def test_fingerprint_is_stable(self, keypair):
        assert keypair.public.fingerprint == keypair.public.fingerprint
        assert len(keypair.public.fingerprint) == 32

    def test_fingerprints_differ_between_keys(self, keypair, other):
        assert keypair.public.fingerprint != other.public.fingerprint

    def test_json_roundtrip(self, keypair):
        restored = PublicKey.from_json(keypair.public.to_json())
        assert restored == keypair.public
        assert restored.fingerprint == keypair.public.fingerprint

    def test_malformed_json_raises(self):
        with pytest.raises(KeyError_):
            PublicKey.from_json("not json")

    def test_wrong_kind_raises(self):
        with pytest.raises(KeyError_):
            PublicKey.from_dict({"kind": "dsa-public", "n": "1", "e": "1"})

    def test_missing_field_raises(self):
        with pytest.raises(KeyError_):
            PublicKey.from_dict({"kind": "rsa-public", "n": "ff"})


class TestSigning:
    def test_sign_b64_verifies(self, keypair):
        signature = keypair.private.sign_b64(b"message")
        assert verify_b64(keypair.public, b"message", signature)

    def test_invalid_base64_is_rejected_not_raised(self, keypair):
        assert not verify_b64(keypair.public, b"message", "!!!not-base64!!!")

    def test_public_key_property_matches(self, keypair):
        assert keypair.private.public_key == keypair.public


class TestKeyring:
    def test_add_and_get(self, keypair):
        ring = Keyring()
        ring.add("INFN", keypair.public)
        assert ring.get("INFN") == keypair.public
        assert ring.trusts("INFN")
        assert len(ring) == 1

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError_):
            Keyring().get("nobody")

    def test_lookup_by_fingerprint(self, keypair):
        ring = Keyring()
        ring.add("CA", keypair.public)
        assert ring.get_by_fingerprint(keypair.public.fingerprint) == keypair.public

    def test_unknown_fingerprint_raises(self):
        with pytest.raises(KeyError_):
            Keyring().get_by_fingerprint("0" * 32)

    def test_re_adding_same_key_is_idempotent(self, keypair):
        ring = Keyring()
        ring.add("CA", keypair.public)
        ring.add("CA", keypair.public)
        assert len(ring) == 1

    def test_conflicting_key_for_name_raises(self, keypair, other):
        ring = Keyring()
        ring.add("CA", keypair.public)
        with pytest.raises(KeyError_):
            ring.add("CA", other.public)

    def test_verify_through_ring(self, keypair):
        ring = Keyring()
        ring.add("CA", keypair.public)
        signature = keypair.private.sign_b64(b"data")
        assert ring.verify("CA", b"data", signature)
        assert not ring.verify("CA", b"other", signature)

    def test_verify_unknown_issuer_raises(self, keypair):
        ring = Keyring()
        with pytest.raises(SignatureError):
            ring.verify("ghost", b"data", "AAAA")

    def test_names_sorted(self, keypair, other):
        ring = Keyring()
        ring.add("Zeta", keypair.public)
        ring.add("Alpha", other.public)
        assert ring.names() == ["Alpha", "Zeta"]
