"""The chaos-soak acceptance bar and the report plumbing."""

import json

from repro.hardening.soak import SoakConfig, run_soak


class TestChaosSoakAcceptance:
    def test_2000_negotiations_zero_violations(self):
        """The PR's acceptance criterion: a seeded soak of >= 2000
        mixed negotiations under adversarial faults and overload
        completes with zero invariant violations and zero unhandled
        exceptions."""
        report = run_soak(SoakConfig(seed=7, negotiations=2000))
        assert report.ok, report.to_json()
        assert report.violations == []
        assert report.unhandled == []
        # The storm actually happened: every subsystem was exercised.
        assert report.successes > 0
        assert sum(report.probes_fired.values()) > 0
        assert report.probe_rejections > 0
        assert report.probe_anomalies == []
        assert report.admission_shed > 0
        assert report.admission_expired > 0
        assert report.guard_rejected > 0
        assert report.backpressure_waits > 0
        assert report.reaped > 0
        assert report.byzantine_attempts > 0
        assert report.byzantine_successes == 0
        assert report.internal_errors == 0
        assert report.fuzz_probes > 0
        assert report.fuzz_failures == []
        assert report.summary().startswith("PASS")


class TestSoakDeterminismAndReport:
    def test_same_seed_same_report(self):
        config = SoakConfig(seed=21, negotiations=60, roles=3)
        first = run_soak(config)
        second = run_soak(config)
        assert first.to_dict() == second.to_dict()

    def test_different_seed_different_storm(self):
        base = run_soak(SoakConfig(seed=3, negotiations=60, roles=3))
        other = run_soak(SoakConfig(seed=4, negotiations=60, roles=3))
        assert base.to_dict() != other.to_dict()

    def test_report_json_round_trips(self):
        report = run_soak(SoakConfig(seed=5, negotiations=40, roles=2))
        decoded = json.loads(report.to_json())
        assert decoded["ok"] is report.ok
        assert decoded["seed"] == 5
        assert decoded["negotiations"] == 40
        assert decoded["admission"]["offered"] == (
            decoded["admission"]["admitted"]
            + decoded["admission"]["shed"]
            + decoded["admission"]["expired"]
        )
