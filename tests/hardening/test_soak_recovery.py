"""The crash-recovery acceptance bar: a seeded kill-restart soak over
the sharded cluster with durable WAL journals and a hash-chained audit
log, plus the negative tamper-detection check on the produced log."""

import json

from repro.hardening.soak import SoakConfig, run_soak
from repro.obs.audit import verify_audit_log


class TestKillRestartSoakAcceptance:
    def test_500_negotiations_with_kills_zero_lost_sessions(self, tmp_path):
        """The PR's acceptance criterion: >= 500 seeded negotiations on
        a 3-shard cluster with periodic node kills (every third one
        tearing the victim's WAL tail first) completes with zero
        invariant violations — including zero terminal sessions lost
        across crash/recovery — and a verifiable audit chain."""
        wal_dir = tmp_path / "wal"
        wal_dir.mkdir()
        audit_log = tmp_path / "audit.jsonl"
        report = run_soak(SoakConfig(
            seed=7,
            negotiations=500,
            cluster_shards=3,
            node_kill_every=60,
            wal_dir=str(wal_dir),
            audit_log_path=str(audit_log),
        ))
        assert report.ok, report.to_json()
        assert report.violations == []
        assert report.unhandled == []
        # The drills actually happened and the cluster actually healed.
        assert report.node_kills > 0
        assert report.node_restarts > 0
        assert report.failovers > 0
        assert report.torn_records_discarded > 0
        assert report.wal_records > 0
        assert report.summary().startswith("PASS")

        # The canonical record verifies end to end.
        assert report.audit is not None
        assert report.audit["ok"] is True
        assert report.audit["events"] > 0
        assert report.audit["epochs"] > 0
        audit = verify_audit_log(audit_log)
        assert audit.ok, audit.summary()

        # Negative check: flip one byte of one committed record and the
        # chain must break at exactly that point.
        lines = audit_log.read_bytes().splitlines(keepends=True)
        tampered = lines[:]
        victim = len(lines) // 2
        tampered[victim] = tampered[victim].replace(b"1", b"2", 1)
        assert tampered[victim] != lines[victim]
        audit_log.write_bytes(b"".join(tampered))
        broken = verify_audit_log(audit_log)
        assert not broken.ok
        assert broken.error_line is not None

    def test_cluster_soak_report_round_trips(self, tmp_path):
        report = run_soak(SoakConfig(
            seed=11, negotiations=120, roles=3,
            cluster_shards=2, node_kill_every=40,
            wal_dir=str(tmp_path),
        ))
        assert report.ok, report.to_json()
        decoded = json.loads(report.to_json())
        assert decoded["cluster"]["nodeKills"] == report.node_kills
        assert decoded["cluster"]["nodeRestarts"] == report.node_restarts
        assert decoded["cluster"]["failovers"] == report.failovers
        assert decoded["cluster"]["walRecords"] == report.wal_records
