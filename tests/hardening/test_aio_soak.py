"""The asyncio chaos soak: waves of concurrent client tasks.

``repro soak --asyncio`` drives the whole stack — ``AioTNClient →
AioResilientTransport → FaultInjector → AioSimTransport →
AioShardedTNService`` — from the event loop, with hedged starts,
health-aware routing, Byzantine impostors, admission bursts, and
mid-negotiation shard kills.  Same acceptance bar as the sync soak:
zero invariant violations, deterministic per seed.
"""

import json

import pytest

from repro.api import WorkloadRunner


def run_aio(**kwargs):
    kwargs.setdefault("seed", 7)
    kwargs.setdefault("negotiations", 60)
    kwargs.setdefault("roles", 3)
    kwargs.setdefault("asyncio_mode", True)
    return WorkloadRunner().run("soak", **kwargs)


class TestAioSoakAcceptance:
    def test_sharded_storm_with_kills_zero_violations(self):
        report = run_aio(
            negotiations=80, cluster_shards=3, node_kill_every=25,
            byzantine_every=20,
        )
        assert report.ok, report.to_json()
        assert report.violations == []
        assert report.unhandled == []
        assert report.successes > 0
        assert report.byzantine_attempts > 0
        assert report.byzantine_successes == 0
        assert report.internal_errors == 0
        # the storm exercised the async-only machinery
        assert report.node_kills > 0
        assert report.failovers > 0
        assert report.sessions_recovered >= 1
        assert report.summary().startswith("PASS")

    def test_hedging_and_health_active_with_shards(self):
        report = run_aio(negotiations=80, cluster_shards=3)
        assert report.ok, report.to_json()
        # the SLOW drill on shard 0 makes hedges fire and the health
        # tracker eject (and later readmit) the degraded shard
        assert report.hedges_fired > 0
        assert report.hedges_won <= report.hedges_fired
        assert report.shard_ejections >= 1
        assert report.shard_readmissions >= 1
        assert report.health_probes >= 1

    def test_single_service_mode(self):
        report = run_aio(negotiations=40)
        assert report.ok, report.to_json()
        assert report.hedges_fired == 0  # nothing to hedge against
        assert report.node_kills == 0


class TestAioSoakDeterminism:
    def test_same_seed_same_report(self):
        # Single-service scope, same as the sync determinism test: the
        # process-global requestId counter means cluster-mode routing
        # (and hence the storm's shape) differs between two runs in
        # one process even with the same seed.
        first = run_aio(seed=11)
        second = run_aio(seed=11)
        assert first.to_dict() == second.to_dict()

    def test_different_seed_different_storm(self):
        base = run_aio(seed=3)
        other = run_aio(seed=4)
        assert base.to_dict() != other.to_dict()


class TestAioSoakReport:
    def test_report_json_round_trips_with_cluster_counters(self):
        report = run_aio(
            negotiations=60, cluster_shards=3, node_kill_every=30,
        )
        decoded = json.loads(report.to_json())
        assert decoded["ok"] is report.ok
        cluster = decoded["cluster"]
        assert cluster["hedgesFired"] == report.hedges_fired
        assert cluster["hedgesWon"] == report.hedges_won
        assert cluster["hedgesCancelled"] == report.hedges_cancelled
        assert cluster["shardEjections"] == report.shard_ejections
        assert cluster["shardReadmissions"] == report.shard_readmissions
        assert cluster["healthProbes"] == report.health_probes

    def test_retraction_drills_are_sync_only(self):
        with pytest.raises(ValueError, match="retract_every"):
            run_aio(retract_every=10)
