"""Admission-control tests: bounded queue, deadlines, priority shed."""

import pytest

from repro.errors import DeadlineExpiredError, ErrorCode, OverloadError
from repro.hardening.admission import (
    AdmissionController,
    Priority,
    operation_priority,
)
from repro.hardening.config import HardeningConfig


@pytest.fixture()
def controller():
    # Tiny queue: operation fills all 4 slots, formation 3, ident 2.
    return AdmissionController(config=HardeningConfig(
        queue_capacity=4,
        drain_per_ms=0.1,
        shed_threshold_operation=1.0,
        shed_threshold_formation=0.75,
        shed_threshold_identification=0.5,
    ))


def _fill(controller, n, operation="StartNegotiation", now_ms=0.0):
    for _ in range(n):
        controller.admit(operation, {}, now_ms)


class TestPriorityResolution:
    def test_operation_defaults(self):
        assert operation_priority("MonitorVO", {}) is Priority.OPERATION
        assert operation_priority("StartNegotiation", {}) is Priority.FORMATION
        assert operation_priority("ListServices", {}) \
            is Priority.IDENTIFICATION

    def test_unknown_operation_is_most_sheddable(self):
        assert operation_priority("Exotic", {}) is Priority.IDENTIFICATION

    def test_explicit_payload_priority_overrides(self):
        payload = {"priority": "operation"}
        assert operation_priority("ListServices", payload) \
            is Priority.OPERATION

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError):
            Priority.parse("vip")


class TestSheddingAndDeadlines:
    def test_sheds_over_threshold_with_retry_hint(self, controller):
        _fill(controller, 3)  # formation threshold: 0.75 * 4 = 3
        with pytest.raises(OverloadError) as excinfo:
            controller.admit("StartNegotiation", {}, 0.0)
        exc = excinfo.value
        assert exc.error_code is ErrorCode.OVERLOADED
        assert exc.retry_after_ms > 0
        assert controller.stats.shed == 1
        assert controller.stats.shed_by_priority["formation"] == 1

    def test_priority_ordering_under_saturation(self, controller):
        _fill(controller, 2)  # identification threshold: 0.5 * 4 = 2
        with pytest.raises(OverloadError):
            controller.admit("ListServices", {}, 0.0)
        controller.admit("StartNegotiation", {}, 0.0)  # formation still in
        with pytest.raises(OverloadError):
            controller.admit("PolicyExchange", {}, 0.0)
        controller.admit("MonitorVO", {}, 0.0)  # operation fills the queue
        with pytest.raises(OverloadError):
            controller.admit("MonitorVO", {}, 0.0)

    def test_drain_restores_capacity(self, controller):
        _fill(controller, 3)
        with pytest.raises(OverloadError):
            controller.admit("StartNegotiation", {}, 0.0)
        # One slot drains in 1 / drain_per_ms = 10 simulated ms.
        controller.admit("StartNegotiation", {}, 10.0)

    def test_retry_hint_is_sufficient(self, controller):
        _fill(controller, 3)
        with pytest.raises(OverloadError) as excinfo:
            controller.admit("StartNegotiation", {}, 0.0)
        controller.admit(
            "StartNegotiation", {}, excinfo.value.retry_after_ms,
        )

    def test_expired_deadline_is_shed_unevaluated(self, controller):
        with pytest.raises(DeadlineExpiredError) as excinfo:
            controller.admit(
                "PolicyExchange", {"deadlineMs": 50.0}, 100.0,
            )
        assert excinfo.value.error_code is ErrorCode.DEADLINE_EXPIRED
        assert controller.stats.expired == 1
        assert controller.stats.admitted == 0

    def test_live_deadline_admits(self, controller):
        controller.admit("PolicyExchange", {"deadlineMs": 500.0}, 100.0)
        assert controller.stats.admitted == 1

    def test_boolean_deadline_is_ignored(self, controller):
        controller.admit("PolicyExchange", {"deadlineMs": True}, 100.0)
        assert controller.stats.admitted == 1

    def test_non_monotonic_clock_does_not_refill(self, controller):
        _fill(controller, 2, now_ms=100.0)
        # A branched worker clock reports an earlier "now": level must
        # neither drain backwards nor crash.
        controller.admit("StartNegotiation", {}, 40.0)
        assert controller.level == pytest.approx(3.0)

    def test_stats_reconcile(self, controller):
        _fill(controller, 3)
        for _ in range(2):
            with pytest.raises(OverloadError):
                controller.admit("StartNegotiation", {}, 0.0)
        with pytest.raises(DeadlineExpiredError):
            controller.admit("MonitorVO", {"deadlineMs": -1.0}, 0.0)
        stats = controller.stats
        assert stats.offered == 6
        assert (stats.admitted, stats.shed, stats.expired) == (3, 2, 1)
        assert stats.reconciles
