"""The fuzz corpus against a live hardened TN service.

Every probe must come back as a *typed* rejection with one of its
expected error codes — never a success, never an untyped error, never
a leaked stack trace.
"""

import pytest

from repro.hardening.config import HardeningConfig
from repro.hardening.fuzz import (
    run_probe,
    session_probes,
    stateless_probes,
    terminal_probes,
)
from repro.services.tn_service import TNWebService
from repro.services.transport import SimTransport
from repro.storage.document_store import XMLDocumentStore
from tests.conftest import ISSUE_AT, NEGOTIATION_AT


@pytest.fixture()
def requester(agent_factory, infn, shared_keypair):
    return agent_factory(
        "AerospaceCo",
        [infn.issue("ISO 9000 Certified", "AerospaceCo",
                    shared_keypair.fingerprint,
                    {"QualityRegulation": "UNI EN ISO 9000"}, ISSUE_AT)],
        "ISO 9000 Certified <- AAA Member",
        shared_keypair,
    )


@pytest.fixture()
def hardened(agent_factory, aaa_authority, other_keypair):
    controller = agent_factory(
        "AircraftCo",
        [aaa_authority.issue("AAA Member", "AircraftCo",
                             other_keypair.fingerprint,
                             {"association": "AAA"}, ISSUE_AT)],
        "VoMembership <- WebDesignerQuality\nAAA Member <- DELIV",
        other_keypair,
    )
    transport = SimTransport()
    service = TNWebService(
        controller, transport, XMLDocumentStore("tn"), "urn:tn",
        hardening=HardeningConfig(),
    )
    return service, transport


def _deliver(transport, probe):
    outcome = run_probe(
        lambda op, payload: transport.call("urn:tn", op, payload), probe,
    )
    assert outcome.ok, f"{probe.name}: {outcome.anomaly}"
    return outcome


class TestFuzzCorpus:
    def test_stateless_probes_all_rejected_typed(self, hardened):
        service, transport = hardened
        for probe in stateless_probes(service.hardening):
            _deliver(transport, probe)
        assert service.internal_errors == 0

    def test_session_probes_all_rejected_typed(self, hardened, requester):
        service, transport = hardened
        start = transport.call("urn:tn", "StartNegotiation", {
            "requester": requester, "strategy": "standard",
        })
        for probe in session_probes(start["negotiationId"]):
            _deliver(transport, probe)
        # The probed session is still usable afterwards.
        response = transport.call("urn:tn", "PolicyExchange", {
            "negotiationId": start["negotiationId"],
            "resource": "VoMembership", "at": NEGOTIATION_AT,
            "clientSeq": 1,
        })
        assert response["sequenceFound"]

    def test_terminal_probes_all_rejected_typed(self, hardened, requester):
        service, transport = hardened
        start = transport.call("urn:tn", "StartNegotiation", {
            "requester": requester, "strategy": "standard",
        })
        session_id = start["negotiationId"]
        transport.call("urn:tn", "PolicyExchange", {
            "negotiationId": session_id, "resource": "VoMembership",
            "at": NEGOTIATION_AT, "clientSeq": 1,
        })
        transport.call("urn:tn", "CredentialExchange", {
            "negotiationId": session_id, "at": NEGOTIATION_AT,
            "clientSeq": 2,
        })
        assert service.sessions()[session_id].terminal
        for probe in terminal_probes(session_id, "VoMembership"):
            _deliver(transport, probe)
        assert service.internal_errors == 0

    def test_guard_stats_account_for_the_corpus(self, hardened):
        service, transport = hardened
        probes = stateless_probes(service.hardening)
        for probe in probes:
            _deliver(transport, probe)
        stats = service.guard.stats
        # The unknown-session probe passes the stateless guard and is
        # rejected downstream at session lookup.
        assert stats.rejected == len(probes) - 1
        assert sum(stats.by_code.values()) == stats.rejected
