"""Protocol-guard validation and sequence-machine tests."""

import pytest

from repro.errors import ErrorCode, GuardRejection
from repro.hardening.config import HardeningConfig
from repro.hardening.guard import ProtocolGuard
from repro.negotiation.strategies import Strategy
from repro.services.tn_service import NegotiationSession


@pytest.fixture()
def guard():
    return ProtocolGuard(config=HardeningConfig(
        max_payload_keys=8,
        max_string_bytes=64,
        max_xml_bytes=256,
        max_xml_depth=4,
        max_xml_children=4,
        max_client_seq=100,
    ))


def _session(**overrides) -> NegotiationSession:
    fields = dict(
        session_id="tn-1",
        requester=None,
        strategy=Strategy.parse("standard"),
        requester_name="AerospaceCo",
    )
    fields.update(overrides)
    return NegotiationSession(**fields)


def _code(excinfo) -> ErrorCode:
    return excinfo.value.error_code


class TestStatelessValidation:
    def test_valid_payload_counts_as_validated(self, guard):
        guard.validate("PolicyExchange", {
            "negotiationId": "tn-1", "resource": "Role-00", "clientSeq": 1,
        })
        assert guard.stats.validated == 1
        assert guard.stats.rejected == 0

    def test_unknown_operation(self, guard):
        with pytest.raises(GuardRejection) as excinfo:
            guard.validate("DropAllTables", {})
        assert _code(excinfo) is ErrorCode.UNKNOWN_OPERATION

    def test_non_mapping_payload(self, guard):
        with pytest.raises(GuardRejection) as excinfo:
            guard.validate("PolicyExchange", ["not", "a", "dict"])
        assert _code(excinfo) is ErrorCode.MALFORMED_MESSAGE

    def test_non_string_key(self, guard):
        with pytest.raises(GuardRejection) as excinfo:
            guard.validate("PolicyExchange", {
                "negotiationId": "tn-1", "resource": "R", 7: "seven",
            })
        assert _code(excinfo) is ErrorCode.MALFORMED_MESSAGE

    def test_unknown_field(self, guard):
        with pytest.raises(GuardRejection) as excinfo:
            guard.validate("CredentialExchange", {
                "negotiationId": "tn-1", "exploit": "1",
            })
        assert _code(excinfo) is ErrorCode.SCHEMA_VIOLATION

    def test_missing_required_field(self, guard):
        with pytest.raises(GuardRejection) as excinfo:
            guard.validate("PolicyExchange", {"resource": "R"})
        assert _code(excinfo) is ErrorCode.SCHEMA_VIOLATION

    def test_null_required_field(self, guard):
        with pytest.raises(GuardRejection) as excinfo:
            guard.validate("PolicyExchange", {
                "negotiationId": "tn-1", "resource": None,
            })
        assert _code(excinfo) is ErrorCode.SCHEMA_VIOLATION

    def test_boolean_client_seq_is_not_an_int(self, guard):
        with pytest.raises(GuardRejection) as excinfo:
            guard.validate("CredentialExchange", {
                "negotiationId": "tn-1", "clientSeq": True,
            })
        assert _code(excinfo) is ErrorCode.SCHEMA_VIOLATION

    def test_client_seq_out_of_range(self, guard):
        for seq in (0, -3, guard.config.max_client_seq + 1):
            with pytest.raises(GuardRejection) as excinfo:
                guard.validate("CredentialExchange", {
                    "negotiationId": "tn-1", "clientSeq": seq,
                })
            assert _code(excinfo) is ErrorCode.SCHEMA_VIOLATION

    def test_too_many_keys(self, guard):
        many = {f"k{i}": i for i in range(guard.config.max_payload_keys + 1)}
        with pytest.raises(GuardRejection) as excinfo:
            guard.validate("StartNegotiation", many)
        assert _code(excinfo) is ErrorCode.OVERSIZED_PAYLOAD

    def test_oversized_string(self, guard):
        huge = "x" * (guard.config.max_string_bytes + 1)
        with pytest.raises(GuardRejection) as excinfo:
            guard.validate("PolicyExchange", {
                "negotiationId": "tn-1", "resource": huge,
            })
        assert _code(excinfo) is ErrorCode.OVERSIZED_PAYLOAD

    def test_truncated_xml(self, guard):
        with pytest.raises(GuardRejection) as excinfo:
            guard.validate("PolicyExchange", {
                "negotiationId": "tn-1",
                "resource": "<credential><attr name='x'",
            })
        assert _code(excinfo) is ErrorCode.MALFORMED_MESSAGE

    def test_deep_xml(self, guard):
        depth = guard.config.max_xml_depth + 2
        nested = "<a>" * depth + "x" + "</a>" * depth
        with pytest.raises(GuardRejection) as excinfo:
            guard.validate("PolicyExchange", {
                "negotiationId": "tn-1", "resource": nested,
            })
        assert _code(excinfo) is ErrorCode.DEPTH_EXCEEDED

    def test_wide_xml(self, guard):
        wide = "<a>" + "<b></b>" * (guard.config.max_xml_children + 1) + "</a>"
        with pytest.raises(GuardRejection) as excinfo:
            guard.validate("PolicyExchange", {
                "negotiationId": "tn-1", "resource": wide,
            })
        assert _code(excinfo) is ErrorCode.DEPTH_EXCEEDED

    def test_unknown_strategy(self, guard):
        with pytest.raises(GuardRejection) as excinfo:
            guard.validate("StartNegotiation", {"strategy": "yolo"})
        # requester is checked field-by-field before semantics, so the
        # missing requester wins; supply one is impossible here without
        # an agent, so accept either schema code.
        assert _code(excinfo) is ErrorCode.SCHEMA_VIOLATION

    def test_unknown_priority(self, guard):
        with pytest.raises(GuardRejection) as excinfo:
            guard.validate("CredentialExchange", {
                "negotiationId": "tn-1", "priority": "vip",
            })
        assert _code(excinfo) is ErrorCode.SCHEMA_VIOLATION

    def test_rejections_counted_by_code(self, guard):
        for _ in range(2):
            with pytest.raises(GuardRejection):
                guard.validate("Nope", {})
        assert guard.stats.rejected == 2
        assert guard.stats.by_code[ErrorCode.UNKNOWN_OPERATION.value] == 2


class TestSequenceMachine:
    def test_first_message_advances(self, guard):
        guard.check_transition(_session(), "PolicyExchange", 1, "R")

    def test_phase_skip(self, guard):
        with pytest.raises(GuardRejection) as excinfo:
            guard.check_transition(_session(), "CredentialExchange", 1, "")
        assert _code(excinfo) is ErrorCode.PHASE_SKIP

    def test_skip_ahead(self, guard):
        with pytest.raises(GuardRejection) as excinfo:
            guard.check_transition(_session(), "PolicyExchange", 5, "R")
        assert _code(excinfo) is ErrorCode.OUT_OF_ORDER

    def test_stale_seq_on_live_session(self, guard):
        session = _session(phase="policy", last_seq=2)
        with pytest.raises(GuardRejection) as excinfo:
            guard.check_transition(session, "CredentialExchange", 1, "")
        assert _code(excinfo) is ErrorCode.OUT_OF_ORDER

    def test_recorded_seq_falls_through_to_replay(self, guard):
        session = _session(phase="policy", last_seq=1)
        session.responses[1] = ("PolicyExchange", "R", {"x": 1})
        # Not rejected: the service's idempotent replay path owns it.
        guard.check_transition(session, "PolicyExchange", 1, "R")

    def test_restored_session_tolerates_stale_seq(self, guard):
        session = _session(phase="policy", last_seq=3, restored=True)
        guard.check_transition(session, "PolicyExchange", 2, "R")

    def test_post_terminal(self, guard):
        session = _session(phase="expired")
        with pytest.raises(GuardRejection) as excinfo:
            guard.check_transition(session, "PolicyExchange", 2, "R")
        assert _code(excinfo) is ErrorCode.POST_TERMINAL

    def test_post_terminal_replay_still_allowed(self, guard):
        session = _session(phase="expired")
        session.responses[1] = ("PolicyExchange", "R", {"x": 1})
        guard.check_transition(session, "PolicyExchange", 1, "R")
