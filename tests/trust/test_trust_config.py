"""``TrustConfig`` — the nonmonotonic-trust member of the ``repro.api``
configuration quartet — and the strategy-escalation rules it applies."""

import pytest

from repro.api import (
    INITIAL_SCORE,
    Negotiator,
    ReputationEvent,
    ReputationSystem,
    Strategy,
    TrustBus,
    TrustConfig,
    VOToolkit,
    escalated_strategy,
)
from repro.credentials.selective import SelectiveCredential
from repro.scenario.workloads import chain_workload


class TestConstruction:
    def test_is_keyword_only_and_frozen(self):
        with pytest.raises(TypeError):
            TrustConfig(TrustBus())
        config = TrustConfig()
        with pytest.raises(AttributeError):
            config.escalate_on_retraction = False

    def test_validates_decay_parameters(self):
        with pytest.raises(ValueError):
            TrustConfig(decay_half_life=0)
        with pytest.raises(ValueError):
            TrustConfig(decay_half_life=-3.0)
        with pytest.raises(ValueError):
            TrustConfig(decay_target=1.5)
        config = TrustConfig(decay_half_life=4.0, decay_target=0.25)
        assert config.decay_half_life == 4.0

    def test_bus_defaults_to_process_default(self):
        from repro.trust import default_bus

        assert TrustConfig().trust_bus() is default_bus()
        own = TrustBus()
        config = TrustConfig(bus=own)
        assert config.trust_bus() is own
        assert config.registry is own.registry

    def test_retract_goes_through_the_configured_bus(self):
        fixture = chain_workload(2)
        bus = TrustBus(registry=fixture.revocations)
        config = TrustConfig(bus=bus)
        credential = next(iter(fixture.requester.profile))
        fixture.authority.revoke(credential)
        from repro.trust import TrustEvent

        receipt = config.retract(TrustEvent.credential_revoked(
            credential, crl=fixture.authority.crl,
        ))
        assert credential.serial in receipt.retracted
        assert bus.registry.is_revoked(credential.issuer, credential.serial)


class TestEscalationRules:
    def test_escalated_strategy_matrix(self):
        assert escalated_strategy(
            Strategy.TRUSTING, supports_partial_hiding=True
        ) is Strategy.SUSPICIOUS
        assert escalated_strategy(
            Strategy.STANDARD, supports_partial_hiding=True
        ) is Strategy.SUSPICIOUS
        # Plain X.509 parties stay put: selective presentations would
        # just fail (Section 6.3).
        assert escalated_strategy(
            Strategy.STANDARD, supports_partial_hiding=False
        ) is Strategy.STANDARD
        # Already at or above the target.
        assert escalated_strategy(
            Strategy.SUSPICIOUS, supports_partial_hiding=True
        ) is Strategy.SUSPICIOUS

    def _touched_fixture(self):
        """A chain fixture whose requester has been touched by a
        retraction and whose controller holds selective forms."""
        fixture = chain_workload(2)
        bus = TrustBus(registry=fixture.revocations)
        for credential in list(fixture.controller.profile):
            fixture.controller.add_selective(SelectiveCredential.issue_from(
                credential, fixture.authority.keypair.private
            ))
        revoked = next(iter(fixture.requester.profile))
        bus.revoke(fixture.authority, revoked)
        return fixture, bus

    def test_apply_escalation_requires_a_touched_counterparty(self):
        fixture, bus = self._touched_fixture()
        config = TrustConfig(bus=bus)
        # Counterparty untouched: no change.
        assert config.apply_escalation(
            fixture.controller, counterparty="nobody"
        ) is Strategy.STANDARD
        # The requester was touched: the controller escalates.
        assert config.apply_escalation(
            fixture.controller, counterparty=fixture.requester.name
        ) is Strategy.SUSPICIOUS
        assert fixture.controller.strategy is Strategy.SUSPICIOUS

    def test_escalation_spares_parties_without_selective_forms(self):
        fixture, bus = self._touched_fixture()
        config = TrustConfig(bus=bus)
        plain = fixture.requester  # no selective forms registered
        assert config.apply_escalation(
            plain, counterparty=fixture.requester.name
        ) is Strategy.STANDARD

    def test_escalation_can_be_disabled(self):
        fixture, bus = self._touched_fixture()
        config = TrustConfig(bus=bus, escalate_on_retraction=False)
        assert config.apply_escalation(
            fixture.controller, counterparty=fixture.requester.name
        ) is Strategy.STANDARD

    def test_negotiator_escalates_before_running(self):
        fixture, bus = self._touched_fixture()
        negotiator = Negotiator(trust=TrustConfig(bus=bus))
        negotiator.negotiate(
            fixture.requester, fixture.controller, fixture.resource,
            at=fixture.negotiation_time(),
        )
        assert fixture.controller.strategy is Strategy.SUSPICIOUS


class TestToolkitWiring:
    def test_toolkit_exposes_the_configured_bus(self):
        bus = TrustBus()
        toolkit = VOToolkit(trust=TrustConfig(bus=bus))
        assert toolkit.trust_bus is bus

    def test_toolkit_without_trust_config(self):
        assert VOToolkit().trust_bus is None


class TestDecayDefaults:
    def test_config_carries_reputation_decay_parameters(self):
        ledger = ReputationSystem()
        ledger.register("m")
        ledger.record("m", ReputationEvent.CONTRACT_VIOLATION)
        low = ledger.score("m")
        config = TrustConfig(decay_half_life=1.0)
        assert config.decay_target == INITIAL_SCORE
        ledger.decay(
            "m", half_life=config.decay_half_life,
            target=config.decay_target,
        )
        # One half-life: half the distance to the target is gone.
        assert ledger.score("m") == pytest.approx(
            (low + INITIAL_SCORE) / 2
        )
