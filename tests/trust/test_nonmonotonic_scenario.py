"""Reputation decay math and the scenario engine's nonmonotonic moves
(``decay_half_life`` drift and the ``revoked_credential`` cheater
move), end to end on the real TN service path."""

import pytest

from repro.scenario.engine import ScenarioConfig, run_scenario
from repro.vo.reputation import (
    INITIAL_SCORE,
    ReputationEvent,
    ReputationSystem,
)

SMALL = dict(seed=42, rounds=8, agents=6, cheaters=1, seats=2,
             churn_every=3)


class TestDecayMath:
    def test_one_half_life_halves_the_distance(self):
        ledger = ReputationSystem()
        ledger.register("m", initial=0.9)
        ledger.decay("m", half_life=2.0, elapsed=2.0, target=0.5)
        assert ledger.score("m") == pytest.approx(0.7)
        ledger.decay("m", half_life=2.0, elapsed=2.0, target=0.5)
        assert ledger.score("m") == pytest.approx(0.6)

    def test_decay_rises_scores_below_the_target(self):
        """Isolation can be earned back: a cheater's sunk score drifts
        up toward the neutral target during quiet rounds."""
        ledger = ReputationSystem()
        ledger.register("cheater")
        ledger.record("cheater", ReputationEvent.RESOURCE_MISUSE)
        sunk = ledger.score("cheater")
        assert sunk < INITIAL_SCORE
        for _ in range(10):
            ledger.decay("cheater", half_life=1.0, target=INITIAL_SCORE)
        assert ledger.score("cheater") > sunk
        assert ledger.score("cheater") == pytest.approx(
            INITIAL_SCORE, abs=1e-3
        )

    def test_decay_below_neutral_target_erodes_trust(self):
        """A target below the isolation threshold erodes unrefreshed
        trust — good standing is not forever."""
        ledger = ReputationSystem()
        ledger.register("m", initial=0.8)
        for _ in range(20):
            ledger.decay("m", half_life=1.0, target=0.1)
        assert ledger.score("m") < 0.3

    def test_decay_is_audited_as_decay_records(self):
        ledger = ReputationSystem()
        ledger.register("m", initial=0.9)
        ledger.decay("m", half_life=1.0)
        records = ledger.history("m")
        assert records[-1].event is ReputationEvent.DECAY
        assert records[-1].delta < 0

    def test_decay_validation(self):
        from repro.errors import VOError

        ledger = ReputationSystem()
        with pytest.raises(VOError):
            ledger.decay("m", half_life=0)
        with pytest.raises(VOError):
            ledger.decay("m", half_life=1.0, target=2.0)


class TestScenarioNonmonotonicMoves:
    def test_decay_keeps_the_scenario_green(self):
        report = run_scenario(ScenarioConfig(
            **SMALL, decay_half_life=6.0,
        ))
        assert report.ok, [v.to_dict() for v in report.violations]
        assert report.deals_closed > 0

    def test_revoked_credential_move_retracts_and_expels(self):
        report = run_scenario(ScenarioConfig(
            **SMALL, revoke_cheater_every=2,
        ))
        assert report.ok, [v.to_dict() for v in report.violations]
        assert report.credential_retractions >= 1
        assert report.expulsions >= 1
        # The move marks the cheater detected no later than the round
        # its seat credential was retracted.
        retracted_cheaters = [
            record for record in report.cheater_records
            if record.detection_round is not None
        ]
        assert retracted_cheaters

    def test_config_validates_decay_knobs(self):
        with pytest.raises(ValueError):
            ScenarioConfig(**SMALL, decay_half_life=0)
        with pytest.raises(ValueError):
            ScenarioConfig(**SMALL, decay_target=-0.1)

    def test_report_serializes_trust_counters(self):
        report = run_scenario(ScenarioConfig(
            **{**SMALL, "rounds": 4}, decay_half_life=4.0,
            revoke_cheater_every=2,
        ))
        payload = report.to_dict()
        trust = payload["trust"]
        assert set(trust) >= {"credentialRetractions", "decayRetractions"}
        assert trust["credentialRetractions"] == report.credential_retractions
