"""The retraction-event bus (``repro.trust``): nonmonotonic trust.

Every layer that memoizes established trust — the revocation registry,
the signature cache, the sequence caches, in-flight negotiations via
the epoch — must follow a retraction synchronously, and precisely:
only the artifacts the event contradicts are dropped.
"""

import pytest

from repro.credentials.authority import CredentialAuthority
from repro.credentials.revocation import RevocationList, RevocationRegistry
from repro.errors import ErrorCode, SignatureError
from repro.negotiation.cache import SequenceCache
from repro.negotiation.engine import NegotiationEngine
from repro.perf import (
    SIGNATURE_CACHE,
    clear_all_caches,
    drop_issuer_signatures,
    invalidate_issuer_signatures,
)
from repro.scenario.workloads import chain_workload
from repro.trust import (
    RetractionReceipt,
    TrustBus,
    TrustEvent,
    TrustEventKind,
    default_bus,
    trust_epoch,
)
from tests.conftest import ISSUE_AT


@pytest.fixture()
def authority():
    return CredentialAuthority.create("BusCA", key_bits=512)


@pytest.fixture()
def bus(authority):
    bus = TrustBus()
    bus.publish_crl(authority.crl)
    return bus


def _issue(authority, subject="holder", cred_type="Qual"):
    from repro.crypto.keys import KeyPair

    keypair = KeyPair.generate(512)
    return authority.issue(
        cred_type, subject, keypair.fingerprint, {"k": "v"}, ISSUE_AT
    )


class TestRetraction:
    def test_revoke_updates_registry_and_epoch(self, bus, authority):
        credential = _issue(authority)
        before = trust_epoch()
        receipt = bus.revoke(authority, credential)
        assert bus.registry.is_revoked(credential.issuer, credential.serial)
        assert receipt.retracted == frozenset({credential.serial})
        assert receipt.epoch == before + 1 == trust_epoch()

    def test_signature_eviction_is_serial_precise(self, bus, authority):
        clear_all_caches()
        revoked = _issue(authority)
        sibling = _issue(authority)
        SIGNATURE_CACHE.put(
            ("fp", b"d1", "s1"), True, tag=(authority.name, revoked.serial)
        )
        SIGNATURE_CACHE.put(
            ("fp", b"d2", "s2"), True, tag=(authority.name, sibling.serial)
        )
        receipt = bus.revoke(authority, revoked)
        assert receipt.evicted_signatures == 1
        assert SIGNATURE_CACHE.get(("fp", b"d1", "s1")) is None
        # The issuer's other credential keeps its cached verdict — the
        # precision the old whole-issuer flush lacked.
        assert SIGNATURE_CACHE.get(("fp", b"d2", "s2")) is True

    def test_sequence_eviction_via_provenance(self):
        fixture = chain_workload(4)
        engine = NegotiationEngine(fixture.requester, fixture.controller)
        result = engine.run(fixture.resource, at=fixture.negotiation_time())
        assert result.success
        cache = SequenceCache()
        agents = {
            fixture.requester.name: fixture.requester,
            fixture.controller.name: fixture.controller,
        }
        entry = cache.store(result, agents=agents)
        assert entry is not None and entry.provenance
        disclosed = fixture.requester.profile.get(
            result.disclosed_by_requester[0]
        )
        receipt = TrustBus(registry=fixture.revocations).revoke(
            fixture.authority, disclosed
        )
        assert receipt.evicted_sequences >= 1
        assert cache.lookup(
            result.requester, result.controller, result.resource
        ) is None

    def test_crl_publication_retracts_the_delta(self, bus, authority):
        first = _issue(authority)
        second = _issue(authority)
        authority.revoke(first)
        receipt = bus.publish_crl(authority.crl)
        assert receipt.retracted == frozenset({first.serial})
        authority.revoke(second)
        receipt = bus.publish_crl(authority.crl)
        # Only the *newly* revoked serial is the delta.
        assert receipt.retracted == frozenset({second.serial})

    def test_empty_publication_is_a_no_op(self, authority):
        bus = TrustBus()
        before = trust_epoch()
        receipt = bus.publish_crl(authority.crl)
        assert receipt.retracted == frozenset()
        assert receipt.epoch == before == trust_epoch()

    def test_negative_credential_and_decay_advance_the_epoch(self, bus):
        before = trust_epoch()
        bus.retract(TrustEvent.negative_credential(
            issuer="BusCA", serial=999, subject="mallory",
        ))
        bus.retract(TrustEvent.reputation_decayed(
            "mallory", score=0.2, threshold=0.3,
        ))
        assert trust_epoch() == before + 2


class TestSubscriptionAndTouched:
    def test_subscribers_observe_effective_events(self, bus, authority):
        seen = []
        unsubscribe = bus.subscribe(seen.append)
        credential = _issue(authority, subject="alice")
        bus.revoke(authority, credential)
        assert len(seen) == 1
        assert seen[0].kind is TrustEventKind.CREDENTIAL_REVOKED
        assert seen[0].subjects == frozenset({"alice"})
        unsubscribe()
        bus.revoke(authority, _issue(authority))
        assert len(seen) == 1

    def test_ineffective_events_are_not_delivered(self, authority):
        bus = TrustBus()
        seen = []
        bus.subscribe(seen.append)
        bus.publish_crl(authority.crl)  # empty list: nothing retracted
        assert seen == []

    def test_touched_counts_per_subject(self, bus, authority):
        assert bus.touched("alice") == 0
        bus.revoke(authority, _issue(authority, subject="alice"))
        bus.revoke(authority, _issue(authority, subject="alice"))
        bus.revoke(authority, _issue(authority, subject="bob"))
        assert bus.touched("alice") == 2
        assert bus.touched("bob") == 1
        assert bus.touched("carol") == 0

    def test_default_bus_is_a_singleton(self):
        assert default_bus() is default_bus()

    def test_receipt_is_frozen(self, bus, authority):
        receipt = bus.revoke(authority, _issue(authority))
        assert isinstance(receipt, RetractionReceipt)
        with pytest.raises(AttributeError):
            receipt.epoch = 0


class TestPublicationGuards:
    def test_unsigned_list_is_rejected_with_typed_code(self, bus):
        unsigned = RevocationList(issuer="BusCA", serials={1}, version=1)
        with pytest.raises(SignatureError) as excinfo:
            bus.publish_crl(unsigned)
        assert excinfo.value.error_code is ErrorCode.UNSIGNED_REVOCATION_LIST

    def test_stale_version_is_rejected(self, bus, authority):
        authority.revoke(_issue(authority))
        current = authority.crl
        bus.publish_crl(current)
        stale = RevocationList(issuer=authority.name, serials=set(), version=0)
        stale.sign(authority.keypair.private)
        with pytest.raises(SignatureError):
            bus.publish_crl(stale)

    def test_rejected_publication_does_not_advance_the_epoch(self, bus):
        before = trust_epoch()
        with pytest.raises(SignatureError):
            bus.publish_crl(RevocationList(issuer="BusCA", serials={7}))
        assert trust_epoch() == before


class TestDeprecatedShims:
    def test_registry_publish_warns_and_delegates(self, authority):
        registry = RevocationRegistry()
        authority.revoke(_issue(authority))
        with pytest.deprecated_call():
            registry.publish(authority.crl)
        assert registry.list_for(authority.name) is not None

    def test_issuer_flush_alias_warns(self):
        clear_all_caches()
        SIGNATURE_CACHE.put(("fp", b"d", "s"), True, tag=("OldCA", 3))
        with pytest.deprecated_call():
            assert invalidate_issuer_signatures("OldCA") == 1

    def test_blessed_sweep_does_not_warn(self):
        clear_all_caches()
        SIGNATURE_CACHE.put(("fp", b"d", "s"), True, tag=("OldCA", 3))
        assert drop_issuer_signatures("OldCA") == 1
