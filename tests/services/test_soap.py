"""SOAP-ish envelopes."""

import pytest

from repro.errors import ServiceError
from repro.services.soap import SoapEnvelope, SoapFault


class TestRoundtrip:
    def test_basic(self):
        envelope = SoapEnvelope(
            operation="StartNegotiation",
            parts={"strategy": "standard", "counterpartUrl": "urn:x"},
            session_id="tn-1",
        )
        restored = SoapEnvelope.from_xml(envelope.to_xml())
        assert restored.operation == "StartNegotiation"
        assert restored.session_id == "tn-1"
        assert restored.parts == {
            "strategy": "standard", "counterpartUrl": "urn:x"
        }

    def test_without_session(self):
        restored = SoapEnvelope.from_xml(SoapEnvelope("Op").to_xml())
        assert restored.session_id == ""
        assert restored.parts == {}

    def test_embedded_xml_part(self):
        policy_xml = "<policy type='disclosure'><resource target='R'/></policy>"
        envelope = SoapEnvelope("PolicyExchange", {"policy": policy_xml})
        restored = SoapEnvelope.from_xml(envelope.to_xml())
        assert "target" in restored.parts["policy"]

    def test_parts_sorted_deterministically(self):
        left = SoapEnvelope("Op", {"b": "2", "a": "1"}).to_xml()
        right = SoapEnvelope("Op", {"a": "1", "b": "2"}).to_xml()
        assert left == right


class TestFaults:
    def test_fault_raises_on_decode(self):
        fault_xml = SoapEnvelope.fault_xml("Op", "Server", "boom")
        with pytest.raises(SoapFault) as excinfo:
            SoapEnvelope.from_xml(fault_xml)
        assert excinfo.value.code == "Server"
        assert excinfo.value.message == "boom"


class TestErrors:
    def test_wrong_root(self):
        with pytest.raises(ServiceError):
            SoapEnvelope.from_xml("<NotAnEnvelope/>")

    def test_missing_operation(self):
        with pytest.raises(ServiceError):
            SoapEnvelope.from_xml("<Envelope><Header/><Body/></Envelope>")

    def test_missing_body(self):
        with pytest.raises(ServiceError):
            SoapEnvelope.from_xml(
                "<Envelope><Header><operation>Op</operation></Header>"
                "</Envelope>"
            )

    def test_part_without_name(self):
        with pytest.raises(ServiceError):
            SoapEnvelope.from_xml(
                "<Envelope><Header><operation>Op</operation></Header>"
                "<Body><part>x</part></Body></Envelope>"
            )
