"""The asyncio TN service, client, and transport."""

from __future__ import annotations

import asyncio

import pytest

from repro import obs
from repro.errors import ServiceError, TransportError
from repro.negotiation.cache import SequenceCache
from repro.scenario.workloads import capacity_workload
from repro.services.aio import (
    AioSimTransport,
    AioTNClient,
    AioTNWebService,
)
from repro.services.tn_client import TNClient
from repro.services.tn_service import TNWebService
from repro.services.transport import SimTransport
from repro.storage.document_store import XMLDocumentStore


@pytest.fixture()
def fixture():
    return capacity_workload(3)


def _async_service(fixture, **kwargs):
    transport = AioSimTransport()
    store = XMLDocumentStore("tn-aio")
    service = AioTNWebService(
        fixture.controller, transport, store, "urn:tn-aio", **kwargs
    )
    return service, transport


class TestAioService:
    def test_result_matches_sync_service(self, fixture):
        sync_transport = SimTransport()
        TNWebService(
            fixture.controller, sync_transport,
            XMLDocumentStore("tn-sync"), "urn:tn-sync",
        )
        sync_result = TNClient(
            sync_transport, "urn:tn-sync", fixture.requesters[0]
        ).negotiate(fixture.resource, at=fixture.negotiation_time())

        service, transport = _async_service(fixture)
        client = AioTNClient(transport, "urn:tn-aio", fixture.requesters[0])
        async_result = asyncio.run(
            client.negotiate(fixture.resource, at=fixture.negotiation_time())
        )
        assert sync_result.success and async_result.success
        assert (
            sync_result.to_audit_record() == async_result.to_audit_record()
        )
        # Identical billing: same operations, same charges, same
        # simulated cost on both drivers.
        assert (
            sync_transport.clock.elapsed_ms == transport.clock.elapsed_ms
        )
        assert (
            sync_transport.charges.__dict__ == transport.charges.__dict__
        )

    def test_sync_call_on_async_endpoint_fails_loudly(self, fixture):
        service, transport = _async_service(fixture)
        with pytest.raises(TransportError, match="async"):
            transport.call("urn:tn-aio", "StartNegotiation", {
                "requester": fixture.requesters[0],
                "strategy": "standard",
            })

    def test_replay_deduplicates_without_rebilling(self, fixture):
        service, transport = _async_service(fixture)

        async def scenario():
            start = await transport.acall("urn:tn-aio", "StartNegotiation", {
                "requester": fixture.requesters[0],
                "strategy": "standard",
            })
            payload = {
                "negotiationId": start["negotiationId"],
                "resource": fixture.resource,
                "at": fixture.negotiation_time(),
                "clientSeq": 1,
            }
            first = await transport.acall(
                "urn:tn-aio", "PolicyExchange", dict(payload)
            )
            billed_ms = transport.clock.elapsed_ms
            replay = await transport.acall(
                "urn:tn-aio", "PolicyExchange", dict(payload)
            )
            # The retry pays its own message cost but the phase is not
            # re-billed (no extra DB reads or policy rounds).
            replay_cost = transport.clock.elapsed_ms - billed_ms
            return first, replay, replay_cost

        first, replay, replay_cost = asyncio.run(scenario())
        assert replay == first
        assert replay_cost == transport.model.message_cost()

    def test_replay_mismatch_rejected(self, fixture):
        service, transport = _async_service(fixture)

        async def scenario():
            start = await transport.acall("urn:tn-aio", "StartNegotiation", {
                "requester": fixture.requesters[0],
                "strategy": "standard",
            })
            await transport.acall("urn:tn-aio", "PolicyExchange", {
                "negotiationId": start["negotiationId"],
                "resource": fixture.resource,
                "at": fixture.negotiation_time(),
                "clientSeq": 1,
            })
            # Same clientSeq, different operation: duplicate-key bug.
            await transport.acall("urn:tn-aio", "CredentialExchange", {
                "negotiationId": start["negotiationId"],
                "clientSeq": 1,
            })

        with pytest.raises(ServiceError):
            asyncio.run(scenario())

    def test_sequence_cache_replays_on_async_path(self, fixture):
        cache = SequenceCache()
        service, transport = _async_service(fixture, cache=cache)
        client = AioTNClient(transport, "urn:tn-aio", fixture.requesters[0])

        async def negotiate_once():
            return await client.negotiate(
                fixture.resource, at=fixture.negotiation_time()
            )

        first = asyncio.run(negotiate_once())
        second = asyncio.run(negotiate_once())
        assert first.success and second.success
        assert cache.stats()["hits"] == 1
        # A replay skips the policy phase entirely.
        assert second.policy_messages == 0
        assert (
            second.disclosed_by_requester == first.disclosed_by_requester
        )


class TestInFlightAccounting:
    def test_peak_counts_concurrently_open_sessions(self, fixture):
        service, transport = _async_service(fixture)
        agents = fixture.requesters

        async def scenario():
            opened = []
            for agent in agents:
                start = await transport.acall(
                    "urn:tn-aio", "StartNegotiation",
                    {"requester": agent, "strategy": "standard"},
                )
                opened.append(start["negotiationId"])
            assert service.sessions_in_flight == len(agents)
            for negotiation_id in opened:
                await transport.acall("urn:tn-aio", "PolicyExchange", {
                    "negotiationId": negotiation_id,
                    "resource": fixture.resource,
                    "at": fixture.negotiation_time(),
                    "clientSeq": 1,
                })
                await transport.acall("urn:tn-aio", "CredentialExchange", {
                    "negotiationId": negotiation_id,
                    "clientSeq": 2,
                })

        asyncio.run(scenario())
        assert service.sessions_in_flight == 0
        assert service.in_flight_peak == len(agents)

    def test_close_resets_in_flight(self, fixture):
        service, transport = _async_service(fixture)

        async def open_one():
            await transport.acall("urn:tn-aio", "StartNegotiation", {
                "requester": fixture.requesters[0],
                "strategy": "standard",
            })

        asyncio.run(open_one())
        assert service.sessions_in_flight == 1
        service.close()
        assert service.sessions_in_flight == 0

    def test_gauges_published_when_obs_enabled(self, fixture):
        obs.enable()
        try:
            service, transport = _async_service(fixture)
            client = AioTNClient(
                transport, "urn:tn-aio", fixture.requesters[0]
            )
            result = asyncio.run(client.negotiate(
                fixture.resource, at=fixture.negotiation_time()
            ))
            assert result.success
            metrics = obs.metrics()
            assert metrics["tn_service.sessions_in_flight"]["value"] == 0
            assert (
                metrics["tn_service.sessions_in_flight_peak"]["value"] == 1
            )
        finally:
            obs.disable()
