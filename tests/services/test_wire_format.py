"""Negotiation payloads through the SOAP wire format.

The prototype exchanged credentials and policies as XML inside SOAP
messages.  These tests push real X-TNL documents through the envelope
codec and confirm they survive byte-exact — i.e. the whole wire path
(credential XML → SOAP part → credential XML) preserves signatures.
"""

import pytest

from repro.credentials.credential import Credential
from repro.policy.parser import parse_policy
from repro.policy.xmlcodec import policy_from_xml, policy_to_xml
from repro.services.soap import SoapEnvelope


class TestCredentialOverSoap:
    def test_signed_credential_survives_envelope(self, iso_credential):
        envelope = SoapEnvelope(
            operation="CredentialExchange",
            parts={"credential": iso_credential.to_xml()},
            session_id="tn-7",
        )
        received = SoapEnvelope.from_xml(envelope.to_xml())
        restored = Credential.from_xml(received.parts["credential"])
        assert restored == iso_credential
        assert restored.signature_b64 == iso_credential.signature_b64

    def test_signature_still_verifies_after_transport(self, iso_credential,
                                                      infn):
        from repro.crypto.keys import verify_b64

        envelope = SoapEnvelope(
            "CredentialExchange", {"credential": iso_credential.to_xml()}
        )
        received = SoapEnvelope.from_xml(envelope.to_xml())
        restored = Credential.from_xml(received.parts["credential"])
        assert verify_b64(
            infn.public_key, restored.signing_bytes(), restored.signature_b64
        )

    def test_multiple_parts(self, iso_credential):
        policy = parse_policy("ISO 9000 Certified <- AAA Member")
        envelope = SoapEnvelope(
            operation="PolicyExchange",
            parts={
                "policy0": policy_to_xml(policy),
                "credential": iso_credential.to_xml(),
                "negotiationId": "tn-1",
            },
        )
        received = SoapEnvelope.from_xml(envelope.to_xml())
        assert received.parts["negotiationId"] == "tn-1"
        restored_policy = policy_from_xml(received.parts["policy0"])
        assert restored_policy.target.name == "ISO 9000 Certified"
        Credential.from_xml(received.parts["credential"])


class TestPolicyOverSoap:
    @pytest.mark.parametrize(
        "dsl",
        [
            "VoMembership <- WebDesignerQuality, {UNI EN ISO 9000}",
            "R <- $X(age>=18), @gender",
            "R <- A, B | group(distinct_issuers>=2)",
        ],
    )
    def test_policy_survives_envelope(self, dsl):
        policy = parse_policy(dsl)
        envelope = SoapEnvelope(
            "PolicyExchange", {"policy": policy_to_xml(policy)}
        )
        received = SoapEnvelope.from_xml(envelope.to_xml())
        restored = policy_from_xml(received.parts["policy"])
        assert restored.target == policy.target
        assert [t.name for t in restored.terms] == [
            t.name for t in policy.terms
        ]
