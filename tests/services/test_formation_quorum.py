"""Quorum-based formation under partial failure: unreachable invitees
are retried, the VO proceeds with a quorum, and degraded members are
re-negotiated later."""

import pytest

from repro.errors import MembershipError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan
from repro.negotiation.outcomes import FailureReason
from repro.scenario import build_aircraft_scenario
from repro.scenario.aircraft import (
    ROLE_DESIGN_PORTAL,
    ROLE_HPC,
    ROLE_OPTIMIZATION,
    ROLE_STORAGE,
)
from repro.services.resilience import ResilientTransport, RetryPolicy
from repro.services.vo_toolkit import InitiatorEdition


RETRY = RetryPolicy(max_attempts=2, base_backoff_ms=10, jitter_ms=0)

ALL_ROLES = {
    "AerospaceCo": ROLE_DESIGN_PORTAL,
    "OptimCo": ROLE_OPTIMIZATION,
    "HPCServiceCo": ROLE_HPC,
    "StorageCo": ROLE_STORAGE,
}


def full_plans(scenario):
    return [(scenario.app(name), role) for name, role in ALL_ROLES.items()]


def build_edition(plan):
    """An initiator edition whose calls flow through the fault stack."""
    scenario = build_aircraft_scenario()
    injector = FaultInjector(scenario.transport, plan)
    resilient = ResilientTransport(injector, retry=RETRY)
    edition = InitiatorEdition(
        scenario.initiator, resilient, scenario.host
    )
    edition.create_vo(scenario.contract)
    edition.enable_trust_negotiation()
    return scenario, edition, injector


class TestQuorumFormation:
    def test_fault_free_formation_joins_all(self):
        scenario, edition, _ = build_edition(FaultPlan())
        outcome = edition.execute_formation(
            [(scenario.app("AerospaceCo"), ROLE_DESIGN_PORTAL),
             (scenario.app("OptimCo"), ROLE_OPTIMIZATION)],
            at=scenario.contract.created_at,
        )
        assert outcome.joined == sorted(
            [ROLE_DESIGN_PORTAL, ROLE_OPTIMIZATION]
        )
        assert outcome.quorum_met
        assert outcome.degraded == {}
        assert edition.vo.degraded() == {}

    def test_unreachable_member_degrades_not_aborts(self):
        # 2 join attempts x 2 transport attempts on StartNegotiation:
        # four drops make the first member unreachable; the plan is
        # then exhausted, so the second member joins cleanly.
        plan = FaultPlan(timeout_wait_ms=50).always(
            FaultKind.DROP, url="urn:vo:tn", limit=4
        )
        scenario, edition, injector = build_edition(plan)
        outcome = edition.execute_formation(
            [(scenario.app("AerospaceCo"), ROLE_DESIGN_PORTAL),
             (scenario.app("OptimCo"), ROLE_OPTIMIZATION)],
            quorum=1,
            at=scenario.contract.created_at,
        )
        assert injector.injected[FaultKind.DROP] == 4
        assert outcome.joined == [ROLE_OPTIMIZATION]
        assert outcome.quorum_met  # quorum of 1 reached
        assert outcome.attempts[ROLE_DESIGN_PORTAL] == 2
        assert outcome.degraded == {ROLE_DESIGN_PORTAL: "AerospaceCo"}
        portal = outcome.outcomes[ROLE_DESIGN_PORTAL]
        assert portal.unreachable and not portal.joined
        assert portal.negotiation.failure_reason is FailureReason.UNREACHABLE
        # no reputation penalty: trust was never denied
        assert edition.vo.reputation.score("AerospaceCo") == \
            edition.vo.reputation.score("HPCServiceCo")

    def test_degraded_role_blocks_strict_operation_only(self):
        plan = FaultPlan(timeout_wait_ms=50).always(
            FaultKind.DROP, url="urn:vo:tn", limit=4
        )
        scenario, edition, _ = build_edition(plan)
        outcome = edition.execute_formation(
            full_plans(scenario), quorum=3,
            at=scenario.contract.created_at,
        )
        assert outcome.degraded == {ROLE_DESIGN_PORTAL: "AerospaceCo"}
        assert outcome.quorum_met
        vo = edition.vo
        with pytest.raises(MembershipError):
            vo.begin_operation()
        vo.begin_operation(allow_degraded=True)

    def test_retry_degraded_heals_the_vo(self):
        plan = FaultPlan(timeout_wait_ms=50).always(
            FaultKind.DROP, url="urn:vo:tn", limit=4
        )
        scenario, edition, _ = build_edition(plan)
        edition.execute_formation(
            full_plans(scenario), quorum=3,
            at=scenario.contract.created_at,
        )
        assert ROLE_DESIGN_PORTAL in edition.vo.degraded()
        plan.clear()  # the network heals
        healed = edition.retry_degraded(
            {ROLE_DESIGN_PORTAL: scenario.app("AerospaceCo")},
            at=scenario.contract.created_at,
        )
        assert healed[ROLE_DESIGN_PORTAL].joined
        assert edition.vo.degraded() == {}
        edition.vo.begin_operation()  # strict mode passes again

    def test_trust_denial_is_not_degraded(self):
        # A definitive negotiation failure must not be retried as
        # unreachable nor recorded as degraded.
        scenario, edition, _ = build_edition(FaultPlan())
        member = scenario.app("StorageCo")  # wrong creds for the portal
        outcome = edition.execute_formation(
            [(member, ROLE_DESIGN_PORTAL)],
            at=scenario.contract.created_at,
        )
        portal = outcome.outcomes[ROLE_DESIGN_PORTAL]
        assert not portal.joined
        assert not portal.unreachable
        assert outcome.attempts[ROLE_DESIGN_PORTAL] == 1
        assert outcome.degraded == {}
