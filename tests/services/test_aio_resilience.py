"""AioResilientTransport: the asyncio driver over the resilience core.

Single-task behavior is covered exhaustively by the three-way parity
suite (``tests/faults/test_resilience_parity.py``); this file covers
what only the async driver can exhibit — concurrent tasks sharing one
per-endpoint breaker, the single half-open probe token under
contention, task-local clock branches, and the sync-call guard.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import (
    CircuitOpenError,
    RetryExhaustedError,
    SessionError,
    TransportError,
)
from repro.services.aio import AioSimTransport
from repro.services.aio_resilience import AioResilientTransport
from repro.services.resilience import (
    CircuitBreakerPolicy,
    CircuitState,
    RetryPolicy,
)

URL = "urn:aio:svc"


def make_stack(script, **kwargs):
    """An AioSimTransport bound to a scripted endpoint plus the async
    resilient decorator.  ``script[i]`` decides delivered attempt
    ``i``: ``None`` answers, an exception factory raises; attempts
    past the end of the script answer."""
    transport = AioSimTransport()
    delivered = []

    def handler(operation, payload):
        index = len(delivered)
        delivered.append(dict(payload))
        action = script[index] if index < len(script) else None
        if action is None:
            return {"ok": True, "attempt": index + 1}
        raise action()

    transport.bind(URL, handler)
    kwargs.setdefault("retry", RetryPolicy(jitter_ms=0.0))
    resilient = AioResilientTransport(transport, **kwargs)
    return resilient, transport, delivered


class TestSingleTask:
    def test_retries_then_succeeds(self):
        resilient, _, delivered = make_stack(
            [lambda: TransportError("flap"), None]
        )
        response = asyncio.run(resilient.acall(URL, "Echo", {}))
        assert response["ok"]
        assert resilient.stats.attempts == 2
        assert resilient.stats.retries == 1
        assert len(delivered) == 2

    def test_exhaustion_chains_cause(self):
        resilient, _, _ = make_stack(
            [lambda: TransportError("down")] * 2,
            retry=RetryPolicy(max_attempts=2, jitter_ms=0.0),
        )
        with pytest.raises(RetryExhaustedError) as excinfo:
            asyncio.run(resilient.acall(URL, "Echo", {}))
        assert isinstance(excinfo.value.__cause__, TransportError)
        assert resilient.stats.exhausted == 1

    def test_backoff_charged_to_calling_tasks_branch(self):
        resilient, transport, _ = make_stack(
            [lambda: TransportError("flap"), None],
            retry=RetryPolicy(base_backoff_ms=250.0, jitter_ms=0.0),
        )

        async def scenario():
            with resilient.clock_branch() as branch:
                await resilient.acall(URL, "Echo", {})
                return branch.elapsed_ms

        branch_ms = asyncio.run(scenario())
        # the 250 ms backoff landed on the branch, not the base clock
        assert branch_ms >= 250.0
        assert transport.base_clock.elapsed_ms < 250.0

    def test_sync_call_fails_loudly(self):
        resilient, _, _ = make_stack([])
        with pytest.raises(TypeError, match="asyncio-only"):
            resilient.call(URL, "Echo", {})

    def test_deadline_stamped_on_payload(self):
        resilient, _, delivered = make_stack([None], deadline_ms=1234.0)
        asyncio.run(resilient.acall(URL, "Echo", {}))
        assert delivered[0]["deadlineMs"] == 1234.0


class TestSharedBreaker:
    def test_concurrent_failures_open_breaker_once(self):
        resilient, _, _ = make_stack(
            [lambda: TransportError("dead")] * 64,
            retry=RetryPolicy(max_attempts=1, jitter_ms=0.0),
            breaker_policy=CircuitBreakerPolicy(failure_threshold=3,
                                                reset_timeout_ms=5000.0),
        )

        async def one():
            try:
                await resilient.acall(URL, "Echo", {})
            except (RetryExhaustedError, CircuitOpenError) as exc:
                return type(exc).__name__

        async def scenario():
            # three sequential failures trip the shared breaker ...
            results = [await one() for _ in range(3)]
            # ... and a concurrent wave of five all fail fast on it
            results += await asyncio.gather(*(one() for _ in range(5)))
            return results

        results = asyncio.run(scenario())
        breaker = resilient.breaker(URL)
        assert breaker.state is CircuitState.OPEN
        assert breaker.opens == 1
        assert results[:3] == ["RetryExhaustedError"] * 3
        # the whole wave was rejected without touching the endpoint
        assert results[3:] == ["CircuitOpenError"] * 5
        assert resilient.stats.breaker_rejections == 5
        assert resilient.stats.attempts == 3  # threshold, then fast-fail

    def test_half_open_contention_admits_single_probe(self):
        resilient, transport, delivered = make_stack(
            [lambda: TransportError("dead")] * 3,  # then recovers
            retry=RetryPolicy(max_attempts=1, jitter_ms=0.0),
            breaker_policy=CircuitBreakerPolicy(failure_threshold=3,
                                                reset_timeout_ms=1000.0),
        )

        async def open_breaker():
            for _ in range(3):
                with pytest.raises(RetryExhaustedError):
                    await resilient.acall(URL, "Echo", {})

        async def probe_wave():
            transport.clock.advance(1001.0)
            return await asyncio.gather(
                *(probe() for _ in range(6))
            )

        async def probe():
            try:
                response = await resilient.acall(URL, "Echo", {})
                return ("ok", response["attempt"])
            except CircuitOpenError:
                return ("rejected", None)

        async def scenario():
            await open_breaker()
            return await probe_wave()

        results = asyncio.run(scenario())
        oks = [r for r in results if r[0] == "ok"]
        rejected = [r for r in results if r[0] == "rejected"]
        # exactly one task won the probe token and closed the breaker;
        # the losers failed fast instead of stampeding the endpoint
        assert len(oks) == 1
        assert len(rejected) == 5
        assert len(delivered) == 4  # 3 failures + the single probe
        assert resilient.breaker(URL).state is CircuitState.CLOSED

    def test_app_error_releases_probe_token(self):
        resilient, transport, delivered = make_stack(
            [lambda: TransportError("dead"),
             lambda: SessionError("unknown session"),
             None],
            retry=RetryPolicy(max_attempts=1, jitter_ms=0.0),
            breaker_policy=CircuitBreakerPolicy(failure_threshold=1,
                                                reset_timeout_ms=1000.0),
        )

        async def scenario():
            with pytest.raises(RetryExhaustedError):
                await resilient.acall(URL, "Echo", {})
            transport.clock.advance(1001.0)
            # probe attempt answers with an app-level "no": no breaker
            # verdict, but the token must come back
            with pytest.raises(SessionError):
                await resilient.acall(URL, "Echo", {})
            breaker = resilient.breaker(URL)
            assert breaker.state is CircuitState.HALF_OPEN
            assert not breaker.probe_in_flight
            # the next caller can still probe — no deadlock
            response = await resilient.acall(URL, "Echo", {})
            return response

        response = asyncio.run(scenario())
        assert response["ok"]
        assert resilient.breaker(URL).state is CircuitState.CLOSED
        assert len(delivered) == 3

    def test_breaker_recovers_after_reset_window(self):
        resilient, transport, _ = make_stack(
            [lambda: TransportError("dead")] * 2,
            retry=RetryPolicy(max_attempts=1, jitter_ms=0.0),
            breaker_policy=CircuitBreakerPolicy(failure_threshold=2,
                                                reset_timeout_ms=500.0),
        )

        async def scenario():
            for _ in range(2):
                with pytest.raises(RetryExhaustedError):
                    await resilient.acall(URL, "Echo", {})
            with pytest.raises(CircuitOpenError):
                await resilient.acall(URL, "Echo", {})
            transport.clock.advance(501.0)
            return await resilient.acall(URL, "Echo", {})

        response = asyncio.run(scenario())
        assert response["ok"]
        assert resilient.stats.breaker_rejections == 1
