"""Deadline-overrun retry abandonment and replay-mismatch rejection.

Two hardening behaviors that ride the resilience layer:

- :class:`ResilientTransport` gives up a retry *before* paying for a
  backoff (or an overload hint) that would land past the deadline,
  instead of burning the budget on a wait it already knows is lost;
- the TN service's idempotency replay answers only *verbatim* retries —
  a recorded ``clientSeq`` or ``requestId`` arriving with a different
  payload is rejected with ``REPLAY_MISMATCH``, never answered with
  another call's stale response.
"""

import pytest

from repro.errors import (
    ErrorCode,
    OverloadError,
    ServiceError,
    TimeoutError,
)
from repro.hardening.config import HardeningConfig
from repro.services.resilience import ResilientTransport, RetryPolicy
from repro.services.tn_service import TNWebService
from repro.services.transport import SimTransport
from repro.storage.document_store import XMLDocumentStore
from tests.conftest import ISSUE_AT, NEGOTIATION_AT


@pytest.fixture()
def transport():
    return SimTransport()


class TestDeadlineOverrunAbandon:
    def test_backoff_that_would_overrun_abandons_early(self, transport):
        calls = []

        def flaky(operation, payload):
            calls.append(operation)
            raise TimeoutError("endpoint hiccup")

        transport.bind("urn:flaky", flaky)
        resilient = ResilientTransport(
            transport,
            retry=RetryPolicy(
                max_attempts=5, base_backoff_ms=200.0,
                multiplier=1.0, jitter_ms=0.0,
            ),
            deadline_ms=250.0,
        )
        with pytest.raises(TimeoutError, match="would overrun"):
            resilient.call("urn:flaky", "Ping", {})
        # The first failure already proved the 200 ms backoff cannot
        # fit the 250 ms budget: no further attempts were paid for.
        assert len(calls) == 1
        assert resilient.stats.deadline_expiries == 1
        assert resilient.stats.retries == 0

    def test_overload_hint_that_would_overrun_abandons_early(
        self, transport
    ):
        calls = []

        def saturated(operation, payload):
            calls.append(operation)
            raise OverloadError("queue full", retry_after_ms=10_000.0)

        transport.bind("urn:busy", saturated)
        resilient = ResilientTransport(
            transport,
            retry=RetryPolicy(max_attempts=4, jitter_ms=0.0),
            deadline_ms=500.0,
        )
        with pytest.raises(TimeoutError, match="overload hint"):
            resilient.call("urn:busy", "Ping", {})
        assert len(calls) == 1
        assert resilient.stats.deadline_expiries == 1
        # Backpressure is not peer failure: the breaker stays closed.
        assert resilient.breaker("urn:busy").consecutive_failures == 0

    def test_affordable_overload_hint_is_honored(self, transport):
        state = {"sheds": 1}

        def recovering(operation, payload):
            if state["sheds"]:
                state["sheds"] -= 1
                raise OverloadError("queue full", retry_after_ms=500.0)
            return {"pong": True}

        transport.bind("urn:busy", recovering)
        resilient = ResilientTransport(
            transport,
            retry=RetryPolicy(max_attempts=4, jitter_ms=0.0),
            deadline_ms=30_000.0,
        )
        before = transport.clock.elapsed_ms
        response = resilient.call("urn:busy", "Ping", {})
        assert response == {"pong": True}
        assert resilient.stats.backpressure_waits == 1
        assert transport.clock.elapsed_ms - before >= 500.0
        assert resilient.breaker("urn:busy").consecutive_failures == 0


@pytest.fixture()
def negotiation(transport, agent_factory, infn, aaa_authority,
                shared_keypair, other_keypair):
    requester = agent_factory(
        "AerospaceCo",
        [infn.issue("ISO 9000 Certified", "AerospaceCo",
                    shared_keypair.fingerprint,
                    {"QualityRegulation": "UNI EN ISO 9000"}, ISSUE_AT)],
        "ISO 9000 Certified <- AAA Member",
        shared_keypair,
    )
    controller = agent_factory(
        "AircraftCo",
        [aaa_authority.issue("AAA Member", "AircraftCo",
                             other_keypair.fingerprint,
                             {"association": "AAA"}, ISSUE_AT)],
        "VoMembership <- WebDesignerQuality\nAAA Member <- DELIV",
        other_keypair,
    )
    TNWebService(
        controller, transport, XMLDocumentStore("tn"), "urn:tn",
        hardening=HardeningConfig(),
    )
    resilient = ResilientTransport(
        transport, retry=RetryPolicy(jitter_ms=0.0),
    )
    start = resilient.call("urn:tn", "StartNegotiation", {
        "requester": requester, "strategy": "standard",
        "requestId": "rid-replay-1",
    })
    policy_payload = {
        "negotiationId": start["negotiationId"],
        "resource": "VoMembership", "at": NEGOTIATION_AT, "clientSeq": 1,
    }
    first = resilient.call("urn:tn", "PolicyExchange", dict(policy_payload))
    return resilient, requester, start, policy_payload, first


class TestReplayMismatchRejection:
    def test_verbatim_retry_replays_recorded_response(self, negotiation):
        resilient, _, _, policy_payload, first = negotiation
        replay = resilient.call(
            "urn:tn", "PolicyExchange", dict(policy_payload),
        )
        assert replay == first

    def test_same_seq_different_resource_rejected(self, negotiation):
        resilient, _, _, policy_payload, _ = negotiation
        mismatched = {**policy_payload, "resource": "SomethingElse"}
        with pytest.raises(ServiceError) as excinfo:
            resilient.call("urn:tn", "PolicyExchange", mismatched)
        assert excinfo.value.error_code is ErrorCode.REPLAY_MISMATCH
        # A replay-mismatch is a peer bug, not a transient: no retries.
        assert resilient.stats.retries == 0

    def test_same_seq_different_operation_rejected(self, negotiation):
        resilient, _, start, _, _ = negotiation
        with pytest.raises(ServiceError) as excinfo:
            resilient.call("urn:tn", "CredentialExchange", {
                "negotiationId": start["negotiationId"],
                "at": NEGOTIATION_AT, "clientSeq": 1,
            })
        assert excinfo.value.error_code is ErrorCode.REPLAY_MISMATCH

    def test_request_id_reuse_with_different_strategy_rejected(
        self, negotiation
    ):
        resilient, requester, _, _, _ = negotiation
        with pytest.raises(ServiceError) as excinfo:
            resilient.call("urn:tn", "StartNegotiation", {
                "requester": requester, "strategy": "trusting",
                "requestId": "rid-replay-1",
            })
        assert excinfo.value.error_code is ErrorCode.REPLAY_MISMATCH
