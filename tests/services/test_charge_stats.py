"""Thread-safety of the transport's charge counters.

``execute_formation(parallel=True)`` charges costs from several worker
threads at once; the counters must come out exact, and ``charges``
must hand back an immutable snapshot rather than the live record.
"""

import threading

from repro.services.transport import ChargeStats, SimTransport


class TestChargeStatsThreadSafety:
    def test_parallel_charges_are_exact(self):
        transport = SimTransport()
        workers, rounds = 8, 200
        barrier = threading.Barrier(workers)

        def worker():
            with transport.clock_branch():
                barrier.wait()
                for _ in range(rounds):
                    transport.charge_messages(1)
                    transport.charge_db(reads=2, writes=1, connect=True)
                    transport.charge_crypto(signs=1, verifies=3)
                    transport.charge_ui()
                    transport.charge_mail()

        threads = [threading.Thread(target=worker) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total = workers * rounds
        charges = transport.charges
        assert charges.messages == total
        assert charges.db_reads == 2 * total
        assert charges.db_writes == total
        assert charges.db_connects == total
        assert charges.crypto_signs == total
        assert charges.crypto_verifies == 3 * total
        assert charges.ui_interactions == total
        assert charges.mail_deliveries == total

    def test_charges_property_is_a_snapshot(self):
        transport = SimTransport()
        transport.charge_messages(3)
        snapshot = transport.charges
        transport.charge_messages(2)
        assert snapshot.messages == 3
        assert transport.charges.messages == 5

    def test_copy_is_independent(self):
        stats = ChargeStats(messages=1, db_reads=2)
        clone = stats.copy()
        clone.messages += 10
        assert stats.messages == 1
        assert clone.db_reads == 2
