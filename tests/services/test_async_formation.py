"""Three-way driver parity: serial, thread-pool, and asyncio.

The sans-IO refactor's core promise is that scheduling is the ONLY
thing a driver chooses: the serial loop, the thread pool, and the
asyncio event loop must produce identical negotiation outcomes,
identical disclosure sets, and identical simulated-time accounting on
the same seeded workload.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.negotiation.engine import NegotiationEngine
from repro.negotiation.outcomes import FailureReason
from repro.perf import SIGNATURE_CACHE, clear_all_caches
from repro.scenario.workloads import (
    capacity_workload,
    chain_workload,
    formation_workload,
)
from repro.services.aio import (
    AioSimTransport,
    AioTNWebService,
    anegotiate,
)
from repro.services.tn_service import TNWebService
from repro.services.transport import SimTransport
from repro.storage.document_store import XMLDocumentStore
from repro.trust import TrustBus

ROLES = 4


def _formation(parallel):
    fixture = formation_workload(ROLES)
    edition = fixture.initiator_edition
    edition.create_vo(fixture.contract)
    edition.enable_trust_negotiation()
    outcome = edition.execute_formation(
        fixture.plans(), at=fixture.contract.created_at, parallel=parallel,
    )
    return outcome


def _snapshot(outcome) -> dict:
    """Everything but the schedule: who joined, what was disclosed,
    every transcript line — the driver-independent outcome."""
    return {
        "joined": outcome.joined,
        "degraded": dict(outcome.degraded),
        "attempts": dict(outcome.attempts),
        "quorum_met": outcome.quorum_met,
        "joins": {
            role: {
                "member": join.member,
                "joined": join.joined,
                "reason": join.reason,
                "unreachable": join.unreachable,
                "negotiation": (
                    join.negotiation.to_audit_record()
                    if join.negotiation is not None else None
                ),
            }
            for role, join in outcome.outcomes.items()
        },
    }


class TestThreeWayFormationParity:
    def test_outcomes_and_disclosures_identical(self):
        serial = _formation(parallel=False)
        threads = _formation(parallel=True)
        aio = _formation(parallel="asyncio")
        assert serial.mode == "serial"
        assert threads.mode == "parallel"
        assert aio.mode == "asyncio"
        assert _snapshot(serial) == _snapshot(threads) == _snapshot(aio)
        assert len(serial.joined) == ROLES

    def test_time_accounting_identical_across_concurrent_drivers(self):
        serial = _formation(parallel=False)
        threads = _formation(parallel=True)
        aio = _formation(parallel="asyncio")
        # Same joins, same lane merge: the asyncio schedule must cost
        # exactly what the thread pool costs, and both must report the
        # serial run as their serial-equivalent baseline.
        assert aio.elapsed_ms == pytest.approx(threads.elapsed_ms)
        assert aio.critical_path_ms == pytest.approx(
            threads.critical_path_ms
        )
        assert aio.serial_ms == pytest.approx(serial.elapsed_ms)
        assert threads.serial_ms == pytest.approx(serial.elapsed_ms)
        assert aio.elapsed_ms < serial.elapsed_ms

    def test_awaitable_entry_point_matches_sync_wrapper(self):
        fixture = formation_workload(ROLES)
        edition = fixture.initiator_edition
        edition.create_vo(fixture.contract)
        edition.enable_trust_negotiation()
        outcome = asyncio.run(edition.execute_formation_async(
            fixture.plans(), at=fixture.contract.created_at,
        ))
        assert outcome.mode == "asyncio"
        assert _snapshot(outcome) == _snapshot(_formation("asyncio"))


class TestEngineDriverParity:
    def test_anegotiate_matches_sync_engine_on_success(self):
        fixture = chain_workload(6)
        sync_result = NegotiationEngine(
            fixture.requester, fixture.controller
        ).run(fixture.resource, at=fixture.negotiation_time())
        async_result = asyncio.run(anegotiate(
            fixture.requester, fixture.controller, fixture.resource,
            at=fixture.negotiation_time(),
        ))
        assert sync_result.success and async_result.success
        assert (
            sync_result.to_audit_record() == async_result.to_audit_record()
        )

    def test_anegotiate_matches_sync_engine_on_failure(self):
        # Requester from a different authority domain: the policy
        # phase finds a sequence, but the credential exchange rejects
        # the untrusted issuer — identically on both drivers.
        fixture = capacity_workload(1)
        foreign = capacity_workload(1).requesters[0]
        sync_result = NegotiationEngine(
            foreign, fixture.controller
        ).run(fixture.resource, at=fixture.negotiation_time())
        async_result = asyncio.run(anegotiate(
            foreign, fixture.controller, fixture.resource,
            at=fixture.negotiation_time(),
        ))
        assert not sync_result.success and not async_result.success
        assert (
            sync_result.to_audit_record() == async_result.to_audit_record()
        )

    def test_many_interleaved_sessions_each_match_serial(self):
        fixture = capacity_workload(6)
        at = fixture.negotiation_time()
        serial_records = [
            NegotiationEngine(agent, fixture.controller)
            .run(fixture.resource, at=at).to_audit_record()
            for agent in fixture.requesters
        ]

        async def run_all():
            return list(await asyncio.gather(*(
                anegotiate(agent, fixture.controller, fixture.resource,
                           at=at)
                for agent in fixture.requesters
            )))

        async_records = [
            result.to_audit_record() for result in asyncio.run(run_all())
        ]
        assert async_records == serial_records


def _arm_mid_exchange_revocation(fixture):
    """The first credential the controller accepts is revoked through
    the trust bus the moment verification returns — a retraction
    landing between two exchange steps of an in-flight negotiation.
    Returns a dict the tripwire fills with the revoked credential and
    its retraction receipt."""
    bus = TrustBus(registry=fixture.revocations)
    original = fixture.controller.verify_disclosure
    armed: dict = {}

    def tripwire(disclosure, term, at, nonce):
        accepted, reason, effective = original(disclosure, term, at, nonce)
        if accepted and not armed:
            credential = (
                disclosure.credential
                if disclosure.credential is not None
                else disclosure.presentation.credential
            )
            armed["credential"] = credential
            armed["receipt"] = bus.revoke(fixture.authority, credential)
        return accepted, reason, effective

    fixture.controller.verify_disclosure = tripwire
    return armed


def _drive_serial(fixture):
    return NegotiationEngine(fixture.requester, fixture.controller).run(
        fixture.resource, at=fixture.negotiation_time()
    )


def _drive_threaded(fixture):
    with ThreadPoolExecutor(max_workers=1) as pool:
        return pool.submit(_drive_serial, fixture).result()


def _drive_asyncio(fixture):
    return asyncio.run(anegotiate(
        fixture.requester, fixture.controller, fixture.resource,
        at=fixture.negotiation_time(),
    ))


class TestMidFlightRevocationParity:
    """Nonmonotonic trust, mid-flight: a credential accepted earlier in
    the exchange is revoked while the negotiation is still running.
    The per-step trust-epoch recheck must fail the negotiation with
    ``CREDENTIAL_REVOKED`` — identically under the serial, thread-pool,
    and asyncio drivers — and must leave no stale cached verdict for
    the revoked serial behind."""

    def _revoked_run(self, driver):
        clear_all_caches()
        fixture = chain_workload(6)
        armed = _arm_mid_exchange_revocation(fixture)
        result = driver(fixture)
        assert armed, "tripwire never fired: no disclosure was accepted"
        credential = armed["credential"]
        # Zero stale cache hits: the revoked serial's signature verdict
        # was evicted at retraction time and never re-cached.
        assert SIGNATURE_CACHE.invalidate_tag(
            (credential.issuer, credential.serial)
        ) == 0
        return result, armed

    def test_all_three_drivers_fail_identically(self):
        outcomes = [
            self._revoked_run(driver)
            for driver in (_drive_serial, _drive_threaded, _drive_asyncio)
        ]
        for result, armed in outcomes:
            assert not result.success
            assert result.failure_reason is FailureReason.CREDENTIAL_REVOKED
            assert any(
                event.action == "revocation-recheck"
                for event in result.transcript
            )
            assert armed["receipt"].evicted_signatures >= 1
        # The retraction is observed at the same protocol point on all
        # three drivers: same failure detail, same disclosure sets.
        details = {result.failure_detail for result, _ in outcomes}
        assert len(details) == 1
        disclosed = {
            (
                tuple(result.disclosed_by_requester),
                tuple(result.disclosed_by_controller),
            )
            for result, _ in outcomes
        }
        assert len(disclosed) == 1

    def test_revocation_after_last_step_blocks_the_grant(self):
        """Even a retraction landing after every disclosure succeeded
        (between the final verification and the grant) is caught by the
        pre-grant recheck."""
        clear_all_caches()
        fixture = chain_workload(2)
        bus = TrustBus(registry=fixture.revocations)
        original = fixture.controller.verify_disclosure

        def tripwire(disclosure, term, at, nonce):
            accepted, reason, effective = original(
                disclosure, term, at, nonce
            )
            if accepted and disclosure.credential is not None:
                bus.revoke(fixture.authority, disclosure.credential)
            return accepted, reason, effective

        fixture.controller.verify_disclosure = tripwire
        result = _drive_serial(fixture)
        assert not result.success
        assert result.failure_reason is FailureReason.CREDENTIAL_REVOKED


class TestPhaseBoundaryRevocationParity:
    """The service precomputes the full negotiation result at
    PolicyExchange and replays it at CredentialExchange.  A revocation
    landing between the two phases must not be replayed over: the
    session re-checks its disclosed credentials against the (now
    updated) registry and fails with ``CREDENTIAL_REVOKED`` — on the
    sync service, on a worker thread, and on the asyncio service."""

    @staticmethod
    def _revoke_requester_credential(fixture):
        credential = next(iter(fixture.requester.profile))
        TrustBus(registry=fixture.revocations).revoke(
            fixture.authority, credential
        )
        return credential

    def _sync_outcome(self):
        fixture = chain_workload(4)
        transport = SimTransport()
        TNWebService(
            fixture.controller, transport,
            XMLDocumentStore("tn-revoke"), "urn:tn-revoke",
        )
        start = transport.call("urn:tn-revoke", "StartNegotiation", {
            "requester": fixture.requester, "strategy": "standard",
        })
        negotiation_id = start["negotiationId"]
        transport.call("urn:tn-revoke", "PolicyExchange", {
            "negotiationId": negotiation_id,
            "resource": fixture.resource,
            "at": fixture.negotiation_time(), "clientSeq": 1,
        })
        self._revoke_requester_credential(fixture)
        exchange = transport.call("urn:tn-revoke", "CredentialExchange", {
            "negotiationId": negotiation_id, "clientSeq": 2,
        })
        return exchange["result"]

    def _aio_outcome(self):
        fixture = chain_workload(4)
        transport = AioSimTransport()
        AioTNWebService(
            fixture.controller, transport,
            XMLDocumentStore("tn-arevoke"), "urn:tn-arevoke",
        )

        async def run():
            start = await transport.acall(
                "urn:tn-arevoke", "StartNegotiation",
                {"requester": fixture.requester, "strategy": "standard"},
            )
            negotiation_id = start["negotiationId"]
            await transport.acall("urn:tn-arevoke", "PolicyExchange", {
                "negotiationId": negotiation_id,
                "resource": fixture.resource,
                "at": fixture.negotiation_time(), "clientSeq": 1,
            })
            self._revoke_requester_credential(fixture)
            exchange = await transport.acall(
                "urn:tn-arevoke", "CredentialExchange",
                {"negotiationId": negotiation_id, "clientSeq": 2},
            )
            return exchange["result"]

        return asyncio.run(run())

    def test_sync_thread_and_asyncio_services_agree(self):
        sync_result = self._sync_outcome()
        with ThreadPoolExecutor(max_workers=1) as pool:
            threaded_result = pool.submit(self._sync_outcome).result()
        aio_result = self._aio_outcome()
        results = (sync_result, threaded_result, aio_result)
        for result in results:
            assert not result.success
            assert result.failure_reason is FailureReason.CREDENTIAL_REVOKED
            assert any(
                event.action == "revocation-recheck"
                for event in result.transcript
            )
        assert len({result.failure_detail for result in results}) == 1

    def test_unrevoked_session_still_replays_the_result(self):
        """Control: with no retraction between the phases the stored
        result is replayed successfully (the epoch compare costs one
        integer check, not a re-verification)."""
        fixture = chain_workload(4)
        transport = SimTransport()
        TNWebService(
            fixture.controller, transport,
            XMLDocumentStore("tn-norevoke"), "urn:tn-norevoke",
        )
        start = transport.call("urn:tn-norevoke", "StartNegotiation", {
            "requester": fixture.requester, "strategy": "standard",
        })
        negotiation_id = start["negotiationId"]
        transport.call("urn:tn-norevoke", "PolicyExchange", {
            "negotiationId": negotiation_id,
            "resource": fixture.resource,
            "at": fixture.negotiation_time(), "clientSeq": 1,
        })
        exchange = transport.call("urn:tn-norevoke", "CredentialExchange", {
            "negotiationId": negotiation_id, "clientSeq": 2,
        })
        assert exchange["result"].success
