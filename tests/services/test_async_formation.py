"""Three-way driver parity: serial, thread-pool, and asyncio.

The sans-IO refactor's core promise is that scheduling is the ONLY
thing a driver chooses: the serial loop, the thread pool, and the
asyncio event loop must produce identical negotiation outcomes,
identical disclosure sets, and identical simulated-time accounting on
the same seeded workload.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.negotiation.engine import NegotiationEngine
from repro.scenario.workloads import (
    capacity_workload,
    chain_workload,
    formation_workload,
)
from repro.services.aio import anegotiate

ROLES = 4


def _formation(parallel):
    fixture = formation_workload(ROLES)
    edition = fixture.initiator_edition
    edition.create_vo(fixture.contract)
    edition.enable_trust_negotiation()
    outcome = edition.execute_formation(
        fixture.plans(), at=fixture.contract.created_at, parallel=parallel,
    )
    return outcome


def _snapshot(outcome) -> dict:
    """Everything but the schedule: who joined, what was disclosed,
    every transcript line — the driver-independent outcome."""
    return {
        "joined": outcome.joined,
        "degraded": dict(outcome.degraded),
        "attempts": dict(outcome.attempts),
        "quorum_met": outcome.quorum_met,
        "joins": {
            role: {
                "member": join.member,
                "joined": join.joined,
                "reason": join.reason,
                "unreachable": join.unreachable,
                "negotiation": (
                    join.negotiation.to_audit_record()
                    if join.negotiation is not None else None
                ),
            }
            for role, join in outcome.outcomes.items()
        },
    }


class TestThreeWayFormationParity:
    def test_outcomes_and_disclosures_identical(self):
        serial = _formation(parallel=False)
        threads = _formation(parallel=True)
        aio = _formation(parallel="asyncio")
        assert serial.mode == "serial"
        assert threads.mode == "parallel"
        assert aio.mode == "asyncio"
        assert _snapshot(serial) == _snapshot(threads) == _snapshot(aio)
        assert len(serial.joined) == ROLES

    def test_time_accounting_identical_across_concurrent_drivers(self):
        serial = _formation(parallel=False)
        threads = _formation(parallel=True)
        aio = _formation(parallel="asyncio")
        # Same joins, same lane merge: the asyncio schedule must cost
        # exactly what the thread pool costs, and both must report the
        # serial run as their serial-equivalent baseline.
        assert aio.elapsed_ms == pytest.approx(threads.elapsed_ms)
        assert aio.critical_path_ms == pytest.approx(
            threads.critical_path_ms
        )
        assert aio.serial_ms == pytest.approx(serial.elapsed_ms)
        assert threads.serial_ms == pytest.approx(serial.elapsed_ms)
        assert aio.elapsed_ms < serial.elapsed_ms

    def test_awaitable_entry_point_matches_sync_wrapper(self):
        fixture = formation_workload(ROLES)
        edition = fixture.initiator_edition
        edition.create_vo(fixture.contract)
        edition.enable_trust_negotiation()
        outcome = asyncio.run(edition.execute_formation_async(
            fixture.plans(), at=fixture.contract.created_at,
        ))
        assert outcome.mode == "asyncio"
        assert _snapshot(outcome) == _snapshot(_formation("asyncio"))


class TestEngineDriverParity:
    def test_anegotiate_matches_sync_engine_on_success(self):
        fixture = chain_workload(6)
        sync_result = NegotiationEngine(
            fixture.requester, fixture.controller
        ).run(fixture.resource, at=fixture.negotiation_time())
        async_result = asyncio.run(anegotiate(
            fixture.requester, fixture.controller, fixture.resource,
            at=fixture.negotiation_time(),
        ))
        assert sync_result.success and async_result.success
        assert (
            sync_result.to_audit_record() == async_result.to_audit_record()
        )

    def test_anegotiate_matches_sync_engine_on_failure(self):
        # Requester from a different authority domain: the policy
        # phase finds a sequence, but the credential exchange rejects
        # the untrusted issuer — identically on both drivers.
        fixture = capacity_workload(1)
        foreign = capacity_workload(1).requesters[0]
        sync_result = NegotiationEngine(
            foreign, fixture.controller
        ).run(fixture.resource, at=fixture.negotiation_time())
        async_result = asyncio.run(anegotiate(
            foreign, fixture.controller, fixture.resource,
            at=fixture.negotiation_time(),
        ))
        assert not sync_result.success and not async_result.success
        assert (
            sync_result.to_audit_record() == async_result.to_audit_record()
        )

    def test_many_interleaved_sessions_each_match_serial(self):
        fixture = capacity_workload(6)
        at = fixture.negotiation_time()
        serial_records = [
            NegotiationEngine(agent, fixture.controller)
            .run(fixture.resource, at=at).to_audit_record()
            for agent in fixture.requesters
        ]

        async def run_all():
            return list(await asyncio.gather(*(
                anegotiate(agent, fixture.controller, fixture.resource,
                           at=at)
                for agent in fixture.requesters
            )))

        async_records = [
            result.to_audit_record() for result in asyncio.run(run_all())
        ]
        assert async_records == serial_records
