"""The VO Management toolkit editions and the join flow (Fig. 9)."""

import pytest

from repro.errors import MembershipError
from repro.scenario import build_aircraft_scenario
from repro.scenario.aircraft import (
    ROLE_DESIGN_PORTAL,
    ROLE_HPC,
    ROLE_OPTIMIZATION,
    ROLE_STORAGE,
)


@pytest.fixture()
def scenario():
    return build_aircraft_scenario()


@pytest.fixture()
def ready(scenario):
    edition = scenario.initiator_edition
    vo = edition.create_vo(scenario.contract)
    edition.enable_trust_negotiation()
    return scenario, edition, vo


class TestHostEdition:
    def test_members_registered(self, scenario):
        directory = scenario.host.directory()
        assert set(directory) == {
            "AerospaceCo", "OptimCo", "HPCServiceCo", "StorageCo"
        }

    def test_services_published(self, scenario):
        services = scenario.host.registry.find_by_role(ROLE_DESIGN_PORTAL)
        assert [s.provider for s in services] == ["AerospaceCo"]

    def test_list_services_operation(self, scenario):
        response = scenario.transport.call(
            scenario.host.url, "ListServices", {"role": ROLE_HPC}
        )
        assert [s.provider for s in response["services"]] == ["HPCServiceCo"]

    def test_unknown_member_raises(self, scenario):
        with pytest.raises(MembershipError):
            scenario.host.member("Nobody")

    def test_monitor_vo(self, ready):
        scenario, edition, vo = ready
        response = scenario.transport.call(
            scenario.host.url, "MonitorVO",
            {"voName": vo.contract.vo_name},
        )
        assert response["phase"] == "formation"


class TestJoinFlow:
    def test_join_without_tn(self, ready):
        scenario, edition, vo = ready
        outcome = edition.execute_join(
            scenario.app("StorageCo"), ROLE_STORAGE, with_negotiation=False
        )
        assert outcome.joined
        assert outcome.negotiation is None
        assert outcome.elapsed_ms > 0
        assert vo.member_for(ROLE_STORAGE).name == "StorageCo"

    def test_join_with_tn(self, ready):
        scenario, edition, vo = ready
        outcome = edition.execute_join(
            scenario.app("AerospaceCo"), ROLE_DESIGN_PORTAL,
            with_negotiation=True,
        )
        assert outcome.joined
        assert outcome.negotiation.success
        member = vo.member_for(ROLE_DESIGN_PORTAL)
        assert member.is_member_of(vo.contract.vo_name)

    def test_tn_join_slower_than_plain_join(self, ready):
        scenario, edition, vo = ready
        with_tn = edition.execute_join(
            scenario.app("AerospaceCo"), ROLE_DESIGN_PORTAL,
            with_negotiation=True,
        )
        without_tn = edition.execute_join(
            scenario.app("StorageCo"), ROLE_STORAGE, with_negotiation=False
        )
        assert with_tn.elapsed_ms > without_tn.elapsed_ms

    def test_membership_token_verifies(self, ready):
        scenario, edition, vo = ready
        edition.execute_join(
            scenario.app("AerospaceCo"), ROLE_DESIGN_PORTAL,
            with_negotiation=True,
        )
        token = scenario.member("AerospaceCo").token_for(vo.contract.vo_name)
        assert vo.verify_member(token, scenario.clock.now())
        assert token.vo_public_key == edition.initiator.vo_keypair.public

    def test_join_with_tn_requires_enabled_service(self, scenario):
        edition = scenario.initiator_edition
        edition.create_vo(scenario.contract)
        with pytest.raises(MembershipError):
            edition.execute_join(
                scenario.app("AerospaceCo"), ROLE_DESIGN_PORTAL,
                with_negotiation=True,
            )

    def test_join_before_create_vo_rejected(self, scenario):
        with pytest.raises(MembershipError):
            scenario.initiator_edition.execute_join(
                scenario.app("AerospaceCo"), ROLE_DESIGN_PORTAL,
                with_negotiation=False,
            )

    def test_declined_invitation(self, ready):
        scenario, edition, vo = ready
        member = scenario.member("OptimCo")
        member.decision = lambda invitation: False
        outcome = edition.execute_join(
            scenario.app("OptimCo"), ROLE_OPTIMIZATION, with_negotiation=False
        )
        assert not outcome.joined
        assert outcome.reason == "invitation declined"

    def test_failed_negotiation_blocks_join(self, ready):
        """A member whose quality credential was revoked cannot join."""
        scenario, edition, vo = ready
        infn = scenario.authority("INFN")
        iso = scenario.member("AerospaceCo").agent.profile.by_type(
            "ISO 9000 Certified"
        )[0]
        scenario.bus.revoke(infn, iso)
        outcome = edition.execute_join(
            scenario.app("AerospaceCo"), ROLE_DESIGN_PORTAL,
            with_negotiation=True,
        )
        assert not outcome.joined
        assert outcome.negotiation is not None
        assert not outcome.negotiation.success

    def test_reputation_updated_by_join_negotiation(self, ready):
        scenario, edition, vo = ready
        before = vo.reputation.score("AerospaceCo")
        edition.execute_join(
            scenario.app("AerospaceCo"), ROLE_DESIGN_PORTAL,
            with_negotiation=True,
        )
        assert vo.reputation.score("AerospaceCo") > before


class TestDiscovery:
    def test_discover_charges_and_returns(self, ready):
        scenario, edition, _ = ready
        before = scenario.transport.clock.elapsed_ms
        services = edition.discover(ROLE_OPTIMIZATION)
        assert [s.provider for s in services] == ["OptimCo"]
        assert scenario.transport.clock.elapsed_ms > before
