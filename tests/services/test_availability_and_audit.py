"""Host service-availability view and negotiation audit records."""

import json

import pytest

from repro.scenario import build_aircraft_scenario
from repro.scenario.aircraft import ROLE_DESIGN_PORTAL, ROLE_STORAGE


@pytest.fixture()
def joined():
    scenario = build_aircraft_scenario()
    edition = scenario.initiator_edition
    vo = edition.create_vo(scenario.contract)
    edition.enable_trust_negotiation()
    outcome = edition.execute_join(
        scenario.app("AerospaceCo"), ROLE_DESIGN_PORTAL,
        with_negotiation=True,
    )
    return scenario, vo, outcome


class TestServiceAvailability:
    def test_in_vo_vs_awaiting(self, joined):
        """§6.1: the host lists both members already in a VO and those
        waiting for an invitation."""
        scenario, vo, _ = joined
        response = scenario.transport.call(
            scenario.host.url, "ServiceAvailability", {}
        )
        by_provider = {
            row["provider"]: row for row in response["availability"]
        }
        assert by_provider["AerospaceCo"]["status"] == "in-vo"
        assert by_provider["AerospaceCo"]["assignments"] == [
            f"AircraftOptimizationVO:{ROLE_DESIGN_PORTAL}"
        ]
        assert by_provider["StorageCo"]["status"] == "awaiting-invitation"
        assert by_provider["StorageCo"]["assignments"] == []

    def test_second_join_updates_availability(self, joined):
        scenario, vo, _ = joined
        scenario.initiator_edition.execute_join(
            scenario.app("StorageCo"), ROLE_STORAGE, with_negotiation=False
        )
        response = scenario.transport.call(
            scenario.host.url, "ServiceAvailability", {}
        )
        by_provider = {
            row["provider"]: row for row in response["availability"]
        }
        assert by_provider["StorageCo"]["status"] == "in-vo"


class TestAuditRecords:
    def test_audit_record_is_json_serializable(self, joined):
        _, _, outcome = joined
        record = outcome.negotiation.to_audit_record()
        parsed = json.loads(outcome.negotiation.to_audit_json())
        assert parsed == json.loads(json.dumps(record))

    def test_audit_record_contents(self, joined):
        _, _, outcome = joined
        record = outcome.negotiation.to_audit_record()
        assert record["success"] is True
        assert record["requester"] == "AerospaceCo"
        assert record["controller"] == "AircraftCo"
        assert record["policyMessages"] > 0
        assert record["transcript"]
        actions = {event["action"] for event in record["transcript"]}
        assert "disclose" in actions

    def test_audit_record_has_no_credential_material(self, joined):
        """Disclosure ids are logged; signed credential bodies are not
        (policy conditions may legitimately quote required values)."""
        scenario, _, outcome = joined
        text = outcome.negotiation.to_audit_json()
        iso = scenario.member("AerospaceCo").agent.profile.by_type(
            "ISO 9000 Certified"
        )[0]
        assert iso.signature_b64 not in text
        assert "<credential>" not in text

    def test_failed_negotiation_audit(self, agent_factory, shared_keypair,
                                      other_keypair):
        from repro.negotiation.engine import negotiate
        from tests.conftest import NEGOTIATION_AT

        requester = agent_factory("Req", [], "", shared_keypair)
        controller = agent_factory("Ctrl", [], "RES <- Nope", other_keypair)
        result = negotiate(requester, controller, "RES", at=NEGOTIATION_AT)
        record = result.to_audit_record()
        assert record["success"] is False
        assert record["failureReason"] == "no_trust_sequence"
