"""TN service durability via SessionStore journals: crash-recovery
round-trips over both backends, torn-write fallback, replay
idempotency, and TTL re-anchoring on restore."""

import pytest

from repro.errors import ErrorCode, ServiceError
from repro.hardening.config import HardeningConfig
from repro.services.tn_client import TNClient
from repro.services.tn_service import SESSION_COLLECTION, TNWebService
from repro.services.transport import SimTransport
from repro.storage.document_store import XMLDocumentStore
from repro.storage.session_store import InMemorySessionStore, WALSessionStore
from tests.conftest import ISSUE_AT, NEGOTIATION_AT


@pytest.fixture()
def parties(agent_factory, infn, aaa_authority, shared_keypair, other_keypair):
    requester = agent_factory(
        "AerospaceCo",
        [infn.issue("ISO 9000 Certified", "AerospaceCo",
                    shared_keypair.fingerprint,
                    {"QualityRegulation": "UNI EN ISO 9000"}, ISSUE_AT)],
        "ISO 9000 Certified <- AAA Member",
        shared_keypair,
    )
    controller = agent_factory(
        "AircraftCo",
        [aaa_authority.issue("AAA Member", "AircraftCo",
                             other_keypair.fingerprint,
                             {"association": "AAA"}, ISSUE_AT)],
        "VoMembership <- WebDesignerQuality\nAAA Member <- DELIV",
        other_keypair,
    )
    return requester, controller


@pytest.fixture(params=["memory", "wal"])
def make_session_store(request, tmp_path):
    """Factory returning the same logical store on each call — for the
    WAL backend a fresh instance re-recovers from the same file, which
    is exactly what a restarted process would do."""
    if request.param == "memory":
        store = InMemorySessionStore()
        return lambda: store
    path = tmp_path / "sessions.wal"
    return lambda: WALSessionStore(path)


def run_policy_phase(transport, requester):
    start = transport.call("urn:tn", "StartNegotiation", {
        "requester": requester, "strategy": "standard",
        "requestId": "req-1",
    })
    nid = start["negotiationId"]
    transport.call("urn:tn", "PolicyExchange", {
        "negotiationId": nid, "resource": "VoMembership",
        "at": NEGOTIATION_AT, "clientSeq": 1,
    })
    return nid


class TestJournalling:
    def test_every_checkpoint_is_journalled(self, parties, make_session_store):
        requester, controller = parties
        transport = SimTransport()
        session_store = make_session_store()
        TNWebService(controller, transport, XMLDocumentStore("tn"),
                     "urn:tn", session_store=session_store)
        TNClient(transport, "urn:tn", requester) \
            .negotiate("VoMembership", at=NEGOTIATION_AT)
        # one record per operation: start, policy, exchange
        assert session_store.records() == 3
        latest = session_store.latest()
        (element,) = latest.values()
        assert element.get("phase") == "exchange"
        assert element.find("outcome") is not None

    def test_journal_mirrors_document_store(self, parties, make_session_store):
        requester, controller = parties
        transport = SimTransport()
        session_store = make_session_store()
        store = XMLDocumentStore("tn")
        TNWebService(controller, transport, store, "urn:tn",
                     session_store=session_store)
        nid = run_policy_phase(transport, requester)
        assert store.get(SESSION_COLLECTION, nid).get("phase") == "policy"
        assert session_store.latest()[nid].get("phase") == "policy"


class TestCrashRecovery:
    def test_restore_from_journal_resumes_negotiation(
        self, parties, make_session_store
    ):
        requester, controller = parties
        transport = SimTransport()
        service = TNWebService(
            controller, transport, XMLDocumentStore("tn"), "urn:tn",
            session_store=make_session_store(),
        )
        nid = run_policy_phase(transport, requester)
        service.crash()

        # a restarted process recovers from the journal alone: note the
        # *empty* document store — the journal is the source of truth
        restored = TNWebService.restore(
            controller, transport, XMLDocumentStore("tn-restarted"),
            "urn:tn", agents={requester.name: requester},
            session_store=make_session_store(),
        )
        assert nid in restored.sessions()
        assert restored.sessions()[nid].restored
        exchange = transport.call("urn:tn", "CredentialExchange", {
            "negotiationId": nid, "clientSeq": 2,
        })
        assert exchange["result"].success

    def test_replay_after_restore_is_idempotent(
        self, parties, make_session_store
    ):
        requester, controller = parties
        transport = SimTransport()
        service = TNWebService(
            controller, transport, XMLDocumentStore("tn"), "urn:tn",
            session_store=make_session_store(),
        )
        nid = run_policy_phase(transport, requester)
        service.crash()
        TNWebService.restore(
            controller, transport, XMLDocumentStore("tn-restarted"),
            "urn:tn", agents={requester.name: requester},
            session_store=make_session_store(),
        )
        first = transport.call("urn:tn", "CredentialExchange", {
            "negotiationId": nid, "clientSeq": 2,
        })
        charges = transport.charges.db_reads, transport.charges.crypto_verifies
        # a retried delivery of the same phase re-answers without
        # re-running (same cached result object, nothing re-billed)
        second = transport.call("urn:tn", "CredentialExchange", {
            "negotiationId": nid, "clientSeq": 3,
        })
        assert second["result"] is first["result"]
        after = transport.charges.db_reads, transport.charges.crypto_verifies
        assert after == charges

    def test_torn_final_record_falls_back_one_checkpoint(
        self, parties, make_session_store
    ):
        requester, controller = parties
        transport = SimTransport()
        session_store = make_session_store()
        service = TNWebService(
            controller, transport, XMLDocumentStore("tn"), "urn:tn",
            session_store=session_store,
        )
        nid = run_policy_phase(transport, requester)
        service.crash()
        assert session_store.tear_last_record()  # policy checkpoint torn

        restored = TNWebService.restore(
            controller, transport, XMLDocumentStore("tn-restarted"),
            "urn:tn", agents={requester.name: requester},
            session_store=make_session_store(),
        )
        session = restored.sessions()[nid]
        assert session.phase == "started"  # fell back to the start record
        # skipping ahead is rejected typed; replaying the lost phase works
        with pytest.raises(ServiceError) as excinfo:
            transport.call("urn:tn", "CredentialExchange", {
                "negotiationId": nid, "clientSeq": 2,
            })
        assert excinfo.value.error_code is ErrorCode.PHASE_SKIP
        transport.call("urn:tn", "PolicyExchange", {
            "negotiationId": nid, "resource": "VoMembership",
            "at": NEGOTIATION_AT, "clientSeq": 3,
        })
        exchange = transport.call("urn:tn", "CredentialExchange", {
            "negotiationId": nid, "clientSeq": 4,
        })
        assert exchange["result"].success


class TestTTLReanchor:
    def test_restored_sessions_get_a_fresh_ttl(self, parties):
        """A session idle past the TTL *before* the crash must not be
        reaped the instant the service restarts: the TTL re-anchors at
        restore time so the client gets a full window to resume."""
        requester, controller = parties
        transport = SimTransport()
        hardening = HardeningConfig(session_ttl_ms=5_000.0)
        session_store = InMemorySessionStore()
        service = TNWebService(
            controller, transport, XMLDocumentStore("tn"), "urn:tn",
            session_store=session_store, hardening=hardening,
        )
        nid = run_policy_phase(transport, requester)
        transport.clock.advance(60_000.0)  # idle far past the TTL
        service.crash()

        restored = TNWebService.restore(
            controller, transport, XMLDocumentStore("tn-restarted"),
            "urn:tn", agents={requester.name: requester},
            session_store=session_store, hardening=hardening,
        )
        assert restored.reap_expired() == 0
        assert nid in restored.sessions()
        # ... but the fresh window still expires like any other
        transport.clock.advance(5_001.0)
        assert restored.reap_expired() == 1
        assert restored.sessions()[nid].phase == "expired"
