"""Batched parallel formation must be an observational no-op.

``execute_formation(parallel=True)`` changes only the *schedule*: the
joins run on worker threads, each charging a private clock branch, and
the main timeline advances by the batch critical path instead of the
serial sum.  Member outcomes, disclosures, and message counts must be
identical to serial mode — with and without injected faults."""

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan
from repro.scenario import build_aircraft_scenario
from repro.scenario.workloads import formation_workload
from repro.services.resilience import ResilientTransport, RetryPolicy
from repro.services.vo_toolkit import InitiatorEdition
from tests.services.test_formation_quorum import ALL_ROLES, full_plans

RETRY = RetryPolicy(max_attempts=2, base_backoff_ms=10, jitter_ms=0)


def run_formation(parallel: bool, plan: FaultPlan = None):
    """One formation over a fresh aircraft scenario (optionally through
    a fault-injecting resilient stack), in the requested mode."""
    scenario = build_aircraft_scenario()
    transport = scenario.transport
    if plan is not None:
        transport = ResilientTransport(
            FaultInjector(scenario.transport, plan), retry=RETRY
        )
    edition = InitiatorEdition(scenario.initiator, transport, scenario.host)
    edition.create_vo(scenario.contract)
    edition.enable_trust_negotiation()
    outcome = edition.execute_formation(
        full_plans(scenario),
        at=scenario.contract.created_at,
        parallel=parallel,
    )
    return scenario, edition, outcome


def assert_equivalent(serial, parallel):
    """Member-observable equivalence of two formation outcomes."""
    assert parallel.joined == serial.joined
    assert parallel.degraded == serial.degraded
    assert parallel.attempts == serial.attempts
    assert set(parallel.outcomes) == set(serial.outcomes)
    for role in serial.outcomes:
        left, right = serial.outcomes[role], parallel.outcomes[role]
        assert right.member == left.member
        assert right.joined == left.joined
        assert right.unreachable == left.unreachable
        assert right.elapsed_ms == pytest.approx(left.elapsed_ms)
        if left.negotiation is None:
            assert right.negotiation is None
            continue
        assert right.negotiation.success == left.negotiation.success
        assert (right.negotiation.policy_messages
                == left.negotiation.policy_messages)
        assert (right.negotiation.exchange_messages
                == left.negotiation.exchange_messages)
        assert (right.negotiation.disclosed_by_requester
                == left.negotiation.disclosed_by_requester)
        assert (right.negotiation.disclosed_by_controller
                == left.negotiation.disclosed_by_controller)


class TestParallelEquivalence:
    def test_aircraft_formation_identical_outcomes(self):
        _, serial_edition, serial = run_formation(parallel=False)
        _, parallel_edition, parallel = run_formation(parallel=True)
        assert serial.mode == "serial"
        assert parallel.mode == "parallel"
        assert serial.joined == sorted(ALL_ROLES.values())
        assert_equivalent(serial, parallel)
        assert set(parallel_edition.vo.members()) == \
            set(serial_edition.vo.members())

    def test_timing_semantics(self):
        _, _, serial = run_formation(parallel=False)
        _, _, parallel = run_formation(parallel=True)
        # Same total work, differently scheduled.
        assert parallel.serial_ms == pytest.approx(serial.elapsed_ms)
        assert parallel.critical_path_ms == pytest.approx(parallel.elapsed_ms)
        # Four independent equal-cost joins: the critical path is one
        # join, so the batch beats the serial schedule by ~4x.
        assert parallel.elapsed_ms < serial.elapsed_ms
        assert serial.elapsed_ms / parallel.elapsed_ms == pytest.approx(
            len(ALL_ROLES), rel=0.05
        )

    def test_equivalent_under_faults(self):
        # An unbounded always-matching fault keeps injection independent
        # of thread interleaving (limit-bounded specs are consumed in
        # call order, which worker scheduling would perturb): every TN
        # negotiation times out in both modes, all four roles degrade.
        plan = FaultPlan(timeout_wait_ms=50).always(
            FaultKind.DB_FAIL, url="urn:vo:tn"
        )
        _, _, serial = run_formation(parallel=False, plan=plan)
        plan = FaultPlan(timeout_wait_ms=50).always(
            FaultKind.DB_FAIL, url="urn:vo:tn"
        )
        _, _, parallel = run_formation(parallel=True, plan=plan)
        assert serial.joined == []
        assert sorted(serial.degraded) == sorted(ALL_ROLES.values())
        assert_equivalent(serial, parallel)

    def test_max_workers_bounds_the_makespan(self):
        fixture = formation_workload(4)
        edition = fixture.initiator_edition
        edition.create_vo(fixture.contract)
        edition.enable_trust_negotiation()
        outcome = edition.execute_formation(
            fixture.plans(), at=fixture.contract.created_at,
            parallel=True, max_workers=2,
        )
        assert len(outcome.joined) == 4
        # 4 equal joins on 2 lanes: the makespan is 2 joins, half the
        # serial-equivalent sum.
        assert outcome.elapsed_ms == pytest.approx(
            outcome.serial_ms / 2, rel=0.05
        )

    def test_parallel_single_plan_falls_back_to_serial(self):
        fixture = formation_workload(1)
        edition = fixture.initiator_edition
        edition.create_vo(fixture.contract)
        edition.enable_trust_negotiation()
        outcome = edition.execute_formation(
            fixture.plans(), at=fixture.contract.created_at, parallel=True,
        )
        assert outcome.mode == "serial"
        assert len(outcome.joined) == 1
