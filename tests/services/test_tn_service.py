"""The TN Web service and its client (paper Section 6.2)."""

import pytest

from repro.errors import ServiceError, SessionError
from repro.negotiation.outcomes import (
    FailureReason,
    UNSATISFIABLE_REASONS,
)
from repro.negotiation.strategies import Strategy
from repro.services.tn_client import TNClient
from repro.services.tn_service import TNWebService
from repro.services.transport import SimTransport
from repro.storage.document_store import XMLDocumentStore
from tests.conftest import ISSUE_AT, NEGOTIATION_AT


@pytest.fixture()
def parties(agent_factory, infn, aaa_authority, shared_keypair, other_keypair):
    requester = agent_factory(
        "AerospaceCo",
        [infn.issue("ISO 9000 Certified", "AerospaceCo",
                    shared_keypair.fingerprint,
                    {"QualityRegulation": "UNI EN ISO 9000"}, ISSUE_AT)],
        "ISO 9000 Certified <- AAA Member",
        shared_keypair,
    )
    controller = agent_factory(
        "AircraftCo",
        [aaa_authority.issue("AAA Member", "AircraftCo",
                             other_keypair.fingerprint,
                             {"association": "AAA"}, ISSUE_AT)],
        "VoMembership <- WebDesignerQuality\nAAA Member <- DELIV",
        other_keypair,
    )
    return requester, controller


@pytest.fixture()
def service(parties):
    _, controller = parties
    transport = SimTransport()
    store = XMLDocumentStore("tn")
    return TNWebService(controller, transport, store, "urn:tn"), transport


class TestStartNegotiation:
    def test_assigns_unique_ids(self, service, parties):
        svc, transport = service
        requester, _ = parties
        first = transport.call("urn:tn", "StartNegotiation",
                               {"requester": requester, "strategy": "standard"})
        second = transport.call("urn:tn", "StartNegotiation",
                                {"requester": requester, "strategy": "standard"})
        assert first["negotiationId"] != second["negotiationId"]

    def test_charges_db_connect(self, service, parties):
        svc, transport = service
        requester, _ = parties
        before = transport.clock.elapsed_ms
        transport.call("urn:tn", "StartNegotiation",
                       {"requester": requester, "strategy": "standard"})
        elapsed = transport.clock.elapsed_ms - before
        assert elapsed >= transport.model.db_connect_ms

    def test_requires_requester(self, service):
        svc, transport = service
        with pytest.raises(ServiceError):
            transport.call("urn:tn", "StartNegotiation", {"strategy": "standard"})

    def test_unknown_operation(self, service, parties):
        svc, transport = service
        with pytest.raises(ServiceError):
            transport.call("urn:tn", "Frobnicate", {})

    def test_request_id_retry_is_idempotent(self, service, parties):
        svc, transport = service
        requester, _ = parties
        payload = {"requester": requester, "strategy": "standard",
                   "requestId": "rid-1"}
        first = transport.call("urn:tn", "StartNegotiation", dict(payload))
        retry = transport.call("urn:tn", "StartNegotiation", dict(payload))
        assert retry["negotiationId"] == first["negotiationId"]

    def test_request_id_reuse_with_different_payload_rejected(
        self, service, parties
    ):
        svc, transport = service
        requester, _ = parties
        transport.call("urn:tn", "StartNegotiation",
                       {"requester": requester, "strategy": "standard",
                        "requestId": "rid-1"})
        # Same requestId, different strategy: a duplicate-key bug, not
        # a retry — must fail loudly instead of replaying the session.
        with pytest.raises(ServiceError):
            transport.call("urn:tn", "StartNegotiation",
                           {"requester": requester, "strategy": "trusting",
                            "requestId": "rid-1"})


class TestPhases:
    def test_policy_exchange_reports_sequence(self, service, parties):
        svc, transport = service
        requester, _ = parties
        start = transport.call("urn:tn", "StartNegotiation",
                               {"requester": requester, "strategy": "standard"})
        response = transport.call("urn:tn", "PolicyExchange", {
            "negotiationId": start["negotiationId"],
            "resource": "VoMembership",
            "at": NEGOTIATION_AT,
        })
        assert response["sequenceFound"]
        assert response["policyMessages"] > 0

    def test_credential_exchange_before_policy_rejected(self, service, parties):
        svc, transport = service
        requester, _ = parties
        start = transport.call("urn:tn", "StartNegotiation",
                               {"requester": requester, "strategy": "standard"})
        with pytest.raises(ServiceError):
            transport.call("urn:tn", "CredentialExchange",
                           {"negotiationId": start["negotiationId"]})

    def test_unknown_session_rejected(self, service):
        svc, transport = service
        with pytest.raises(SessionError):
            transport.call("urn:tn", "PolicyExchange",
                           {"negotiationId": "ghost", "resource": "R"})

    def test_policy_exchange_requires_resource(self, service, parties):
        svc, transport = service
        requester, _ = parties
        start = transport.call("urn:tn", "StartNegotiation",
                               {"requester": requester, "strategy": "standard"})
        with pytest.raises(ServiceError):
            transport.call("urn:tn", "PolicyExchange",
                           {"negotiationId": start["negotiationId"]})

    def test_client_seq_replay_returns_recorded_response(
        self, service, parties
    ):
        svc, transport = service
        requester, _ = parties
        start = transport.call("urn:tn", "StartNegotiation",
                               {"requester": requester, "strategy": "standard"})
        payload = {"negotiationId": start["negotiationId"],
                   "resource": "VoMembership", "at": NEGOTIATION_AT,
                   "clientSeq": 1}
        first = transport.call("urn:tn", "PolicyExchange", dict(payload))
        replay = transport.call("urn:tn", "PolicyExchange", dict(payload))
        assert replay == first

    def test_client_seq_replay_with_different_resource_rejected(
        self, service, parties
    ):
        svc, transport = service
        requester, _ = parties
        start = transport.call("urn:tn", "StartNegotiation",
                               {"requester": requester, "strategy": "standard"})
        transport.call("urn:tn", "PolicyExchange", {
            "negotiationId": start["negotiationId"],
            "resource": "VoMembership", "at": NEGOTIATION_AT,
            "clientSeq": 1,
        })
        with pytest.raises(ServiceError):
            transport.call("urn:tn", "PolicyExchange", {
                "negotiationId": start["negotiationId"],
                "resource": "SomethingElse", "at": NEGOTIATION_AT,
                "clientSeq": 1,
            })

    def test_client_seq_replay_with_different_operation_rejected(
        self, service, parties
    ):
        svc, transport = service
        requester, _ = parties
        start = transport.call("urn:tn", "StartNegotiation",
                               {"requester": requester, "strategy": "standard"})
        transport.call("urn:tn", "PolicyExchange", {
            "negotiationId": start["negotiationId"],
            "resource": "VoMembership", "at": NEGOTIATION_AT,
            "clientSeq": 1,
        })
        with pytest.raises(ServiceError):
            transport.call("urn:tn", "CredentialExchange", {
                "negotiationId": start["negotiationId"], "clientSeq": 1,
            })


class TestClient:
    def test_full_negotiation_via_client(self, service, parties):
        svc, transport = service
        requester, _ = parties
        client = TNClient(transport, "urn:tn", requester)
        result = client.negotiate("VoMembership", at=NEGOTIATION_AT)
        assert result.success

    def test_client_respects_strategy_parameter(self, service, parties):
        svc, transport = service
        requester, _ = parties
        client = TNClient(transport, "urn:tn", requester)
        result = client.negotiate(
            "VoMembership", strategy=Strategy.TRUSTING, at=NEGOTIATION_AT
        )
        assert result.success
        # The requester agent's own strategy must be restored.
        assert requester.strategy is Strategy.STANDARD

    def test_fresh_clients_do_not_collide_on_request_ids(
        self, service, parties
    ):
        # Regression: a per-instance requestId counter made every new
        # client for the same agent reuse "name:req-1", so a second
        # negotiation (e.g. joining a second role via a new TNClient)
        # hit the server's dedup and got the FIRST negotiation's
        # cached result back for the wrong resource.
        svc, transport = service
        requester, _ = parties
        first = TNClient(transport, "urn:tn", requester).negotiate(
            "VoMembership", at=NEGOTIATION_AT
        )
        second = TNClient(transport, "urn:tn", requester).negotiate(
            "AnotherResource", at=NEGOTIATION_AT
        )
        assert first.resource == "VoMembership"
        assert second.resource == "AnotherResource"
        assert len(svc.sessions()) == 2

    def test_simulated_time_advances_with_messages(self, service, parties):
        svc, transport = service
        requester, _ = parties
        client = TNClient(transport, "urn:tn", requester)
        with transport.clock.measure() as stopwatch:
            result = client.negotiate("VoMembership", at=NEGOTIATION_AT)
        minimum = result.total_messages * transport.model.message_cost()
        assert stopwatch.elapsed_ms >= minimum

    def test_failed_negotiation_reported(self, service, parties):
        svc, transport = service
        requester, _ = parties
        client = TNClient(transport, "urn:tn", requester)
        result = client.negotiate("SomethingUnreachable:ButProtected",
                                  at=NEGOTIATION_AT)
        # Unprotected unknown resources are freely granted; use a
        # protected one that cannot be satisfied instead.
        assert result.success  # unknown == unprotected == deliverable


class TestPersistence:
    def test_owner_state_mirrored_into_store(self, parties):
        _, controller = parties
        transport = SimTransport()
        store = XMLDocumentStore("tn")
        TNWebService(controller, transport, store, "urn:tn")
        assert store.count("policies") == len(controller.policies)
        assert store.count("credentials") == len(controller.profile)


class TestSatisfiable:
    """Pin the PolicyExchange ``satisfiable`` flag per FailureReason
    (unsatisfiable = retrying the same negotiation cannot help)."""

    EXPECTED = {
        FailureReason.NO_TRUST_SEQUENCE: True,
        FailureReason.BUDGET_EXHAUSTED: True,
        FailureReason.STRATEGY_VIOLATION: True,
        FailureReason.CREDENTIAL_REJECTED: False,
        FailureReason.CREDENTIAL_REVOKED: False,
        FailureReason.PROTOCOL: False,
        FailureReason.UNREACHABLE: False,
    }

    def test_every_reason_is_pinned(self):
        assert set(self.EXPECTED) == set(FailureReason)

    @pytest.mark.parametrize("reason", list(FailureReason))
    def test_unsatisfiable_classification(self, reason):
        assert (reason in UNSATISFIABLE_REASONS) == self.EXPECTED[reason]
        assert reason.is_unsatisfiable == self.EXPECTED[reason]

    def test_success_reports_satisfiable(self, service, parties):
        _, transport = service
        requester, _ = parties
        start = transport.call("urn:tn", "StartNegotiation",
                               {"requester": requester,
                                "strategy": "standard"})
        policy = transport.call("urn:tn", "PolicyExchange", {
            "negotiationId": start["negotiationId"],
            "resource": "VoMembership", "at": NEGOTIATION_AT,
        })
        assert policy["satisfiable"] is True

    def test_no_trust_sequence_reports_unsatisfiable(
        self, agent_factory, shared_keypair, other_keypair
    ):
        # RES demands a credential nobody holds: the policy phase
        # proves no trust sequence exists, so retrying cannot help.
        requester = agent_factory("Req", [], "", shared_keypair)
        controller = agent_factory(
            "Ctrl", [], "RES <- SomethingNobodyHas", other_keypair
        )
        transport = SimTransport()
        TNWebService(controller, transport, XMLDocumentStore("tn"),
                     "urn:tn")
        start = transport.call("urn:tn", "StartNegotiation",
                               {"requester": requester,
                                "strategy": "standard"})
        policy = transport.call("urn:tn", "PolicyExchange", {
            "negotiationId": start["negotiationId"],
            "resource": "RES", "at": NEGOTIATION_AT,
        })
        assert policy["satisfiable"] is False
