"""TN service resilience: checkpoints, crash/restore, idempotency,
close() lifecycle, and degraded completion."""

import pytest

from repro.errors import SessionError, TransportError
from repro.negotiation.cache import SequenceCache
from repro.services.tn_client import TNClient
from repro.services.tn_service import (
    NegotiationSession,
    SESSION_COLLECTION,
    TNWebService,
)
from repro.services.transport import SimTransport
from repro.storage.document_store import XMLDocumentStore
from tests.conftest import ISSUE_AT, NEGOTIATION_AT


@pytest.fixture()
def parties(agent_factory, infn, aaa_authority, shared_keypair, other_keypair):
    requester = agent_factory(
        "AerospaceCo",
        [infn.issue("ISO 9000 Certified", "AerospaceCo",
                    shared_keypair.fingerprint,
                    {"QualityRegulation": "UNI EN ISO 9000"}, ISSUE_AT)],
        "ISO 9000 Certified <- AAA Member",
        shared_keypair,
    )
    controller = agent_factory(
        "AircraftCo",
        [aaa_authority.issue("AAA Member", "AircraftCo",
                             other_keypair.fingerprint,
                             {"association": "AAA"}, ISSUE_AT)],
        "VoMembership <- WebDesignerQuality\nAAA Member <- DELIV",
        other_keypair,
    )
    return requester, controller


def run_policy_phase(transport, requester):
    start = transport.call("urn:tn", "StartNegotiation", {
        "requester": requester, "strategy": "standard",
        "requestId": "req-1",
    })
    nid = start["negotiationId"]
    transport.call("urn:tn", "PolicyExchange", {
        "negotiationId": nid, "resource": "VoMembership",
        "at": NEGOTIATION_AT, "clientSeq": 1,
    })
    return nid


class TestCheckpoints:
    def test_checkpoint_written_per_operation(self, parties):
        requester, controller = parties
        transport = SimTransport()
        store = XMLDocumentStore("tn")
        TNWebService(controller, transport, store, "urn:tn")
        nid = run_policy_phase(transport, requester)
        assert store.count(SESSION_COLLECTION) == 1
        element = store.get(SESSION_COLLECTION, nid)
        assert element.get("phase") == "policy"
        assert element.get("requester") == "AerospaceCo"
        assert element.get("policyBilled") == "true"
        assert element.find("outcome") is not None

    def test_checkpoints_can_be_disabled(self, parties):
        requester, controller = parties
        transport = SimTransport()
        store = XMLDocumentStore("tn")
        TNWebService(controller, transport, store, "urn:tn",
                     checkpoints=False)
        run_policy_phase(transport, requester)
        assert store.count(SESSION_COLLECTION) == 0


class TestCrashRestore:
    def test_resume_after_crash_matches_fault_free_run(self, parties):
        """The acceptance scenario: crash after the policy phase, a
        restored service resumes from its checkpoint and completes
        with the same NegotiationResult."""
        requester, controller = parties
        # fault-free reference
        clean_transport = SimTransport()
        TNWebService(controller, clean_transport,
                     XMLDocumentStore("ref"), "urn:tn")
        reference = TNClient(clean_transport, "urn:tn", requester) \
            .negotiate("VoMembership", at=NEGOTIATION_AT)

        transport = SimTransport()
        store = XMLDocumentStore("tn")
        service = TNWebService(controller, transport, store, "urn:tn")
        nid = run_policy_phase(transport, requester)
        service.crash()  # dies between PolicyExchange and CredentialExchange
        assert not transport.is_bound("urn:tn")
        with pytest.raises(TransportError):
            transport.call("urn:tn", "CredentialExchange",
                           {"negotiationId": nid})

        restored = TNWebService.restore(
            controller, transport, store, "urn:tn",
            agents={requester.name: requester},
        )
        assert nid in restored.sessions()
        exchange = transport.call("urn:tn", "CredentialExchange", {
            "negotiationId": nid, "clientSeq": 2,
        })
        result = exchange["result"]
        assert result.success == reference.success is True
        assert result.disclosed_by_requester == \
            reference.disclosed_by_requester
        assert result.disclosed_by_controller == \
            reference.disclosed_by_controller
        assert [str(n.term) for n in result.sequence] == \
            [str(n.term) for n in reference.sequence]
        assert result.total_messages == reference.total_messages

    def test_restore_without_agent_degrades_to_checkpoint(self, parties):
        requester, controller = parties
        transport = SimTransport()
        store = XMLDocumentStore("tn")
        service = TNWebService(controller, transport, store, "urn:tn")
        nid = run_policy_phase(transport, requester)
        service.crash()
        restored = TNWebService.restore(
            controller, transport, store, "urn:tn", agents={},
        )
        exchange = transport.call("urn:tn", "CredentialExchange", {
            "negotiationId": nid,
        })
        result = exchange["result"]
        assert result.success
        assert result.disclosed_by_requester  # recovered from checkpoint
        assert result.transcript[0].action == "checkpoint-restore"

    def test_restore_without_agent_or_outcome_raises_session_error(
        self, parties
    ):
        requester, controller = parties
        transport = SimTransport()
        store = XMLDocumentStore("tn")
        service = TNWebService(controller, transport, store, "urn:tn")
        start = transport.call("urn:tn", "StartNegotiation", {
            "requester": requester, "strategy": "standard",
        })
        nid = start["negotiationId"]
        service.crash()
        TNWebService.restore(controller, transport, store, "urn:tn")
        with pytest.raises(SessionError):
            transport.call("urn:tn", "PolicyExchange", {
                "negotiationId": nid, "resource": "VoMembership",
                "at": NEGOTIATION_AT,
            })

    def test_restored_service_mints_fresh_session_ids(self, parties):
        requester, controller = parties
        transport = SimTransport()
        store = XMLDocumentStore("tn")
        service = TNWebService(controller, transport, store, "urn:tn")
        nid = run_policy_phase(transport, requester)
        service.crash()
        TNWebService.restore(
            controller, transport, store, "urn:tn",
            agents={requester.name: requester},
        )
        fresh = transport.call("urn:tn", "StartNegotiation", {
            "requester": requester, "strategy": "standard",
        })
        assert fresh["negotiationId"] != nid

    def test_resume_via_cache_replays_sequence(self, parties):
        requester, controller = parties
        transport = SimTransport()
        store = XMLDocumentStore("tn")
        cache = SequenceCache()
        TNWebService(controller, transport, store, "urn:tn", cache=cache)
        client = TNClient(transport, "urn:tn", requester)
        first = client.negotiate("VoMembership", at=NEGOTIATION_AT)
        assert first.success
        assert len(cache) == 1
        second = client.negotiate("VoMembership", at=NEGOTIATION_AT)
        assert second.success
        assert cache.hits == 1
        assert second.policy_messages == 0  # replay skips the policy phase


class TestIdempotency:
    def test_start_negotiation_deduplicates_request_id(self, parties):
        requester, controller = parties
        transport = SimTransport()
        TNWebService(controller, transport, XMLDocumentStore("tn"), "urn:tn")
        payload = {"requester": requester, "strategy": "standard",
                   "requestId": "alpha"}
        first = transport.call("urn:tn", "StartNegotiation", payload)
        before = transport.clock.elapsed_ms
        second = transport.call("urn:tn", "StartNegotiation", payload)
        assert first["negotiationId"] == second["negotiationId"]
        # the replay bills no DB connect, just the message round trip
        elapsed = transport.clock.elapsed_ms - before
        assert elapsed < transport.model.db_connect_ms

    def test_phase_replay_not_rebilled(self, parties):
        requester, controller = parties
        transport = SimTransport()
        TNWebService(controller, transport, XMLDocumentStore("tn"), "urn:tn")
        nid = run_policy_phase(transport, requester)
        payload = {"negotiationId": nid, "resource": "VoMembership",
                   "at": NEGOTIATION_AT, "clientSeq": 1}
        before = transport.clock.elapsed_ms
        replay = transport.call("urn:tn", "PolicyExchange", payload)
        elapsed = transport.clock.elapsed_ms - before
        # only the message cost of the duplicate call itself
        assert elapsed == pytest.approx(transport.model.message_cost())
        assert replay["negotiationId"] == nid

    def test_distinct_sequence_numbers_processed(self, parties):
        requester, controller = parties
        transport = SimTransport()
        TNWebService(controller, transport, XMLDocumentStore("tn"), "urn:tn")
        nid = run_policy_phase(transport, requester)
        exchange = transport.call("urn:tn", "CredentialExchange", {
            "negotiationId": nid, "clientSeq": 2,
        })
        assert exchange["success"]
        replay = transport.call("urn:tn", "CredentialExchange", {
            "negotiationId": nid, "clientSeq": 2,
        })
        assert replay is exchange or replay == exchange


class TestCloseLifecycle:
    def test_close_unbinds_and_clears_sessions(self, parties):
        requester, controller = parties
        transport = SimTransport()
        store = XMLDocumentStore("tn")
        service = TNWebService(controller, transport, store, "urn:tn")
        run_policy_phase(transport, requester)
        service.close()
        assert service.closed
        assert not transport.is_bound("urn:tn")
        assert service.sessions() == {}

    def test_close_is_idempotent(self, parties):
        _, controller = parties
        transport = SimTransport()
        service = TNWebService(controller, transport,
                               XMLDocumentStore("tn"), "urn:tn")
        service.close()
        service.close()  # no error

    def test_rebind_same_url_after_close(self, parties):
        """A second service at the same URL works once the first is
        closed (previously this raised through SimTransport.bind)."""
        requester, controller = parties
        transport = SimTransport()
        first = TNWebService(controller, transport,
                             XMLDocumentStore("a"), "urn:tn")
        with pytest.raises(TransportError):
            TNWebService(controller, transport, XMLDocumentStore("b"),
                         "urn:tn")
        first.close()
        second = TNWebService(controller, transport,
                              XMLDocumentStore("b"), "urn:tn")
        client = TNClient(transport, "urn:tn", requester)
        assert client.negotiate("VoMembership", at=NEGOTIATION_AT).success
        second.close()

    def test_close_checkpoints_open_sessions(self, parties):
        requester, controller = parties
        transport = SimTransport()
        store = XMLDocumentStore("tn")
        service = TNWebService(controller, transport, store, "urn:tn")
        start = transport.call("urn:tn", "StartNegotiation", {
            "requester": requester, "strategy": "standard",
        })
        service.close()
        element = store.get(SESSION_COLLECTION, start["negotiationId"])
        assert element.get("phase") == "started"

    def test_context_manager_closes(self, parties):
        _, controller = parties
        transport = SimTransport()
        with TNWebService(controller, transport, XMLDocumentStore("tn"),
                          "urn:tn") as service:
            assert transport.is_bound("urn:tn")
        assert service.closed
        assert not transport.is_bound("urn:tn")

    def test_closed_handler_rejects_direct_calls(self, parties):
        _, controller = parties
        transport = SimTransport()
        service = TNWebService(controller, transport,
                               XMLDocumentStore("tn"), "urn:tn")
        service.close()
        with pytest.raises(TransportError):
            service.handle("StartNegotiation", {})


class TestSessionSerialization:
    def test_roundtrip_preserves_fields(self, parties):
        requester, controller = parties
        transport = SimTransport()
        store = XMLDocumentStore("tn")
        service = TNWebService(controller, transport, store, "urn:tn")
        nid = run_policy_phase(transport, requester)
        element = store.get(SESSION_COLLECTION, nid)
        session = TNWebService._session_from_xml(
            element, {requester.name: requester}
        )
        assert isinstance(session, NegotiationSession)
        assert session.session_id == nid
        assert session.requester is requester
        assert session.resource == "VoMembership"
        assert session.at == NEGOTIATION_AT
        assert session.policy_phase_billed
        assert not session.exchange_phase_billed
        assert session.restored
        assert session.checkpoint_outcome is not None
        assert session.checkpoint_outcome["success"]
