"""Multiple negotiation sessions against one TN Web service.

"The VO Initiator may engage multiple negotiations for a same role"
(paper Section 5.1) — the service must keep concurrent sessions
isolated: distinct ids, independent billing, independent results.
"""

import pytest

from repro.services.tn_client import TNClient
from repro.services.tn_service import TNWebService
from repro.services.transport import SimTransport
from repro.storage.document_store import XMLDocumentStore
from tests.conftest import ISSUE_AT, NEGOTIATION_AT


@pytest.fixture()
def world(agent_factory, infn, aaa_authority, shared_keypair, other_keypair):
    from repro.crypto.keys import KeyPair

    controller = agent_factory(
        "AircraftCo",
        [aaa_authority.issue("AAA Member", "AircraftCo",
                             other_keypair.fingerprint,
                             {"association": "AAA"}, ISSUE_AT)],
        "VoMembership <- WebDesignerQuality\nAAA Member <- DELIV",
        other_keypair,
    )
    good = agent_factory(
        "AerospaceCo",
        [infn.issue("ISO 9000 Certified", "AerospaceCo",
                    shared_keypair.fingerprint,
                    {"QualityRegulation": "UNI EN ISO 9000"}, ISSUE_AT)],
        "ISO 9000 Certified <- AAA Member",
        shared_keypair,
    )
    poor_keys = KeyPair.generate(512)
    poor = agent_factory("PoorCo", [], "", poor_keys)
    transport = SimTransport()
    service = TNWebService(
        controller, transport, XMLDocumentStore("tn"), "urn:tn"
    )
    return transport, service, good, poor


class TestConcurrentSessions:
    def test_interleaved_sessions_stay_isolated(self, world):
        transport, service, good, poor = world
        good_start = transport.call("urn:tn", "StartNegotiation",
                                    {"requester": good,
                                     "strategy": "standard"})
        poor_start = transport.call("urn:tn", "StartNegotiation",
                                    {"requester": poor,
                                     "strategy": "standard"})
        assert good_start["negotiationId"] != poor_start["negotiationId"]
        # Interleave the phases of the two sessions.
        transport.call("urn:tn", "PolicyExchange", {
            "negotiationId": good_start["negotiationId"],
            "resource": "VoMembership", "at": NEGOTIATION_AT,
        })
        transport.call("urn:tn", "PolicyExchange", {
            "negotiationId": poor_start["negotiationId"],
            "resource": "VoMembership", "at": NEGOTIATION_AT,
        })
        poor_result = transport.call("urn:tn", "CredentialExchange", {
            "negotiationId": poor_start["negotiationId"],
        })
        good_result = transport.call("urn:tn", "CredentialExchange", {
            "negotiationId": good_start["negotiationId"],
        })
        assert good_result["success"] is True
        assert poor_result["success"] is False
        assert poor_result["failureReason"] == "no_trust_sequence"

    def test_repeat_phase_calls_do_not_double_bill(self, world):
        transport, service, good, _ = world
        client = TNClient(transport, "urn:tn", good)
        start = transport.call("urn:tn", "StartNegotiation",
                               {"requester": good, "strategy": "standard"})
        payload = {
            "negotiationId": start["negotiationId"],
            "resource": "VoMembership", "at": NEGOTIATION_AT,
        }
        transport.call("urn:tn", "PolicyExchange", payload)
        after_first = transport.clock.elapsed_ms
        transport.call("urn:tn", "PolicyExchange", payload)
        second_cost = transport.clock.elapsed_ms - after_first
        # The repeat call pays only its own transport round trip.
        assert second_cost == transport.model.message_cost()

    def test_many_sequential_clients(self, world):
        transport, service, good, _ = world
        client = TNClient(transport, "urn:tn", good)
        results = [
            client.negotiate("VoMembership", at=NEGOTIATION_AT)
            for _ in range(5)
        ]
        assert all(result.success for result in results)
        # Message accounting is identical across repeat sessions.
        assert len({result.total_messages for result in results}) == 1
