"""The simulated clock and latency-modelled transport."""

from datetime import timedelta

import pytest

from repro.errors import TransportError
from repro.services.clock import SimClock
from repro.services.transport import LatencyModel, SimTransport


class TestClock:
    def test_advance(self):
        clock = SimClock()
        start = clock.now()
        clock.advance(1500)
        assert clock.now() - start == timedelta(milliseconds=1500)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_advance_days(self):
        clock = SimClock()
        start = clock.now()
        clock.advance_days(2)
        assert clock.now() - start == timedelta(days=2)

    def test_stopwatch(self):
        clock = SimClock()
        clock.advance(100)
        with clock.measure() as stopwatch:
            clock.advance(250)
        assert stopwatch.elapsed_ms == 250
        clock.advance(50)
        assert stopwatch.elapsed_ms == 250  # frozen after exit


class TestLatencyModel:
    def test_message_cost_composition(self):
        model = LatencyModel()
        assert model.message_cost() == (
            model.network_rtt_ms
            + model.soap_marshal_ms
            + model.service_dispatch_ms
        )

    def test_model_is_frozen(self):
        with pytest.raises(AttributeError):
            LatencyModel().db_read_ms = 0


class TestTransport:
    @pytest.fixture()
    def transport(self):
        return SimTransport()

    def test_bind_and_call(self, transport):
        transport.bind("urn:x", lambda op, payload: {"echo": op})
        before = transport.clock.elapsed_ms
        result = transport.call("urn:x", "Ping", {})
        assert result == {"echo": "Ping"}
        assert transport.clock.elapsed_ms - before == (
            transport.model.message_cost()
        )
        assert transport.calls == 1

    def test_double_bind_rejected(self, transport):
        transport.bind("urn:x", lambda op, payload: {})
        with pytest.raises(TransportError):
            transport.bind("urn:x", lambda op, payload: {})

    def test_unbound_call_rejected(self, transport):
        with pytest.raises(TransportError):
            transport.call("urn:ghost", "Op", {})

    def test_unbind(self, transport):
        transport.bind("urn:x", lambda op, payload: {})
        transport.unbind("urn:x")
        with pytest.raises(TransportError):
            transport.call("urn:x", "Op", {})

    def test_charges(self, transport):
        start = transport.clock.elapsed_ms
        transport.charge_db(reads=2, writes=1, connect=True)
        expected = (
            2 * transport.model.db_read_ms
            + transport.model.db_write_ms
            + transport.model.db_connect_ms
        )
        assert transport.clock.elapsed_ms - start == expected

    def test_charge_crypto_and_ui_and_mail(self, transport):
        start = transport.clock.elapsed_ms
        transport.charge_crypto(signs=1, verifies=2)
        transport.charge_ui(2)
        transport.charge_mail()
        expected = (
            transport.model.crypto_sign_ms
            + 2 * transport.model.crypto_verify_ms
            + 2 * transport.model.ui_interaction_ms
            + transport.model.mail_delivery_ms
        )
        assert transport.clock.elapsed_ms - start == expected

    def test_negative_message_charge_rejected(self, transport):
        with pytest.raises(TransportError):
            transport.charge_messages(-1)

    def test_charge_zero_messages_is_free(self, transport):
        start = transport.clock.elapsed_ms
        transport.charge_messages(0)
        assert transport.clock.elapsed_ms == start
