"""The XPath-subset evaluator."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import XPathError
from repro.xmlutil.canonical import parse_xml
from repro.xmlutil.xpath import XPath, evaluate_xpath

DOC = parse_xml(
    """
    <credential>
      <header>
        <credType>ISO 9000 Certified</credType>
        <issuer>INFN</issuer>
      </header>
      <content>
        <QualityRegulation type="string">UNI EN ISO 9000</QualityRegulation>
        <score type="integer">85</score>
        <score type="integer">42</score>
      </content>
    </credential>
    """
)


class TestLocationPaths:
    def test_absolute_child_path(self):
        nodes = XPath("/credential/header/issuer").select(DOC)
        assert [node.text for node in nodes] == ["INFN"]

    def test_descendant_axis(self):
        nodes = XPath("//score").select(DOC)
        assert len(nodes) == 2

    def test_wildcard_step(self):
        nodes = XPath("/credential/content/*").select(DOC)
        assert len(nodes) == 3

    def test_attribute_step(self):
        values = XPath("//QualityRegulation/@type").select(DOC)
        assert values == ["string"]

    def test_missing_attribute_yields_empty(self):
        assert XPath("//QualityRegulation/@missing").select(DOC) == []

    def test_text_function(self):
        values = XPath("/credential/header/issuer/text()").select(DOC)
        assert values == ["INFN"]

    def test_relative_path_from_root_context(self):
        nodes = XPath("header/credType").select(DOC)
        assert nodes[0].text == "ISO 9000 Certified"

    def test_nonexistent_path_is_empty(self):
        assert XPath("/credential/nothing/here").select(DOC) == []


class TestComparisons:
    def test_string_equality(self):
        assert XPath(
            "/credential/content/QualityRegulation = 'UNI EN ISO 9000'"
        ).evaluate(DOC) is True

    def test_string_inequality(self):
        assert XPath("//issuer != 'Other'").evaluate(DOC) is True

    def test_numeric_comparison(self):
        assert XPath("//score > 80").evaluate(DOC) is True
        assert XPath("//score > 90").evaluate(DOC) is False

    def test_nodeset_any_semantics(self):
        # One of the two scores equals 42.
        assert XPath("//score = 42").evaluate(DOC) is True

    def test_attribute_comparison(self):
        assert XPath("//score/@type = 'integer'").evaluate(DOC) is True

    def test_relational_on_non_numeric_is_false(self):
        assert XPath("//issuer > 5").evaluate(DOC) is False


class TestPredicates:
    def test_attribute_predicate_on_descendants(self):
        nodes = XPath("//score[@type = 'integer']").select(DOC)
        assert len(nodes) == 2

    def test_predicate_filters(self):
        doc = parse_xml("<r><i v='1'/><i v='2'/></r>")
        nodes = XPath("/r/i[@v = '2']").select(doc)
        assert len(nodes) == 1

    def test_positional_predicate(self):
        doc = parse_xml("<r><i>a</i><i>b</i><i>c</i></r>")
        nodes = XPath("/r/i[2]").select(doc)
        assert [node.text for node in nodes] == ["b"]

    def test_child_text_predicate(self):
        doc = parse_xml("<r><p><n>x</n></p><p><n>y</n></p></r>")
        nodes = XPath("/r/p[n = 'y']").select(doc)
        assert len(nodes) == 1


class TestFunctions:
    def test_count(self):
        assert XPath("count(//score)").evaluate(DOC) == 2.0

    def test_count_in_comparison(self):
        assert XPath("count(//score) = 2").evaluate(DOC) is True

    def test_contains(self):
        assert XPath("contains(//issuer, 'NF')").evaluate(DOC) is True
        assert XPath("contains(//issuer, 'xyz')").evaluate(DOC) is False

    def test_starts_with(self):
        assert XPath(
            "starts-with(//QualityRegulation, 'UNI')"
        ).evaluate(DOC) is True

    def test_not(self):
        assert XPath("not(//missing)").evaluate(DOC) is True

    def test_number_coercion(self):
        assert XPath("number('42') = 42").evaluate(DOC) is True

    def test_string_coercion(self):
        assert XPath("string(//issuer) = 'INFN'").evaluate(DOC) is True


class TestBooleanLogic:
    def test_and(self):
        assert XPath("//score > 80 and //issuer = 'INFN'").evaluate(DOC) is True

    def test_or(self):
        assert XPath("//score > 1000 or //issuer = 'INFN'").evaluate(DOC) is True

    def test_and_short_circuit_false(self):
        assert XPath("//missing and //issuer").evaluate(DOC) is False

    def test_matches_coerces_to_bool(self):
        assert XPath("//score").matches(DOC) is True
        assert XPath("//missing").matches(DOC) is False


class TestErrors:
    def test_unbalanced_bracket(self):
        with pytest.raises(XPathError):
            XPath("//a[")

    def test_garbage_character(self):
        with pytest.raises(XPathError):
            XPath("//a § b")

    def test_trailing_tokens(self):
        with pytest.raises(XPathError):
            XPath("//a //b //c = ")

    def test_select_on_scalar_result(self):
        with pytest.raises(XPathError):
            XPath("count(//a)").select(DOC)

    def test_unknown_function(self):
        with pytest.raises(XPathError):
            XPath("frobnicate(//a)").evaluate(DOC)

    def test_count_requires_nodeset(self):
        with pytest.raises(XPathError):
            XPath("count(5)").evaluate(DOC)


@given(value=st.integers(min_value=-1000, max_value=1000))
def test_numeric_comparison_property(value):
    """//v op N agrees with Python comparison for any integer."""
    doc = parse_xml(f"<r><v>{value}</v></r>")
    assert XPath("/r/v >= 0").evaluate(doc) == (value >= 0)
    assert XPath(f"/r/v = {abs(value)}").evaluate(doc) == (value == abs(value))


@given(text=st.text(alphabet=st.sampled_from("abcXYZ09"), max_size=10))
def test_string_equality_property(text):
    """A node always compares equal to its own literal string value."""
    doc = parse_xml("<r><v>placeholder</v></r>")
    doc[0].text = text
    assert evaluate_xpath(f"/r/v = '{text}'", doc) is True
