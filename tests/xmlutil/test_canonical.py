"""Canonical XML serialization."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import XMLError
from repro.xmlutil.canonical import canonicalize, element_digest, parse_xml


class TestParse:
    def test_parses_valid_xml(self):
        root = parse_xml("<a><b>x</b></a>")
        assert root.tag == "a"
        assert root[0].text == "x"

    def test_malformed_xml_raises_xml_error(self):
        with pytest.raises(XMLError):
            parse_xml("<a><b></a>")

    def test_empty_string_raises(self):
        with pytest.raises(XMLError):
            parse_xml("")


class TestCanonicalize:
    def test_attributes_are_sorted(self):
        assert canonicalize('<a z="2" b="1"/>') == '<a b="1" z="2"></a>'

    def test_structural_whitespace_is_dropped(self):
        pretty = "<a>\n  <b>x</b>\n  <c>y</c>\n</a>"
        compact = "<a><b>x</b><c>y</c></a>"
        assert canonicalize(pretty) == canonicalize(compact)

    def test_text_is_preserved_and_stripped(self):
        assert canonicalize("<a>  hello  </a>") == "<a>hello</a>"

    def test_escaping_in_text_and_attributes(self):
        out = canonicalize('<a k="x&quot;y">1 &lt; 2 &amp; 3</a>')
        assert out == '<a k="x&quot;y">1 &lt; 2 &amp; 3</a>'

    def test_empty_element_form(self):
        assert canonicalize("<a/>") == "<a></a>"

    def test_tail_text_is_kept(self):
        out = canonicalize("<a><b>x</b>tail</a>")
        assert "tail" in out

    def test_accepts_element_input(self):
        element = parse_xml("<a><b/></a>")
        assert canonicalize(element) == "<a><b></b></a>"

    def test_idempotent(self):
        doc = '<root a="1"><child>text</child></root>'
        once = canonicalize(doc)
        assert canonicalize(once) == once


class TestDigest:
    def test_equal_documents_share_digest(self):
        left = element_digest('<a y="2" x="1"><b>v</b></a>')
        right = element_digest('<a x="1" y="2">\n  <b>v</b>\n</a>')
        assert left == right

    def test_different_content_different_digest(self):
        assert element_digest("<a>1</a>") != element_digest("<a>2</a>")

    def test_digest_is_32_bytes(self):
        assert len(element_digest("<a/>")) == 32


_names = st.sampled_from(["a", "b", "credential", "header", "x1"])
_texts = st.text(
    alphabet=st.sampled_from("abc<>&\"' "), min_size=0, max_size=12
)


@given(tag=_names, text=_texts, attr=_texts)
def test_canonicalize_roundtrip_property(tag, text, attr):
    """Canonical form re-parses to an equivalent canonical form."""
    from xml.etree import ElementTree as ET

    element = ET.Element(tag, {"k": attr})
    element.text = text
    once = canonicalize(element)
    assert canonicalize(once) == once
