"""Fuzzing the XPath-subset engine.

Random small documents and random expressions from the supported
grammar must evaluate without foreign exceptions, and evaluation must
be deterministic and type-stable.
"""

from xml.etree import ElementTree as ET

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import XPathError
from repro.xmlutil.xpath import XPath

_tags = st.sampled_from(["a", "b", "item", "content", "score"])
_texts = st.sampled_from(["", "1", "42", "gold", "x y", "-3.5"])
_attrs = st.dictionaries(
    st.sampled_from(["k", "type", "v"]), _texts, max_size=2
)


@st.composite
def documents(draw, max_depth=3):
    def build(depth):
        element = ET.Element(draw(_tags), draw(_attrs))
        element.text = draw(_texts)
        if depth < max_depth:
            for _ in range(draw(st.integers(min_value=0, max_value=3))):
                element.append(build(depth + 1))
        return element

    return build(0)


_paths = st.sampled_from([
    "//a", "//score", "/a/b", "//item/@k", "//*", "a/b/c", "//content/*",
    "//score/text()",
])
_expressions = st.one_of(
    _paths,
    _paths.map(lambda p: f"{p} = '42'"),
    _paths.map(lambda p: f"{p} >= 2"),
    _paths.map(lambda p: f"count({p}) > 1"),
    _paths.map(lambda p: f"not({p})"),
    st.tuples(_paths, _paths).map(lambda pq: f"{pq[0]} and {pq[1]}"),
    _paths.map(lambda p: f"contains({p}, 'o')"),
)


@settings(max_examples=300, deadline=None)
@given(doc=documents(), expression=_expressions)
def test_supported_grammar_never_crashes(doc, expression):
    compiled = XPath(expression)
    first = compiled.evaluate(doc)
    second = compiled.evaluate(doc)
    # Deterministic...
    if isinstance(first, list):
        assert [str(n) for n in first] == [str(n) for n in second]
    else:
        assert first == second
    # ...and matches() always coerces to bool.
    assert isinstance(compiled.matches(doc), bool)


@settings(max_examples=200, deadline=None)
@given(junk=st.text(alphabet=st.sampled_from("/@[]()'=<>! abc12"), max_size=25))
def test_junk_expressions_fail_cleanly(junk):
    doc = ET.fromstring("<r><a>1</a></r>")
    try:
        XPath(junk).evaluate(doc)
    except XPathError:
        pass  # the only acceptable failure mode
