"""Credential authorities and revocation lists."""

import pytest

from repro.credentials.authority import CredentialAuthority
from repro.credentials.credential import Credential
from repro.credentials.revocation import RevocationList, RevocationRegistry
from repro.credentials.sensitivity import Sensitivity
from repro.crypto.keys import verify_b64
from repro.errors import CredentialRevokedError, IssuanceError, SignatureError
from tests.conftest import ISSUE_AT


class TestIssuance:
    def test_issued_credential_verifies(self, infn, shared_keypair):
        cred = infn.issue("T", "S", shared_keypair.fingerprint, {"a": 1}, ISSUE_AT)
        assert cred.is_signed
        assert verify_b64(infn.public_key, cred.signing_bytes(), cred.signature_b64)

    def test_serials_increment(self, shared_keypair):
        ca = CredentialAuthority.create("CA", key_bits=512)
        first = ca.issue("T", "S", shared_keypair.fingerprint, {}, ISSUE_AT)
        second = ca.issue("T", "S", shared_keypair.fingerprint, {}, ISSUE_AT)
        assert second.serial == first.serial + 1

    def test_default_cred_id_unique(self, shared_keypair):
        ca = CredentialAuthority.create("CA", key_bits=512)
        ids = {
            ca.issue("T", "S", shared_keypair.fingerprint, {}, ISSUE_AT).cred_id
            for _ in range(5)
        }
        assert len(ids) == 5

    def test_explicit_cred_id(self, infn, shared_keypair):
        cred = infn.issue("T", "S", shared_keypair.fingerprint, {}, ISSUE_AT,
                          cred_id="custom-id")
        assert cred.cred_id == "custom-id"

    def test_sensitivity_carried(self, infn, shared_keypair):
        cred = infn.issue("T", "S", shared_keypair.fingerprint, {}, ISSUE_AT,
                          sensitivity=Sensitivity.HIGH)
        assert cred.sensitivity is Sensitivity.HIGH

    def test_empty_type_rejected(self, infn, shared_keypair):
        with pytest.raises(IssuanceError):
            infn.issue("", "S", shared_keypair.fingerprint, {}, ISSUE_AT)

    def test_tracks_issued_types(self, shared_keypair):
        ca = CredentialAuthority.create("CA", key_bits=512)
        ca.issue("Alpha", "S", shared_keypair.fingerprint, {}, ISSUE_AT)
        assert "Alpha" in ca.issued_types


class TestRevocation:
    def test_revoke_own_credential(self, shared_keypair):
        ca = CredentialAuthority.create("CA", key_bits=512)
        cred = ca.issue("T", "S", shared_keypair.fingerprint, {}, ISSUE_AT)
        assert not ca.has_revoked(cred)
        ca.revoke(cred)
        assert ca.has_revoked(cred)

    def test_cannot_revoke_foreign_credential(self, infn, shared_keypair):
        ca = CredentialAuthority.create("CA", key_bits=512)
        foreign = infn.issue("T", "S", shared_keypair.fingerprint, {}, ISSUE_AT)
        with pytest.raises(IssuanceError):
            ca.revoke(foreign)

    def test_crl_is_signed_after_revoke(self, shared_keypair):
        ca = CredentialAuthority.create("CA", key_bits=512)
        cred = ca.issue("T", "S", shared_keypair.fingerprint, {}, ISSUE_AT)
        ca.revoke(cred)
        assert ca.crl.verify(ca.public_key)

    def test_crl_version_bumps(self, shared_keypair):
        ca = CredentialAuthority.create("CA", key_bits=512)
        cred = ca.issue("T", "S", shared_keypair.fingerprint, {}, ISSUE_AT)
        version = ca.crl.version
        ca.revoke(cred)
        assert ca.crl.version == version + 1

    def test_revoking_twice_is_idempotent(self, shared_keypair):
        ca = CredentialAuthority.create("CA", key_bits=512)
        cred = ca.issue("T", "S", shared_keypair.fingerprint, {}, ISSUE_AT)
        ca.revoke(cred)
        version = ca.crl.version
        ca.revoke(cred)
        assert ca.crl.version == version


class TestRevocationList:
    def test_unsigned_list_fails_verification(self, shared_keypair):
        ca = CredentialAuthority.create("CA", key_bits=512)
        crl = RevocationList(issuer="CA")
        assert not crl.verify(ca.public_key)

    def test_revoke_drops_signature(self, shared_keypair):
        ca = CredentialAuthority.create("CA", key_bits=512)
        crl = RevocationList(issuer="CA")
        crl.sign(ca.keypair.private)
        crl.revoke(7)
        assert crl.signature_b64 is None


class TestRevocationRegistry:
    def test_lookup(self):
        registry = RevocationRegistry()
        crl = RevocationList(issuer="CA")
        crl.revoke(5)
        registry.publish(crl)
        assert registry.is_revoked("CA", 5)
        assert not registry.is_revoked("CA", 6)
        assert not registry.is_revoked("Other", 5)

    def test_ensure_not_revoked_raises(self):
        registry = RevocationRegistry()
        crl = RevocationList(issuer="CA")
        crl.revoke(5)
        registry.publish(crl)
        with pytest.raises(CredentialRevokedError):
            registry.ensure_not_revoked("CA", 5)
        registry.ensure_not_revoked("CA", 6)  # must not raise

    def test_stale_publish_rejected(self):
        registry = RevocationRegistry()
        new = RevocationList(issuer="CA", version=3)
        registry.publish(new)
        stale = RevocationList(issuer="CA", version=1)
        with pytest.raises(SignatureError):
            registry.publish(stale)

    def test_unknown_issuer_has_no_list(self):
        assert RevocationRegistry().list_for("nobody") is None
