"""Credential authorities and revocation lists."""

import pytest

from repro.credentials.authority import CredentialAuthority
from repro.credentials.credential import Credential
from repro.credentials.revocation import RevocationList, RevocationRegistry
from repro.credentials.sensitivity import Sensitivity
from repro.crypto.keys import verify_b64
from repro.errors import (
    CredentialRevokedError,
    ErrorCode,
    IssuanceError,
    SignatureError,
)
from repro.trust import TrustBus
from tests.conftest import ISSUE_AT


class TestIssuance:
    def test_issued_credential_verifies(self, infn, shared_keypair):
        cred = infn.issue("T", "S", shared_keypair.fingerprint, {"a": 1}, ISSUE_AT)
        assert cred.is_signed
        assert verify_b64(infn.public_key, cred.signing_bytes(), cred.signature_b64)

    def test_serials_increment(self, shared_keypair):
        ca = CredentialAuthority.create("CA", key_bits=512)
        first = ca.issue("T", "S", shared_keypair.fingerprint, {}, ISSUE_AT)
        second = ca.issue("T", "S", shared_keypair.fingerprint, {}, ISSUE_AT)
        assert second.serial == first.serial + 1

    def test_default_cred_id_unique(self, shared_keypair):
        ca = CredentialAuthority.create("CA", key_bits=512)
        ids = {
            ca.issue("T", "S", shared_keypair.fingerprint, {}, ISSUE_AT).cred_id
            for _ in range(5)
        }
        assert len(ids) == 5

    def test_explicit_cred_id(self, infn, shared_keypair):
        cred = infn.issue("T", "S", shared_keypair.fingerprint, {}, ISSUE_AT,
                          cred_id="custom-id")
        assert cred.cred_id == "custom-id"

    def test_sensitivity_carried(self, infn, shared_keypair):
        cred = infn.issue("T", "S", shared_keypair.fingerprint, {}, ISSUE_AT,
                          sensitivity=Sensitivity.HIGH)
        assert cred.sensitivity is Sensitivity.HIGH

    def test_empty_type_rejected(self, infn, shared_keypair):
        with pytest.raises(IssuanceError):
            infn.issue("", "S", shared_keypair.fingerprint, {}, ISSUE_AT)

    def test_tracks_issued_types(self, shared_keypair):
        ca = CredentialAuthority.create("CA", key_bits=512)
        ca.issue("Alpha", "S", shared_keypair.fingerprint, {}, ISSUE_AT)
        assert "Alpha" in ca.issued_types


class TestRevocation:
    def test_revoke_own_credential(self, shared_keypair):
        ca = CredentialAuthority.create("CA", key_bits=512)
        cred = ca.issue("T", "S", shared_keypair.fingerprint, {}, ISSUE_AT)
        assert not ca.has_revoked(cred)
        ca.revoke(cred)
        assert ca.has_revoked(cred)

    def test_cannot_revoke_foreign_credential(self, infn, shared_keypair):
        ca = CredentialAuthority.create("CA", key_bits=512)
        foreign = infn.issue("T", "S", shared_keypair.fingerprint, {}, ISSUE_AT)
        with pytest.raises(IssuanceError):
            ca.revoke(foreign)

    def test_crl_is_signed_after_revoke(self, shared_keypair):
        ca = CredentialAuthority.create("CA", key_bits=512)
        cred = ca.issue("T", "S", shared_keypair.fingerprint, {}, ISSUE_AT)
        ca.revoke(cred)
        assert ca.crl.verify(ca.public_key)

    def test_crl_version_bumps(self, shared_keypair):
        ca = CredentialAuthority.create("CA", key_bits=512)
        cred = ca.issue("T", "S", shared_keypair.fingerprint, {}, ISSUE_AT)
        version = ca.crl.version
        ca.revoke(cred)
        assert ca.crl.version == version + 1

    def test_revoking_twice_is_idempotent(self, shared_keypair):
        ca = CredentialAuthority.create("CA", key_bits=512)
        cred = ca.issue("T", "S", shared_keypair.fingerprint, {}, ISSUE_AT)
        ca.revoke(cred)
        version = ca.crl.version
        ca.revoke(cred)
        assert ca.crl.version == version


class TestRevocationList:
    def test_unsigned_list_fails_verification(self, shared_keypair):
        ca = CredentialAuthority.create("CA", key_bits=512)
        crl = RevocationList(issuer="CA")
        assert not crl.verify(ca.public_key)

    def test_revoke_drops_signature(self, shared_keypair):
        ca = CredentialAuthority.create("CA", key_bits=512)
        crl = RevocationList(issuer="CA")
        crl.sign(ca.keypair.private)
        crl.revoke(7)
        assert crl.signature_b64 is None


class TestRevocationRegistry:
    @staticmethod
    def _signed_crl(key, serials=(), version=None):
        crl = RevocationList(issuer="CA")
        for serial in serials:
            crl.revoke(serial)
        if version is not None:
            crl.version = version
        crl.sign(key)
        return crl

    def test_lookup(self, shared_keypair):
        bus = TrustBus()
        bus.publish_crl(self._signed_crl(shared_keypair.private, [5]))
        registry = bus.registry
        assert registry.is_revoked("CA", 5)
        assert not registry.is_revoked("CA", 6)
        assert not registry.is_revoked("Other", 5)

    def test_ensure_not_revoked_raises(self, shared_keypair):
        bus = TrustBus()
        bus.publish_crl(self._signed_crl(shared_keypair.private, [5]))
        with pytest.raises(CredentialRevokedError):
            bus.registry.ensure_not_revoked("CA", 5)
        bus.registry.ensure_not_revoked("CA", 6)  # must not raise

    def test_stale_publish_rejected(self, shared_keypair):
        bus = TrustBus()
        bus.publish_crl(self._signed_crl(shared_keypair.private, version=3))
        stale = self._signed_crl(shared_keypair.private, version=1)
        with pytest.raises(SignatureError):
            bus.publish_crl(stale)

    def test_unsigned_publish_rejected(self, shared_keypair):
        bus = TrustBus()
        crl = RevocationList(issuer="CA")
        crl.revoke(5)  # drops any signature; the authority never re-signed
        with pytest.raises(SignatureError) as excinfo:
            bus.publish_crl(crl)
        assert excinfo.value.error_code is ErrorCode.UNSIGNED_REVOCATION_LIST
        assert not bus.registry.is_revoked("CA", 5)  # nothing was installed

    def test_deprecated_publish_still_installs(self, shared_keypair):
        registry = RevocationRegistry()
        with pytest.deprecated_call():
            registry.publish(self._signed_crl(shared_keypair.private, [5]))
        assert registry.is_revoked("CA", 5)

    def test_unknown_issuer_has_no_list(self):
        assert RevocationRegistry().list_for("nobody") is None
