"""The credential verification pipeline (signature, validity,
revocation, ownership)."""

from datetime import timedelta

import pytest

from repro.credentials.authority import CredentialAuthority
from repro.credentials.revocation import RevocationRegistry
from repro.trust import TrustBus
from repro.credentials.validation import CredentialValidator, OwnershipProof
from repro.crypto.keys import KeyPair, Keyring
from repro.errors import (
    CredentialExpiredError,
    CredentialOwnershipError,
    CredentialRevokedError,
    SignatureError,
)
from tests.conftest import ISSUE_AT, NEGOTIATION_AT


@pytest.fixture()
def setup(shared_keypair):
    ca = CredentialAuthority.create("CA", key_bits=512)
    ring = Keyring()
    ring.add("CA", ca.public_key)
    registry = RevocationRegistry()
    TrustBus(registry=registry).publish_crl(ca.crl)
    credential = ca.issue(
        "T", "Holder", shared_keypair.fingerprint, {"a": 1}, ISSUE_AT, days=365
    )
    validator = CredentialValidator(ring, registry)
    return ca, registry, credential, validator


class TestHappyPath:
    def test_all_checks_pass(self, setup, shared_keypair):
        _, _, credential, validator = setup
        nonce = validator.issue_challenge()
        proof = OwnershipProof.respond(nonce, shared_keypair.private)
        report = validator.validate(credential, NEGOTIATION_AT, proof, nonce)
        assert report.ok
        assert report.signature_ok
        assert report.within_validity
        assert report.not_revoked
        assert report.ownership_ok is True

    def test_without_ownership_proof(self, setup):
        _, _, credential, validator = setup
        report = validator.validate(credential, NEGOTIATION_AT)
        assert report.ok
        assert report.ownership_ok is None

    def test_validate_or_raise_passes(self, setup):
        _, _, credential, validator = setup
        validator.validate_or_raise(credential, NEGOTIATION_AT)


class TestFailures:
    def test_unknown_issuer(self, setup):
        _, registry, credential, _ = setup
        empty_ring = Keyring()
        validator = CredentialValidator(empty_ring, registry)
        report = validator.validate(credential, NEGOTIATION_AT)
        assert not report.signature_ok
        with pytest.raises(SignatureError):
            report.raise_for_failure()

    def test_tampered_credential(self, setup):
        from repro.credentials.credential import Credential

        _, _, credential, validator = setup
        tampered = Credential.from_xml(
            credential.to_xml().replace(">1<", ">999<")
        )
        assert not validator.validate(tampered, NEGOTIATION_AT).signature_ok

    def test_expired(self, setup):
        _, _, credential, validator = setup
        late = ISSUE_AT + timedelta(days=1000)
        report = validator.validate(credential, late)
        assert not report.within_validity
        with pytest.raises(CredentialExpiredError):
            report.raise_for_failure()

    def test_not_yet_valid(self, setup):
        _, _, credential, validator = setup
        early = ISSUE_AT - timedelta(days=1)
        assert not validator.validate(credential, early).within_validity

    def test_revoked(self, setup):
        ca, registry, credential, validator = setup
        ca.revoke(credential)
        TrustBus(registry=registry).publish_crl(ca.crl)
        report = validator.validate(credential, NEGOTIATION_AT)
        assert not report.not_revoked
        with pytest.raises(CredentialRevokedError):
            report.raise_for_failure()

    def test_ownership_wrong_key(self, setup):
        _, _, credential, validator = setup
        stranger = KeyPair.generate(512)
        nonce = validator.issue_challenge()
        proof = OwnershipProof.respond(nonce, stranger.private)
        report = validator.validate(credential, NEGOTIATION_AT, proof, nonce)
        assert report.ownership_ok is False
        with pytest.raises(CredentialOwnershipError):
            report.raise_for_failure()

    def test_ownership_replayed_nonce(self, setup, shared_keypair):
        _, _, credential, validator = setup
        stale_proof = OwnershipProof.respond("old-nonce", shared_keypair.private)
        fresh_nonce = validator.issue_challenge()
        report = validator.validate(
            credential, NEGOTIATION_AT, stale_proof, fresh_nonce
        )
        assert report.ownership_ok is False

    def test_nonces_are_unique(self, setup):
        _, _, _, validator = setup
        nonces = {validator.issue_challenge() for _ in range(50)}
        assert len(nonces) == 50


class TestReport:
    def test_failure_priority_order(self, setup):
        """raise_for_failure surfaces signature problems first."""
        _, registry, credential, _ = setup
        validator = CredentialValidator(Keyring(), registry)
        late = ISSUE_AT + timedelta(days=1000)
        report = validator.validate(credential, late)
        with pytest.raises(SignatureError):
            report.raise_for_failure()
