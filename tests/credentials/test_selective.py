"""Hash-based selective disclosure (paper Section 6.3 extension)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.credentials.selective import (
    SelectiveCredential,
    commit_attribute,
)
from repro.errors import SelectiveDisclosureError
from repro.crypto.keys import KeyPair
from tests.conftest import ISSUE_AT


@pytest.fixture()
def issued(infn, shared_keypair):
    credential = infn.issue(
        "ISO 9000 Certified",
        "AerospaceCo",
        shared_keypair.fingerprint,
        {"QualityRegulation": "UNI EN ISO 9000", "scope": "design", "tier": 2},
        ISSUE_AT,
    )
    return credential, SelectiveCredential.issue_from(
        credential, infn.keypair.private
    )


class TestIssuance:
    def test_commitment_count_matches_attributes(self, issued):
        credential, selective = issued
        assert len(selective.commitments) == len(credential.attributes)

    def test_commitments_hide_values(self, issued):
        _, selective = issued
        for commitment in selective.commitments:
            assert "UNI EN ISO 9000" not in commitment

    def test_commitments_sorted_for_deterministic_signing(self, issued):
        _, selective = issued
        assert list(selective.commitments) == sorted(selective.commitments)

    def test_attribute_names_available_to_holder(self, issued):
        _, selective = issued
        assert selective.attribute_names() == [
            "QualityRegulation", "scope", "tier"
        ]


class TestPresentation:
    def test_partial_disclosure_verifies(self, issued, infn):
        _, selective = issued
        presentation = selective.present(["QualityRegulation"])
        revealed = presentation.verify(infn.public_key)
        assert set(revealed) == {"QualityRegulation"}
        assert revealed["QualityRegulation"].value == "UNI EN ISO 9000"
        assert presentation.hidden_count == 2

    def test_full_disclosure_verifies(self, issued, infn):
        _, selective = issued
        presentation = selective.present(selective.attribute_names())
        assert len(presentation.verify(infn.public_key)) == 3
        assert presentation.hidden_count == 0

    def test_empty_disclosure_still_proves_issuance(self, issued, infn):
        _, selective = issued
        presentation = selective.present([])
        assert presentation.verify(infn.public_key) == {}
        assert presentation.hidden_count == 3

    def test_unknown_attribute_rejected(self, issued):
        _, selective = issued
        with pytest.raises(SelectiveDisclosureError):
            selective.present(["ghost"])

    def test_wrong_issuer_key_rejected(self, issued):
        _, selective = issued
        stranger = KeyPair.generate(512)
        presentation = selective.present(["scope"])
        with pytest.raises(SelectiveDisclosureError):
            presentation.verify(stranger.public)

    def test_forged_opening_rejected(self, issued, infn):
        from repro.credentials.attributes import AttributeValue
        from repro.credentials.selective import DisclosedAttribute, Presentation

        _, selective = issued
        forged = Presentation(
            credential=selective,
            disclosed=(
                DisclosedAttribute(
                    AttributeValue.of("QualityRegulation", "FAKE"), "00" * 16
                ),
            ),
        )
        with pytest.raises(SelectiveDisclosureError):
            forged.verify(infn.public_key)

    def test_tampered_metadata_breaks_signature(self, issued, infn):
        import dataclasses

        _, selective = issued
        tampered = dataclasses.replace(selective, subject="EvilCorp")
        presentation = tampered.present(["scope"])
        with pytest.raises(SelectiveDisclosureError):
            presentation.verify(infn.public_key)


class TestCommitments:
    def test_commitment_is_salt_dependent(self):
        left = commit_attribute("a", "v", "salt1")
        right = commit_attribute("a", "v", "salt2")
        assert left != right

    def test_commitment_binds_name_and_value(self):
        assert commit_attribute("a", "v", "s") != commit_attribute("b", "v", "s")
        assert commit_attribute("a", "v", "s") != commit_attribute("a", "w", "s")

    @given(
        name=st.sampled_from(["a", "gender", "QualityRegulation"]),
        value=st.text(alphabet=st.sampled_from("abc 09"), max_size=16),
        salt=st.text(alphabet=st.sampled_from("0123456789abcdef"), min_size=1, max_size=32),
    )
    def test_commitment_deterministic_property(self, name, value, salt):
        assert commit_attribute(name, value, salt) == commit_attribute(
            name, value, salt
        )
