"""Typed attribute values."""

from datetime import date, datetime

import pytest
from hypothesis import given, strategies as st

from repro.credentials.attributes import AttributeValue
from repro.errors import CredentialFormatError


class TestConstruction:
    @pytest.mark.parametrize(
        "value,tag",
        [
            ("text", "string"),
            (42, "integer"),
            (3.5, "decimal"),
            (True, "boolean"),
            (date(2010, 3, 1), "date"),
            (datetime(2010, 3, 1, 12, 0), "dateTime"),
        ],
    )
    def test_type_inference(self, value, tag):
        assert AttributeValue.of("a", value).type_tag == tag

    def test_bool_not_confused_with_int(self):
        assert AttributeValue.of("flag", True).type_tag == "boolean"
        assert AttributeValue.of("count", 1).type_tag == "integer"

    def test_datetime_not_confused_with_date(self):
        assert AttributeValue.of("t", datetime(2010, 1, 1)).type_tag == "dateTime"

    def test_invalid_name_rejected(self):
        with pytest.raises(CredentialFormatError):
            AttributeValue.of("9lives", 1)
        with pytest.raises(CredentialFormatError):
            AttributeValue.of("", 1)

    def test_unsupported_type_rejected(self):
        with pytest.raises(CredentialFormatError):
            AttributeValue.of("a", [1, 2])


class TestXmlText:
    def test_boolean_forms(self):
        assert AttributeValue.of("f", True).xml_text == "true"
        assert AttributeValue.of("f", False).xml_text == "false"

    def test_date_iso(self):
        assert AttributeValue.of("d", date(2009, 10, 26)).xml_text == "2009-10-26"

    def test_number_forms(self):
        assert AttributeValue.of("n", 42).xml_text == "42"
        assert AttributeValue.of("n", 2.5).xml_text == "2.5"


class TestParse:
    @pytest.mark.parametrize(
        "text,tag,expected",
        [
            ("hello", "string", "hello"),
            ("42", "integer", 42),
            ("2.5", "decimal", 2.5),
            ("true", "boolean", True),
            ("false", "boolean", False),
            ("2009-10-26", "date", date(2009, 10, 26)),
        ],
    )
    def test_parse_values(self, text, tag, expected):
        assert AttributeValue.parse("a", text, tag).value == expected

    def test_parse_datetime(self):
        parsed = AttributeValue.parse("a", "2009-10-26T21:32:52", "dateTime")
        assert parsed.value == datetime(2009, 10, 26, 21, 32, 52)

    def test_bad_boolean_rejected(self):
        with pytest.raises(CredentialFormatError):
            AttributeValue.parse("a", "yes", "boolean")

    def test_bad_integer_rejected(self):
        with pytest.raises(CredentialFormatError):
            AttributeValue.parse("a", "4.5", "integer")

    def test_unknown_tag_rejected(self):
        with pytest.raises(CredentialFormatError):
            AttributeValue.parse("a", "x", "blob")


class TestComparable:
    def test_numbers_compare_numerically(self):
        assert AttributeValue.of("n", 42).comparable() == 42.0

    def test_strings_compare_as_text(self):
        assert AttributeValue.of("s", "UNI EN ISO 9000").comparable() == "UNI EN ISO 9000"

    def test_dates_compare_as_iso_text(self):
        assert AttributeValue.of("d", date(2009, 1, 2)).comparable() == "2009-01-02"


@given(value=st.integers(min_value=-10**9, max_value=10**9))
def test_integer_roundtrip_property(value):
    attr = AttributeValue.of("n", value)
    parsed = AttributeValue.parse("n", attr.xml_text, attr.type_tag)
    assert parsed == attr


@given(
    value=st.text(
        alphabet=st.characters(blacklist_categories=("Cs", "Cc")), max_size=30
    )
)
def test_string_roundtrip_property(value):
    attr = AttributeValue.of("s", value)
    parsed = AttributeValue.parse("s", attr.xml_text, attr.type_tag)
    assert parsed.value == value
