"""X.509v2-style attribute certificates and VO membership tokens."""

from datetime import timedelta

import pytest

from repro.credentials.credential import ValidityPeriod
from repro.credentials.x509 import AttributeCertificate, VOMembershipToken
from repro.crypto.keys import KeyPair
from repro.errors import CredentialFormatError
from tests.conftest import ISSUE_AT


@pytest.fixture(scope="module")
def issuer_key():
    return KeyPair.generate(512)


@pytest.fixture()
def certificate(issuer_key):
    return AttributeCertificate.build(
        holder="AerospaceCo",
        holder_key="fp-aero",
        issuer="AircraftCo",
        serial=7,
        validity=ValidityPeriod.starting(ISSUE_AT, 365),
        attributes={"membership": "AircraftOptimizationVO"},
        extensions={"vo:role": "DesignWebPortal"},
    ).signed_by(issuer_key.private)


class TestAttributeCertificate:
    def test_no_partial_hiding(self, certificate):
        """The behavioural constraint of Section 6.3."""
        assert AttributeCertificate.supports_partial_hiding is False

    def test_signature_verifies(self, certificate, issuer_key):
        assert certificate.verify(issuer_key.public)

    def test_wrong_key_fails(self, certificate):
        other = KeyPair.generate(512)
        assert not certificate.verify(other.public)

    def test_unsigned_fails(self, issuer_key):
        unsigned = AttributeCertificate.build(
            holder="H", holder_key="k", issuer="I", serial=1,
            validity=ValidityPeriod.starting(ISSUE_AT, 1),
        )
        assert not unsigned.verify(issuer_key.public)

    def test_validity_check(self, certificate):
        assert certificate.is_valid_at(ISSUE_AT + timedelta(days=30))
        assert not certificate.is_valid_at(ISSUE_AT + timedelta(days=400))

    def test_attribute_and_extension_access(self, certificate):
        assert certificate.attribute("membership").value == (
            "AircraftOptimizationVO"
        )
        assert certificate.extension("vo:role") == "DesignWebPortal"
        assert certificate.has_extension("vo:role")
        with pytest.raises(KeyError):
            certificate.extension("vo:none")

    def test_xml_roundtrip(self, certificate, issuer_key):
        restored = AttributeCertificate.from_xml(certificate.to_xml())
        assert restored == certificate
        assert restored.verify(issuer_key.public)

    def test_tampered_xml_fails_verification(self, certificate, issuer_key):
        tampered_xml = certificate.to_xml().replace(
            "AerospaceCo", "EvilCorp"
        )
        tampered = AttributeCertificate.from_xml(tampered_xml)
        assert not tampered.verify(issuer_key.public)

    def test_wrong_root_rejected(self):
        with pytest.raises(CredentialFormatError):
            AttributeCertificate.from_xml("<cert/>")


class TestVOMembershipToken:
    @pytest.fixture()
    def token(self, issuer_key):
        vo_key = KeyPair.generate(512)
        return VOMembershipToken.issue(
            vo_name="AircraftOptimizationVO",
            role="DesignWebPortal",
            member="AerospaceCo",
            member_key="fp-aero",
            vo_public_key=vo_key.public,
            initiator="AircraftCo",
            initiator_key=issuer_key.private,
            serial=1,
            validity=ValidityPeriod.starting(ISSUE_AT, 365),
        )

    def test_fields(self, token):
        assert token.vo_name == "AircraftOptimizationVO"
        assert token.role == "DesignWebPortal"
        assert token.member == "AerospaceCo"

    def test_carries_vo_public_key(self, token):
        """'The membership token contains the public key of the VO'."""
        assert token.vo_public_key.fingerprint

    def test_verifies_under_initiator_key(self, token, issuer_key):
        assert token.verify(issuer_key.public)

    def test_xml_roundtrip(self, token, issuer_key):
        restored = VOMembershipToken.from_xml(token.to_xml())
        assert restored.vo_name == token.vo_name
        assert restored.verify(issuer_key.public)
        assert restored.vo_public_key == token.vo_public_key

    def test_plain_certificate_rejected(self, certificate):
        with pytest.raises(CredentialFormatError):
            VOMembershipToken(certificate)
