"""Sensitivity labels and CredCluster."""

import pytest

from repro.credentials.sensitivity import (
    Sensitivity,
    cred_cluster,
    least_sensitive_first,
)
from tests.conftest import ISSUE_AT


class TestSensitivity:
    def test_ordering(self):
        assert Sensitivity.LOW < Sensitivity.MEDIUM < Sensitivity.HIGH

    @pytest.mark.parametrize(
        "text,expected",
        [("low", Sensitivity.LOW), ("MEDIUM", Sensitivity.MEDIUM),
         (" High ", Sensitivity.HIGH)],
    )
    def test_parse(self, text, expected):
        assert Sensitivity.parse(text) is expected

    def test_parse_invalid(self):
        with pytest.raises(ValueError):
            Sensitivity.parse("ultra")

    def test_label(self):
        assert Sensitivity.MEDIUM.label == "medium"


@pytest.fixture()
def mixed_credentials(infn, shared_keypair):
    return [
        infn.issue(f"T{i}", "S", shared_keypair.fingerprint, {}, ISSUE_AT,
                   sensitivity=level)
        for i, level in enumerate(
            [Sensitivity.HIGH, Sensitivity.LOW, Sensitivity.MEDIUM,
             Sensitivity.LOW]
        )
    ]


class TestCredCluster:
    def test_cluster_selects_exact_level(self, mixed_credentials):
        low = cred_cluster(mixed_credentials, Sensitivity.LOW)
        assert len(low) == 2
        assert all(c.sensitivity is Sensitivity.LOW for c in low)

    def test_empty_cluster(self, infn, shared_keypair):
        cred = infn.issue("T", "S", shared_keypair.fingerprint, {}, ISSUE_AT,
                          sensitivity=Sensitivity.LOW)
        assert cred_cluster([cred], Sensitivity.HIGH) == []

    def test_clusters_partition_input(self, mixed_credentials):
        total = sum(
            len(cred_cluster(mixed_credentials, level))
            for level in Sensitivity
        )
        assert total == len(mixed_credentials)


class TestLeastSensitiveFirst:
    def test_order(self, mixed_credentials):
        ordered = least_sensitive_first(mixed_credentials)
        labels = [c.sensitivity for c in ordered]
        assert labels == sorted(labels)

    def test_stable_within_level(self, mixed_credentials):
        ordered = least_sensitive_first(mixed_credentials)
        lows = [c for c in ordered if c.sensitivity is Sensitivity.LOW]
        assert lows[0].cred_type == "T1"  # input order preserved
        assert lows[1].cred_type == "T3"

    def test_empty_input(self):
        assert least_sensitive_first([]) == []
