"""The X-TNL credential document and its XML round-trip (Fig. 6)."""

from datetime import datetime, timedelta

import pytest
from hypothesis import given, settings, strategies as st

from repro.credentials.credential import Credential, ValidityPeriod
from repro.credentials.sensitivity import Sensitivity
from repro.errors import CredentialFormatError
from tests.conftest import ISSUE_AT


class TestValidityPeriod:
    def test_contains_inside(self):
        period = ValidityPeriod.starting(ISSUE_AT, days=365)
        assert period.contains(ISSUE_AT + timedelta(days=100))

    def test_boundaries_inclusive(self):
        period = ValidityPeriod.starting(ISSUE_AT, days=365)
        assert period.contains(period.not_before)
        assert period.contains(period.not_after)

    def test_outside(self):
        period = ValidityPeriod.starting(ISSUE_AT, days=30)
        assert not period.contains(ISSUE_AT + timedelta(days=31))
        assert not period.contains(ISSUE_AT - timedelta(seconds=1))

    def test_empty_window_rejected(self):
        with pytest.raises(CredentialFormatError):
            ValidityPeriod(ISSUE_AT, ISSUE_AT)


def _build(**overrides):
    defaults = dict(
        cred_type="ISO 9000 Certified",
        cred_id="cred-1",
        issuer="INFN",
        subject="AerospaceCo",
        subject_key="fp123",
        validity=ValidityPeriod.starting(ISSUE_AT, 365),
        attributes={"QualityRegulation": "UNI EN ISO 9000"},
        sensitivity=Sensitivity.MEDIUM,
        serial=5,
    )
    defaults.update(overrides)
    return Credential.build(**defaults)


class TestBuild:
    def test_attributes_from_mapping(self):
        cred = _build(attributes={"a": 1, "b": "x"})
        assert cred.value("a") == 1
        assert cred.value("b") == "x"

    def test_duplicate_attribute_names_rejected(self):
        from repro.credentials.attributes import AttributeValue

        with pytest.raises(CredentialFormatError):
            Credential.build(
                cred_type="T", cred_id="i", issuer="I", subject="S",
                subject_key="k",
                validity=ValidityPeriod.starting(ISSUE_AT, 1),
                attributes=[
                    AttributeValue.of("a", 1), AttributeValue.of("a", 2)
                ],
            )

    def test_unsigned_by_default(self):
        assert not _build().is_signed

    def test_with_signature(self):
        signed = _build().with_signature("c2ln")
        assert signed.is_signed
        assert signed.signature_b64 == "c2ln"

    def test_attribute_lookup_missing_raises_keyerror(self):
        with pytest.raises(KeyError):
            _build().attribute("nope")

    def test_has_attribute(self):
        cred = _build()
        assert cred.has_attribute("QualityRegulation")
        assert not cred.has_attribute("other")


class TestXmlRoundtrip:
    def test_fig6_shape(self):
        """The XML mirrors Fig. 6: header/content/signature."""
        xml = _build().with_signature("AAAA").to_xml()
        assert xml.startswith("<credential>")
        for element in ("<header>", "<credType>", "<issuer>", "<content>",
                        "<QualityRegulation", "<signature>"):
            assert element in xml

    def test_roundtrip_preserves_everything(self):
        original = _build().with_signature("U0lHTkFUVVJF")
        restored = Credential.from_xml(original.to_xml())
        assert restored == original
        assert restored.signature_b64 == original.signature_b64
        assert restored.sensitivity == original.sensitivity
        assert restored.serial == original.serial
        assert restored.validity == original.validity

    def test_unsigned_roundtrip(self):
        original = _build()
        restored = Credential.from_xml(original.to_xml())
        assert restored.signature_b64 is None

    def test_signing_bytes_exclude_signature(self):
        unsigned = _build()
        signed = unsigned.with_signature("AAAA")
        assert unsigned.signing_bytes() == signed.signing_bytes()

    def test_signing_bytes_change_with_content(self):
        left = _build(attributes={"QualityRegulation": "UNI EN ISO 9000"})
        right = _build(attributes={"QualityRegulation": "ISO 14001"})
        assert left.signing_bytes() != right.signing_bytes()

    def test_wrong_root_rejected(self):
        with pytest.raises(CredentialFormatError):
            Credential.from_xml("<notacredential/>")

    def test_missing_header_rejected(self):
        with pytest.raises(CredentialFormatError):
            Credential.from_xml("<credential><content/></credential>")

    def test_missing_field_rejected(self):
        xml = _build().to_xml().replace("<issuer>INFN</issuer>", "")
        with pytest.raises(CredentialFormatError):
            Credential.from_xml(xml)

    def test_bad_timestamp_rejected(self):
        xml = _build().to_xml().replace("2009-10-26T21:32:52", "not-a-date")
        with pytest.raises(CredentialFormatError):
            Credential.from_xml(xml)

    def test_bad_sensitivity_rejected(self):
        xml = _build().to_xml().replace(
            "<sensitivity>medium</sensitivity>",
            "<sensitivity>ultra</sensitivity>",
        )
        with pytest.raises(CredentialFormatError):
            Credential.from_xml(xml)


@settings(max_examples=30, deadline=None)
@given(
    cred_type=st.sampled_from(
        ["ISO 9000 Certified", "AAA Member", "BalanceSheet", "T"]
    ),
    serial=st.integers(min_value=0, max_value=10**6),
    sensitivity=st.sampled_from(list(Sensitivity)),
    attr_value=st.one_of(
        st.integers(min_value=-10**6, max_value=10**6),
        # Surrounding whitespace is normalized by the canonical XML
        # form (documented behaviour), so generate stripped strings.
        st.text(alphabet=st.sampled_from("abc XYZ09-"), max_size=20).map(
            str.strip
        ),
        st.booleans(),
    ),
)
def test_roundtrip_property(cred_type, serial, sensitivity, attr_value):
    original = Credential.build(
        cred_type=cred_type,
        cred_id=f"id-{serial}",
        issuer="INFN",
        subject="S",
        subject_key="fp",
        validity=ValidityPeriod.starting(ISSUE_AT, 10),
        attributes={"field": attr_value},
        sensitivity=sensitivity,
        serial=serial,
    ).with_signature("QUJD")
    assert Credential.from_xml(original.to_xml()) == original
