"""Credential chains and delegated retrieval."""

import pytest

from repro.credentials.authority import CredentialAuthority
from repro.credentials.chain import (
    CERTIFIED_KEY_ATTRIBUTE,
    ChainResolver,
    CredentialChain,
)
from repro.credentials.revocation import RevocationRegistry
from repro.trust import TrustBus
from repro.credentials.validation import CredentialValidator
from repro.crypto.keys import Keyring
from repro.errors import CredentialError
from tests.conftest import ISSUE_AT, NEGOTIATION_AT


@pytest.fixture()
def chain_setup(shared_keypair):
    """root CA certifies regional CA; regional CA issues the leaf."""
    root = CredentialAuthority.create("RootCA", key_bits=512)
    regional = CredentialAuthority.create("RegionalCA", key_bits=512)
    link = root.issue(
        "CA Accreditation",
        "RegionalCA",
        regional.keypair.fingerprint,
        {CERTIFIED_KEY_ATTRIBUTE: regional.public_key.to_json()},
        ISSUE_AT,
    )
    leaf = regional.issue(
        "Quality Cert", "Holder", shared_keypair.fingerprint, {"q": 1}, ISSUE_AT
    )
    ring = Keyring()
    ring.add("RootCA", root.public_key)
    return root, regional, link, leaf, ring


class TestResolver:
    def test_directly_trusted_leaf_is_length_one(self, chain_setup, shared_keypair):
        root, _, _, _, ring = chain_setup
        direct_leaf = root.issue(
            "Direct", "Holder", shared_keypair.fingerprint, {}, ISSUE_AT
        )
        resolver = ChainResolver(ring, lambda issuer: None)
        chain = resolver.resolve(direct_leaf)
        assert len(chain) == 1

    def test_one_hop_chain(self, chain_setup):
        _, _, link, leaf, ring = chain_setup
        resolver = ChainResolver(ring, {"RegionalCA": link}.get)
        chain = resolver.resolve(leaf)
        assert len(chain) == 2
        assert chain.links[0] is link

    def test_unresolvable_issuer_raises(self, chain_setup):
        _, _, _, leaf, ring = chain_setup
        resolver = ChainResolver(ring, lambda issuer: None)
        with pytest.raises(CredentialError):
            resolver.resolve(leaf)

    def test_circular_chain_detected(self, chain_setup, shared_keypair):
        root, regional, _, leaf, ring = chain_setup
        # RegionalCA "certified" by itself through a loop.
        loop_link = regional.issue(
            "Loop", "RegionalCA", regional.keypair.fingerprint,
            {CERTIFIED_KEY_ATTRIBUTE: regional.public_key.to_json()},
            ISSUE_AT,
        )
        empty_ring = Keyring()
        resolver = ChainResolver(empty_ring, {"RegionalCA": loop_link}.get)
        with pytest.raises(CredentialError):
            resolver.resolve(leaf)

    def test_depth_limit(self, chain_setup):
        _, _, link, leaf, ring = chain_setup
        resolver = ChainResolver(Keyring(), {"RegionalCA": link, "RootCA": link}.get,
                                 max_depth=1)
        with pytest.raises(CredentialError):
            resolver.resolve(leaf)


class TestChainStructure:
    def test_broken_subject_chain_rejected(self, chain_setup, shared_keypair):
        root, _, _, leaf, _ = chain_setup
        unrelated = root.issue(
            "CA Accreditation", "SomeoneElse", "fp",
            {CERTIFIED_KEY_ATTRIBUTE: "fp"}, ISSUE_AT,
        )
        chain = CredentialChain(leaf, (unrelated,))
        with pytest.raises(CredentialError):
            chain.validate_structure()

    def test_link_without_key_attribute_rejected(self, chain_setup, shared_keypair):
        root, regional, _, leaf, _ = chain_setup
        bare_link = root.issue(
            "CA Accreditation", "RegionalCA",
            regional.keypair.fingerprint, {}, ISSUE_AT,
        )
        chain = CredentialChain(leaf, (bare_link,))
        with pytest.raises(CredentialError):
            chain.validate_structure()


class TestValidatorIntegration:
    def test_validator_accepts_chained_credential(self, chain_setup):
        _, _, link, leaf, ring = chain_setup
        registry = RevocationRegistry()
        validator = CredentialValidator(
            ring, registry,
            chain_resolver=ChainResolver(ring, {"RegionalCA": link}.get),
        )
        report = validator.validate(leaf, NEGOTIATION_AT)
        assert report.signature_ok
        assert report.chain_length == 2
        assert report.ok

    def test_validator_rejects_revoked_link(self, chain_setup):
        root, _, link, leaf, ring = chain_setup
        root.revoke(link)
        registry = RevocationRegistry()
        TrustBus(registry=registry).publish_crl(root.crl)
        validator = CredentialValidator(
            ring, registry,
            chain_resolver=ChainResolver(ring, {"RegionalCA": link}.get),
        )
        assert not validator.validate(leaf, NEGOTIATION_AT).signature_ok

    def test_validator_without_resolver_rejects(self, chain_setup):
        _, _, _, leaf, ring = chain_setup
        validator = CredentialValidator(ring, RevocationRegistry())
        assert not validator.validate(leaf, NEGOTIATION_AT).signature_ok
