"""The X-Profile."""

import pytest

from repro.credentials.profile import XProfile
from repro.credentials.sensitivity import Sensitivity
from repro.errors import CredentialFormatError
from tests.conftest import ISSUE_AT


@pytest.fixture()
def profile(infn, shared_keypair):
    creds = [
        infn.issue("A", "Owner", shared_keypair.fingerprint,
                   {"x": 1}, ISSUE_AT, sensitivity=Sensitivity.HIGH),
        infn.issue("A", "Owner", shared_keypair.fingerprint,
                   {"x": 2}, ISSUE_AT, sensitivity=Sensitivity.LOW),
        infn.issue("B", "Owner", shared_keypair.fingerprint,
                   {"y": 3}, ISSUE_AT, sensitivity=Sensitivity.MEDIUM),
    ]
    return XProfile.of("Owner", creds)


class TestMutation:
    def test_len(self, profile):
        assert len(profile) == 3

    def test_wrong_subject_rejected(self, profile, infn, shared_keypair):
        stranger = infn.issue("C", "SomeoneElse", shared_keypair.fingerprint,
                              {}, ISSUE_AT)
        with pytest.raises(CredentialFormatError):
            profile.add(stranger)

    def test_duplicate_id_rejected(self, profile):
        existing = next(iter(profile))
        with pytest.raises(CredentialFormatError):
            profile.add(existing)

    def test_remove(self, profile):
        target = next(iter(profile))
        removed = profile.remove(target.cred_id)
        assert removed is target
        assert len(profile) == 2

    def test_remove_unknown_raises(self, profile):
        with pytest.raises(CredentialFormatError):
            profile.remove("ghost")


class TestLookups:
    def test_by_type_orders_least_sensitive_first(self, profile):
        ordered = profile.by_type("A")
        assert [c.sensitivity for c in ordered] == [
            Sensitivity.LOW, Sensitivity.HIGH
        ]

    def test_by_type_missing_is_empty(self, profile):
        assert profile.by_type("Z") == []

    def test_has_type(self, profile):
        assert profile.has_type("B")
        assert not profile.has_type("Z")

    def test_types(self, profile):
        assert profile.types() == {"A", "B"}

    def test_with_attribute(self, profile):
        assert len(profile.with_attribute("x")) == 2
        assert len(profile.with_attribute("y")) == 1
        assert profile.with_attribute("z") == []

    def test_at_sensitivity(self, profile):
        assert len(profile.at_sensitivity(Sensitivity.LOW)) == 1

    def test_get_by_id(self, profile):
        cred = next(iter(profile))
        assert profile.get(cred.cred_id) is cred
        assert cred.cred_id in profile

    def test_get_unknown_raises(self, profile):
        with pytest.raises(CredentialFormatError):
            profile.get("nope")


class TestXmlRoundtrip:
    def test_roundtrip(self, profile):
        restored = XProfile.from_xml(profile.to_xml())
        assert restored.owner == profile.owner
        assert len(restored) == len(profile)
        assert restored.types() == profile.types()

    def test_roundtrip_preserves_signatures(self, profile):
        restored = XProfile.from_xml(profile.to_xml())
        for cred in profile:
            assert restored.get(cred.cred_id).signature_b64 == cred.signature_b64

    def test_wrong_root_rejected(self):
        with pytest.raises(CredentialFormatError):
            XProfile.from_xml("<profile/>")

    def test_missing_owner_rejected(self):
        with pytest.raises(CredentialFormatError):
            XProfile.from_xml("<xprofile/>")
