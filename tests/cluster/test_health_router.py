"""Health-aware routing: ejection, half-open probing, re-admission.

Failover handles shards that are *dead*; the health tracker handles
shards that are merely **degraded** — answering, but slowly.  These
tests drive the sync router with a :class:`FaultInjector` SLOW fault
pinned to one shard and watch the tracker eject it, route new
sessions around it, keep pinned sessions put, probe it, and re-admit
it once it recovers.
"""

import pytest

from repro import obs
from repro.cluster import HealthPolicy, HealthTracker, ShardedTNService
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan
from repro.services.transport import SimTransport
from tests.conftest import ISSUE_AT, NEGOTIATION_AT


@pytest.fixture()
def parties(agent_factory, infn, aaa_authority, shared_keypair, other_keypair):
    requester = agent_factory(
        "AerospaceCo",
        [infn.issue("ISO 9000 Certified", "AerospaceCo",
                    shared_keypair.fingerprint,
                    {"QualityRegulation": "UNI EN ISO 9000"}, ISSUE_AT)],
        "ISO 9000 Certified <- AAA Member",
        shared_keypair,
    )
    controller = agent_factory(
        "AircraftCo",
        [aaa_authority.issue("AAA Member", "AircraftCo",
                             other_keypair.fingerprint,
                             {"association": "AAA"}, ISSUE_AT)],
        "VoMembership <- WebDesignerQuality\nAAA Member <- DELIV",
        other_keypair,
    )
    return requester, controller


class TestHealthTracker:
    """Sans-IO tracker semantics, independent of any router."""

    def make(self, **kwargs):
        kwargs.setdefault("ejection_threshold", 3)
        kwargs.setdefault("probe_interval_ms", 1000.0)
        return HealthTracker(HealthPolicy(**kwargs))

    def test_consecutive_failures_eject(self):
        tracker = self.make()
        assert not tracker.record_failure("urn:s0", 10.0)
        assert not tracker.record_failure("urn:s0", 20.0)
        assert tracker.record_failure("urn:s0", 30.0)  # third strike
        assert not tracker.is_healthy("urn:s0")
        assert tracker.ejected_urls() == ["urn:s0"]
        assert tracker.total_ejections() == 1

    def test_success_resets_strikes(self):
        tracker = self.make()
        tracker.record_failure("urn:s0", 10.0)
        tracker.record_failure("urn:s0", 20.0)
        tracker.record_success("urn:s0")
        assert not tracker.record_failure("urn:s0", 30.0)
        assert tracker.is_healthy("urn:s0")

    def test_slow_latency_counts_as_strike(self):
        tracker = self.make(slow_after_ms=100.0, ejection_threshold=2)
        assert not tracker.record_latency("urn:s0", 150.0, 10.0)
        assert tracker.record_latency("urn:s0", 5000.0, 20.0)
        assert not tracker.is_healthy("urn:s0")

    def test_fast_latency_is_a_success(self):
        tracker = self.make(slow_after_ms=100.0, ejection_threshold=2)
        tracker.record_latency("urn:s0", 150.0, 10.0)
        tracker.record_latency("urn:s0", 50.0, 20.0)  # resets strikes
        assert not tracker.record_latency("urn:s0", 150.0, 30.0)
        assert tracker.is_healthy("urn:s0")

    def test_latency_ignored_when_slow_detection_disabled(self):
        tracker = self.make(ejection_threshold=1)
        assert not tracker.record_latency("urn:s0", 1e9, 10.0)
        assert tracker.is_healthy("urn:s0")

    def test_routed_success_does_not_readmit(self):
        tracker = self.make(ejection_threshold=1)
        tracker.record_failure("urn:s0", 10.0)
        assert not tracker.is_healthy("urn:s0")
        tracker.record_success("urn:s0")
        assert not tracker.is_healthy("urn:s0")  # only a probe readmits

    def test_probe_rate_limited_per_interval(self):
        tracker = self.make(ejection_threshold=1, probe_interval_ms=1000.0)
        tracker.record_failure("urn:s0", 0.0)
        assert not tracker.probe_due("urn:s0", 500.0)
        assert tracker.probe_due("urn:s0", 1000.0)
        tracker.note_probe("urn:s0", 1000.0)
        assert not tracker.probe_due("urn:s0", 1500.0)
        assert tracker.probe_due("urn:s0", 2000.0)

    def test_probe_never_due_for_healthy_shard(self):
        tracker = self.make()
        assert not tracker.probe_due("urn:s0", 1e9)

    def test_readmit_counts_and_restores(self):
        tracker = self.make(ejection_threshold=1)
        tracker.record_failure("urn:s0", 0.0)
        tracker.readmit("urn:s0")
        assert tracker.is_healthy("urn:s0")
        assert tracker.total_readmissions() == 1
        assert tracker.healthy_count(["urn:s0", "urn:s1"]) == 2

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            HealthPolicy(ejection_threshold=0)
        with pytest.raises(ValueError):
            HealthPolicy(probe_interval_ms=-1.0)
        with pytest.raises(ValueError):
            HealthPolicy(slow_after_ms=0.0)


def make_cluster(parties, plan, **health_kwargs):
    """Three shards behind a FaultInjector, with health routing on."""
    requester, controller = parties
    transport = SimTransport()
    injector = FaultInjector(transport, plan)
    health_kwargs.setdefault("ejection_threshold", 2)
    health_kwargs.setdefault("probe_interval_ms", 1000.0)
    health_kwargs.setdefault("slow_after_ms", 500.0)
    cluster = ShardedTNService(
        controller, injector, url="urn:tn", shards=3,
        agents={requester.name: requester},
        health=HealthPolicy(**health_kwargs),
    )
    return injector, cluster, requester


def start(transport, requester, request_id):
    return transport.call("urn:tn", "StartNegotiation", {
        "requester": requester, "strategy": "standard",
        "requestId": request_id,
    })


def slow_shard_url(cluster):
    """Pick a victim: the shard serving the first few start keys."""
    return cluster.ring.route("victim-key")


def keys_routing_to(cluster, url, count, tag="k"):
    found = []
    index = 0
    while len(found) < count:
        key = f"{tag}-{index}"
        if cluster.ring.route(key) == url:
            found.append(key)
        index += 1
    return found


class TestSlowShardEjection:
    def test_slow_shard_ejected_and_new_sessions_route_around(
        self, parties
    ):
        plan = FaultPlan(slow_ms=2000.0)
        injector, cluster, requester = make_cluster(parties, plan)
        victim = slow_shard_url(cluster)
        plan.always(FaultKind.SLOW, url=victim)
        hit, routed_around = keys_routing_to(cluster, victim, 3)[:3], []
        # two slow (but successful) starts strike the victim out
        for key in hit[:2]:
            response = start(injector, requester, key)
            assert response["negotiationId"]
        assert cluster.health is not None
        assert not cluster.health.is_healthy(victim)
        assert cluster.health.total_ejections() == 1
        # the next start whose hash lands on the victim is served by a
        # healthy shard instead
        response = start(injector, requester, hit[2])
        owner = cluster.placement(response["negotiationId"])
        assert owner != victim
        cluster.close()

    def test_pinned_sessions_stay_on_ejected_shard(self, parties):
        plan = FaultPlan(slow_ms=2000.0)
        injector, cluster, requester = make_cluster(parties, plan)
        victim = slow_shard_url(cluster)
        keys = keys_routing_to(cluster, victim, 3)
        first = start(injector, requester, keys[0])
        nid = first["negotiationId"]
        assert cluster.placement(nid) == victim  # pinned pre-ejection
        plan.always(FaultKind.SLOW, url=victim)
        for key in keys[1:]:
            start(injector, requester, key)
        assert not cluster.health.is_healthy(victim)
        # phase traffic for the pinned session still reaches the
        # (slow, but live) owner — moving it is failover's job, not
        # the health tracker's
        injector.call("urn:tn", "PolicyExchange", {
            "negotiationId": nid, "resource": "VoMembership",
            "at": NEGOTIATION_AT, "clientSeq": 1,
        })
        assert cluster.placement(nid) == victim
        cluster.close()

    def test_probe_readmits_recovered_shard(self, parties):
        plan = FaultPlan(slow_ms=2000.0)
        injector, cluster, requester = make_cluster(parties, plan)
        victim = slow_shard_url(cluster)
        plan.always(FaultKind.SLOW, url=victim)
        for key in keys_routing_to(cluster, victim, 2):
            start(injector, requester, key)
        assert not cluster.health.is_healthy(victim)
        plan.clear()  # the shard recovers
        injector.clock.advance(1001.0)  # past the probe interval
        # any routed call triggers the due probe
        start(injector, requester, "post-recovery")
        assert cluster.health.is_healthy(victim)
        assert cluster.health_probes >= 1
        assert cluster.health.total_readmissions() == 1
        # new sessions land on it again
        key = keys_routing_to(cluster, victim, 1, tag="back")[0]
        response = start(injector, requester, key)
        assert cluster.placement(response["negotiationId"]) == victim
        cluster.close()

    def test_failed_probe_keeps_shard_ejected(self, parties):
        plan = FaultPlan(slow_ms=2000.0)
        injector, cluster, requester = make_cluster(parties, plan)
        victim = slow_shard_url(cluster)
        plan.always(FaultKind.SLOW, url=victim)
        for key in keys_routing_to(cluster, victim, 2):
            start(injector, requester, key)
        assert not cluster.health.is_healthy(victim)
        # the shard deteriorates from slow to unreachable: probes now
        # time out (transport-level), which keeps it ejected
        plan.clear()
        plan.always(FaultKind.DROP, url=victim)
        injector.clock.advance(1001.0)
        start(injector, requester, "probe-trigger")  # probe fires, drops
        assert cluster.health_probes >= 1
        assert not cluster.health.is_healthy(victim)
        assert cluster.health.total_readmissions() == 0
        # probes are rate-limited: an immediate second call does not
        # probe again
        probes = cluster.health_probes
        start(injector, requester, "probe-trigger-2")
        assert cluster.health_probes == probes
        cluster.close()

    def test_all_shards_ejected_falls_through_to_routed(self, parties):
        plan = FaultPlan(slow_ms=2000.0)
        injector, cluster, requester = make_cluster(
            parties, plan, probe_interval_ms=1e9
        )
        plan.always(FaultKind.SLOW)  # every shard degraded
        for index in range(8):
            start(injector, requester, f"slow-{index}")
            if not any(
                cluster.health.is_healthy(node.url)
                for node in cluster.nodes()
            ):
                break
        assert cluster.health.total_ejections() == 3
        # degraded service beats refusing everyone: starts still land
        response = start(injector, requester, "after-total-ejection")
        assert response["negotiationId"]
        cluster.close()

    def test_healthy_shards_gauge_published(self, parties):
        obs.enable()
        try:
            plan = FaultPlan(slow_ms=2000.0)
            injector, cluster, requester = make_cluster(parties, plan)
            victim = slow_shard_url(cluster)
            plan.always(FaultKind.SLOW, url=victim)
            for key in keys_routing_to(cluster, victim, 2):
                start(injector, requester, key)
            metrics = obs.metrics()
            assert metrics["cluster.healthy_shards"]["value"] == 2
            cluster.close()
        finally:
            obs.disable()

    def test_health_disabled_keeps_legacy_routing(self, parties):
        requester, controller = parties
        transport = SimTransport()
        plan = FaultPlan(slow_ms=2000.0)
        injector = FaultInjector(transport, plan)
        cluster = ShardedTNService(
            controller, injector, url="urn:tn", shards=3,
            agents={requester.name: requester},
        )
        victim = cluster.ring.route("victim-key")
        plan.always(FaultKind.SLOW, url=victim)
        keys = keys_routing_to(cluster, victim, 3)
        for key in keys:
            response = start(injector, requester, key)
            assert cluster.placement(response["negotiationId"]) == victim
        assert cluster.health is None
        assert cluster.health_probes == 0
        cluster.close()
