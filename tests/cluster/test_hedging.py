"""Hedged StartNegotiation: tail-latency race with exactly-one commit.

When a shard degrades, every start routed to it pays its latency.
:class:`AioShardedTNService` races a second identical start against
the ring successor after the hedge delay; these tests pin down the
safety half of that bargain — the loser's session is cancelled, a
client retry is answered from the router's start-replay map instead
of minting a duplicate, and tampered reuse of the idempotency token
is rejected.
"""

import asyncio

import pytest

from repro.cluster import AioShardedTNService, HedgePolicy
from repro.errors import ErrorCode, ServiceError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan
from repro.services.aio import AioSimTransport, AioTNClient
from tests.conftest import ISSUE_AT, NEGOTIATION_AT


@pytest.fixture()
def parties(agent_factory, infn, aaa_authority, shared_keypair, other_keypair):
    requester = agent_factory(
        "AerospaceCo",
        [infn.issue("ISO 9000 Certified", "AerospaceCo",
                    shared_keypair.fingerprint,
                    {"QualityRegulation": "UNI EN ISO 9000"}, ISSUE_AT)],
        "ISO 9000 Certified <- AAA Member",
        shared_keypair,
    )
    controller = agent_factory(
        "AircraftCo",
        [aaa_authority.issue("AAA Member", "AircraftCo",
                             other_keypair.fingerprint,
                             {"association": "AAA"}, ISSUE_AT)],
        "VoMembership <- WebDesignerQuality\nAAA Member <- DELIV",
        other_keypair,
    )
    return requester, controller


def make_cluster(parties, plan=None, shards=3, **kwargs):
    requester, controller = parties
    transport = AioSimTransport()
    faultable = (
        FaultInjector(transport, plan) if plan is not None else transport
    )
    kwargs.setdefault("hedge", HedgePolicy(delay_ms=500.0))
    cluster = AioShardedTNService(
        controller, faultable, url="urn:tn", shards=shards,
        agents={requester.name: requester}, **kwargs
    )
    return faultable, cluster, requester


def start_payload(requester, request_id):
    return {
        "requester": requester, "strategy": "standard",
        "requestId": request_id,
    }


def do_start(transport, requester, request_id):
    return asyncio.run(transport.acall(
        "urn:tn", "StartNegotiation", start_payload(requester, request_id)
    ))


class TestHedgePolicy:
    def test_fixed_delay(self):
        assert HedgePolicy(delay_ms=250.0).current_delay([]) == 250.0

    def test_initial_delay_until_enough_samples(self):
        policy = HedgePolicy(min_samples=3, initial_delay_ms=400.0)
        assert policy.current_delay([10.0, 20.0]) == 400.0

    def test_adaptive_percentile(self):
        policy = HedgePolicy(min_samples=3, percentile=0.5)
        samples = [100.0, 300.0, 200.0, 400.0]
        assert policy.current_delay(samples) == 300.0  # rank 2 of sorted

    def test_validation(self):
        with pytest.raises(ValueError):
            HedgePolicy(delay_ms=-1.0)
        with pytest.raises(ValueError):
            HedgePolicy(percentile=1.5)
        with pytest.raises(ValueError):
            HedgePolicy(min_samples=0)
        with pytest.raises(ValueError):
            HedgePolicy(initial_delay_ms=-1.0)


class TestHedgedStart:
    def test_fast_primary_never_hedges(self, parties):
        transport, cluster, requester = make_cluster(parties)
        response = do_start(transport, requester, "fast-1")
        assert response["negotiationId"]
        assert cluster.hedge_stats.considered == 1
        assert cluster.hedge_stats.fired == 0
        cluster.close()

    def test_start_without_token_is_not_hedged(self, parties):
        transport, cluster, requester = make_cluster(parties)
        response = asyncio.run(transport.acall(
            "urn:tn", "StartNegotiation",
            {"requester": requester, "strategy": "standard"},
        ))
        assert response["negotiationId"]
        assert cluster.hedge_stats.considered == 0
        cluster.close()

    def test_single_shard_cluster_never_hedges(self, parties):
        transport, cluster, requester = make_cluster(parties, shards=1)
        response = do_start(transport, requester, "solo-1")
        assert response["negotiationId"]
        assert cluster.hedge_stats.considered == 0
        cluster.close()

    def test_slow_primary_loses_race_to_backup(self, parties):
        plan = FaultPlan(slow_ms=2000.0)
        transport, cluster, requester = make_cluster(parties, plan)
        request_id = "hedge-1"
        primary = cluster.ring.route(request_id)
        plan.always(FaultKind.SLOW, url=primary)
        before = transport.clock.elapsed_ms
        response = do_start(transport, requester, request_id)
        latency = transport.clock.elapsed_ms - before
        assert cluster.hedge_stats.fired == 1
        assert cluster.hedge_stats.won == 1
        # pinned to the winner, not the slow routed shard
        assert cluster.placement(response["negotiationId"]) != primary
        # the caller paid the hedged latency (delay + backup), not the
        # slow primary's 2000+ ms
        assert latency < 2000.0
        cluster.close()

    def test_loser_session_cancelled_exactly_one_commit(self, parties):
        plan = FaultPlan(slow_ms=2000.0)
        transport, cluster, requester = make_cluster(parties, plan)
        request_id = "hedge-commit"
        primary = cluster.ring.route(request_id)
        plan.always(FaultKind.SLOW, url=primary)
        response = do_start(transport, requester, request_id)
        winner_id = response["negotiationId"]
        # both legs answered and committed a session; the loser's was
        # released, so exactly one survives cluster-wide
        assert cluster.hedge_stats.cancelled == 1
        assert list(cluster.sessions()) == [winner_id]
        assert cluster.placement_index(winner_id) is not None
        # no orphaned placement for the cancelled twin
        live_placements = [
            sid for sid in cluster._placements if sid != winner_id
        ]
        assert live_placements == []
        cluster.close()

    def test_retry_answered_from_start_replay_map(self, parties):
        plan = FaultPlan(slow_ms=2000.0)
        transport, cluster, requester = make_cluster(parties, plan)
        request_id = "hedge-retry"
        primary = cluster.ring.route(request_id)
        plan.always(FaultKind.SLOW, url=primary)
        first = do_start(transport, requester, request_id)
        # a faithful client retry of the same token: route-by-hash
        # would hit the loser (which released its dedup entry with the
        # session), so the router itself answers from the recorded win
        second = do_start(transport, requester, request_id)
        assert second == first
        assert cluster.hedge_stats.replays == 1
        assert cluster.start_replays == 1
        # still exactly one session
        assert list(cluster.sessions()) == [first["negotiationId"]]
        cluster.close()

    def test_tampered_token_reuse_rejected(self, parties):
        transport, cluster, requester = make_cluster(parties)
        request_id = "hedge-tamper"
        do_start(transport, requester, request_id)
        tampered = start_payload(requester, request_id)
        tampered["strategy"] = "suspicious"
        with pytest.raises(ServiceError) as excinfo:
            asyncio.run(transport.acall(
                "urn:tn", "StartNegotiation", tampered
            ))
        assert excinfo.value.error_code is ErrorCode.REPLAY_MISMATCH
        cluster.close()

    def test_mutated_payload_field_rejected(self, parties):
        transport, cluster, requester = make_cluster(parties)
        request_id = "hedge-mutate"
        do_start(transport, requester, request_id)
        mutated = start_payload(requester, request_id)
        mutated["counterpartUrl"] = "urn:evil"
        with pytest.raises(ServiceError) as excinfo:
            asyncio.run(transport.acall(
                "urn:tn", "StartNegotiation", mutated
            ))
        assert excinfo.value.error_code is ErrorCode.REPLAY_MISMATCH
        cluster.close()

    def test_full_negotiation_succeeds_under_slow_shard(self, parties):
        plan = FaultPlan(slow_ms=2000.0)
        transport, cluster, requester = make_cluster(parties, plan)
        client = AioTNClient(transport, "urn:tn", requester)
        victim = cluster.ring.route(f"req-{requester.name}-1")
        plan.always(FaultKind.SLOW, url=victim)
        result = asyncio.run(
            client.negotiate("VoMembership", at=NEGOTIATION_AT)
        )
        assert result.success
        # exactly one session end-to-end even if the start was hedged
        assert len(cluster._placements) == 1
        cluster.close()
