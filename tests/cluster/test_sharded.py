"""Sharded TN service: routing, failover, restart, and migration."""

import pytest

from repro.cluster import ShardedTNService
from repro.errors import ServiceError, SessionError
from repro.services.tn_client import TNClient
from repro.services.tn_service import TNWebService
from repro.services.transport import SimTransport
from repro.storage.document_store import XMLDocumentStore
from tests.conftest import ISSUE_AT, NEGOTIATION_AT


@pytest.fixture()
def parties(agent_factory, infn, aaa_authority, shared_keypair, other_keypair):
    requester = agent_factory(
        "AerospaceCo",
        [infn.issue("ISO 9000 Certified", "AerospaceCo",
                    shared_keypair.fingerprint,
                    {"QualityRegulation": "UNI EN ISO 9000"}, ISSUE_AT)],
        "ISO 9000 Certified <- AAA Member",
        shared_keypair,
    )
    controller = agent_factory(
        "AircraftCo",
        [aaa_authority.issue("AAA Member", "AircraftCo",
                             other_keypair.fingerprint,
                             {"association": "AAA"}, ISSUE_AT)],
        "VoMembership <- WebDesignerQuality\nAAA Member <- DELIV",
        other_keypair,
    )
    return requester, controller


@pytest.fixture()
def cluster_fixture(parties):
    requester, controller = parties
    transport = SimTransport()
    cluster = ShardedTNService(
        controller, transport, url="urn:tn",
        shards=3, agents={requester.name: requester},
    )
    yield transport, cluster, requester, controller
    if not cluster.closed:
        cluster.close()


def start_and_policy(transport, requester, request_id="req-1"):
    start = transport.call("urn:tn", "StartNegotiation", {
        "requester": requester, "strategy": "standard",
        "requestId": request_id,
    })
    nid = start["negotiationId"]
    transport.call("urn:tn", "PolicyExchange", {
        "negotiationId": nid, "resource": "VoMembership",
        "at": NEGOTIATION_AT, "clientSeq": 1,
    })
    return nid


class TestRouting:
    def test_negotiation_through_cluster_matches_single_service(
        self, cluster_fixture, parties
    ):
        transport, cluster, requester, controller = cluster_fixture
        reference_transport = SimTransport()
        TNWebService(controller, reference_transport,
                     XMLDocumentStore("ref"), "urn:tn")
        reference = TNClient(reference_transport, "urn:tn", requester) \
            .negotiate("VoMembership", at=NEGOTIATION_AT)

        result = TNClient(transport, cluster.url, requester) \
            .negotiate("VoMembership", at=NEGOTIATION_AT)
        assert result.success == reference.success is True
        assert result.disclosed_by_requester == \
            reference.disclosed_by_requester
        assert [str(n.term) for n in result.sequence] == \
            [str(n.term) for n in reference.sequence]

    def test_session_ids_are_namespaced_per_shard(self, cluster_fixture):
        transport, cluster, requester, _ = cluster_fixture
        nid = start_and_policy(transport, requester)
        owner = cluster.placement_index(nid)
        assert owner is not None
        assert nid.startswith(f"tn-s{owner}-")
        assert cluster.placement(nid) == f"urn:tn:s{owner}"

    def test_request_id_dedup_survives_routing(self, cluster_fixture):
        transport, cluster, requester, _ = cluster_fixture
        payload = {
            "requester": requester, "strategy": "standard",
            "requestId": "req-dup",
        }
        first = transport.call("urn:tn", "StartNegotiation", payload)
        second = transport.call("urn:tn", "StartNegotiation", payload)
        assert first["negotiationId"] == second["negotiationId"]

    def test_unknown_session_rejected_typed(self, cluster_fixture):
        transport, cluster, requester, _ = cluster_fixture
        with pytest.raises(SessionError):
            transport.call("urn:tn", "CredentialExchange", {
                "negotiationId": "tn-s9-999", "clientSeq": 1,
            })

    def test_spread_across_shards(self, cluster_fixture):
        transport, cluster, requester, _ = cluster_fixture
        owners = set()
        for index in range(12):
            nid = start_and_policy(
                transport, requester, request_id=f"req-{index}"
            )
            owners.add(cluster.placement_index(nid))
        assert len(owners) > 1  # consistent hashing spreads the keys


class TestFailover:
    def test_mid_negotiation_kill_fails_over(self, cluster_fixture):
        transport, cluster, requester, _ = cluster_fixture
        nid = start_and_policy(transport, requester)
        victim = cluster.placement_index(nid)
        cluster.kill_node(victim)

        exchange = transport.call("urn:tn", "CredentialExchange", {
            "negotiationId": nid, "clientSeq": 2,
        })
        assert exchange["result"].success
        assert cluster.failovers == 1
        survivor = cluster.placement_index(nid)
        assert survivor != victim
        assert cluster.sessions()[nid].terminal

    def test_torn_wal_falls_back_and_replays(self, cluster_fixture):
        transport, cluster, requester, _ = cluster_fixture
        nid = start_and_policy(transport, requester)
        victim = cluster.placement_index(nid)
        assert cluster.tear_wal(victim)  # policy checkpoint torn
        cluster.kill_node(victim)

        with pytest.raises(ServiceError):  # PHASE_SKIP on the successor
            transport.call("urn:tn", "CredentialExchange", {
                "negotiationId": nid, "clientSeq": 2,
            })
        transport.call("urn:tn", "PolicyExchange", {
            "negotiationId": nid, "resource": "VoMembership",
            "at": NEGOTIATION_AT, "clientSeq": 3,
        })
        exchange = transport.call("urn:tn", "CredentialExchange", {
            "negotiationId": nid, "clientSeq": 4,
        })
        assert exchange["result"].success
        assert cluster.torn_records_discarded() == 1

    def test_timed_restart_recovers_owned_sessions(self, cluster_fixture):
        transport, cluster, requester, _ = cluster_fixture
        nid = start_and_policy(transport, requester)
        victim = cluster.placement_index(nid)
        cluster.kill_node(victim, restart_after_ms=500.0)
        assert len(cluster.live_nodes()) == 2

        transport.clock.advance(501.0)
        # any routed call revives due nodes first
        start_and_policy(transport, requester, request_id="req-after")
        assert len(cluster.live_nodes()) == 3
        node = cluster.nodes()[victim]
        assert node.restarts == 1
        # the un-touched session recovered on its original shard
        assert cluster.placement_index(nid) == victim
        assert nid in node.service.sessions()

    def test_restart_releases_sessions_that_failed_over(
        self, cluster_fixture
    ):
        transport, cluster, requester, _ = cluster_fixture
        nid = start_and_policy(transport, requester)
        victim = cluster.placement_index(nid)
        cluster.kill_node(victim)
        transport.call("urn:tn", "CredentialExchange", {
            "negotiationId": nid, "clientSeq": 2,
        })  # forces failover: the session now lives on the successor
        adopter = cluster.placement_index(nid)
        assert adopter != victim

        cluster.restart_node(victim)
        assert nid not in cluster.nodes()[victim].service.sessions()
        assert nid in cluster.nodes()[adopter].service.sessions()
        assert cluster.placement_index(nid) == adopter

    def test_last_shard_cannot_fail_over(self, parties):
        requester, controller = parties
        transport = SimTransport()
        with ShardedTNService(
            controller, transport, url="urn:tn", shards=1,
            agents={requester.name: requester},
        ) as cluster:
            nid = start_and_policy(transport, requester)
            cluster.kill_node(0)
            from repro.errors import TransportError
            with pytest.raises(TransportError):
                transport.call("urn:tn", "CredentialExchange", {
                    "negotiationId": nid, "clientSeq": 2,
                })


class TestMigration:
    def test_explicit_mid_negotiation_migration(self, cluster_fixture):
        transport, cluster, requester, _ = cluster_fixture
        nid = start_and_policy(transport, requester)
        source = cluster.placement_index(nid)
        target = (source + 1) % 3
        cluster.migrate_session(nid, target)
        assert cluster.placement_index(nid) == target
        assert nid not in cluster.nodes()[source].service.sessions()

        exchange = transport.call("urn:tn", "CredentialExchange", {
            "negotiationId": nid, "clientSeq": 2,
        })
        assert exchange["result"].success
        assert cluster.migrations == 1

    def test_migrate_to_current_owner_is_a_no_op(self, cluster_fixture):
        transport, cluster, requester, _ = cluster_fixture
        nid = start_and_policy(transport, requester)
        source = cluster.placement_index(nid)
        session = cluster.migrate_session(nid, source)
        assert session.session_id == nid
        assert cluster.migrations == 0

    def test_migrate_unknown_session_raises(self, cluster_fixture):
        _, cluster, _, _ = cluster_fixture
        with pytest.raises(ServiceError):
            cluster.migrate_session("tn-s0-404", 1)

    def test_migrate_to_dead_shard_raises(self, cluster_fixture):
        transport, cluster, requester, _ = cluster_fixture
        nid = start_and_policy(transport, requester)
        target = (cluster.placement_index(nid) + 1) % 3
        cluster.kill_node(target)
        with pytest.raises(ServiceError):
            cluster.migrate_session(nid, target)


class TestDurableState:
    def test_wal_dir_persists_per_shard_journals(self, parties, tmp_path):
        requester, controller = parties
        transport = SimTransport()
        wal_dir = tmp_path / "wal"
        wal_dir.mkdir()
        with ShardedTNService(
            controller, transport, url="urn:tn", shards=2,
            agents={requester.name: requester}, wal_dir=str(wal_dir),
        ) as cluster:
            TNClient(transport, cluster.url, requester) \
                .negotiate("VoMembership", at=NEGOTIATION_AT)
            assert cluster.wal_records() == 3
        # the WAL file is created on first append, on the owning shard
        files = sorted(p.name for p in wal_dir.iterdir())
        assert len(files) == 1 and files[0].startswith("shard-")

        from repro.storage.session_store import WALSessionStore
        reopened = WALSessionStore(wal_dir / files[0])
        # 3 per-operation records + the close() checkpoint flush
        assert reopened.records() == 4
        (element,) = reopened.latest().values()
        assert element.get("phase") == "exchange"

    def test_durable_sessions_prefers_placement_owner(self, cluster_fixture):
        transport, cluster, requester, _ = cluster_fixture
        nid = start_and_policy(transport, requester)
        cluster.kill_node(cluster.placement_index(nid))
        transport.call("urn:tn", "CredentialExchange", {
            "negotiationId": nid, "clientSeq": 2,
        })
        durable = cluster.durable_sessions()
        assert durable[nid].get("phase") == "exchange"
        assert durable[nid].find("outcome") is not None
