"""Cluster-level shed policy: the router refuses new sessions once the
aggregate in-flight count across live shards reaches the cap."""

import pytest

from repro.cluster import ShardedTNService
from repro.errors import (
    ErrorCode,
    OverloadError,
    RetryExhaustedError,
    ServiceError,
)
from repro.services.resilience import ResilientTransport, RetryPolicy
from repro.services.transport import SimTransport
from tests.conftest import NEGOTIATION_AT
from tests.cluster.test_sharded import parties  # noqa: F401 (fixture)


@pytest.fixture()
def capped_cluster(parties):  # noqa: F811
    requester, controller = parties
    transport = SimTransport()
    cluster = ShardedTNService(
        controller, transport, url="urn:tn",
        shards=3, agents={requester.name: requester},
        max_in_flight=2,
    )
    yield transport, cluster, requester
    if not cluster.closed:
        cluster.close()


def start(transport, requester, request_id):
    return transport.call("urn:tn", "StartNegotiation", {
        "requester": requester, "strategy": "standard",
        "requestId": request_id,
    })["negotiationId"]


def finish(transport, nid):
    transport.call("urn:tn", "PolicyExchange", {
        "negotiationId": nid, "resource": "VoMembership",
        "at": NEGOTIATION_AT, "clientSeq": 1,
    })
    transport.call("urn:tn", "CredentialExchange", {
        "negotiationId": nid, "clientSeq": 2,
    })


class TestClusterShed:
    def test_refuses_above_aggregate_cap(self, capped_cluster):
        transport, cluster, requester = capped_cluster
        start(transport, requester, "req-0")
        start(transport, requester, "req-1")
        assert cluster.sessions_in_flight == 2
        with pytest.raises(OverloadError) as info:
            start(transport, requester, "req-2")
        assert info.value.retry_after_ms > 0
        assert info.value.error_code is ErrorCode.OVERLOADED
        assert cluster.cluster_sheds == 1

    def test_admits_again_after_drain(self, capped_cluster):
        transport, cluster, requester = capped_cluster
        nid = start(transport, requester, "req-0")
        start(transport, requester, "req-1")
        finish(transport, nid)
        assert cluster.sessions_in_flight == 1
        third = start(transport, requester, "req-2")
        assert third
        assert cluster.cluster_sheds == 0

    def test_phase_ops_pass_through_when_saturated(self, capped_cluster):
        """The cap gates *new* sessions only; in-flight sessions must
        still be able to make progress and drain."""
        transport, cluster, requester = capped_cluster
        nid = start(transport, requester, "req-0")
        start(transport, requester, "req-1")
        finish(transport, nid)  # would raise if phase ops were shed
        assert cluster.sessions_in_flight == 1

    def test_retry_after_scales_with_backlog(self, parties):  # noqa: F811
        requester, controller = parties
        transport = SimTransport()
        cluster = ShardedTNService(
            controller, transport, url="urn:tn",
            shards=2, agents={requester.name: requester},
            max_in_flight=1,
        )
        try:
            start(transport, requester, "req-0")
            with pytest.raises(OverloadError) as info:
                start(transport, requester, "req-1")
            first_hint = info.value.retry_after_ms
            cluster.kill_node(0)
            with pytest.raises(OverloadError) as info:
                start(transport, requester, "req-2")
            # Fewer live shards drain slower: the hint grows.
            assert info.value.retry_after_ms > first_hint
        finally:
            if not cluster.closed:
                cluster.close()

    def test_invalid_cap_rejected(self, parties):  # noqa: F811
        requester, controller = parties
        with pytest.raises(ServiceError, match="max_in_flight"):
            ShardedTNService(
                controller, SimTransport(), url="urn:tn",
                shards=2, agents={requester.name: requester},
                max_in_flight=0,
            )

    def test_resilient_client_honors_hint_without_tripping_breaker(
        self, capped_cluster
    ):
        transport, cluster, requester = capped_cluster
        resilient = ResilientTransport(
            inner=transport, retry=RetryPolicy(jitter_seed=7),
        )
        a = start(resilient, requester, "req-0")
        start(resilient, requester, "req-1")
        with pytest.raises(RetryExhaustedError):
            start(resilient, requester, "req-2")
        assert resilient.stats.backpressure_waits > 0
        assert resilient.stats.breaker_rejections == 0
        # The breaker never opened: once a slot frees up, the same
        # client is served immediately.
        finish(resilient, a)
        assert start(resilient, requester, "req-3")
