"""Consistent-hash ring: determinism, coverage, and move-minimality."""

import pytest

from repro.cluster import HashRing

NODES = ("urn:tn:s0", "urn:tn:s1", "urn:tn:s2")


class TestHashRing:
    def test_route_is_deterministic(self):
        ring_a = HashRing(NODES)
        ring_b = HashRing(reversed(NODES))
        keys = [f"session-{i}" for i in range(50)]
        assert [ring_a.route(k) for k in keys] == \
            [ring_b.route(k) for k in keys]

    def test_every_node_receives_traffic(self):
        ring = HashRing(NODES)
        routed = {ring.route(f"session-{i}") for i in range(500)}
        assert routed == set(NODES)

    def test_removal_only_moves_the_dead_nodes_keys(self):
        ring = HashRing(NODES)
        keys = [f"session-{i}" for i in range(300)]
        before = {key: ring.route(key) for key in keys}
        ring.remove("urn:tn:s1")
        for key in keys:
            after = ring.route(key)
            if before[key] != "urn:tn:s1":
                assert after == before[key]
            else:
                assert after != "urn:tn:s1"

    def test_add_restores_original_routing(self):
        ring = HashRing(NODES)
        keys = [f"session-{i}" for i in range(300)]
        before = {key: ring.route(key) for key in keys}
        ring.remove("urn:tn:s2")
        ring.add("urn:tn:s2")
        assert {key: ring.route(key) for key in keys} == before

    def test_membership(self):
        ring = HashRing(NODES)
        assert len(ring) == 3
        assert "urn:tn:s0" in ring
        ring.remove("urn:tn:s0")
        assert "urn:tn:s0" not in ring
        assert sorted(ring.nodes()) == ["urn:tn:s1", "urn:tn:s2"]

    def test_empty_ring_raises(self):
        ring = HashRing(())
        with pytest.raises(LookupError):
            ring.route("anything")

    def test_preference_lists_distinct_nodes(self):
        ring = HashRing(NODES)
        preference = ring.preference("session-42", 3)
        assert len(preference) == 3
        assert set(preference) == set(NODES)
        assert preference[0] == ring.route("session-42")
