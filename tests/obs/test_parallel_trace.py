"""One coherent trace out of a parallel formation (satellite d).

``execute_formation(parallel=True)`` runs every join on a worker thread
with its own branch clock; the workers adopt the ``vo.formation`` span
via ``obs.attach``, so the merged trace must have exactly one root, no
orphans, branch-clock virtual timestamps on the per-role joins, and a
critical path that matches ``FormationOutcome.critical_path_ms``.
"""

import pytest

from repro import obs
from repro.obs import critical_path_ms, validate_trace
from repro.scenario.workloads import formation_workload

ROLES = 4


@pytest.fixture
def recorded():
    fixture = formation_workload(ROLES)
    obs.enable()
    edition = fixture.initiator_edition
    edition.create_vo(fixture.contract)
    edition.enable_trust_negotiation()
    outcome = edition.execute_formation(fixture.plans(), parallel=True)
    obs.disable()
    return outcome, obs.spans()


class TestParallelFormationTrace:
    def test_formation_succeeds(self, recorded):
        outcome, _ = recorded
        assert len(outcome.joined) == ROLES
        assert outcome.mode == "parallel"

    def test_single_coherent_trace(self, recorded):
        _, spans = recorded
        formation_spans = [s for s in spans if s.name == "vo.formation"]
        assert len(formation_spans) == 1
        trace_id = formation_spans[0].trace_id
        members = [s for s in spans if s.trace_id == trace_id]
        report = validate_trace(members)
        assert len(report["roots"]) == 1
        assert report["roots"][0].name == "vo.formation"
        assert report["orphans"] == []

    def test_every_join_is_inside_the_formation(self, recorded):
        _, spans = recorded
        (formation,) = [s for s in spans if s.name == "vo.formation"]
        joins = [s for s in spans if s.name == "vo.join"]
        assert len(joins) == ROLES
        assert all(s.trace_id == formation.trace_id for s in joins)
        assert all(s.parent_id == formation.span_id for s in joins)

    def test_joins_carry_branch_clock_virtual_time(self, recorded):
        _, spans = recorded
        joins = [s for s in spans if s.name == "vo.join"]
        for join in joins:
            assert join.start_ms is not None
            assert join.end_ms is not None
            assert join.end_ms > join.start_ms
        # Branch clocks all fork from the same origin, so the joins
        # overlap on the virtual timeline instead of running serially.
        earliest_end = min(s.end_ms for s in joins)
        latest_start = max(s.start_ms for s in joins)
        assert latest_start < earliest_end

    def test_negotiations_nest_under_their_join(self, recorded):
        _, spans = recorded
        by_id = {s.span_id: s for s in spans}
        negotiations = [s for s in spans if s.name == "tn.negotiation"]
        assert len(negotiations) == ROLES

        def has_join_ancestor(span):
            current = span
            while current.parent_id is not None:
                current = by_id[current.parent_id]
                if current.name == "vo.join":
                    return True
            return False

        assert all(has_join_ancestor(s) for s in negotiations)

    def test_critical_path_matches_formation_outcome(self, recorded):
        outcome, spans = recorded
        (formation,) = [s for s in spans if s.name == "vo.formation"]
        members = [s for s in spans if s.trace_id == formation.trace_id]
        merged = critical_path_ms(members, root=formation)
        assert merged == pytest.approx(outcome.critical_path_ms, abs=1e-6)
        assert formation.attrs["critical_path_ms"] == pytest.approx(
            outcome.critical_path_ms
        )
        # The formation span itself covers exactly the makespan the
        # scheduler advanced the main timeline by.
        assert formation.duration_ms == pytest.approx(
            outcome.elapsed_ms, abs=1e-6
        )

    def test_serial_formation_also_traces_coherently(self):
        fixture = formation_workload(2)
        obs.enable()
        edition = fixture.initiator_edition
        edition.create_vo(fixture.contract)
        edition.enable_trust_negotiation()
        outcome = edition.execute_formation(fixture.plans(), parallel=False)
        spans = obs.spans()
        assert len(outcome.joined) == 2
        (formation,) = [s for s in spans if s.name == "vo.formation"]
        members = [s for s in spans if s.trace_id == formation.trace_id]
        report = validate_trace(members)
        assert len(report["roots"]) == 1 and report["orphans"] == []
