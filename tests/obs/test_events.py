"""The event log: redaction, sinks, trace correlation, virtual time."""

import json

from repro import obs
from repro.obs import REDACTED, EventLog, JsonlSink, ObsConfig, Tracer
from repro.services.clock import SimClock


class TestRedaction:
    def test_dict_field_redacted_keeps_keys(self):
        log = EventLog(redact_at=1)
        event = log.emit(
            "credential.disclosed", sensitivity=2,
            attributes={"clearance": "secret", "role": "engineer"},
        )
        assert event.fields["attributes"] == {
            "clearance": REDACTED, "role": REDACTED,
        }
        assert log.redacted == 1

    def test_list_field_redacted_keeps_length(self):
        log = EventLog(redact_at=1)
        event = log.emit("e", sensitivity=1, values=["a", "b", "c"])
        assert event.fields["values"] == [REDACTED] * 3

    def test_scalar_field_redacted(self):
        log = EventLog(redact_at=1)
        event = log.emit("e", sensitivity=1, value="ssn-123")
        assert event.fields["value"] == REDACTED

    def test_below_threshold_passes_through(self):
        log = EventLog(redact_at=2)
        event = log.emit("e", sensitivity=1, value="public-attr")
        assert event.fields["value"] == "public-attr"
        assert log.redacted == 0

    def test_sensitivity_recorded_on_event(self):
        log = EventLog(redact_at=1)
        event = log.emit("e", sensitivity=3, value="x")
        assert event.fields["sensitivity"] == 3

    def test_unlisted_fields_survive(self):
        log = EventLog(redact_at=1)
        event = log.emit("e", sensitivity=5, value="x", holder="AerospaceCo")
        assert event.fields["holder"] == "AerospaceCo"
        assert event.fields["value"] == REDACTED

    def test_redaction_disabled_with_none_threshold(self):
        log = EventLog(redact_at=None)
        event = log.emit("e", sensitivity=9, value="raw")
        assert event.fields["value"] == "raw"


class TestSinks:
    def test_ring_capacity_keeps_tail(self):
        log = EventLog(ring_capacity=2)
        for index in range(5):
            log.emit(f"e{index}")
        assert [e.name for e in log.events()] == ["e3", "e4"]
        assert log.emitted == 5  # counter is exact even past capacity

    def test_jsonl_sink_receives_redacted_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(redact_at=1)
        log.add_sink(JsonlSink(str(path)))
        log.emit("credential.disclosed", sensitivity=2, value="secret")
        log.emit("vo.operation_started", members=3)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 2
        assert lines[0]["value"] == REDACTED  # disk never sees the raw value
        assert lines[1]["members"] == 3

    def test_remove_sink_stops_fanout(self):
        log = EventLog()
        seen = []
        sink = seen.append
        log.add_sink(sink)
        log.emit("first")
        log.remove_sink(sink)
        log.emit("second")
        assert [e.name for e in seen] == ["first"]


class TestCorrelation:
    def test_virtual_ms_from_clock(self):
        clock = SimClock()
        clock.advance(250.0)
        log = EventLog()
        event = log.emit("e", clock=clock)
        assert event.virtual_ms == 250.0

    def test_trace_ids_from_span(self):
        tracer = Tracer()
        log = EventLog()
        clock = SimClock()
        with tracer.span("root", clock=clock) as root:
            clock.advance(10.0)
            event = log.emit("e", span=root)
        assert event.trace_id == root.trace_id
        assert event.span_id == root.span_id
        assert event.virtual_ms == 10.0  # falls back to the span's clock

    def test_seq_is_monotonic(self):
        log = EventLog()
        events = [log.emit("e") for _ in range(3)]
        assert [e.seq for e in events] == [1, 2, 3]


class TestModuleEvents:
    def test_event_correlates_with_open_span(self):
        obs.enable(ObsConfig())
        clock = SimClock()
        with obs.span("root", clock=clock) as root:
            obs.event("marker", detail="here")
        (event,) = obs.events()
        assert event.trace_id == root.trace_id
        assert event.fields["detail"] == "here"

    def test_event_noop_when_disabled(self):
        obs.enable()
        obs.disable()
        obs.event("ignored")
        assert obs.events() == []
