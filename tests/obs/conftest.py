"""Observability tests always leave the module runtime disabled."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def obs_disabled_after():
    yield
    obs.disable()
