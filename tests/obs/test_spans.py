"""Span primitives: nesting, ids, clocks, the disabled null path."""

import threading

from repro import obs
from repro.obs import NULL_SPAN, NullSpan, ObsConfig, Tracer
from repro.services.clock import SimClock


class TestTracer:
    def test_nesting_links_parent_and_trace(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grandchild:
                    pass
        assert root.parent_id is None
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        assert child.trace_id == root.trace_id == grandchild.trace_id
        # Finished innermost-first.
        assert [s.name for s in tracer.spans()] == [
            "grandchild", "child", "root",
        ]

    def test_sibling_roots_get_distinct_traces(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        first, second = tracer.spans()
        assert first.trace_id != second.trace_id
        assert first.trace_id.startswith("trace-")

    def test_virtual_clock_is_inherited_from_parent(self):
        tracer = Tracer()
        clock = SimClock()
        with tracer.span("root", clock=clock) as root:
            clock.advance(100.0)
            with tracer.span("child") as child:  # no clock passed
                clock.advance(50.0)
        assert root.start_ms == 0.0 and root.end_ms == 150.0
        assert child.start_ms == 100.0 and child.end_ms == 150.0
        assert child.duration_ms == 50.0

    def test_error_exit_marks_status(self):
        tracer = Tracer()
        try:
            with tracer.span("doomed"):
                raise ValueError("boom")
        except ValueError:
            pass
        (span,) = tracer.spans()
        assert span.status == "error"
        assert "ValueError" in span.attrs["error"]

    def test_attach_adopts_parent_across_threads(self):
        tracer = Tracer()
        seen = {}

        def worker(parent):
            with tracer.attach(parent):
                with tracer.span("worker") as span:
                    seen["span"] = span

        with tracer.span("root") as root:
            thread = threading.Thread(target=worker, args=(root,))
            thread.start()
            thread.join()
        assert seen["span"].parent_id == root.span_id
        assert seen["span"].trace_id == root.trace_id
        # attach() must not re-finish the parent.
        assert sum(1 for s in tracer.spans() if s is root) == 1

    def test_threads_have_independent_stacks(self):
        tracer = Tracer()
        spans = {}

        def worker():
            with tracer.span("other-thread") as span:
                spans["worker"] = span

        with tracer.span("main") as main_span:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # Without attach() the worker roots its own trace.
        assert spans["worker"].parent_id is None
        assert spans["worker"].trace_id != main_span.trace_id

    def test_max_spans_bounds_retention(self):
        tracer = Tracer(max_spans=2)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert [s.name for s in tracer.spans()] == ["s3", "s4"]


class TestModuleRuntime:
    def test_disabled_by_default_returns_null_span(self):
        obs.disable()
        span = obs.span("anything")
        assert span is NULL_SPAN
        with span as inner:
            assert isinstance(inner, NullSpan)
        assert obs.current() is None

    def test_enable_records_and_disable_keeps_data_readable(self):
        obs.enable(ObsConfig())
        with obs.span("alpha", key="value"):
            pass
        obs.disable()
        assert not obs.enabled()
        (span,) = obs.spans()
        assert span.name == "alpha"
        assert span.attrs["key"] == "value"

    def test_enable_resets_previous_runtime(self):
        obs.enable()
        with obs.span("old"):
            pass
        obs.enable()
        assert obs.spans() == []
