"""Exports: snapshot, Chrome trace, validation, the ASCII timeline."""

import json

from repro import obs
from repro.obs import (
    ObsConfig,
    Tracer,
    critical_path_ms,
    render_timeline,
    to_chrome_trace,
    validate_trace,
)
from repro.services.clock import SimClock


def _toy_trace():
    """root(0..100) -> left(0..40), right(40..100) on one SimClock."""
    tracer = Tracer()
    clock = SimClock()
    with tracer.span("root", clock=clock):
        with tracer.span("left"):
            clock.advance(40.0)
        with tracer.span("right"):
            clock.advance(60.0)
    return tracer.spans()


class TestChromeTrace:
    def test_complete_events_on_virtual_microseconds(self):
        spans = _toy_trace()
        trace = to_chrome_trace(spans)
        assert trace["displayTimeUnit"] == "ms"
        by_name = {e["name"]: e for e in trace["traceEvents"]}
        assert by_name["root"]["ph"] == "X"
        assert by_name["root"]["ts"] == 0.0
        assert by_name["root"]["dur"] == 100_000.0  # 100 ms in µs
        assert by_name["right"]["ts"] == 40_000.0
        assert by_name["right"]["dur"] == 60_000.0

    def test_one_pid_per_trace(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        trace = to_chrome_trace(tracer.spans())
        pids = {e["pid"] for e in trace["traceEvents"]}
        assert len(pids) == 2

    def test_json_serializable(self):
        trace = to_chrome_trace(_toy_trace())
        json.dumps(trace)  # must not raise


class TestValidateTrace:
    def test_coherent_trace(self):
        spans = _toy_trace()
        report = validate_trace(spans)
        assert report["spans"] == 3
        assert report["traces"] == 1
        assert len(report["roots"]) == 1
        assert report["roots"][0].name == "root"
        assert report["orphans"] == []

    def test_orphans_are_spans_whose_parent_is_missing(self):
        spans = _toy_trace()
        childless = [s for s in spans if s.name != "root"]
        report = validate_trace(childless)
        assert [s.name for s in report["orphans"]] == ["left", "right"]
        assert report["roots"] == []

    def test_eviction_of_middle_sibling_keeps_trace_coherent(self):
        tracer = Tracer(max_spans=2)
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        # Capacity 2 retains the last finishers ["b", "root"]: "a" is
        # evicted but its parent survives, so nothing is orphaned.
        report = validate_trace(tracer.spans())
        assert [s.name for s in report["roots"]] == ["root"]
        assert report["orphans"] == []


class TestCriticalPath:
    def test_matches_virtual_makespan(self):
        spans = _toy_trace()
        assert critical_path_ms(spans) == 100.0

    def test_empty(self):
        assert critical_path_ms([]) == 0.0


class TestRenderTimeline:
    def test_renders_bars_and_durations(self):
        out = render_timeline(_toy_trace())
        lines = out.splitlines()
        assert "virtual window: 0..100 ms" in lines[0]
        assert any("root" in line and "#" in line for line in lines)
        assert any("right" in line and "60.0 ms" in line for line in lines)

    def test_children_indented_under_parent(self):
        out = render_timeline(_toy_trace())
        root_line = next(l for l in out.splitlines() if "root" in l)
        left_line = next(l for l in out.splitlines() if "left" in l)
        assert root_line.startswith("root")
        assert left_line.startswith("  left")

    def test_empty(self):
        assert render_timeline([]) == "(no spans recorded)"


class TestSnapshot:
    def test_snapshot_shape(self):
        obs.enable(ObsConfig(labels={"run": "unit"}))
        clock = SimClock()
        with obs.span("root", clock=clock):
            clock.advance(5.0)
            obs.count("n")
            obs.event("marker", sensitivity=2, value="hidden")
        snap = obs.snapshot()
        assert set(snap) == {
            "config", "spans", "metrics", "events", "event_counts",
        }
        assert snap["config"]["labels"] == {"run": "unit"}
        assert snap["spans"][0]["name"] == "root"
        assert snap["metrics"]["n"]["value"] == 1
        assert snap["events"][0]["value"] == obs.REDACTED
        assert snap["event_counts"] == {"emitted": 1, "redacted": 1}
        json.dumps(snap)  # must round-trip to JSON

    def test_chrome_trace_binding(self):
        obs.enable()
        with obs.span("only"):
            pass
        trace = obs.chrome_trace()
        assert [e["name"] for e in trace["traceEvents"]] == ["only"]
