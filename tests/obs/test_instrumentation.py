"""End-to-end instrumentation: the hot paths light up coherently."""

import pytest

from repro import obs
from repro.credentials.sensitivity import Sensitivity
from repro.negotiation.engine import negotiate
from repro.obs import REDACTED, validate_trace
from repro.scenario.workloads import formation_workload
from tests.conftest import ISSUE_AT, NEGOTIATION_AT


@pytest.fixture()
def example2_sensitive(agent_factory, infn, aaa_authority, bbb_authority,
                       shared_keypair, other_keypair):
    """Example 2 with a HIGH-sensitivity credential on the wire."""
    aero = agent_factory(
        "AerospaceCo",
        [infn.issue("ISO 9000 Certified", "AerospaceCo",
                    shared_keypair.fingerprint,
                    {"QualityRegulation": "UNI EN ISO 9000"}, ISSUE_AT)],
        """
ISO 9000 Certified <- AAA Member
""",
        shared_keypair,
    )
    aircraft = agent_factory(
        "AircraftCo",
        [aaa_authority.issue("AAA Member", "AircraftCo",
                             other_keypair.fingerprint,
                             {"association": "AAA"}, ISSUE_AT,
                             sensitivity=Sensitivity.HIGH)],
        """
VoMembership <- WebDesignerQuality, {UNI EN ISO 9000}
AAA Member <- DELIV
""",
        other_keypair,
    )
    return aero, aircraft


class TestNegotiationInstrumentation:
    def test_negotiation_trace_is_coherent(self, example2_sensitive):
        aero, aircraft = example2_sensitive
        obs.enable()
        result = negotiate(aero, aircraft, "VoMembership", at=NEGOTIATION_AT)
        assert result.success
        spans = obs.spans()
        names = {s.name for s in spans}
        assert {"tn.negotiation", "tn.policy_phase", "tn.tree_propagate",
                "tn.view_selection", "tn.exchange_phase",
                "tn.verify"} <= names
        report = validate_trace(spans)
        assert report["traces"] == 1
        assert len(report["roots"]) == 1
        assert report["roots"][0].name == "tn.negotiation"
        assert report["orphans"] == []

    def test_negotiation_metrics_recorded(self, example2_sensitive):
        aero, aircraft = example2_sensitive
        obs.enable()
        negotiate(aero, aircraft, "VoMembership", at=NEGOTIATION_AT)
        metrics = obs.metrics()
        assert metrics["negotiation.runs"]["value"] == 1
        assert metrics["negotiation.successes"]["value"] == 1
        assert metrics["negotiation.policy_messages"]["count"] == 1
        assert metrics["negotiation.tree_nodes"]["min"] >= 1

    def test_sensitive_disclosure_event_is_redacted(
        self, example2_sensitive,
    ):
        aero, aircraft = example2_sensitive
        obs.enable()  # default redact_at=1: MEDIUM and above redacted
        negotiate(aero, aircraft, "VoMembership", at=NEGOTIATION_AT)
        disclosures = {
            e.fields["cred_type"]: e
            for e in obs.events() if e.name == "credential.disclosed"
        }
        high = disclosures["AAA Member"]
        assert high.fields["sensitivity"] == int(Sensitivity.HIGH)
        assert high.fields["attributes"] == {"association": REDACTED}
        low = disclosures["ISO 9000 Certified"]
        assert low.fields["attributes"] == {
            "QualityRegulation": "UNI EN ISO 9000",
        }

    def test_disclosure_events_correlate_with_the_trace(
        self, example2_sensitive,
    ):
        aero, aircraft = example2_sensitive
        obs.enable()
        negotiate(aero, aircraft, "VoMembership", at=NEGOTIATION_AT)
        (root,) = [s for s in obs.spans() if s.name == "tn.negotiation"]
        for event in obs.events():
            if event.name == "credential.disclosed":
                assert event.trace_id == root.trace_id

    def test_disabled_records_nothing(self, example2_sensitive):
        aero, aircraft = example2_sensitive
        obs.enable()
        obs.disable()
        negotiate(aero, aircraft, "VoMembership", at=NEGOTIATION_AT)
        assert obs.spans() == []
        assert obs.events() == []
        assert "negotiation.runs" not in obs.metrics()


class TestServiceInstrumentation:
    @pytest.fixture()
    def formation_metrics(self):
        fixture = formation_workload(2)
        obs.enable()
        edition = fixture.initiator_edition
        edition.create_vo(fixture.contract)
        edition.enable_trust_negotiation()
        edition.execute_formation(fixture.plans(), parallel=False)
        return obs.metrics()

    def test_tn_service_operation_counters(self, formation_metrics):
        ops = formation_metrics
        assert ops["tn_service.operations.start_negotiation"]["value"] == 2
        assert ops["tn_service.operations.policy_exchange"]["value"] >= 2
        assert ops["tn_service.operations.credential_exchange"]["value"] >= 2

    def test_vo_counters_and_join_latency(self, formation_metrics):
        assert formation_metrics["vo.created"]["value"] == 1
        assert formation_metrics["vo.joins"]["value"] == 2
        assert formation_metrics["vo.join_ms"]["count"] == 2
        assert formation_metrics["vo.join_ms"]["min"] > 0

    def test_perf_cache_stats_absorbed(self, formation_metrics):
        cache_keys = [
            k for k in formation_metrics if k.startswith("perf.cache.")
        ]
        assert cache_keys, "perf.cache.* collector produced nothing"
        assert all(
            formation_metrics[k]["type"] == "collected" for k in cache_keys
        )
