"""Hash-chained audit log: sink, epoch commitments, offline verifier."""

import hashlib
import json

import repro.obs as obs
from repro.obs import ObsConfig
from repro.obs.audit import (
    AuditLogSink,
    GENESIS_HASH,
    merkle_root,
    verify_audit_log,
)


class FakeEvent:
    def __init__(self, seq: int) -> None:
        self.seq = seq

    def to_dict(self) -> dict:
        return {"name": "test.event", "seq": self.seq}


def write_log(path, events: int, epoch_every: int = 256) -> AuditLogSink:
    sink = AuditLogSink(str(path), epoch_every=epoch_every)
    for seq in range(events):
        sink(FakeEvent(seq))
    sink.close()
    return sink


class TestMerkleRoot:
    def test_empty_is_genesis(self):
        assert merkle_root([]) == GENESIS_HASH

    def test_single_leaf_is_itself(self):
        assert merkle_root(["ab"]) == "ab"

    def test_pair_hashes_concatenation(self):
        expected = hashlib.sha256(b"abcd").hexdigest()
        assert merkle_root(["ab", "cd"]) == expected

    def test_odd_leaf_promotes(self):
        pair = hashlib.sha256(b"abcd").hexdigest()
        expected = hashlib.sha256((pair + "ee").encode()).hexdigest()
        assert merkle_root(["ab", "cd", "ee"]) == expected


class TestSink:
    def test_chain_verifies_end_to_end(self, tmp_path):
        path = tmp_path / "audit.log"
        sink = write_log(path, 10, epoch_every=4)
        assert sink.events_written == 10
        assert sink.epochs_written == 3  # 4 + 4 + sealed partial 2
        report = verify_audit_log(str(path))
        assert report.ok
        assert report.events == 10
        assert report.epochs == 3
        assert report.uncommitted_events == 0
        assert report.records == 13

    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "audit.log"
        sink = write_log(path, 3, epoch_every=10)
        sink.close()
        assert sink.epochs_written == 1
        assert verify_audit_log(str(path)).ok

    def test_unsealed_tail_is_reported(self, tmp_path):
        path = tmp_path / "audit.log"
        sink = AuditLogSink(str(path), epoch_every=4)
        for seq in range(6):
            sink(FakeEvent(seq))
        # no close(): two events remain outside any epoch commitment
        report = verify_audit_log(str(path))
        assert report.ok
        assert report.epochs == 1
        assert report.uncommitted_events == 2


class TestVerifier:
    def corrupt(self, path, mutate):
        lines = path.read_text().splitlines(keepends=True)
        mutate(lines)
        path.write_text("".join(lines))

    def test_tampered_record_detected(self, tmp_path):
        path = tmp_path / "audit.log"
        write_log(path, 10, epoch_every=4)

        def mutate(lines):
            record = json.loads(lines[2])
            record["body"]["seq"] = 999
            lines[2] = json.dumps(record, sort_keys=True) + "\n"

        self.corrupt(path, mutate)
        report = verify_audit_log(str(path))
        assert not report.ok
        assert report.error_line == 3
        assert "hash chain broken" in report.error

    def test_dropped_record_detected(self, tmp_path):
        path = tmp_path / "audit.log"
        write_log(path, 10, epoch_every=4)
        self.corrupt(path, lambda lines: lines.pop(3))
        report = verify_audit_log(str(path))
        assert not report.ok
        assert report.error_line == 4

    def test_reordered_records_detected(self, tmp_path):
        path = tmp_path / "audit.log"
        write_log(path, 10, epoch_every=4)

        def mutate(lines):
            lines[1], lines[2] = lines[2], lines[1]

        self.corrupt(path, mutate)
        report = verify_audit_log(str(path))
        assert not report.ok
        assert report.error_line == 2

    def test_forged_epoch_root_detected(self, tmp_path):
        path = tmp_path / "audit.log"
        write_log(path, 4, epoch_every=4)

        def mutate(lines):
            # rebuild the epoch record with a forged root but a
            # *recomputed* chain hash: the Merkle check must catch it
            prev = json.loads(lines[3])["hash"]
            record = json.loads(lines[4])
            record.pop("hash")
            record["root"] = "f" * 64
            body = json.dumps(record, default=str, sort_keys=True)
            record["hash"] = hashlib.sha256(
                (prev + body).encode()
            ).hexdigest()
            lines[4] = json.dumps(record, sort_keys=True) + "\n"

        self.corrupt(path, mutate)
        report = verify_audit_log(str(path))
        assert not report.ok
        assert "Merkle root mismatch" in report.error

    def test_missing_file(self, tmp_path):
        report = verify_audit_log(str(tmp_path / "absent.log"))
        assert not report.ok
        assert report.error == "no such file"


class TestObsIntegration:
    def test_runtime_attaches_and_seals_audit_log(self, tmp_path):
        path = tmp_path / "audit.log"
        obs.enable(ObsConfig(audit_path=str(path), audit_epoch_every=8))
        try:
            for index in range(20):
                obs.event("test.audit", index=index)
        finally:
            obs.disable()
        report = verify_audit_log(str(path))
        assert report.ok
        assert report.events >= 20
        assert report.epochs >= 2
        assert report.uncommitted_events == 0
