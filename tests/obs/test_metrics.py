"""The metrics registry: instruments, percentiles, collectors."""

import pytest

from repro import obs
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, percentile


class TestPercentile:
    def test_single_value(self):
        assert percentile([7.0], 95) == 7.0

    def test_interpolates(self):
        values = [0.0, 10.0]
        assert percentile(values, 50) == 5.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestInstruments:
    def test_counter(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.to_dict() == {"type": "counter", "value": 5}

    def test_gauge(self):
        gauge = Gauge("g")
        gauge.set(2.5)
        gauge.add(0.5)
        assert gauge.value == 3.0

    def test_histogram_summary(self):
        histogram = Histogram("h")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        summary = histogram.to_dict()
        assert summary["count"] == 4
        assert summary["sum"] == 10.0
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["p50"] == 2.5

    def test_histogram_window_bounds_percentiles_not_totals(self):
        histogram = Histogram("h", window=2)
        for value in (100.0, 1.0, 2.0):
            histogram.observe(value)
        summary = histogram.to_dict()
        assert summary["count"] == 3  # exact
        assert summary["max"] == 100.0  # exact
        assert summary["p95"] <= 2.0  # windowed: the 100.0 rolled out


class TestRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot_merges_collectors(self):
        registry = MetricsRegistry()
        registry.counter("own").inc()
        registry.register_collector(
            "ext", lambda: {"ext.value": 42}
        )
        snapshot = registry.snapshot()
        assert snapshot["own"] == {"type": "counter", "value": 1}
        assert snapshot["ext.value"] == {"type": "collected", "value": 42}

    def test_broken_collector_is_reported_not_raised(self):
        registry = MetricsRegistry()

        def broken():
            raise RuntimeError("nope")

        registry.register_collector("bad", broken)
        snapshot = registry.snapshot()
        assert "collector.bad.error" in snapshot

    def test_reset_keeps_collectors(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.register_collector("ext", lambda: {"ext.v": 1})
        registry.reset()
        snapshot = registry.snapshot()
        assert "x" not in snapshot
        assert snapshot["ext.v"]["value"] == 1


class TestModuleMetrics:
    def test_count_gauge_observe_roundtrip(self):
        obs.enable()
        obs.count("runs", 2)
        obs.gauge("depth", 7)
        obs.observe("latency_ms", 12.5)
        metrics = obs.metrics()
        assert metrics["runs"]["value"] == 2
        assert metrics["depth"]["value"] == 7.0
        assert metrics["latency_ms"]["count"] == 1

    def test_perf_cache_counters_absorbed(self):
        """The PR 2 cache stats surface as perf.cache.* metrics."""
        obs.enable()
        metrics = obs.metrics()
        hit_keys = [k for k in metrics if k.startswith("perf.cache.")]
        assert any(k.endswith(".hits") for k in hit_keys)
        assert any(k.endswith(".hit_rate") for k in hit_keys)

    def test_noop_when_disabled(self):
        obs.enable()
        obs.disable()
        obs.count("ignored")
        assert "ignored" not in obs.metrics()
