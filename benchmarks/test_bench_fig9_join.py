"""Fig. 9 — Join execution times (paper Section 6.3.1).

The paper measured, for the airspace company joining the Aircraft
Optimization VO on a Pentium 4 / 2.00 GHz / 512 MB / Windows XP:

    (a) join with trust negotiation   ≈ 4 s
    (b) join without negotiation      ≈ 3 s
    (c) standalone trust negotiation  (from the TN Web service alone)

with the join overhead "only increas[ing] of 27[%]".

The reproduction reports both:

- **simulated end-to-end milliseconds** from the calibrated latency
  model (the shape-comparable series: ratios and ordering are what the
  paper's claim is about), and
- **real CPU time** of the underlying engine/toolkit work on this
  machine, via pytest-benchmark.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_series
from repro.scenario import build_aircraft_scenario
from repro.scenario.aircraft import ROLE_DESIGN_PORTAL
from repro.services.tn_client import TNClient

PAPER_JOIN_MS = 3000
PAPER_JOIN_TN_MS = 4000


def run_join(with_negotiation: bool) -> float:
    scenario = build_aircraft_scenario()
    edition = scenario.initiator_edition
    edition.create_vo(scenario.contract)
    edition.enable_trust_negotiation()
    outcome = edition.execute_join(
        scenario.app("AerospaceCo"), ROLE_DESIGN_PORTAL,
        with_negotiation=with_negotiation,
    )
    assert outcome.joined
    return outcome.elapsed_ms


def run_standalone_tn() -> float:
    scenario = build_aircraft_scenario()
    edition = scenario.initiator_edition
    edition.create_vo(scenario.contract)
    service = edition.enable_trust_negotiation()
    role = scenario.contract.role(ROLE_DESIGN_PORTAL)
    client = TNClient(
        scenario.transport, service.url,
        scenario.member("AerospaceCo").agent,
    )
    with scenario.transport.clock.measure() as stopwatch:
        result = client.negotiate(
            role.membership_resource(scenario.contract.vo_name)
        )
    assert result.success
    return stopwatch.elapsed_ms


def test_bench_fig9_join_with_tn(benchmark):
    simulated = benchmark(run_join, True)
    benchmark.extra_info["simulated_ms"] = simulated
    benchmark.extra_info["paper_ms"] = PAPER_JOIN_TN_MS


def test_bench_fig9_join_without_tn(benchmark):
    simulated = benchmark(run_join, False)
    benchmark.extra_info["simulated_ms"] = simulated
    benchmark.extra_info["paper_ms"] = PAPER_JOIN_MS


def test_bench_fig9_standalone_tn(benchmark):
    simulated = benchmark(run_standalone_tn)
    benchmark.extra_info["simulated_ms"] = simulated


def test_fig9_series_report(benchmark):
    """Print the three Fig. 9 bars, paper vs measured."""
    benchmark(lambda: None)  # series reports run once, not timed
    join_tn = run_join(True)
    join = run_join(False)
    tn = run_standalone_tn()
    ratio = join_tn / join
    print_series(
        "Fig. 9 — Join execution times (simulated ms vs paper)",
        [
            ("Join with trust negotiation", f"{join_tn:.0f}",
             PAPER_JOIN_TN_MS),
            ("Join", f"{join:.0f}", PAPER_JOIN_MS),
            ("Trust negotiation (standalone)", f"{tn:.0f}", "(smallest bar)"),
            ("Overhead ratio join+TN / join", f"{ratio:.3f}", "~1.27-1.33"),
        ],
        headers=("case", "measured", "paper"),
    )
    assert join_tn > join > tn
    assert 1.15 <= ratio <= 1.45
