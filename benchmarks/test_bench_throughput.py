"""Throughput — negotiations/sec and batched parallel formation.

Two wall-clock/simulated measurements behind the PR's caching layer
and batch scheduler, reported to ``BENCH_throughput.json`` at the repo
root (machine-readable, uploaded as a CI artifact):

1. **Repeat-negotiation throughput** (real wall-clock): the operation
   phase of a long-lasting VO re-runs the same negotiation against a
   policy-heavy membership resource (many alternative requirement
   sets).  Measured with the caching layer on (sequence-cache replay +
   ``repro.perf`` hot-path caches) versus fully off
   (:func:`repro.perf.caches_disabled` + full two-phase engine every
   time).  The caches must win by >= 3x (full mode).

2. **Parallel formation speedup** (simulated ms): an 8-role VO formed
   serially versus with ``execute_formation(parallel=True)``.  The
   simulated critical path must beat the serial schedule by >= 2x.

``BENCH_QUICK=1`` shrinks the workloads for CI smoke runs; each report
section is stamped ``"quick": true`` and the speedup assertions are
skipped outright — a 20-repeat wall-clock sample is far too noisy to
gate on, and quick numbers must never be mistaken for full-mode ones.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import print_series
from repro.negotiation.cache import CachingNegotiator
from repro.negotiation.engine import negotiate
from repro.perf import all_stats, caches_disabled, clear_all_caches
from repro.scenario.workloads import bushy_workload, formation_workload

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

#: Alternative requirement sets protecting the repeated resource: the
#: policy-evaluation phase dominates, which is exactly what replay and
#: the hot-path caches elide (the per-disclosure ownership proof is
#: deliberately uncacheable and bounds the best case).
ALTERNATIVES = 64 if QUICK else 256
REPEATS = 20 if QUICK else 200
FORMATION_ROLES = 4 if QUICK else 8

MIN_REPEAT_SPEEDUP = 3.0
MIN_FORMATION_SPEEDUP = 2.0

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"


def _merge_report(section: str, payload: dict) -> None:
    """Read-modify-write one section of BENCH_throughput.json so the
    tests can run in any order (or individually)."""
    report = {}
    if REPORT_PATH.exists():
        try:
            report = json.loads(REPORT_PATH.read_text())
        except json.JSONDecodeError:
            report = {}
    report["quick_mode"] = QUICK
    payload["quick"] = QUICK
    report[section] = payload
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")


def _repeat_negotiation_ablation() -> dict:
    fixture = bushy_workload(ALTERNATIVES)

    clear_all_caches(reset_counters=True)
    negotiator = CachingNegotiator()
    warm = negotiator.negotiate(
        fixture.requester, fixture.controller, fixture.resource,
        at=fixture.negotiation_time(),
    )
    assert warm.success
    started = time.perf_counter()
    for _ in range(REPEATS):
        result = negotiator.negotiate(
            fixture.requester, fixture.controller, fixture.resource,
            at=fixture.negotiation_time(),
        )
        assert result.success
    on_seconds = time.perf_counter() - started
    perf_stats = {
        name: {
            "hits": stats.hits,
            "misses": stats.misses,
            "evictions": stats.evictions,
            "invalidations": stats.invalidations,
            "hit_rate": round(stats.hit_rate, 4),
        }
        for name, stats in all_stats().items()
    }
    sequence_stats = negotiator.cache.stats()

    clear_all_caches()
    with caches_disabled():
        started = time.perf_counter()
        for _ in range(REPEATS):
            result = negotiate(
                fixture.requester, fixture.controller, fixture.resource,
                fixture.negotiation_time(),
            )
            assert result.success
        off_seconds = time.perf_counter() - started

    return {
        "workload": f"bushy-{ALTERNATIVES}",
        "repeats": REPEATS,
        "caches_on": {
            "seconds": round(on_seconds, 6),
            "negotiations_per_sec": round(REPEATS / on_seconds, 2),
        },
        "caches_off": {
            "seconds": round(off_seconds, 6),
            "negotiations_per_sec": round(REPEATS / off_seconds, 2),
        },
        "speedup": round(off_seconds / on_seconds, 3),
        "perf_cache_stats": perf_stats,
        "sequence_cache_stats": sequence_stats,
    }


def _run_formation(parallel: bool):
    fixture = formation_workload(FORMATION_ROLES)
    edition = fixture.initiator_edition
    edition.create_vo(fixture.contract)
    edition.enable_trust_negotiation()
    outcome = edition.execute_formation(
        fixture.plans(), at=fixture.contract.created_at, parallel=parallel,
    )
    assert len(outcome.joined) == FORMATION_ROLES
    return outcome


def test_bench_repeat_negotiation_throughput():
    metrics = _repeat_negotiation_ablation()
    print_series(
        "Throughput: repeat negotiations (caches on vs off)",
        [
            ("caches on",
             metrics["caches_on"]["negotiations_per_sec"],
             metrics["caches_on"]["seconds"]),
            ("caches off",
             metrics["caches_off"]["negotiations_per_sec"],
             metrics["caches_off"]["seconds"]),
            ("speedup", f"{metrics['speedup']}x", ""),
        ],
        ("mode", "negotiations/sec", "seconds"),
    )
    _merge_report("repeat_negotiation", metrics)
    if QUICK:
        return  # quick mode measures and reports; only full mode gates
    assert metrics["speedup"] >= MIN_REPEAT_SPEEDUP, (
        f"caching layer must speed repeat negotiations >= "
        f"{MIN_REPEAT_SPEEDUP}x, measured {metrics['speedup']}x"
    )


def test_bench_parallel_formation_speedup():
    serial = _run_formation(parallel=False)
    parallel = _run_formation(parallel=True)
    assert serial.mode == "serial" and parallel.mode == "parallel"
    assert serial.joined == parallel.joined
    speedup = serial.elapsed_ms / parallel.elapsed_ms
    metrics = {
        "roles": FORMATION_ROLES,
        "serial": {"elapsed_ms": round(serial.elapsed_ms, 3)},
        "parallel": {
            "elapsed_ms": round(parallel.elapsed_ms, 3),
            "critical_path_ms": round(parallel.critical_path_ms, 3),
            "serial_equivalent_ms": round(parallel.serial_ms, 3),
        },
        "speedup": round(speedup, 3),
    }
    print_series(
        f"Throughput: {FORMATION_ROLES}-role formation (serial vs parallel)",
        [
            ("serial", round(serial.elapsed_ms, 1)),
            ("parallel", round(parallel.elapsed_ms, 1)),
            ("speedup", f"{metrics['speedup']}x"),
        ],
        ("schedule", "simulated ms"),
    )
    _merge_report("parallel_formation", metrics)
    if QUICK:
        return  # quick mode measures and reports; only full mode gates
    assert speedup >= MIN_FORMATION_SPEEDUP, (
        f"parallel formation must beat serial >= {MIN_FORMATION_SPEEDUP}x, "
        f"measured {speedup:.2f}x"
    )
