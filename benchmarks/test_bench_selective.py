"""Ablation — selective disclosure vs full disclosure (paper §6.3).

The paper proposes hash-commitment attributes so X.509-style material
can support the suspicious strategies, and says "we are exploring the
robustness and computational complexity of this approach".  This bench
supplies the complexity measurement: issuance, presentation, and
verification cost of the hash-based scheme versus plain full-credential
verification, as the attribute count grows.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_series
from repro.credentials.authority import CredentialAuthority
from repro.credentials.selective import SelectiveCredential
from repro.crypto.keys import KeyPair, verify_b64
from tests.conftest import ISSUE_AT

ATTRIBUTE_COUNTS = [1, 4, 16, 64]


@pytest.fixture(scope="module")
def authority():
    return CredentialAuthority.create("CA", key_bits=1024)


@pytest.fixture(scope="module")
def holder():
    return KeyPair.generate(1024)


def issue_with_attributes(authority, holder, count):
    return authority.issue(
        "Wide", "Holder", holder.fingerprint,
        {f"attr{i}": f"value{i}" for i in range(count)},
        ISSUE_AT,
    )


@pytest.mark.parametrize("count", ATTRIBUTE_COUNTS)
def test_bench_selective_issuance(benchmark, authority, holder, count):
    credential = issue_with_attributes(authority, holder, count)
    selective = benchmark(
        SelectiveCredential.issue_from, credential, authority.keypair.private
    )
    assert len(selective.commitments) == count


@pytest.mark.parametrize("count", ATTRIBUTE_COUNTS)
def test_bench_selective_verify_one_of_n(benchmark, authority, holder, count):
    credential = issue_with_attributes(authority, holder, count)
    selective = SelectiveCredential.issue_from(
        credential, authority.keypair.private
    )
    presentation = selective.present(["attr0"])
    revealed = benchmark(presentation.verify, authority.public_key)
    assert set(revealed) == {"attr0"}


def test_bench_full_credential_verify(benchmark, authority, holder):
    credential = issue_with_attributes(authority, holder, 16)
    ok = benchmark(
        verify_b64, authority.public_key,
        credential.signing_bytes(), credential.signature_b64,
    )
    assert ok


def test_selective_series_report(authority, holder, benchmark):
    benchmark(lambda: None)  # series reports run once, not timed
    import time

    rows = []
    for count in ATTRIBUTE_COUNTS:
        credential = issue_with_attributes(authority, holder, count)
        start = time.perf_counter()
        selective = SelectiveCredential.issue_from(
            credential, authority.keypair.private
        )
        issue_ms = (time.perf_counter() - start) * 1e3
        presentation = selective.present(["attr0"])
        start = time.perf_counter()
        for _ in range(50):
            presentation.verify(authority.public_key)
        verify_ms = (time.perf_counter() - start) / 50 * 1e3
        start = time.perf_counter()
        for _ in range(50):
            verify_b64(authority.public_key, credential.signing_bytes(),
                       credential.signature_b64)
        full_ms = (time.perf_counter() - start) / 50 * 1e3
        rows.append((
            count, f"{issue_ms:.2f}", f"{verify_ms:.3f}", f"{full_ms:.3f}",
            count - 1,
        ))
    print_series(
        "Selective disclosure (hash commitments) vs full disclosure",
        rows,
        headers=("attributes", "issue ms", "verify-1-of-n ms",
                 "full-verify ms", "attrs kept hidden"),
    )
    # Verification stays near-flat in n: one RSA verify dominates.
    verify_costs = [float(row[2]) for row in rows]
    assert verify_costs[-1] < verify_costs[0] * 10
