"""Ablation — negotiation-strategy cost.

Trust-X offers four strategies trading confidentiality against messages
and computation (paper Sections 1, 6.2).  This bench runs the paper's
formation negotiation under each strategy and reports message counts,
disclosure counts, and real CPU time.  Expected shape: trusting needs
the fewest messages; the suspicious strategies pay extra computation
(hash-commitment presentations) for partial hiding; strong-suspicious
additionally pays one message per policy alternative.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_series
from repro.negotiation.engine import negotiate
from repro.negotiation.strategies import Strategy
from repro.scenario import build_aircraft_scenario
from repro.scenario.aircraft import ROLE_DESIGN_PORTAL, enable_selective_disclosure

STRATEGIES = [
    Strategy.TRUSTING,
    Strategy.STANDARD,
    Strategy.SUSPICIOUS,
    Strategy.STRONG_SUSPICIOUS,
]


def make_parties(strategy: Strategy):
    scenario = build_aircraft_scenario()
    enable_selective_disclosure(scenario)
    scenario.initiator.define_vo_policies(scenario.contract)
    requester = scenario.member("AerospaceCo").agent
    controller = scenario.initiator.agent
    requester.strategy = strategy
    controller.strategy = strategy
    role = scenario.contract.role(ROLE_DESIGN_PORTAL)
    resource = role.membership_resource(scenario.contract.vo_name)
    return requester, controller, resource, scenario.contract.created_at


def run_negotiation(strategy: Strategy):
    requester, controller, resource, at = make_parties(strategy)
    result = negotiate(requester, controller, resource, at=at)
    assert result.success, result.failure_detail
    return result


@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.value)
def test_bench_strategy(benchmark, strategy):
    result = benchmark(run_negotiation, strategy)
    benchmark.extra_info["messages"] = result.total_messages
    benchmark.extra_info["disclosures"] = result.disclosures


def test_strategy_series_report(benchmark):
    benchmark(lambda: None)  # series reports run once, not timed
    rows = []
    for strategy in STRATEGIES:
        result = run_negotiation(strategy)
        rows.append((
            strategy.value,
            result.policy_messages,
            result.exchange_messages,
            result.total_messages,
            result.disclosures,
        ))
    print_series(
        "Strategy ablation — formation negotiation cost",
        rows,
        headers=("strategy", "policy msgs", "exchange msgs", "total",
                 "disclosures"),
    )
    by_name = {row[0]: row for row in rows}
    # Trusting is the cheapest in messages; strong-suspicious the most
    # expensive in policy messages.
    assert by_name["trusting"][3] < by_name["standard"][3]
    assert (
        by_name["strong_suspicious"][1] >= by_name["suspicious"][1]
    )
