"""Observability overhead — the zero-cost-when-disabled contract.

Two measurements behind the ``repro.obs`` layer, reported to
``BENCH_obs.json`` at the repo root:

1. **Instrumentation overhead** (real wall-clock): the repeat-
   negotiation workload timed with observability disabled (the
   baseline every other benchmark pays: one module-flag branch per
   instrumentation site) versus fully enabled (spans + metrics +
   events recording).  Enabled must stay within 10% of disabled
   (25% under ``BENCH_QUICK=1``, where the sample is too small to
   gate tightly).  Each mode is timed in alternating rounds and the
   per-mode minimum is kept, which discards scheduler noise.

2. **Trace artifact**: an instrumented parallel formation whose
   merged trace is validated (one root, no orphans) and written to
   ``BENCH_trace.json`` in Chrome Trace Event Format — the CI
   artifact you can drop into ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import print_series
from repro import obs
from repro.negotiation.engine import negotiate
from repro.obs import validate_trace
from repro.scenario.workloads import bushy_workload, formation_workload

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

ALTERNATIVES = 32 if QUICK else 128
REPEATS = 15 if QUICK else 100
ROUNDS = 3
FORMATION_ROLES = 4 if QUICK else 8
MAX_OVERHEAD = 1.25 if QUICK else 1.10

ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = ROOT / "BENCH_obs.json"
TRACE_PATH = ROOT / "BENCH_trace.json"


def _merge_report(section: str, payload: dict) -> None:
    report = {}
    if REPORT_PATH.exists():
        try:
            report = json.loads(REPORT_PATH.read_text())
        except json.JSONDecodeError:
            report = {}
    report["quick_mode"] = QUICK
    payload["quick"] = QUICK
    report[section] = payload
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")


def _timed_negotiations(fixture) -> float:
    started = time.perf_counter()
    for _ in range(REPEATS):
        result = negotiate(
            fixture.requester, fixture.controller, fixture.resource,
            fixture.negotiation_time(),
        )
        assert result.success
    return time.perf_counter() - started


def test_bench_obs_overhead():
    fixture = bushy_workload(ALTERNATIVES)
    obs.disable()
    _timed_negotiations(fixture)  # warm every cache and code path once

    disabled = []
    enabled = []
    for _ in range(ROUNDS):
        obs.disable()
        disabled.append(_timed_negotiations(fixture))
        obs.enable()
        enabled.append(_timed_negotiations(fixture))
    span_count = len(obs.spans())
    obs.disable()

    ratio = min(enabled) / min(disabled)
    metrics = {
        "workload": f"bushy-{ALTERNATIVES}",
        "repeats_per_round": REPEATS,
        "rounds": ROUNDS,
        "disabled_seconds": round(min(disabled), 6),
        "enabled_seconds": round(min(enabled), 6),
        "overhead_ratio": round(ratio, 4),
        "max_overhead_ratio": MAX_OVERHEAD,
        "spans_recorded_last_round": span_count,
    }
    print_series(
        "Observability: instrumentation overhead (disabled vs enabled)",
        [
            ("obs disabled", metrics["disabled_seconds"], ""),
            ("obs enabled", metrics["enabled_seconds"],
             f"{span_count} spans"),
            ("overhead", f"{ratio:.3f}x",
             f"budget {MAX_OVERHEAD}x"),
        ],
        ("mode", "seconds (min of rounds)", "notes"),
    )
    _merge_report("instrumentation_overhead", metrics)
    assert ratio < MAX_OVERHEAD, (
        f"observability overhead {ratio:.3f}x exceeds the "
        f"{MAX_OVERHEAD}x budget"
    )


def test_bench_trace_artifact():
    fixture = formation_workload(FORMATION_ROLES)
    obs.enable()
    edition = fixture.initiator_edition
    edition.create_vo(fixture.contract)
    edition.enable_trust_negotiation()
    outcome = edition.execute_formation(fixture.plans(), parallel=True)
    obs.disable()

    assert len(outcome.joined) == FORMATION_ROLES
    spans = obs.spans()
    formation = next(s for s in spans if s.name == "vo.formation")
    members = [s for s in spans if s.trace_id == formation.trace_id]
    report = validate_trace(members)
    assert len(report["roots"]) == 1
    assert report["orphans"] == []

    trace = obs.to_chrome_trace(members)
    TRACE_PATH.write_text(json.dumps(trace, indent=1) + "\n")
    _merge_report("trace_artifact", {
        "roles": FORMATION_ROLES,
        "spans": report["spans"],
        "traces": report["traces"],
        "critical_path_ms": round(outcome.critical_path_ms, 3),
        "serial_ms": round(outcome.serial_ms, 3),
        "artifact": TRACE_PATH.name,
    })
    print_series(
        f"Observability: {FORMATION_ROLES}-role formation trace artifact",
        [
            ("spans", report["spans"]),
            ("roots", len(report["roots"])),
            ("orphans", len(report["orphans"])),
            ("critical path (ms)", round(outcome.critical_path_ms, 1)),
        ],
        ("measure", "value"),
    )
