"""Fault-tolerance overhead — simulated join time under injected faults.

The paper's Fig. 9 claim (join with TN costs ~27% over a plain join)
is measured fault-free. This series quantifies what the resilience
layer adds on top: each row is the simulated end-to-end time of the
AerospaceCo membership negotiation through the resilient stack, under
one fault profile, against the fault-free baseline. Backoffs, timeout
waits, and crash downtime are all charged to the simulated clock, so
the overhead column is deterministic.
"""

from __future__ import annotations

from benchmarks.conftest import print_series
from repro.faults.plan import FaultKind, FaultPlan
from repro.faults.demo import negotiate_under_faults
from repro.negotiation.outcomes import NegotiationResult
from repro.services.resilience import RetryPolicy

RETRY = RetryPolicy(jitter_seed=7)


def run_profile(plan):
    outcome, injector, resilient = negotiate_under_faults(plan, retry=RETRY)
    assert isinstance(outcome, NegotiationResult) and outcome.success
    return (
        resilient.clock.elapsed_ms,
        resilient.stats.retries,
        resilient.stats.backoff_ms_total,
        injector.total_injected(),
    )


def test_bench_fault_overhead():
    profiles = [
        ("fault-free", FaultPlan()),
        ("one drop", FaultPlan().at(2, FaultKind.DROP)),
        ("one timeout", FaultPlan().at(2, FaultKind.TIMEOUT)),
        ("one duplicate", FaultPlan().at(2, FaultKind.DUPLICATE)),
        ("crash + checkpoint recovery",
         FaultPlan().at(3, FaultKind.CRASH,
                        operation="CredentialExchange")),
        ("seeded storm (3 faults, seed 7)",
         FaultPlan.seeded(7, kinds=(FaultKind.DROP, FaultKind.TIMEOUT,
                                    FaultKind.DUPLICATE),
                          faults=3, horizon_calls=6)),
    ]
    baseline_ms = None
    rows = []
    for name, plan in profiles:
        elapsed_ms, retries, backoff_ms, injected = run_profile(plan)
        if baseline_ms is None:
            baseline_ms = elapsed_ms
        rows.append((
            name,
            f"{elapsed_ms:.0f}",
            f"{elapsed_ms - baseline_ms:+.0f}",
            f"{elapsed_ms / baseline_ms:.2f}x",
            injected,
            retries,
            f"{backoff_ms:.0f}",
        ))
    print_series(
        "Fault-tolerance overhead — simulated join negotiation time",
        rows,
        ("profile", "sim ms", "overhead ms", "ratio",
         "faults", "retries", "backoff ms"),
    )
    # sanity: faults only ever slow the run down, and the duplicate
    # (which needs no retry) stays cheapest among the faulted rows
    assert all(float(row[1]) >= baseline_ms for row in rows)


def test_bench_fault_overhead_deterministic():
    plan = lambda: FaultPlan.seeded(  # noqa: E731
        7, kinds=(FaultKind.DROP, FaultKind.TIMEOUT), faults=2,
        horizon_calls=6,
    )
    first = run_profile(plan())
    second = run_profile(plan())
    assert first == second
