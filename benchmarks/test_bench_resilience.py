"""Resilience wins under injected faults — hedging and asyncio recovery.

The asyncio-resilience gate, reported to ``BENCH_resilience.json`` at
the repo root (machine-readable, uploaded as a CI artifact):

**Hedged tail latency**: M full negotiations are driven against a
sharded TN cluster with a SLOW fault pinned to one shard, once with
hedging off and once with :class:`HedgePolicy` racing the ring
successor after a fixed delay.  Each session's formation latency is
simulated milliseconds on its own clock branch, so the comparison is
deterministic: the global requestId counter is re-seeded before each
mode, making routing (and hence the set of victim sessions) identical
across the two runs.  Health routing is off so the win is hedging's
alone.  Full-mode gates: **p99 cut >= 2x, p50 within 5%, and <= 10%
extra transport attempts** (a hedge fires only for the minority of
starts routed to the slow shard; every other operation is single-shot).

**Asyncio recovery**: the chaos soak runs in ``--asyncio`` mode with a
3-shard cluster and periodic node kills; the invariant checker
(disclosure safety, terminality, admission reconciliation) must come
back clean and at least one mid-negotiation session must be recovered
via journal failover.

``BENCH_QUICK=1`` shrinks the workload for CI smoke runs; sections are
stamped ``"quick": true`` and the gates are skipped outright.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
from pathlib import Path

from benchmarks.conftest import print_series
from repro.api import WorkloadRunner
from repro.cluster import AioShardedTNService, HedgePolicy
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan
from repro.scenario.workloads import capacity_workload
from repro.services import tn_client
from repro.services.aio import AioSimTransport, AioTNClient

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

#: Full negotiations per mode (hedging off / on).
SESSIONS = 48 if QUICK else 240
#: Ring size; exactly one shard is degraded.
SHARDS = 4 if QUICK else 8
#: Distinct requester identities, assigned round-robin to sessions.
REQUESTERS = 8 if QUICK else 16
#: Simulated service delay on the degraded shard.
SLOW_MS = 4000.0
#: Fixed hedge delay — no percentile adaptation, so both modes are
#: directly comparable call-for-call.
HEDGE_DELAY_MS = 500.0

SOAK_NEGOTIATIONS = 40 if QUICK else 80
SOAK_KILL_EVERY = 20 if QUICK else 25

MIN_P99_CUT = 2.0
P50_TOLERANCE = 0.05
MAX_EXTRA_ATTEMPTS = 0.10

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_resilience.json"


def _merge_report(section: str, payload: dict) -> None:
    """Read-modify-write one section of BENCH_resilience.json so the
    tests can run in any order (or individually)."""
    report = {}
    if REPORT_PATH.exists():
        try:
            report = json.loads(REPORT_PATH.read_text())
        except json.JSONDecodeError:
            report = {}
    report["quick_mode"] = QUICK
    payload["quick"] = QUICK
    report[section] = payload
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _run_formation_storm(fixture, hedged: bool) -> dict:
    """Drive SESSIONS full negotiations against a cluster with one
    SLOW shard; per-session latency measured on clock branches."""
    # Re-seed the process-global requestId counter so both modes see
    # identical tokens — identical ring routing, identical victim set.
    tn_client._request_ids = itertools.count(1)
    transport = AioSimTransport()
    plan = FaultPlan(slow_ms=SLOW_MS)
    injector = FaultInjector(transport, plan)
    cluster = AioShardedTNService(
        fixture.controller, injector, url="urn:tn-bench", shards=SHARDS,
        agents={agent.name: agent for agent in fixture.requesters},
        hedge=HedgePolicy(delay_ms=HEDGE_DELAY_MS) if hedged else None,
    )
    victim = cluster.nodes()[0].url
    plan.always(FaultKind.SLOW, url=victim)
    at = fixture.negotiation_time()

    async def one_session(index: int) -> float:
        agent = fixture.requesters[index % len(fixture.requesters)]
        with transport.clock_branch() as branch:
            begin = branch.elapsed_ms
            client = AioTNClient(injector, "urn:tn-bench", agent)
            result = await client.negotiate(fixture.resource, at=at)
            assert result.success, result.failure_detail
            return branch.elapsed_ms - begin

    async def run_all() -> list[float]:
        # Sequential on purpose: formation latency per session, not
        # throughput — concurrency is BENCH_async.json's axis.
        return [await one_session(index) for index in range(SESSIONS)]

    deltas = asyncio.run(run_all())
    stats = {
        "mode": "hedged" if hedged else "unhedged",
        "sessions": SESSIONS,
        "sim_ms_p50": round(_percentile(deltas, 0.50), 3),
        "sim_ms_p99": round(_percentile(deltas, 0.99), 3),
        "sim_ms_max": round(max(deltas), 3),
        "transport_attempts": transport.calls,
        "hedges_fired": cluster.hedge_stats.fired,
        "hedges_won": cluster.hedge_stats.won,
        "hedges_cancelled": cluster.hedge_stats.cancelled,
    }
    cluster.close()
    return stats


def test_bench_hedged_tail_latency():
    fixture = capacity_workload(REQUESTERS)
    off = _run_formation_storm(fixture, hedged=False)
    on = _run_formation_storm(fixture, hedged=True)
    p99_cut = off["sim_ms_p99"] / max(1e-9, on["sim_ms_p99"])
    p50_drift = abs(on["sim_ms_p50"] - off["sim_ms_p50"]) / max(
        1e-9, off["sim_ms_p50"]
    )
    extra_attempts = (
        on["transport_attempts"] - off["transport_attempts"]
    ) / max(1, off["transport_attempts"])
    metrics = {
        "sessions": SESSIONS,
        "shards": SHARDS,
        "slow_ms": SLOW_MS,
        "hedge_delay_ms": HEDGE_DELAY_MS,
        "unhedged": off,
        "hedged": on,
        "p99_cut": round(p99_cut, 3),
        "p50_drift": round(p50_drift, 4),
        "extra_attempts": round(extra_attempts, 4),
    }
    print_series(
        f"Hedged starts under one slow shard ({SESSIONS} formations, "
        f"{SHARDS} shards)",
        [
            ("unhedged", off["sim_ms_p50"], off["sim_ms_p99"],
             off["transport_attempts"], 0),
            ("hedged", on["sim_ms_p50"], on["sim_ms_p99"],
             on["transport_attempts"], on["hedges_fired"]),
            ("p99 cut", f"{metrics['p99_cut']}x", "", "", ""),
        ],
        ("mode", "sim p50 ms", "sim p99 ms", "attempts", "hedges"),
    )
    _merge_report("hedged_tail_latency", metrics)
    if QUICK:
        return  # quick mode measures and reports; only full mode gates
    assert p99_cut >= MIN_P99_CUT, (
        f"hedging must cut p99 formation latency >= {MIN_P99_CUT}x "
        f"under one slow shard, measured {p99_cut:.2f}x"
    )
    assert p50_drift <= P50_TOLERANCE, (
        f"the tail win must not move the median: p50 drifted "
        f"{p50_drift:.1%} (limit {P50_TOLERANCE:.0%})"
    )
    assert extra_attempts <= MAX_EXTRA_ATTEMPTS, (
        f"hedging must stay frugal: {extra_attempts:.1%} extra "
        f"transport attempts (limit {MAX_EXTRA_ATTEMPTS:.0%})"
    )


def test_bench_asyncio_recovery():
    report = WorkloadRunner().run(
        "soak", seed=7, negotiations=SOAK_NEGOTIATIONS, roles=3,
        asyncio_mode=True, cluster_shards=3,
        node_kill_every=SOAK_KILL_EVERY,
    )
    metrics = {
        "negotiations": SOAK_NEGOTIATIONS,
        "cluster_shards": 3,
        "node_kill_every": SOAK_KILL_EVERY,
        "ok": report.ok,
        "violations": len(report.violations),
        "successes": report.successes,
        "node_kills": report.node_kills,
        "failovers": report.failovers,
        "sessions_recovered": report.sessions_recovered,
        "hedges_fired": report.hedges_fired,
        "shard_ejections": report.shard_ejections,
        "health_probes": report.health_probes,
    }
    print_series(
        f"Asyncio soak recovery ({SOAK_NEGOTIATIONS} negotiations, "
        "3 shards, mid-soak kills)",
        [
            ("node kills", report.node_kills),
            ("failovers", report.failovers),
            ("sessions recovered", report.sessions_recovered),
            ("invariant violations", len(report.violations)),
            ("verdict", report.summary().split(":")[0]),
        ],
        ("metric", "value"),
    )
    _merge_report("asyncio_recovery", metrics)
    if QUICK:
        return
    assert report.ok, report.to_json()
    assert report.violations == []
    assert report.sessions_recovered >= 1, (
        "a mid-soak shard kill must hand at least one in-flight "
        "session to a survivor via journal failover"
    )
