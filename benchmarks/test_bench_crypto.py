"""Ablation — cryptographic cost of credential exchange.

The exchange phase verifies one issuer signature and one ownership
proof per disclosure.  This bench sweeps RSA key sizes to show how the
signature share of negotiation cost scales, and measures the full
credential verification pipeline.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_series
from repro.credentials.authority import CredentialAuthority
from repro.credentials.revocation import RevocationRegistry
from repro.trust import TrustBus
from repro.credentials.validation import CredentialValidator, OwnershipProof
from repro.crypto import rsa
from repro.crypto.keys import KeyPair, Keyring
from tests.conftest import ISSUE_AT, NEGOTIATION_AT

KEY_BITS = [512, 1024, 2048]


@pytest.fixture(scope="module", params=KEY_BITS)
def keypair(request):
    return request.param, rsa.generate_keypair(request.param)


def test_bench_keygen_512(benchmark):
    benchmark(rsa.generate_keypair, 512)


def test_bench_sign(benchmark, keypair):
    bits, key = keypair
    benchmark(rsa.sign, key, b"design-optimization control file")
    benchmark.extra_info["bits"] = bits


def test_bench_verify(benchmark, keypair):
    bits, key = keypair
    signature = rsa.sign(key, b"msg")
    assert benchmark(rsa.verify, key.public_key, b"msg", signature)
    benchmark.extra_info["bits"] = bits


@pytest.fixture(scope="module")
def validation_setup():
    ca = CredentialAuthority.create("CA", key_bits=1024)
    holder = KeyPair.generate(1024)
    ring = Keyring()
    ring.add("CA", ca.public_key)
    registry = RevocationRegistry()
    TrustBus(registry=registry).publish_crl(ca.crl)
    credential = ca.issue("T", "Holder", holder.fingerprint,
                          {"a": 1, "b": "x"}, ISSUE_AT)
    return CredentialValidator(ring, registry), credential, holder


def test_bench_full_validation_pipeline(benchmark, validation_setup):
    validator, credential, holder = validation_setup

    def run():
        nonce = validator.issue_challenge()
        proof = OwnershipProof.respond(nonce, holder.private)
        return validator.validate(credential, NEGOTIATION_AT, proof, nonce)

    report = benchmark(run)
    assert report.ok


def test_crypto_series_report(benchmark):
    benchmark(lambda: None)  # series reports run once, not timed
    import time

    rows = []
    for bits in KEY_BITS:
        key = rsa.generate_keypair(bits)
        start = time.perf_counter()
        for _ in range(20):
            signature = rsa.sign(key, b"m")
        sign_ms = (time.perf_counter() - start) / 20 * 1e3
        start = time.perf_counter()
        for _ in range(20):
            rsa.verify(key.public_key, b"m", signature)
        verify_ms = (time.perf_counter() - start) / 20 * 1e3
        rows.append((bits, f"{sign_ms:.2f}", f"{verify_ms:.3f}"))
    print_series(
        "RSA cost by key size (per disclosure: 1 sign + 2 verifies)",
        rows,
        headers=("modulus bits", "sign ms", "verify ms"),
    )
    # Signing cost grows superlinearly with the modulus.
    sign_costs = [float(row[1]) for row in rows]
    assert sign_costs[0] < sign_costs[-1]
