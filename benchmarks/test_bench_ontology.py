"""Ablation — the semantic layer's overhead.

The paper argues the ontology extension frees negotiators from knowing
credential syntax (Section 4.3) at the cost of a reasoning step.  This
bench measures Algorithm 1's three resolution paths — direct credential
naming (no ontology work), concept lookup (ontology hit), and
similarity fallback (full ComputeSimilarity sweep) — plus full
cross-ontology alignment as ontologies grow.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_series
from repro.credentials.authority import CredentialAuthority
from repro.ontology.builtin import aerospace_reference_ontology
from repro.ontology.mapping import ConceptMapper
from repro.ontology.matching import match_ontologies
from repro.policy.compliance import ComplianceChecker
from repro.policy.terms import Term
from repro.scenario.workloads import make_portfolio, random_ontology

ONTOLOGY_SIZES = [8, 16, 32, 64]


@pytest.fixture(scope="module")
def setup():
    authority = CredentialAuthority.create("BenchCA", key_bits=512)
    profile, _ = make_portfolio("Owner", 20, authority)
    # Bind one real concept to a portfolio credential type.
    ontology = aerospace_reference_ontology()
    ontology.add_concept("PortfolioCred0", bindings=["Cred0"])
    mapper = ConceptMapper(ontology)
    return profile, mapper


def test_bench_direct_term_resolution(benchmark, setup):
    profile, mapper = setup
    checker = ComplianceChecker()
    term = Term.credential("Cred0")
    candidates = benchmark(checker.candidates, term, profile)
    assert candidates


def test_bench_concept_lookup(benchmark, setup):
    profile, mapper = setup
    outcome = benchmark(mapper.map_concept, "PortfolioCred0", profile)
    assert outcome.confidence == 1.0


def test_bench_similarity_fallback(benchmark, setup):
    profile, mapper = setup
    outcome = benchmark(
        mapper.map_concept, "portfolio credential zero", profile
    )
    assert outcome.confidence < 1.0


@pytest.mark.parametrize("size", ONTOLOGY_SIZES)
def test_bench_ontology_alignment(benchmark, size):
    left = random_ontology("left", size, seed=1)
    right = random_ontology("right", size, seed=2)
    mapping = benchmark(match_ontologies, left, right)
    assert len(mapping) == size


def test_ontology_series_report(setup, benchmark):
    benchmark(lambda: None)  # series reports run once, not timed
    import time

    profile, mapper = setup
    checker = ComplianceChecker()

    def timed(callable_, *args, repeat=200):
        start = time.perf_counter()
        for _ in range(repeat):
            callable_(*args)
        return (time.perf_counter() - start) / repeat * 1e6  # µs

    rows = [
        ("direct credential naming",
         f"{timed(checker.candidates, Term.credential('Cred0'), profile):.0f}"),
        ("concept lookup (ontology hit)",
         f"{timed(mapper.map_concept, 'PortfolioCred0', profile):.0f}"),
        ("similarity fallback (full sweep)",
         f"{timed(mapper.map_concept, 'portfolio credential zero', profile):.0f}"),
    ]
    print_series(
        "Semantic-layer overhead per term resolution",
        rows,
        headers=("resolution path", "µs/op"),
    )
    alignment_rows = []
    for size in ONTOLOGY_SIZES:
        left = random_ontology("left", size, seed=1)
        right = random_ontology("right", size, seed=2)
        start = time.perf_counter()
        match_ontologies(left, right)
        alignment_rows.append((size, f"{(time.perf_counter()-start)*1e3:.2f}"))
    print_series(
        "Cross-ontology alignment (O(n^2) sweep)",
        alignment_rows,
        headers=("concepts per ontology", "ms"),
    )
