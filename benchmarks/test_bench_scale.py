"""Shard scaling — ``ShardedTNService`` throughput from 1 to 8 shards.

Closes the roadmap's missing bench gate on the sharded TN service: the
consistent-hash router should spread independent sessions across
shards nearly uniformly, so aggregate session throughput (in simulated
time) scales close to linearly with the shard count.

Method: M independent negotiation sessions (distinct requesters,
distinct requestIds) are driven through the router, each on its own
clock branch.  A session's simulated cost lands on the shard its
negotiation id was pinned to (``placement_index``); a shard's *busy
time* is the sum of its sessions' branch deltas, and the cluster's
makespan is the busiest shard — shards are independent services, so
simulated time advances as the critical path, exactly like parallel
formation lanes.  Aggregate throughput is sessions per simulated
second of makespan.

Full-mode gates: **8 shards >= 5x the single-shard throughput** (near-
linear modulo hash imbalance) and every shard serves at least one
session.  Reported to ``BENCH_scale.json`` at the repo root; with
``BENCH_QUICK=1`` the workload shrinks, the report is stamped
``"quick": true``, and the gates are skipped outright.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from benchmarks.conftest import print_series
from repro.cluster import ShardedTNService
from repro.scenario.workloads import capacity_workload
from repro.services.tn_client import next_request_id
from repro.services.transport import SimTransport

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

SESSIONS = 64 if QUICK else 400
SHARD_COUNTS = (1, 2, 4, 8)
#: Ring replicas per shard: raised above the constructor default so
#: hash imbalance, not ring-segment variance, bounds the skew.
RING_REPLICAS = 256

MIN_SCALING_8 = 5.0

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_scale.json"


def _merge_report(section: str, payload: dict) -> None:
    """Read-modify-write one section of BENCH_scale.json so the tests
    can run in any order (or individually)."""
    report = {}
    if REPORT_PATH.exists():
        try:
            report = json.loads(REPORT_PATH.read_text())
        except json.JSONDecodeError:
            report = {}
    report["quick_mode"] = QUICK
    payload["quick"] = QUICK
    report[section] = payload
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")


def _run_cluster(fixture, shards: int) -> dict:
    transport = SimTransport()
    cluster = ShardedTNService(
        fixture.controller, transport, url="urn:tn-scale",
        shards=shards, replicas=RING_REPLICAS, checkpoints=False,
    )
    at = fixture.negotiation_time()
    shard_busy_ms = [0.0] * shards
    shard_sessions = [0] * shards
    for index in range(SESSIONS):
        agent = fixture.requesters[index % len(fixture.requesters)]
        with transport.clock_branch() as branch:
            begin = branch.elapsed_ms
            start = transport.call("urn:tn-scale", "StartNegotiation", {
                "requester": agent,
                "strategy": "standard",
                "requestId": next_request_id(agent.name, fixture.resource),
            })
            negotiation_id = start["negotiationId"]
            transport.call("urn:tn-scale", "PolicyExchange", {
                "negotiationId": negotiation_id,
                "resource": fixture.resource,
                "at": at,
                "clientSeq": 1,
            })
            exchange = transport.call("urn:tn-scale", "CredentialExchange", {
                "negotiationId": negotiation_id,
                "clientSeq": 2,
            })
            assert exchange["success"], exchange["failureReason"]
            delta_ms = branch.elapsed_ms - begin
        placed = cluster.placement_index(negotiation_id)
        assert placed is not None, f"unplaced session {negotiation_id!r}"
        shard_busy_ms[placed] += delta_ms
        shard_sessions[placed] += 1
    cluster.close()
    makespan_ms = max(shard_busy_ms)
    return {
        "shards": shards,
        "sessions": SESSIONS,
        "makespan_ms": round(makespan_ms, 3),
        "throughput_per_sim_sec": round(
            SESSIONS / (makespan_ms / 1000.0), 3
        ),
        "per_shard": [
            {
                "shard": index,
                "sessions": shard_sessions[index],
                "busy_ms": round(shard_busy_ms[index], 3),
                "throughput_per_sim_sec": round(
                    shard_sessions[index] / (shard_busy_ms[index] / 1000.0),
                    3,
                ) if shard_busy_ms[index] else 0.0,
            }
            for index in range(shards)
        ],
    }


def test_bench_shard_scaling():
    fixture = capacity_workload(16)
    runs = [_run_cluster(fixture, shards) for shards in SHARD_COUNTS]
    base = runs[0]["throughput_per_sim_sec"]
    for run in runs:
        run["scaling_vs_1_shard"] = round(
            run["throughput_per_sim_sec"] / base, 3
        )
    metrics = {
        "sessions": SESSIONS,
        "ring_replicas": RING_REPLICAS,
        "runs": runs,
    }
    print_series(
        f"Shard scaling: {SESSIONS} sessions across 1-8 TN shards",
        [
            (run["shards"], run["throughput_per_sim_sec"],
             f"{run['scaling_vs_1_shard']}x",
             "/".join(str(s["sessions"]) for s in run["per_shard"]))
            for run in runs
        ],
        ("shards", "sessions/sim-sec", "scaling", "per-shard sessions"),
    )
    _merge_report("shard_scaling", metrics)
    if QUICK:
        return  # quick mode measures and reports; only full mode gates
    final = runs[-1]
    assert final["shards"] == 8
    for shard in final["per_shard"]:
        assert shard["sessions"] >= 1, (
            f"shard {shard['shard']} served no sessions — the router is "
            "not spreading load"
        )
    assert final["scaling_vs_1_shard"] >= MIN_SCALING_8, (
        f"8 shards must scale >= {MIN_SCALING_8}x over one shard, "
        f"measured {final['scaling_vs_1_shard']}x"
    )
