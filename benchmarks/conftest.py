"""Benchmark-suite helpers: table printing for paper-vs-measured rows.

Every series is printed *and* written to ``benchmarks/results/`` so the
reproduced rows survive pytest's output capture and can be pasted into
EXPERIMENTS.md.  Each ``<slug>.txt`` table gets a machine-readable
``<slug>.json`` sidecar (title, headers, rows) so downstream tooling —
CI artifact diffing, plotting — never has to re-parse the aligned text.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def print_series(title: str, rows: list[tuple], headers: tuple[str, ...]) -> None:
    """Print one reproduced table/figure as an aligned text table and
    persist it (text + JSON sidecar) under benchmarks/results/."""
    widths = [
        max(len(str(headers[i])), max((len(str(row[i])) for row in rows), default=0))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines = [f"=== {title} ===", line, "-" * len(line)]
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    text = "\n".join(lines)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    slug = re.sub(r"[^a-z0-9]+", "-", title.lower()).strip("-")[:60]
    (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")
    sidecar = {
        "title": title,
        "headers": list(headers),
        "rows": [list(row) for row in rows],
    }
    (RESULTS_DIR / f"{slug}.json").write_text(
        json.dumps(sidecar, indent=2, default=str) + "\n"
    )
