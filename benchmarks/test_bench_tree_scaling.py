"""Ablation — negotiation-tree growth.

Negotiation cost as the policy graph deepens (chains of alternating
requirements) and as resources accumulate alternatives (bushy policy
sets).  Expected shape: messages and tree size grow linearly with chain
depth; with alternatives, the greedy first-satisfiable-view choice
keeps the *exchange* phase flat while the *policy* phase grows with the
number of alternatives examined.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_series
from repro.negotiation.engine import negotiate
from repro.scenario.workloads import bushy_workload, chain_workload

DEPTHS = [1, 2, 4, 6, 8]
ALTERNATIVES = [1, 2, 4, 8]


def run_chain(depth: int):
    fixture = chain_workload(depth)
    result = negotiate(
        fixture.requester, fixture.controller, fixture.resource,
        at=fixture.negotiation_time(),
    )
    assert result.success
    return result


def run_bushy(alternatives: int):
    fixture = bushy_workload(alternatives)
    result = negotiate(
        fixture.requester, fixture.controller, fixture.resource,
        at=fixture.negotiation_time(),
    )
    assert result.success
    return result


@pytest.mark.parametrize("depth", DEPTHS)
def test_bench_chain_depth(benchmark, depth):
    fixture = chain_workload(depth)

    def run():
        return negotiate(
            fixture.requester, fixture.controller, fixture.resource,
            at=fixture.negotiation_time(),
        )

    result = benchmark(run)
    assert result.success
    benchmark.extra_info["messages"] = result.total_messages
    benchmark.extra_info["tree_nodes"] = len(result.tree)


@pytest.mark.parametrize("alternatives", ALTERNATIVES)
def test_bench_bushy_alternatives(benchmark, alternatives):
    fixture = bushy_workload(alternatives)

    def run():
        return negotiate(
            fixture.requester, fixture.controller, fixture.resource,
            at=fixture.negotiation_time(),
        )

    result = benchmark(run)
    assert result.success
    benchmark.extra_info["messages"] = result.total_messages


def test_tree_scaling_series_report(benchmark):
    benchmark(lambda: None)  # series reports run once, not timed
    chain_rows = []
    for depth in DEPTHS:
        result = run_chain(depth)
        chain_rows.append((
            depth, len(result.tree), result.total_messages,
            result.disclosures,
        ))
    print_series(
        "Tree scaling — chain depth",
        chain_rows,
        headers=("depth", "tree nodes", "messages", "disclosures"),
    )
    bushy_rows = []
    for alternatives in ALTERNATIVES:
        result = run_bushy(alternatives)
        bushy_rows.append((
            alternatives, len(result.tree), result.policy_messages,
            result.exchange_messages,
        ))
    print_series(
        "Tree scaling — alternatives per resource",
        bushy_rows,
        headers=("alternatives", "tree nodes", "policy msgs",
                 "exchange msgs"),
    )
    # Linear growth with depth; exchange flat with alternatives.
    messages = [row[2] for row in chain_rows]
    assert messages == sorted(messages)
    exchange = {row[3] for row in bushy_rows}
    assert len(exchange) == 1
