"""Concurrent-session capacity — asyncio driver vs thread pool.

The sans-IO refactor's gate, reported to ``BENCH_async.json`` at the
repo root (machine-readable, uploaded as a CI artifact):

**Capacity at equal latency**: M negotiation sessions are driven
against one TN Web service, once through the thread-pool path (W pool
threads, each running the sync :class:`TNClient` to completion) and
once through the asyncio path (M tasks, each awaiting an
:class:`AioTNClient`; the client yields between the three protocol
operations, so every session stays open while the others progress).
The service's ``in_flight_peak`` gauge records how many sessions each
driver actually held open at once — the thread pool is structurally
capped at W, while the event loop holds all M.  Per-session latency is
simulated milliseconds measured on each session's own clock branch, so
it is deterministic and must NOT degrade: the asyncio p95 has to be
equal or better.

Full-mode gates: **>= 10x peak concurrent sessions at equal-or-better
p95**, with every session succeeding in both modes.

A second, non-gated section reports the wall-clock effect of batched
signature verification (one vectorized RSA pass feeding the
CRL-invalidated signature cache) against the scalar per-credential
path on a policy-chain workload.

``BENCH_QUICK=1`` shrinks the workload for CI smoke runs; the section
is stamped ``"quick": true`` and the gates are skipped outright.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from benchmarks.conftest import print_series
from repro.negotiation.engine import negotiate
from repro.perf import clear_all_caches
from repro.scenario.workloads import capacity_workload, chain_workload
from repro.services.aio import AioSimTransport, AioTNClient, AioTNWebService
from repro.services.tn_client import TNClient
from repro.services.tn_service import TNWebService
from repro.services.transport import SimTransport
from repro.storage.document_store import XMLDocumentStore

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

#: Concurrent sessions driven against the single service.
SESSIONS = 64 if QUICK else 320
#: Pool width of the thread path — the realistic per-service ceiling a
#: thread-per-session design pays stack + scheduling for.
THREAD_WORKERS = 8 if QUICK else 16
#: Distinct requester identities, assigned round-robin to sessions.
REQUESTERS = 16 if QUICK else 32

BATCH_CHAIN_DEPTH = 4 if QUICK else 8
BATCH_REPEATS = 5 if QUICK else 40

MIN_CAPACITY_RATIO = 10.0

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_async.json"


def _merge_report(section: str, payload: dict) -> None:
    """Read-modify-write one section of BENCH_async.json so the tests
    can run in any order (or individually)."""
    report = {}
    if REPORT_PATH.exists():
        try:
            report = json.loads(REPORT_PATH.read_text())
        except json.JSONDecodeError:
            report = {}
    report["quick_mode"] = QUICK
    payload["quick"] = QUICK
    report[section] = payload
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _session_stats(deltas: list[float]) -> dict:
    return {
        "sessions": len(deltas),
        "sim_ms_p50": round(_percentile(deltas, 0.50), 3),
        "sim_ms_p95": round(_percentile(deltas, 0.95), 3),
        "sim_ms_max": round(max(deltas), 3),
    }


def _run_thread_pool(fixture) -> dict:
    transport = SimTransport()
    store = XMLDocumentStore("tn-async-bench-threads")
    service = TNWebService(
        fixture.controller, transport, store, "urn:tn-bench"
    )
    at = fixture.negotiation_time()

    def one_session(index: int) -> float:
        agent = fixture.requesters[index % len(fixture.requesters)]
        with transport.clock_branch() as branch:
            begin = branch.elapsed_ms
            result = TNClient(transport, "urn:tn-bench", agent).negotiate(
                fixture.resource, at=at
            )
            assert result.success, result.failure_detail
            return branch.elapsed_ms - begin

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=THREAD_WORKERS) as pool:
        deltas = list(pool.map(one_session, range(SESSIONS)))
    seconds = time.perf_counter() - started
    stats = _session_stats(deltas)
    stats.update(
        driver="thread-pool",
        workers=THREAD_WORKERS,
        peak_in_flight=service.in_flight_peak,
        wall_seconds=round(seconds, 6),
        sessions_per_sec=round(SESSIONS / seconds, 2),
    )
    service.close()
    return stats


def _run_asyncio(fixture) -> dict:
    transport = AioSimTransport()
    store = XMLDocumentStore("tn-async-bench-aio")
    service = AioTNWebService(
        fixture.controller, transport, store, "urn:tn-bench"
    )
    at = fixture.negotiation_time()

    async def one_session(index: int) -> float:
        agent = fixture.requesters[index % len(fixture.requesters)]
        with transport.clock_branch() as branch:
            begin = branch.elapsed_ms
            client = AioTNClient(transport, "urn:tn-bench", agent)
            result = await client.negotiate(fixture.resource, at=at)
            assert result.success, result.failure_detail
            return branch.elapsed_ms - begin

    async def run_all() -> list[float]:
        return list(await asyncio.gather(
            *(one_session(index) for index in range(SESSIONS))
        ))

    started = time.perf_counter()
    deltas = asyncio.run(run_all())
    seconds = time.perf_counter() - started
    stats = _session_stats(deltas)
    stats.update(
        driver="asyncio",
        peak_in_flight=service.in_flight_peak,
        wall_seconds=round(seconds, 6),
        sessions_per_sec=round(SESSIONS / seconds, 2),
    )
    service.close()
    return stats


def test_bench_async_session_capacity():
    fixture = capacity_workload(REQUESTERS)
    threads = _run_thread_pool(fixture)
    aio = _run_asyncio(fixture)
    capacity_ratio = aio["peak_in_flight"] / max(1, threads["peak_in_flight"])
    metrics = {
        "sessions": SESSIONS,
        "requesters": REQUESTERS,
        "thread_pool": threads,
        "asyncio": aio,
        "capacity_ratio": round(capacity_ratio, 3),
    }
    print_series(
        f"Async capacity: {SESSIONS} sessions (threads vs asyncio)",
        [
            ("thread-pool", threads["peak_in_flight"],
             threads["sim_ms_p95"], threads["sessions_per_sec"]),
            ("asyncio", aio["peak_in_flight"],
             aio["sim_ms_p95"], aio["sessions_per_sec"]),
            ("capacity ratio", f"{metrics['capacity_ratio']}x", "", ""),
        ],
        ("driver", "peak in-flight", "sim p95 ms", "sessions/sec"),
    )
    _merge_report("session_capacity", metrics)
    if QUICK:
        return  # quick mode measures and reports; only full mode gates
    assert capacity_ratio >= MIN_CAPACITY_RATIO, (
        f"asyncio driver must hold >= {MIN_CAPACITY_RATIO}x the thread "
        f"pool's concurrent sessions, measured {capacity_ratio:.1f}x"
    )
    assert aio["sim_ms_p95"] <= threads["sim_ms_p95"], (
        "the capacity win must not cost latency: asyncio p95 "
        f"{aio['sim_ms_p95']}ms > thread-pool p95 "
        f"{threads['sim_ms_p95']}ms"
    )


def test_bench_batched_signature_verification():
    fixture = chain_workload(BATCH_CHAIN_DEPTH)
    timings = {}
    for batch in (True, False):
        started = time.perf_counter()
        for _ in range(BATCH_REPEATS):
            # Cold caches every repeat: batching only has work to do
            # when the signature verdicts are not already cached.
            clear_all_caches()
            result = negotiate(
                fixture.requester, fixture.controller, fixture.resource,
                fixture.negotiation_time(), batch_verify=batch,
            )
            assert result.success
        timings[batch] = time.perf_counter() - started
    metrics = {
        "chain_depth": BATCH_CHAIN_DEPTH,
        "repeats": BATCH_REPEATS,
        "batched_seconds": round(timings[True], 6),
        "scalar_seconds": round(timings[False], 6),
        "speedup": round(timings[False] / timings[True], 3),
    }
    print_series(
        "Batched signature verification (cold caches)",
        [
            ("batched", metrics["batched_seconds"]),
            ("scalar", metrics["scalar_seconds"]),
            ("speedup", f"{metrics['speedup']}x"),
        ],
        ("mode", "seconds"),
    )
    # Informational: the vectorized pass shares padding work and skips
    # duplicates, but both paths verify the same signatures — this
    # section reports, it does not gate.
    _merge_report("batched_verification", metrics)
