"""Baseline — Trust-X vs the eager strategy (paper ref. [21]).

Trust-X's policy-evaluation phase exists to disclose only what the
counterpart's policies require.  The eager baseline (Winsborough et
al. 2000) skips policy exchange and discloses everything unlocked each
round.  This bench measures the privacy gap (credentials disclosed)
and the message/time cost of both approaches as profiles grow with
irrelevant credentials.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_series
from repro.credentials.authority import CredentialAuthority
from repro.credentials.revocation import RevocationRegistry
from repro.trust import TrustBus
from repro.crypto.keys import Keyring
from repro.negotiation.eager import eager_negotiate
from repro.negotiation.engine import negotiate
from tests.conftest import ISSUE_AT, NEGOTIATION_AT, make_agent

IRRELEVANT_COUNTS = [0, 4, 8, 16]


def build_parties(irrelevant: int):
    ca = CredentialAuthority.create("CA", key_bits=512)
    ring = Keyring()
    ring.add("CA", ca.public_key)
    registry = RevocationRegistry()
    TrustBus(registry=registry).publish_crl(ca.crl)
    from repro.crypto.keys import KeyPair

    req_keys = KeyPair.generate(512)
    ctrl_keys = KeyPair.generate(512)
    req_creds = [
        ca.issue("Badge", "Req", req_keys.fingerprint, {}, ISSUE_AT)
    ] + [
        ca.issue(f"Irrelevant{i}", "Req", req_keys.fingerprint, {}, ISSUE_AT)
        for i in range(irrelevant)
    ]
    ctrl_creds = [
        ca.issue("Proof", "Ctrl", ctrl_keys.fingerprint, {}, ISSUE_AT)
    ]
    requester = make_agent("Req", req_creds, "Badge <- Proof",
                           req_keys, ring, registry)
    controller = make_agent("Ctrl", ctrl_creds,
                            "RES <- Badge\nProof <- DELIV",
                            ctrl_keys, ring, registry)
    return requester, controller


@pytest.mark.parametrize("irrelevant", IRRELEVANT_COUNTS)
def test_bench_trustx(benchmark, irrelevant):
    requester, controller = build_parties(irrelevant)
    result = benchmark(
        negotiate, requester, controller, "RES", NEGOTIATION_AT
    )
    assert result.success
    benchmark.extra_info["disclosures"] = result.disclosures


@pytest.mark.parametrize("irrelevant", IRRELEVANT_COUNTS)
def test_bench_eager(benchmark, irrelevant):
    requester, controller = build_parties(irrelevant)
    result = benchmark(
        eager_negotiate, requester, controller, "RES", NEGOTIATION_AT
    )
    assert result.success
    benchmark.extra_info["disclosures"] = result.disclosures


def test_eager_series_report(benchmark):
    benchmark(lambda: None)  # series reports run once, not timed
    rows = []
    for irrelevant in IRRELEVANT_COUNTS:
        requester, controller = build_parties(irrelevant)
        trustx = negotiate(requester, controller, "RES", at=NEGOTIATION_AT)
        requester, controller = build_parties(irrelevant)
        eager = eager_negotiate(requester, controller, "RES",
                                at=NEGOTIATION_AT)
        rows.append((
            irrelevant,
            trustx.disclosures,
            eager.disclosures,
            trustx.total_messages,
            eager.total_messages,
        ))
    print_series(
        "Trust-X vs eager baseline — disclosures as profiles grow",
        rows,
        headers=("irrelevant creds", "Trust-X disclosed", "eager disclosed",
                 "Trust-X msgs", "eager msgs"),
    )
    # Trust-X disclosure count stays flat; eager leaks the whole profile.
    trustx_disclosed = {row[1] for row in rows}
    assert trustx_disclosed == {2}
    assert rows[-1][2] > rows[0][2]
