"""Ablation — trust-sequence (view) selection.

When several potential trust sequences exist (§4.2), the choice
matters: the first-offered alternative may disclose more, and more
sensitive, credentials than necessary.  This bench compares the three
selection modes on a policy set whose alternatives demand 1..N
credentials, with only the widest alternative listed first.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_series
from repro.credentials.authority import CredentialAuthority
from repro.credentials.revocation import RevocationRegistry
from repro.trust import TrustBus
from repro.credentials.sensitivity import Sensitivity
from repro.crypto.keys import KeyPair, Keyring
from repro.negotiation.engine import NegotiationEngine
from tests.conftest import ISSUE_AT, NEGOTIATION_AT, make_agent

MODES = ["first", "min_disclosure", "min_sensitivity"]
WIDTHS = [2, 4, 6]  # credentials demanded by the widest alternative


def build_parties(width: int):
    """Alternatives demanding width, width-1, ..., 1 credentials —
    widest first, so greedy 'first' picks the worst one."""
    ca = CredentialAuthority.create("CA", key_bits=512)
    ring = Keyring()
    ring.add("CA", ca.public_key)
    registry = RevocationRegistry()
    TrustBus(registry=registry).publish_crl(ca.crl)
    keys = KeyPair.generate(512)
    credentials = [
        ca.issue(
            f"Cert{i}", "Req", keys.fingerprint, {}, ISSUE_AT,
            sensitivity=Sensitivity.HIGH if i == 0 else Sensitivity.LOW,
        )
        for i in range(width)
    ]
    rules = []
    for size in range(width, 0, -1):
        body = ", ".join(f"Cert{i}" for i in range(size))
        rules.append(f"RES <- {body}")
    requester = make_agent("Req", credentials, "", keys, ring, registry)
    ctrl_keys = KeyPair.generate(512)
    controller = make_agent("Ctrl", [], "\n".join(rules), ctrl_keys, ring,
                            registry)
    return requester, controller


@pytest.mark.parametrize("mode", MODES)
def test_bench_view_selection(benchmark, mode):
    requester, controller = build_parties(4)

    def run():
        return NegotiationEngine(
            requester, controller, view_selection=mode
        ).run("RES", at=NEGOTIATION_AT)

    result = benchmark(run)
    assert result.success
    benchmark.extra_info["disclosures"] = result.disclosures


def test_view_selection_series_report(benchmark):
    benchmark(lambda: None)  # series reports run once, not timed
    rows = []
    for width in WIDTHS:
        per_mode = {}
        for mode in MODES:
            requester, controller = build_parties(width)
            result = NegotiationEngine(
                requester, controller, view_selection=mode
            ).run("RES", at=NEGOTIATION_AT)
            assert result.success
            per_mode[mode] = result.disclosures
        rows.append((
            width, per_mode["first"], per_mode["min_disclosure"],
            per_mode["min_sensitivity"],
        ))
    print_series(
        "View selection — credentials disclosed by selection mode",
        rows,
        headers=("widest alternative", "first", "min_disclosure",
                 "min_sensitivity"),
    )
    # Greedy-first pays the widest alternative; the optimisers pay 1.
    for row in rows:
        assert row[1] == row[0]
        assert row[2] == 1
