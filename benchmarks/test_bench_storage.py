"""Ablation — storage backend for policies and credentials.

The prototype migrated the TN store from Oracle (XML + XPath) to MySQL,
accepting that MySQL "has very few features to support the storage of
XML data and the execution of XPath queries" (Section 6.3).  This bench
quantifies the trade-off: XPath query on the document store (full scan),
indexed equality lookup (what Oracle's XML indexes give), and the
kv-store full scan with client-side parsing (the MySQL migration path).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_series
from repro.storage.document_store import XMLDocumentStore
from repro.storage.kvstore import KeyValueStore
from repro.xmlutil.canonical import parse_xml
from repro.xmlutil.xpath import XPath

N_DOCUMENTS = 200


def _policy_xml(index: int) -> str:
    return (
        f"<policy type='disclosure'><resource target='Res{index % 20}'/>"
        f"<properties><certificate targetCertType='Cred{index}'>"
        f"<certCond>//score &gt;= {index}</certCond>"
        f"</certificate></properties></policy>"
    )


@pytest.fixture(scope="module")
def stores():
    doc_store = XMLDocumentStore("oracle")
    kv_store = KeyValueStore("mysql")
    for index in range(N_DOCUMENTS):
        xml = _policy_xml(index)
        doc_store.put("policies", f"p{index}", xml)
        kv_store.put("policies", f"p{index}", xml)
    indexed = XMLDocumentStore("oracle-indexed")
    for index in range(N_DOCUMENTS):
        indexed.put("policies", f"p{index}", _policy_xml(index))
    indexed.create_index("policies", "/policy/resource/@target")
    return doc_store, indexed, kv_store


def test_bench_docstore_xpath_scan(benchmark, stores):
    doc_store, _, _ = stores
    matches = benchmark(
        doc_store.query, "policies", "/policy/resource/@target = 'Res7'"
    )
    assert len(matches) == N_DOCUMENTS // 20


def test_bench_docstore_indexed_lookup(benchmark, stores):
    _, indexed, _ = stores
    matches = benchmark(
        indexed.query_eq, "policies", "/policy/resource/@target", "Res7"
    )
    assert len(matches) == N_DOCUMENTS // 20


def test_bench_kvstore_scan_with_client_parse(benchmark, stores):
    _, _, kv_store = stores
    xpath = XPath("/policy/resource/@target = 'Res7'")

    def run():
        return kv_store.find(
            "policies", lambda key, value: xpath.matches(parse_xml(value))
        )

    matches = benchmark(run)
    assert len(matches) == N_DOCUMENTS // 20


def test_storage_series_report(stores, benchmark):
    benchmark(lambda: None)  # series reports run once, not timed
    import time

    doc_store, indexed, kv_store = stores
    xpath = XPath("/policy/resource/@target = 'Res7'")

    def timed(callable_, repeat=20):
        start = time.perf_counter()
        for _ in range(repeat):
            callable_()
        return (time.perf_counter() - start) / repeat * 1e3

    rows = [
        ("XML doc store, XPath scan",
         f"{timed(lambda: doc_store.query('policies', chr(47)+'policy/resource/@target = '+chr(39)+'Res7'+chr(39))):.3f}"),
        ("XML doc store, indexed equality",
         f"{timed(lambda: indexed.query_eq('policies', '/policy/resource/@target', 'Res7')):.3f}"),
        ("KV store, scan + client-side parse (MySQL path)",
         f"{timed(lambda: kv_store.find('policies', lambda k, v: xpath.matches(parse_xml(v)))):.3f}"),
    ]
    print_series(
        f"Storage ablation — policy lookup over {N_DOCUMENTS} documents",
        rows,
        headers=("backend / access path", "ms/query"),
    )
    index_ms = float(rows[1][1])
    kv_ms = float(rows[2][1])
    assert index_ms < kv_ms  # the migration's documented cost
