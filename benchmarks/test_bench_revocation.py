"""Retraction propagation — ``TrustBus`` latency and eviction precision.

Two questions the nonmonotonic-trust PR has to answer with numbers:

1. **Retraction-to-eviction latency** — how long from
   ``TrustBus.revoke`` returning until every derived artifact (the
   registry entry, the ``(issuer, serial)``-tagged signature verdicts,
   the provenance-matched trust sequences, the trust epoch) reflects
   the retraction.  The bus is synchronous, so this is simply the
   wall-clock cost of one ``revoke`` call: CRL re-sign + install +
   precise cache eviction + epoch bump + subscriber fan-out.

2. **Eviction precision** — what the ``(issuer, serial)`` tags buy
   over the old whole-issuer flush.  Revoking one credential must
   evict exactly that serial's cached verdicts; the deprecated
   issuer-wide sweep throws away every sibling verdict too, each of
   which costs a signature re-verification on next use.

Full-mode gates: zero collateral evictions on the precise path, and
the issuer flush demonstrably evicts all siblings.  Reported to
``BENCH_revocation.json`` at the repo root; ``BENCH_QUICK=1`` shrinks
the workload, stamps ``"quick": true``, and skips the gates.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from datetime import datetime
from pathlib import Path

from benchmarks.conftest import print_series
from repro.credentials.authority import CredentialAuthority
from repro.crypto.keys import KeyPair
from repro.perf import SIGNATURE_CACHE, clear_all_caches, drop_issuer_signatures
from repro.trust import TrustBus, trust_epoch

ISSUE_TIME = datetime(2009, 10, 26)

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

#: Credentials cached per issuer (the precision population).
CACHED_PER_ISSUER = 64 if QUICK else 256
#: Timed retraction samples.
RETRACTIONS = 20 if QUICK else 100

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_revocation.json"


def _merge_report(section: str, payload: dict) -> None:
    """Read-modify-write one section of BENCH_revocation.json so the
    tests can run in any order (or individually)."""
    report = {}
    if REPORT_PATH.exists():
        try:
            report = json.loads(REPORT_PATH.read_text())
        except json.JSONDecodeError:
            report = {}
    report["quick_mode"] = QUICK
    payload["quick"] = QUICK
    report[section] = payload
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")


def _issue_and_cache(authority: CredentialAuthority, count: int) -> list:
    """Issue ``count`` credentials and cache one signature verdict per
    credential under its ``(issuer, serial)`` tag, as the validator's
    hot path does."""
    holder = KeyPair.generate(512)
    credentials = []
    for index in range(count):
        credential = authority.issue(
            "BenchQual", f"holder-{index}", holder.fingerprint,
            {"index": str(index)}, ISSUE_TIME,
        )
        SIGNATURE_CACHE.put(
            (authority.keypair.fingerprint, credential.signing_bytes(),
             credential.signature_b64),
            True,
            tag=(credential.issuer, credential.serial),
        )
        credentials.append(credential)
    return credentials


def test_bench_retraction_latency():
    clear_all_caches()
    authority = CredentialAuthority.create("LatencyCA", key_bits=512)
    bus = TrustBus()
    bus.publish_crl(authority.crl)
    credentials = _issue_and_cache(authority, CACHED_PER_ISSUER)
    observed = []
    bus.subscribe(observed.append)

    samples_us = []
    epoch_before = trust_epoch()
    for credential in credentials[:RETRACTIONS]:
        begin = time.perf_counter_ns()
        receipt = bus.revoke(authority, credential)
        samples_us.append((time.perf_counter_ns() - begin) / 1_000.0)
        # The receipt proves the eviction happened inside the timed
        # window: retraction-to-eviction latency IS the call latency.
        assert receipt.evicted_signatures == 1
        assert bus.registry.is_revoked(credential.issuer, credential.serial)
    assert trust_epoch() == epoch_before + RETRACTIONS
    assert len(observed) == RETRACTIONS

    metrics = {
        "retractions": RETRACTIONS,
        "cached_verdicts": CACHED_PER_ISSUER,
        "median_us": round(statistics.median(samples_us), 2),
        "p95_us": round(
            sorted(samples_us)[int(len(samples_us) * 0.95) - 1], 2
        ),
        "max_us": round(max(samples_us), 2),
    }
    print_series(
        f"Retraction-to-eviction latency over {RETRACTIONS} revocations",
        [(metrics["median_us"], metrics["p95_us"], metrics["max_us"])],
        ("median us", "p95 us", "max us"),
    )
    _merge_report("retraction_latency", metrics)


def test_bench_eviction_precision():
    authority = CredentialAuthority.create("PrecisionCA", key_bits=512)
    bystander = CredentialAuthority.create("BystanderCA", key_bits=512)

    def populate():
        clear_all_caches()
        ours = _issue_and_cache(authority, CACHED_PER_ISSUER)
        _issue_and_cache(bystander, CACHED_PER_ISSUER)
        return ours

    # Precise path: one revocation through the bus.
    credentials = populate()
    bus = TrustBus()
    bus.publish_crl(authority.crl)
    before = len(SIGNATURE_CACHE)
    receipt = bus.revoke(authority, credentials[0])
    precise_evicted = receipt.evicted_signatures
    precise_retained = len(SIGNATURE_CACHE)
    precise_collateral = before - precise_retained - precise_evicted

    # Baseline: the deprecated whole-issuer flush on a fresh population.
    populate()
    before = len(SIGNATURE_CACHE)
    flush_evicted = drop_issuer_signatures(authority.name)
    flush_retained = len(SIGNATURE_CACHE)
    flush_collateral = flush_evicted - 1  # siblings lost to revoke ONE

    metrics = {
        "cached_per_issuer": CACHED_PER_ISSUER,
        "precise": {
            "evicted": precise_evicted,
            "collateral": precise_collateral,
            "retained": precise_retained,
        },
        "issuer_flush": {
            "evicted": flush_evicted,
            "collateral": flush_collateral,
            "retained": flush_retained,
        },
        #: Sibling re-verifications the tags avoid per revocation.
        "reverifications_saved": flush_collateral,
    }
    print_series(
        f"Eviction precision: revoke 1 of {CACHED_PER_ISSUER} cached "
        "credentials",
        [
            ("(issuer, serial) tag", precise_evicted, precise_collateral,
             precise_retained),
            ("whole-issuer flush", flush_evicted, flush_collateral,
             flush_retained),
        ],
        ("strategy", "evicted", "collateral", "retained"),
    )
    _merge_report("eviction_precision", metrics)
    clear_all_caches()
    if QUICK:
        return  # quick mode measures and reports; only full mode gates
    assert precise_evicted == 1
    assert precise_collateral == 0, (
        f"precise eviction dropped {precise_collateral} unrelated verdicts"
    )
    assert flush_evicted == CACHED_PER_ISSUER
    assert flush_collateral == CACHED_PER_ISSUER - 1
