"""Ablation — trust-sequence caching for recurring negotiations.

Long-lasting VOs re-run the same operation-phase negotiations (e.g.
periodic certificate re-verification, paper §5.1).  This bench
measures the message and CPU savings of replaying a cached trust
sequence versus running the full two-phase protocol every time.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_series
from repro.negotiation.cache import CachingNegotiator
from repro.negotiation.engine import negotiate
from repro.scenario.workloads import chain_workload

DEPTHS = [1, 2, 4]


def test_bench_full_negotiation_depth4(benchmark):
    fixture = chain_workload(4)
    result = benchmark(
        negotiate, fixture.requester, fixture.controller, fixture.resource,
        fixture.negotiation_time(),
    )
    assert result.success


def test_bench_cached_replay_depth4(benchmark):
    fixture = chain_workload(4)
    negotiator = CachingNegotiator()
    warm = negotiator.negotiate(
        fixture.requester, fixture.controller, fixture.resource,
        at=fixture.negotiation_time(),
    )
    assert warm.success

    def replay():
        return negotiator.negotiate(
            fixture.requester, fixture.controller, fixture.resource,
            at=fixture.negotiation_time(),
        )

    result = benchmark(replay)
    assert result.success
    assert result.policy_messages == 0


def test_cache_series_report(benchmark):
    benchmark(lambda: None)  # series reports run once, not timed
    rows = []
    for depth in DEPTHS:
        fixture = chain_workload(depth)
        negotiator = CachingNegotiator()
        full = negotiator.negotiate(
            fixture.requester, fixture.controller, fixture.resource,
            at=fixture.negotiation_time(),
        )
        cached = negotiator.negotiate(
            fixture.requester, fixture.controller, fixture.resource,
            at=fixture.negotiation_time(),
        )
        rows.append((
            depth,
            full.total_messages,
            cached.total_messages,
            f"{full.total_messages / cached.total_messages:.2f}x",
        ))
    print_series(
        "Sequence-cache replay — message savings on repeat negotiations",
        rows,
        headers=("chain depth", "full msgs", "cached msgs", "saving"),
    )
    assert all(row[1] > row[2] for row in rows)
