"""Durable agent state: saving and restoring a party's X-Profile and
policy base.

The prototype parties kept their credentials and disclosure policies
in a database and connected to it at ``StartNegotiation`` time.  This
module provides the equivalent persistence layer over
:class:`~repro.storage.document_store.XMLDocumentStore`: one document
per party for the X-Profile (which the paper defines as "a unique XML
document") and one for the policy base.
"""

from __future__ import annotations

from repro.credentials.profile import XProfile
from repro.errors import DocumentNotFoundError, StorageError
from repro.policy.policybase import PolicyBase
from repro.storage.document_store import XMLDocumentStore

__all__ = ["AgentStateStore"]

_PROFILE_COLLECTION = "xprofiles"
_POLICY_COLLECTION = "policy-bases"


class AgentStateStore:
    """Persists and restores (profile, policies) pairs per party."""

    def __init__(self, store: XMLDocumentStore | None = None) -> None:
        self.store = store or XMLDocumentStore("agent-state")

    # -- save ---------------------------------------------------------------------

    def save_profile(self, profile: XProfile) -> None:
        self.store.put(_PROFILE_COLLECTION, profile.owner, profile.to_xml())

    def save_policies(self, policies: PolicyBase) -> None:
        self.store.put(_POLICY_COLLECTION, policies.owner, policies.to_xml())

    def save_agent(self, agent) -> None:
        """Persist both halves of a :class:`TrustXAgent`'s local state.

        Key material and keyrings are deliberately *not* persisted
        here: in the prototype those live in the party's key store, not
        the negotiation database.
        """
        if agent.profile.owner != agent.policies.owner:
            raise StorageError(
                f"agent {agent.name!r} has mismatched profile/policy owners"
            )
        self.save_profile(agent.profile)
        self.save_policies(agent.policies)

    # -- load ---------------------------------------------------------------------

    def load_profile(self, owner: str) -> XProfile:
        xml = self.store.get_xml(_PROFILE_COLLECTION, owner)
        return XProfile.from_xml(xml)

    def load_policies(self, owner: str) -> PolicyBase:
        xml = self.store.get_xml(_POLICY_COLLECTION, owner)
        return PolicyBase.from_xml(xml)

    def restore_agent(self, agent) -> None:
        """Replace ``agent``'s profile and policies with stored state."""
        agent.profile = self.load_profile(agent.name)
        agent.policies = self.load_policies(agent.name)

    # -- inventory ------------------------------------------------------------------

    def owners(self) -> list[str]:
        return self.store.ids(_PROFILE_COLLECTION)

    def has_state_for(self, owner: str) -> bool:
        try:
            self.store.get(_PROFILE_COLLECTION, owner)
            return True
        except DocumentNotFoundError:
            return False
