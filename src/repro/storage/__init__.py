"""Storage substrates standing in for the prototype's databases.

The TN Web service stored disclosure policies and credentials in
Oracle 10g and evaluated XPath queries over the XML data; the VO
Management toolkit used MySQL, and the integration migrated the TN
store onto MySQL even though it has "very few features to support the
storage of XML data and the execution of XPath queries" (paper
Section 6.3).  Both ends of that trade-off are reproduced:

- :class:`~repro.storage.document_store.XMLDocumentStore` — an XML
  document store with XPath-subset queries (the Oracle stand-in);
- :class:`~repro.storage.kvstore.KeyValueStore` — a plain keyed store
  without XML awareness (the MySQL stand-in), over which XPath-style
  filtering must be done client-side by full scan.
"""

from repro.storage.document_store import XMLDocumentStore
from repro.storage.kvstore import KeyValueStore
from repro.storage.session_store import (
    InMemorySessionStore,
    SessionStore,
    WALSessionStore,
)

__all__ = [
    "XMLDocumentStore",
    "KeyValueStore",
    "SessionStore",
    "InMemorySessionStore",
    "WALSessionStore",
]
