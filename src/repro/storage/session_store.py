"""Durable journals for negotiation-session checkpoints.

:class:`~repro.services.tn_service.TNWebService` checkpoints every
session transition as a ``<negotiationSession>`` XML element.  A
:class:`SessionStore` is the append-only durability substrate behind
that machinery: each checkpoint is journalled as one record, and after
a crash ``latest()`` replays the journal into the last-known state of
every session so a restarted (or failed-over) node can resume in-flight
negotiations deterministically.

Two backends share the interface:

- :class:`InMemorySessionStore` — a plain journal list, for tests and
  single-process runs;
- :class:`WALSessionStore` — an append-only JSONL write-ahead log on
  disk.  Each record carries an LSN and a content checksum; recovery
  tolerates a *torn* final record (power loss mid-append) by truncating
  it, but treats a bad checksum anywhere earlier as real corruption.

A real database backend can slot in later by implementing the same
four methods.
"""

from __future__ import annotations

import hashlib
import json
import os
from abc import ABC, abstractmethod
from typing import Optional
from xml.etree import ElementTree as ET

from repro.errors import StorageError, XMLError
from repro.xmlutil.canonical import canonicalize, parse_xml

__all__ = ["SessionStore", "InMemorySessionStore", "WALSessionStore"]


class SessionStore(ABC):
    """Append-only journal of session checkpoints.

    ``append`` is called by the checkpoint machinery on every session
    transition; ``latest`` is the recovery read path.  Implementations
    must preserve append order per session so that the last record for
    a session id is its most recent checkpoint.
    """

    name: str = "session-store"

    @abstractmethod
    def append(self, session_id: str, element: ET.Element) -> None:
        """Journal one checkpoint of ``session_id``."""

    @abstractmethod
    def latest(self) -> dict[str, ET.Element]:
        """Last journalled checkpoint per session id, parsed."""

    @abstractmethod
    def records(self) -> int:
        """Number of intact records in the journal."""

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release any underlying resources (no-op by default)."""

    # -- fault hooks ---------------------------------------------------------------

    def tear_last_record(self) -> bool:
        """Simulate a torn write: damage the most recent record.

        Returns True when a record was damaged.  Backends that cannot
        express partial writes may drop the record instead; either way
        recovery must behave as if the append never completed.
        """
        return False


class InMemorySessionStore(SessionStore):
    """Journal kept in process memory.

    Survives a *service* crash (``TNWebService.crash()`` drops volatile
    session state but not the store object) — the moral equivalent of a
    database reachable from a restarted node — but not a process exit.
    """

    def __init__(self, name: str = "session-journal") -> None:
        self.name = name
        self._journal: list[tuple[str, str]] = []
        self.torn_discarded = 0

    def append(self, session_id: str, element: ET.Element) -> None:
        self._journal.append((session_id, canonicalize(element)))

    def latest(self) -> dict[str, ET.Element]:
        state: dict[str, ET.Element] = {}
        for session_id, xml in self._journal:
            state[session_id] = parse_xml(xml)
        return state

    def records(self) -> int:
        return len(self._journal)

    def tear_last_record(self) -> bool:
        """A torn in-memory append is simply an append that never
        happened: drop the final record."""
        if not self._journal:
            return False
        self._journal.pop()
        self.torn_discarded += 1
        return True


def _record_crc(lsn: int, session_id: str, xml: str) -> str:
    digest = hashlib.sha256(f"{lsn}|{session_id}|{xml}".encode("utf-8"))
    return digest.hexdigest()[:16]


class WALSessionStore(SessionStore):
    """Append-only JSONL write-ahead log.

    One record per line::

        {"lsn": 7, "session": "tn-3", "xml": "<negotiationSession .../>",
         "crc": "9f2c..."}

    Opening an existing file replays it: every intact record is kept,
    and a damaged *final* record (truncated line, invalid JSON, or crc
    mismatch) is discarded and physically truncated away — the append
    it belonged to never committed.  Damage anywhere before the final
    record is not a torn write and raises :class:`StorageError`.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        self.name = f"wal:{os.path.basename(self.path)}"
        self.torn_discarded = 0
        self._records: list[tuple[int, str, str]] = []  # (lsn, sid, xml)
        self._lsn = 0
        self._committed_bytes = 0  # file offset past the last intact record
        self._recover()

    # -- recovery -----------------------------------------------------------------

    def _recover(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            raw = handle.read()
        lines = raw.split("\n")
        # a fully committed file ends with a newline, so the final split
        # element is empty; anything else is a torn tail candidate
        good_bytes = 0
        for lineno, line in enumerate(lines):
            if line == "":
                continue
            record = self._parse_record(line)
            is_last = all(rest == "" for rest in lines[lineno + 1:])
            if record is None:
                if not is_last:
                    raise StorageError(
                        f"WAL {self.path!r} corrupt at record "
                        f"{lineno + 1} (not the final record)"
                    )
                self.torn_discarded += 1
                break
            lsn, session_id, xml = record
            if lsn != self._lsn + 1:
                raise StorageError(
                    f"WAL {self.path!r} LSN gap: expected "
                    f"{self._lsn + 1}, found {lsn}"
                )
            self._records.append(record)
            self._lsn = lsn
            good_bytes += len(line.encode("utf-8")) + 1
        self._committed_bytes = good_bytes
        if good_bytes != len(raw.encode("utf-8")):
            # drop the torn tail so later appends start on a clean line
            with open(self.path, "r+", encoding="utf-8") as handle:
                handle.truncate(good_bytes)

    @staticmethod
    def _parse_record(line: str) -> Optional[tuple[int, str, str]]:
        try:
            payload = json.loads(line)
        except (ValueError, TypeError):
            return None
        if not isinstance(payload, dict):
            return None
        try:
            lsn = int(payload["lsn"])
            session_id = payload["session"]
            xml = payload["xml"]
            crc = payload["crc"]
        except (KeyError, TypeError, ValueError):
            return None
        if not isinstance(session_id, str) or not isinstance(xml, str):
            return None
        if crc != _record_crc(lsn, session_id, xml):
            return None
        return lsn, session_id, xml

    # -- SessionStore interface ----------------------------------------------------

    def append(self, session_id: str, element: ET.Element) -> None:
        xml = canonicalize(element)
        lsn = self._lsn + 1
        record = {
            "lsn": lsn,
            "session": session_id,
            "xml": xml,
            "crc": _record_crc(lsn, session_id, xml),
        }
        data = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        # write at the committed offset, not the file end: a torn tail
        # left by a simulated power loss is overwritten, never extended
        mode = "r+b" if os.path.exists(self.path) else "wb"
        with open(self.path, mode) as handle:
            handle.truncate(self._committed_bytes)
            handle.seek(self._committed_bytes)
            handle.write(data)
        self._committed_bytes += len(data)
        self._records.append((lsn, session_id, xml))
        self._lsn = lsn

    def latest(self) -> dict[str, ET.Element]:
        state: dict[str, ET.Element] = {}
        for _, session_id, xml in self._records:
            try:
                state[session_id] = parse_xml(xml)
            except XMLError as exc:  # crc guarantees this is unreachable
                raise StorageError(
                    f"WAL {self.path!r} holds unparseable XML for "
                    f"session {session_id!r}"
                ) from exc
        return state

    def records(self) -> int:
        return len(self._records)

    @property
    def last_lsn(self) -> int:
        return self._lsn

    def tear_last_record(self) -> bool:
        """Chop the final record mid-line, as a power loss during the
        append would.  The in-memory view rewinds to match what a
        recovering reader will see."""
        if not self._records or not os.path.exists(self.path):
            return False
        with open(self.path, "rb") as handle:
            data = handle.read()
        # strip the trailing newline, then cut the last line in half
        body = data[:-1] if data.endswith(b"\n") else data
        cut = body.rfind(b"\n") + 1  # start of the final record
        torn_at = cut + max(1, (len(body) - cut) // 2)
        with open(self.path, "r+b") as handle:
            handle.truncate(torn_at)
        self._records.pop()
        self._lsn = max((lsn for lsn, _, _ in self._records), default=0)
        self._committed_bytes = cut
        self.torn_discarded += 1
        return True
