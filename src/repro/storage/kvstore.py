"""A plain keyed store (MySQL stand-in).

The integration "migrated from Oracle to MySQL" even though MySQL "has
very few features to support the storage of XML data and the execution
of XPath queries on them" (paper Section 6.3).  This store reproduces
that trade-off: values are opaque strings, lookups are exact-key or
full-table scans, and any XPath-style filtering must be done by the
caller after fetching candidate rows — which the storage ablation
bench quantifies against :class:`XMLDocumentStore`.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.errors import DocumentNotFoundError
from repro.storage.document_store import StoreStats

__all__ = ["KeyValueStore"]


class KeyValueStore:
    """In-memory tables of string rows."""

    def __init__(self, name: str = "kvstore") -> None:
        self.name = name
        self.stats = StoreStats()
        self._tables: dict[str, dict[str, str]] = {}

    def _table(self, table: str) -> dict[str, str]:
        return self._tables.setdefault(table, {})

    def tables(self) -> list[str]:
        return sorted(self._tables)

    def count(self, table: str) -> int:
        return len(self._tables.get(table, {}))

    # -- CRUD -----------------------------------------------------------------

    def put(self, table: str, key: str, value: str) -> None:
        self._table(table)[key] = value
        self.stats.writes += 1

    def get(self, table: str, key: str) -> str:
        self.stats.reads += 1
        try:
            return self._tables[table][key]
        except KeyError as exc:
            raise DocumentNotFoundError(
                f"{table}/{key} not found in store {self.name!r}"
            ) from exc

    def get_or_none(self, table: str, key: str) -> Optional[str]:
        self.stats.reads += 1
        return self._tables.get(table, {}).get(key)

    def delete(self, table: str, key: str) -> None:
        try:
            del self._tables[table][key]
        except KeyError as exc:
            raise DocumentNotFoundError(
                f"{table}/{key} not found in store {self.name!r}"
            ) from exc
        self.stats.deletes += 1

    def keys(self, table: str) -> list[str]:
        return sorted(self._tables.get(table, {}))

    # -- scans ------------------------------------------------------------------

    def scan(
        self, table: str, predicate: Optional[Callable[[str, str], bool]] = None
    ) -> Iterator[tuple[str, str]]:
        """Full-table scan, optionally filtered client-side."""
        self.stats.queries += 1
        for key in sorted(self._tables.get(table, {})):
            self.stats.scans += 1
            value = self._tables[table][key]
            if predicate is None or predicate(key, value):
                yield key, value

    def find(self, table: str, predicate: Callable[[str, str], bool]) -> list[str]:
        """Keys of rows matching ``predicate`` (always a full scan)."""
        return [key for key, _ in self.scan(table, predicate)]
