"""An XML document store with XPath-subset queries (Oracle stand-in).

Documents are stored per *collection* (e.g. ``"policies"``,
``"credentials"``) under a caller-chosen id.  Queries evaluate an
XPath-subset expression against every document of a collection, with an
optional equality index over attribute paths to skip full scans — the
access pattern the TN Web service needs ("checks if the database
contains disclosure policies protecting the credentials requested",
paper Section 6.2).

Operation counters (reads / writes / scans) feed the latency model of
the service layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional
from xml.etree import ElementTree as ET

from repro.errors import DocumentNotFoundError, StorageError
from repro.xmlutil.canonical import canonicalize, parse_xml
from repro.xmlutil.xpath import XPath

__all__ = ["XMLDocumentStore", "StoreStats"]


@dataclass
class StoreStats:
    """Operation counters, reset on demand."""

    reads: int = 0
    writes: int = 0
    deletes: int = 0
    scans: int = 0  # documents touched by queries
    queries: int = 0
    index_hits: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.deletes = 0
        self.scans = 0
        self.queries = 0
        self.index_hits = 0


class XMLDocumentStore:
    """In-memory XML store with per-collection equality indexes."""

    def __init__(self, name: str = "store") -> None:
        self.name = name
        self.stats = StoreStats()
        self._collections: dict[str, dict[str, ET.Element]] = {}
        # collection -> indexed xpath -> value -> set of doc ids
        self._indexes: dict[str, dict[str, dict[str, set[str]]]] = {}

    # -- collection management ---------------------------------------------------

    def _collection(self, collection: str) -> dict[str, ET.Element]:
        return self._collections.setdefault(collection, {})

    def collections(self) -> list[str]:
        return sorted(self._collections)

    def count(self, collection: str) -> int:
        return len(self._collections.get(collection, {}))

    # -- indexes -----------------------------------------------------------------

    def create_index(self, collection: str, path: str) -> None:
        """Index documents on the string value of an XPath node-set.

        Only node-set expressions are indexable; the index accelerates
        ``query_eq`` lookups.
        """
        compiled = XPath(path)
        index: dict[str, set[str]] = {}
        for doc_id, document in self._collection(collection).items():
            for value in self._index_values(compiled, document):
                index.setdefault(value, set()).add(doc_id)
        self._indexes.setdefault(collection, {})[path] = index

    @staticmethod
    def _index_values(compiled: XPath, document: ET.Element) -> Iterable[str]:
        try:
            nodes = compiled.select(document)
        except StorageError:  # pragma: no cover - select never raises this
            return []
        values = []
        for node in nodes:
            if isinstance(node, str):
                values.append(node)
            else:
                values.append("".join(node.itertext()))
        return values

    def _update_indexes(
        self, collection: str, doc_id: str, document: Optional[ET.Element]
    ) -> None:
        for path, index in self._indexes.get(collection, {}).items():
            for ids in index.values():
                ids.discard(doc_id)
            if document is not None:
                compiled = XPath(path)
                for value in self._index_values(compiled, document):
                    index.setdefault(value, set()).add(doc_id)

    # -- CRUD ---------------------------------------------------------------------

    def put(self, collection: str, doc_id: str, xml: str | ET.Element) -> None:
        document = parse_xml(xml) if isinstance(xml, str) else xml
        self._collection(collection)[doc_id] = document
        self._update_indexes(collection, doc_id, document)
        self.stats.writes += 1

    def get(self, collection: str, doc_id: str) -> ET.Element:
        self.stats.reads += 1
        try:
            return self._collections[collection][doc_id]
        except KeyError as exc:
            raise DocumentNotFoundError(
                f"{collection}/{doc_id} not found in store {self.name!r}"
            ) from exc

    def get_xml(self, collection: str, doc_id: str) -> str:
        return canonicalize(self.get(collection, doc_id))

    def delete(self, collection: str, doc_id: str) -> None:
        try:
            del self._collections[collection][doc_id]
        except KeyError as exc:
            raise DocumentNotFoundError(
                f"{collection}/{doc_id} not found in store {self.name!r}"
            ) from exc
        self._update_indexes(collection, doc_id, None)
        self.stats.deletes += 1

    def ids(self, collection: str) -> list[str]:
        return sorted(self._collections.get(collection, {}))

    # -- queries --------------------------------------------------------------------

    def query(self, collection: str, xpath: str) -> list[str]:
        """Ids of documents for which ``xpath`` evaluates truthy."""
        compiled = XPath(xpath)
        self.stats.queries += 1
        matches = []
        for doc_id, document in sorted(self._collection(collection).items()):
            self.stats.scans += 1
            if compiled.matches(document):
                matches.append(doc_id)
        return matches

    def query_eq(self, collection: str, path: str, value: str) -> list[str]:
        """Equality lookup, served from an index when one exists."""
        self.stats.queries += 1
        index = self._indexes.get(collection, {}).get(path)
        if index is not None:
            self.stats.index_hits += 1
            return sorted(index.get(value, set()))
        compiled = XPath(path)
        matches = []
        for doc_id, document in sorted(self._collection(collection).items()):
            self.stats.scans += 1
            if value in self._index_values(compiled, document):
                matches.append(doc_id)
        return matches
