"""Performance layer: bounded caches, counters, and the ablation switch.

See :mod:`repro.perf.caches` for the design notes.  This package must
not import from any other ``repro`` subpackage — every layer of the
stack imports *it*.
"""

from repro.perf.caches import (
    CANONICAL_CACHE,
    DIGEST_CACHE,
    NULL_LOCK,
    SIGNATURE_CACHE,
    XPATH_CACHE,
    CacheStats,
    LRUCache,
    NullLock,
    all_caches,
    all_stats,
    caches_disabled,
    caches_enabled,
    clear_all_caches,
    drop_issuer_signatures,
    invalidate_issuer_signatures,
    lock_free_caches,
    lock_free_enabled,
    set_caches_enabled,
    set_lock_free,
)

__all__ = [
    "CacheStats",
    "LRUCache",
    "NullLock",
    "NULL_LOCK",
    "all_caches",
    "all_stats",
    "clear_all_caches",
    "caches_enabled",
    "set_caches_enabled",
    "caches_disabled",
    "lock_free_enabled",
    "set_lock_free",
    "lock_free_caches",
    "XPATH_CACHE",
    "CANONICAL_CACHE",
    "DIGEST_CACHE",
    "SIGNATURE_CACHE",
    "drop_issuer_signatures",
    "invalidate_issuer_signatures",
]
