"""Performance layer: bounded caches, counters, and the ablation switch.

See :mod:`repro.perf.caches` for the design notes.  This package must
not import from any other ``repro`` subpackage — every layer of the
stack imports *it*.
"""

from repro.perf.caches import (
    CANONICAL_CACHE,
    DIGEST_CACHE,
    SIGNATURE_CACHE,
    XPATH_CACHE,
    CacheStats,
    LRUCache,
    all_caches,
    all_stats,
    caches_disabled,
    caches_enabled,
    clear_all_caches,
    invalidate_issuer_signatures,
    set_caches_enabled,
)

__all__ = [
    "CacheStats",
    "LRUCache",
    "all_caches",
    "all_stats",
    "clear_all_caches",
    "caches_enabled",
    "set_caches_enabled",
    "caches_disabled",
    "XPATH_CACHE",
    "CANONICAL_CACHE",
    "DIGEST_CACHE",
    "SIGNATURE_CACHE",
    "invalidate_issuer_signatures",
]
