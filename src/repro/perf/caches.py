"""Hot-path memoization layer: bounded, instrumented, invalidatable.

The ROADMAP's production north-star ("sharding, batching, async,
caching") and the paper's own timing analysis (Section 6.2: join time is
dominated by per-credential crypto and policy evaluation) both point at
the same levers grid deployments standardized on — cache the expensive,
*pure* steps of the security handshake and invalidate them on the one
event that changes their answer (revocation; cf. Welch et al.,
*Security for Grid Services* and Czenko et al. on nonmonotonic trust).

This module is the substrate: a small, thread-safe LRU cache with
per-cache hit/miss/eviction/invalidation counters, a process-wide
registry for introspection, and a global enable/disable switch so
benchmarks can ablate caches on vs. off without reloading modules.

Import discipline: ``repro.perf`` imports nothing from the rest of
``repro`` (only the standard library), so any layer — ``xmlutil``,
``credentials``, ``policy``, ``negotiation`` — may depend on it without
creating an import cycle.

Cache instances used across the stack:

- :data:`XPATH_CACHE` — expression string → parsed XPath AST.
- :data:`CANONICAL_CACHE` — caller-supplied hashable key → canonical
  XML string (keys are chosen by the caller because Elements are
  mutable and unhashable; see :func:`repro.xmlutil.canonical.canonicalize`).
- :data:`DIGEST_CACHE` — caller-supplied key → SHA-256 digest bytes.
- :data:`SIGNATURE_CACHE` — ``(key fingerprint, message digest,
  signature)`` → bool, tagged ``(issuer, serial)`` so a retraction
  event (:mod:`repro.trust`) can drop exactly the entries it
  contradicts — per credential, not per issuer.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterator, Optional

__all__ = [
    "CacheStats",
    "LRUCache",
    "NullLock",
    "NULL_LOCK",
    "all_caches",
    "all_stats",
    "clear_all_caches",
    "caches_enabled",
    "set_caches_enabled",
    "caches_disabled",
    "lock_free_enabled",
    "set_lock_free",
    "lock_free_caches",
    "XPATH_CACHE",
    "CANONICAL_CACHE",
    "DIGEST_CACHE",
    "SIGNATURE_CACHE",
    "drop_issuer_signatures",
    "invalidate_issuer_signatures",
]

_MISSING = object()


class NullLock:
    """A no-op drop-in for :class:`threading.Lock`.

    Under a single-threaded asyncio event loop every cache access
    happens on one thread, so the real lock only adds per-turn
    acquire/release overhead.  Swapping it for this object (see
    :func:`set_lock_free`) removes that cost without touching call
    sites.  All instances are interchangeable; :data:`NULL_LOCK` is the
    shared one.
    """

    __slots__ = ()

    def __enter__(self) -> "NullLock":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def acquire(self, *args, **kwargs) -> bool:
        return True

    def release(self) -> None:
        return None


#: Shared no-op lock instance.
NULL_LOCK = NullLock()


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of one cache's counters."""

    name: str
    size: int
    capacity: int
    hits: int
    misses: int
    evictions: int
    invalidations: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """Thread-safe LRU map with counters and tag-based invalidation.

    ``tag`` groups entries under a shared label (e.g. an issuer name)
    so they can be dropped together when the fact they memoize is
    retracted — the "principled invalidation" nonmonotonic trust
    management calls for.
    """

    def __init__(self, name: str, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._tags: dict[Hashable, set[Hashable]] = {}
        self._key_tag: dict[Hashable, Hashable] = {}
        self._lock = NULL_LOCK if _lock_free else threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        _register(self)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, default: Any = None) -> Any:
        if not caches_enabled():
            return default
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any,
            tag: Optional[Hashable] = None) -> None:
        if not caches_enabled():
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                self._retag(key, tag)
                return
            self._entries[key] = value
            self._retag(key, tag)
            while len(self._entries) > self.capacity:
                old_key, _ = self._entries.popitem(last=False)
                self._drop_tag(old_key)
                self.evictions += 1

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any],
                       tag: Optional[Hashable] = None) -> Any:
        """Look up ``key``; on a miss run ``compute`` and memoize it.

        With caches disabled this degenerates to ``compute()`` — the
        exact uncached behavior, which is what the benchmark ablation
        measures against.
        """
        value = self.get(key, _MISSING)
        if value is not _MISSING:
            return value
        value = compute()
        self.put(key, value, tag=tag)
        return value

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns whether it was present."""
        with self._lock:
            if key in self._entries:
                del self._entries[key]
                self._drop_tag(key)
                self.invalidations += 1
                return True
            return False

    def invalidate_tag(self, tag: Hashable) -> int:
        """Drop every entry stored under ``tag``; returns the count."""
        with self._lock:
            keys = self._tags.pop(tag, None)
            if not keys:
                return 0
            dropped = 0
            for key in keys:
                if self._entries.pop(key, _MISSING) is not _MISSING:
                    dropped += 1
                self._key_tag.pop(key, None)
            self.invalidations += dropped
            return dropped

    def invalidate_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``."""
        with self._lock:
            doomed = [key for key in self._entries if predicate(key)]
            for key in doomed:
                del self._entries[key]
                self._drop_tag(key)
            self.invalidations += len(doomed)
            return len(doomed)

    def invalidate_tags(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose *tag* satisfies ``predicate``.

        Complements :meth:`invalidate_where` (which predicates over
        entry keys): compound tags like ``(issuer, serial)`` can be
        swept by their components — e.g. every serial of one issuer —
        without the keys having to carry that provenance.
        """
        with self._lock:
            matched = [tag for tag in self._tags if predicate(tag)]
            dropped = 0
            for tag in matched:
                for key in self._tags.pop(tag, ()):
                    if self._entries.pop(key, _MISSING) is not _MISSING:
                        dropped += 1
                    self._key_tag.pop(key, None)
            self.invalidations += dropped
            return dropped

    def clear(self) -> None:
        """Drop all entries (counts as invalidations) but keep counters."""
        with self._lock:
            self.invalidations += len(self._entries)
            self._entries.clear()
            self._tags.clear()
            self._key_tag.clear()

    def reset(self) -> None:
        """Drop all entries and zero every counter."""
        with self._lock:
            self._entries.clear()
            self._tags.clear()
            self._key_tag.clear()
            self.hits = self.misses = 0
            self.evictions = self.invalidations = 0

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                name=self.name,
                size=len(self._entries),
                capacity=self.capacity,
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                invalidations=self.invalidations,
            )

    # -- internal (caller holds the lock) ------------------------------------------

    def _retag(self, key: Hashable, tag: Optional[Hashable]) -> None:
        old = self._key_tag.get(key)
        if old is not None and old != tag:
            members = self._tags.get(old)
            if members is not None:
                members.discard(key)
                if not members:
                    del self._tags[old]
        if tag is None:
            self._key_tag.pop(key, None)
        else:
            self._key_tag[key] = tag
            self._tags.setdefault(tag, set()).add(key)

    def _drop_tag(self, key: Hashable) -> None:
        tag = self._key_tag.pop(key, None)
        if tag is not None:
            members = self._tags.get(tag)
            if members is not None:
                members.discard(key)
                if not members:
                    del self._tags[tag]


# ---------------------------------------------------------------------------
# Registry + global switch
# ---------------------------------------------------------------------------

_registry: list[LRUCache] = []
_registry_lock = threading.Lock()
_enabled = True
_enabled_lock = threading.Lock()
_lock_free = False


def _register(cache: LRUCache) -> None:
    with _registry_lock:
        _registry.append(cache)


def all_caches() -> list[LRUCache]:
    """Every LRUCache constructed in this process, in creation order."""
    with _registry_lock:
        return list(_registry)


def all_stats() -> dict[str, CacheStats]:
    """Name → stats snapshot for every registered cache."""
    return {cache.name: cache.stats() for cache in all_caches()}


def clear_all_caches(reset_counters: bool = False) -> None:
    """Empty every registered cache (optionally zeroing counters too)."""
    for cache in all_caches():
        if reset_counters:
            cache.reset()
        else:
            cache.clear()


def caches_enabled() -> bool:
    """Whether the perf caches are currently consulted at all."""
    return _enabled


def set_caches_enabled(enabled: bool) -> bool:
    """Flip the global switch; returns the previous value.

    Disabling also empties every cache so a later re-enable cannot
    serve entries that predate whatever the disabled window changed.
    """
    global _enabled
    with _enabled_lock:
        previous = _enabled
        _enabled = bool(enabled)
    if previous and not enabled:
        clear_all_caches()
    return previous


@contextmanager
def caches_disabled() -> Iterator[None]:
    """Context manager running its body with all caches bypassed."""
    previous = set_caches_enabled(False)
    try:
        yield
    finally:
        set_caches_enabled(previous)


def lock_free_enabled() -> bool:
    """Whether cache locks are currently elided."""
    return _lock_free


def set_lock_free(enabled: bool) -> bool:
    """Elide (or restore) the locks of every registered cache.

    Returns the previous mode.  Enabling swaps each cache's lock for
    :data:`NULL_LOCK` and makes future caches lock-free too; disabling
    restores real locks.  Only flip this from a single-threaded phase
    (e.g. before/after running an asyncio event loop) — swapping a lock
    another thread currently holds is a race by construction.
    """
    global _lock_free
    previous = _lock_free
    _lock_free = bool(enabled)
    if previous != _lock_free:
        for cache in all_caches():
            cache._lock = NULL_LOCK if _lock_free else threading.Lock()
    return previous


@contextmanager
def lock_free_caches() -> Iterator[None]:
    """Run the body with every cache lock elided (see :func:`set_lock_free`)."""
    previous = set_lock_free(True)
    try:
        yield
    finally:
        set_lock_free(previous)


# ---------------------------------------------------------------------------
# The shared cache instances
# ---------------------------------------------------------------------------

#: XPath expression string → parsed AST.  Policy portfolios reuse a
#: small set of conditions across thousands of evaluations.
XPATH_CACHE = LRUCache("xpath_ast", capacity=2048)

#: Caller-chosen hashable key → canonical XML string.
CANONICAL_CACHE = LRUCache("canonical_xml", capacity=8192)

#: Caller-chosen hashable key → SHA-256 digest bytes.
DIGEST_CACHE = LRUCache("element_digest", capacity=8192)

#: (issuer-key fingerprint, message digest, signature) → bool, tagged
#: ``(issuer, serial)`` for retraction-driven invalidation: a trust
#: event names exactly the serials it contradicts, so eviction is
#: per-credential, not per-issuer.  (Chain-link verdicts with no serial
#: fall back to the bare issuer-name tag.)
SIGNATURE_CACHE = LRUCache("signature_verify", capacity=8192)


def drop_issuer_signatures(issuer: str) -> int:
    """Drop every cached signature verdict touching ``issuer``.

    The coarse whole-issuer sweep — matches both the per-credential
    ``(issuer, serial)`` tags and the legacy bare issuer-name tag.  The
    precise per-serial path lives on
    :meth:`~repro.trust.TrustBus.retract`; this helper remains for CRL
    supersession, where every verdict derived under the stale list must
    go regardless of serial.
    """
    return SIGNATURE_CACHE.invalidate_tags(
        lambda tag: tag == issuer
        or (isinstance(tag, tuple) and len(tag) == 2 and tag[0] == issuer)
    )


def invalidate_issuer_signatures(issuer: str) -> int:
    """Deprecated alias — retract a :class:`repro.trust.TrustEvent`
    through :class:`repro.trust.TrustBus` (re-exported by
    :mod:`repro.api`) instead; for the raw whole-issuer sweep use
    :func:`drop_issuer_signatures`."""
    import warnings

    warnings.warn(
        "invalidate_issuer_signatures is deprecated; retract a "
        "TrustEvent through repro.trust.TrustBus (see repro.api), or "
        "use repro.perf.drop_issuer_signatures for a raw whole-issuer "
        "sweep",
        DeprecationWarning,
        stacklevel=2,
    )
    return drop_issuer_signatures(issuer)
