"""The VO Initiator.

"This phase ... starts when an organization, referred to as VO
Initiator, identifies a business goal and thus defines a contract to
fulfill it" (paper Section 2).  During Identification the Initiator
"locally defines the disclosure policies to be used during the TN with
potential members ... created for the specific VO and in particular for
the roles" (Section 5.1); during Formation it invites candidates,
negotiates, and issues the X.509 membership token carrying the VO
public key.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from datetime import datetime
from typing import Optional

from repro.credentials.credential import ValidityPeriod
from repro.credentials.x509 import VOMembershipToken
from repro.crypto.keys import KeyPair
from repro.errors import MembershipError
from repro.negotiation.agent import TrustXAgent
from repro.negotiation.engine import negotiate
from repro.negotiation.outcomes import NegotiationResult
from repro.vo.contract import Contract
from repro.vo.invitations import Invitation
from repro.vo.member import VOMember
from repro.vo.roles import Role

__all__ = ["VOInitiator"]


@dataclass
class VOInitiator:
    """The organization that creates and administers a VO."""

    name: str
    agent: TrustXAgent
    #: The VO's own key pair, generated at identification; its public
    #: half rides in every membership token ("the membership token
    #: contains the public key of the VO", Section 5.1).
    vo_keypair: Optional[KeyPair] = None
    key_bits: int = 512
    _serials: itertools.count = field(default_factory=lambda: itertools.count(1))

    def __post_init__(self) -> None:
        if self.agent.name != self.name:
            raise MembershipError(
                f"initiator {self.name!r} wraps an agent named "
                f"{self.agent.name!r}"
            )

    # -- identification phase ----------------------------------------------------

    def define_vo_policies(self, contract: Contract) -> int:
        """Install the per-role transient policies for ``contract``.

        Returns the number of policies installed.  Also generates the
        VO key pair.
        """
        if self.vo_keypair is None:
            self.vo_keypair = KeyPair.generate(self.key_bits)
        installed = 0
        for role in contract.roles:
            installed += len(
                self.agent.policies.add_dsl(
                    role.membership_policies_dsl(contract.vo_name),
                    transient=True,
                )
            )
        return installed

    def clear_vo_policies(self) -> int:
        """Drop the VO-specific transient policies (at dissolution)."""
        return self.agent.policies.clear_transient()

    def issue_vo_descriptor(
        self, contract: Contract, at: datetime, days: Optional[int] = None
    ) -> "Credential":
        """Self-issue a credential describing the VO's properties.

        The paper's §8 extension: candidates may request "credentials
        that describe VO properties" during the mutual formation TN —
        the VO name, business goal, role count, and duration — before
        deciding to join.  The descriptor is signed by the Initiator
        itself (members that trust the Initiator's key can verify it)
        and added to the Initiator's X-Profile so the negotiation
        engine can disclose it like any other credential.
        """
        from repro.credentials.credential import Credential, ValidityPeriod

        descriptor = Credential.build(
            cred_type="VO Descriptor",
            cred_id=f"{self.name}:VO Descriptor:{contract.vo_name}",
            issuer=self.name,
            subject=self.name,
            subject_key=self.agent.keypair.fingerprint,
            validity=ValidityPeriod.starting(
                at, days or contract.duration_days
            ),
            attributes={
                "voName": contract.vo_name,
                "businessGoal": contract.business_goal,
                "rolesCount": len(contract.roles),
                "durationDays": contract.duration_days,
                "initiator": self.name,
            },
        )
        signed = descriptor.with_signature(
            self.agent.keypair.private.sign_b64(descriptor.signing_bytes())
        )
        if descriptor.cred_id in self.agent.profile:
            self.agent.profile.remove(descriptor.cred_id)
        self.agent.profile.add(signed)
        # Descriptors are public VO information: released freely.
        if not self.agent.policies.is_freely_deliverable("VO Descriptor"):
            self.agent.policies.add_dsl("VO Descriptor <- DELIV",
                                        transient=True)
        return signed

    # -- formation phase -------------------------------------------------------------

    def invite(
        self, contract: Contract, role: Role, member: VOMember
    ) -> Invitation:
        """Send an invitation into the candidate's mailbox."""
        invitation = Invitation(
            vo_name=contract.vo_name,
            role_name=role.name,
            sender=self.name,
            recipient=member.name,
            terms=contract.terms_text(role),
        )
        member.mailbox.deliver(invitation)
        return invitation

    def negotiate_membership(
        self,
        contract: Contract,
        role: Role,
        member: VOMember,
        at: Optional[datetime] = None,
    ) -> NegotiationResult:
        """Run the formation-phase TN with an accepting candidate.

        The candidate requests the role's membership resource; the
        Initiator's transient policies for the role protect it.
        """
        resource = role.membership_resource(contract.vo_name)
        return negotiate(member.agent, self.agent, resource, at=at)

    def issue_membership_token(
        self,
        contract: Contract,
        role: Role,
        member: VOMember,
        at: datetime,
    ) -> VOMembershipToken:
        """Create the X.509 membership credential at runtime
        (Section 6.3) and hand it to the member."""
        if self.vo_keypair is None:
            raise MembershipError(
                "identification must define VO policies (and the VO key) "
                "before tokens can be issued"
            )
        token = VOMembershipToken.issue(
            vo_name=contract.vo_name,
            role=role.name,
            member=member.name,
            member_key=member.agent.keypair.fingerprint,
            vo_public_key=self.vo_keypair.public,
            initiator=self.name,
            initiator_key=self.agent.keypair.private,
            serial=next(self._serials),
            validity=ValidityPeriod.starting(at, contract.duration_days),
        )
        member.receive_token(token)
        return token

    def verify_membership_token(self, token: VOMembershipToken) -> bool:
        """Check a token was issued (signed) by this Initiator."""
        return token.verify(self.agent.keypair.public)
