"""The operation-phase collaboration workflow (paper Fig. 1).

Fig. 1 narrates the Aircraft Optimization VO's operational phase as a
numbered step sequence: the engineer selects a wing design at the
Design Web Portal (1-2), the Design Optimization Partner Service is
activated and fetches the design-optimization control file (3), the
file goes to the HPC Partner Service which computes a new wing profile
and flow solution (4-5), results are stored at the Storage Partner
Service (6), and a revised design is computed — "these steps (Steps 5
and 6) are executed repeatedly until the target result is achieved".

This module models that execution: a workflow is a list of steps, each
an interaction between two roles, optionally *protected* — protected
steps require an authorization TN (the paper's operation-phase
negotiations, Fig. 3 arrow 3a) before they run.  The executor drives
the steps through the VO, records every interaction with the monitor,
supports the iterate-until-converged loop, and aborts when an
authorization fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Callable, Optional

from repro.errors import VOError
from repro.negotiation.outcomes import NegotiationResult
from repro.vo.lifecycle import VOPhase
from repro.vo.organization import VirtualOrganization

__all__ = ["WorkflowStep", "StepExecution", "WorkflowRun", "OperationWorkflow"]


@dataclass(frozen=True)
class WorkflowStep:
    """One interaction of the collaboration workflow."""

    name: str
    source_role: str
    target_role: str
    operation: str
    #: Resource whose release must be authorized by a TN before the
    #: step runs; None for steps inside already-established trust.
    protected_resource: Optional[str] = None
    #: Marks the repeatable refinement segment ("Steps 5 and 6 are
    #: executed repeatedly until the target result is achieved").
    iterative: bool = False


@dataclass(frozen=True)
class StepExecution:
    """Outcome of one executed step."""

    step: WorkflowStep
    iteration: int
    authorized: bool
    negotiation: Optional[NegotiationResult] = None


@dataclass
class WorkflowRun:
    """Full trace of a workflow execution."""

    executions: list[StepExecution] = field(default_factory=list)
    completed: bool = False
    iterations: int = 0
    aborted_at: Optional[str] = None

    def steps_run(self) -> int:
        return len(self.executions)

    def negotiations_run(self) -> int:
        return sum(
            1 for execution in self.executions
            if execution.negotiation is not None
        )


#: Convergence check for the iterative segment: receives the iteration
#: number (1-based) and returns True when the target is achieved.
ConvergenceCheck = Callable[[int], bool]


def _converge_after(iterations: int) -> ConvergenceCheck:
    return lambda iteration: iteration >= iterations


@dataclass
class OperationWorkflow:
    """Executes a workflow over an operating VO."""

    vo: VirtualOrganization
    steps: tuple[WorkflowStep, ...]
    max_iterations: int = 16

    def __post_init__(self) -> None:
        roles = set(self.vo.contract.role_names())
        initiator_ok = {None}
        for step in self.steps:
            for role in (step.source_role, step.target_role):
                if role not in roles and role != "Initiator":
                    raise VOError(
                        f"workflow step {step.name!r} references unknown "
                        f"role {role!r}"
                    )

    def _run_step(
        self,
        step: WorkflowStep,
        iteration: int,
        at: Optional[datetime],
        run: WorkflowRun,
    ) -> bool:
        """Execute one step; returns False when the run must abort."""
        negotiation = None
        authorized = True
        if step.protected_resource is not None:
            negotiation = self.vo.authorize_operation(
                step.source_role,
                step.target_role,
                step.protected_resource,
                at=at,
            )
            authorized = negotiation.success
        else:
            source = self.vo.member_for(step.source_role) \
                if step.source_role != "Initiator" else None
            self.vo.monitor.record_interaction(
                source.name if source else self.vo.initiator.name,
                self.vo.member_for(step.target_role).name
                if step.target_role != "Initiator"
                else self.vo.initiator.name,
                step.operation,
                authorized=True,
                at=at,
            )
        run.executions.append(
            StepExecution(step, iteration, authorized, negotiation)
        )
        if not authorized:
            run.aborted_at = step.name
            return False
        return True

    def execute(
        self,
        at: Optional[datetime] = None,
        converged: Optional[ConvergenceCheck] = None,
        iterations: int = 3,
    ) -> WorkflowRun:
        """Run the workflow through the operating VO.

        Non-iterative steps run once, in order.  The contiguous block
        of ``iterative`` steps repeats until ``converged`` returns True
        (default: after ``iterations`` passes), bounded by
        ``max_iterations``.  A failed authorization aborts the run
        ("a failed TN may compromise the VO lifecycle", Section 5.1).
        """
        self.vo.lifecycle.require(VOPhase.OPERATION)
        converged = converged or _converge_after(iterations)
        run = WorkflowRun()

        index = 0
        while index < len(self.steps):
            step = self.steps[index]
            if not step.iterative:
                if not self._run_step(step, 0, at, run):
                    return run
                index += 1
                continue
            # Collect the contiguous iterative block.
            block_start = index
            while (
                index < len(self.steps) and self.steps[index].iterative
            ):
                index += 1
            block = self.steps[block_start:index]
            iteration = 0
            while iteration < self.max_iterations:
                iteration += 1
                for block_step in block:
                    if not self._run_step(block_step, iteration, at, run):
                        run.iterations = iteration
                        return run
                if converged(iteration):
                    break
            run.iterations = iteration
        run.completed = True
        return run
