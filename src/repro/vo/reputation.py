"""The reputation system.

"Each member will have an associated reputation, established on the
basis of past transactions and updated as it interacts with members of
the VO ... Reputation of the members is updated accordingly based on
the result of the operations, the quality of the service granted and so
forth" (paper Section 2).  Failed trust negotiations also "may affect
the parties' reputation" (Section 5.1).

Scores live in [0, 1] (newcomers start at 0.5); every update is an
event with a bounded delta, and the full history is kept for auditing.

Reputation is nonmonotonic in *both* directions: events push a score
up or down, and :meth:`ReputationSystem.decay` moves every score
toward a configurable target with an exponential half-life — old
behaviour, good or bad, stops counting.  With the default neutral
target an isolated cheater's score drifts back above the isolation
threshold (trust can be earned back, and re-lost); a target *below*
the threshold instead erodes unrefreshed trust until a
``reputation_decayed`` retraction fires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from enum import Enum
from typing import Optional

from repro.errors import VOError

__all__ = ["ReputationEvent", "ReputationRecord", "ReputationSystem"]

INITIAL_SCORE = 0.5


class ReputationEvent(Enum):
    """Event kinds with their default score deltas."""

    OPERATION_SUCCESS = 0.05
    HIGH_QUALITY_SERVICE = 0.08
    SUCCESSFUL_NEGOTIATION = 0.02
    FAILED_NEGOTIATION = -0.05
    CONTRACT_VIOLATION = -0.20
    RESOURCE_MISUSE = -0.30
    LOW_QUALITY_SERVICE = -0.08
    #: Time-based drift toward the decay target; the actual delta is
    #: computed per call (the 0.0 here is never applied directly).
    DECAY = 0.0

    @property
    def delta(self) -> float:
        return self.value


@dataclass(frozen=True)
class ReputationRecord:
    """One audited reputation update."""

    member: str
    event: ReputationEvent
    delta: float
    score_after: float
    at: Optional[datetime] = None
    detail: str = ""


@dataclass
class ReputationSystem:
    """Per-member reputation scores with bounded updates."""

    _scores: dict[str, float] = field(default_factory=dict)
    _history: list[ReputationRecord] = field(default_factory=list)

    def register(self, member: str, initial: float = INITIAL_SCORE) -> None:
        if not 0.0 <= initial <= 1.0:
            raise VOError(f"initial reputation must be in [0, 1], got {initial}")
        self._scores.setdefault(member, initial)

    def score(self, member: str) -> float:
        """Current score; unknown members report the newcomer default."""
        return self._scores.get(member, INITIAL_SCORE)

    def record(
        self,
        member: str,
        event: ReputationEvent,
        at: Optional[datetime] = None,
        detail: str = "",
        scale: float = 1.0,
    ) -> float:
        """Apply ``event`` (optionally scaled) and return the new score."""
        if scale <= 0:
            raise VOError(f"reputation scale must be positive, got {scale}")
        current = self.score(member)
        updated = min(1.0, max(0.0, current + event.delta * scale))
        self._scores[member] = updated
        self._history.append(
            ReputationRecord(
                member=member,
                event=event,
                delta=event.delta * scale,
                score_after=updated,
                at=at,
                detail=detail,
            )
        )
        return updated

    def decay(
        self,
        member: str,
        *,
        half_life: float,
        elapsed: float = 1.0,
        target: float = INITIAL_SCORE,
        at: Optional[datetime] = None,
    ) -> float:
        """Drift ``member``'s score toward ``target`` and return it.

        Exponential decay: after one ``half_life`` (in whatever unit
        ``elapsed`` is measured — rounds here, days in a deployment)
        half the distance to ``target`` is gone.  Scores above the
        target sink, scores below it rise — isolation can be earned
        back.  The drift is audited as a ``DECAY`` record so history
        distinguishes time passing from behaviour.
        """
        if half_life <= 0:
            raise VOError(f"decay half-life must be positive, got {half_life}")
        if not 0.0 <= target <= 1.0:
            raise VOError(f"decay target must be in [0, 1], got {target}")
        current = self.score(member)
        updated = target + (current - target) * 0.5 ** (elapsed / half_life)
        if updated == current:
            return current
        self._scores[member] = updated
        self._history.append(
            ReputationRecord(
                member=member,
                event=ReputationEvent.DECAY,
                delta=updated - current,
                score_after=updated,
                at=at,
                detail=f"half-life {half_life}, elapsed {elapsed}",
            )
        )
        return updated

    def decay_all(
        self,
        *,
        half_life: float,
        elapsed: float = 1.0,
        target: float = INITIAL_SCORE,
        at: Optional[datetime] = None,
    ) -> None:
        """Apply :meth:`decay` to every registered member."""
        for member in list(self._scores):
            self.decay(
                member, half_life=half_life, elapsed=elapsed,
                target=target, at=at,
            )

    def meets(self, member: str, threshold: float) -> bool:
        return self.score(member) >= threshold

    def history(self, member: Optional[str] = None) -> list[ReputationRecord]:
        if member is None:
            return list(self._history)
        return [record for record in self._history if record.member == member]

    def ranking(self) -> list[tuple[str, float]]:
        """Members best-first (ties break on name)."""
        return sorted(
            self._scores.items(), key=lambda item: (-item[1], item[0])
        )
