"""The VO lifecycle state machine (paper Section 2, Fig. 3).

Phases advance linearly — Identification, Formation, Operation,
Dissolution — with Preparation as the provider-side prologue.  Trust
negotiations interleave at three points (Fig. 3): policy definition in
Identification, member admission in Formation, and re-verification /
replacement in Operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import LifecycleError

__all__ = ["VOPhase", "LifecycleTracker"]


class VOPhase(Enum):
    PREPARATION = "preparation"
    IDENTIFICATION = "identification"
    FORMATION = "formation"
    OPERATION = "operation"
    DISSOLUTION = "dissolution"


_ORDER = [
    VOPhase.PREPARATION,
    VOPhase.IDENTIFICATION,
    VOPhase.FORMATION,
    VOPhase.OPERATION,
    VOPhase.DISSOLUTION,
]


@dataclass
class LifecycleTracker:
    """Tracks and guards one VO's phase transitions."""

    phase: VOPhase = VOPhase.PREPARATION
    _trace: list[VOPhase] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self._trace:
            self._trace = [self.phase]

    def advance(self, to: VOPhase) -> None:
        """Move to the next phase; only forward single steps are legal."""
        current_index = _ORDER.index(self.phase)
        target_index = _ORDER.index(to)
        if target_index != current_index + 1:
            raise LifecycleError(
                f"illegal transition {self.phase.value} -> {to.value}; "
                f"expected {_ORDER[min(current_index + 1, len(_ORDER) - 1)].value}"
            )
        self.phase = to
        self._trace.append(to)

    def require(self, *phases: VOPhase) -> None:
        """Guard an operation to the given phases."""
        if self.phase not in phases:
            allowed = ", ".join(phase.value for phase in phases)
            raise LifecycleError(
                f"operation requires phase in ({allowed}), but the VO is in "
                f"{self.phase.value}"
            )

    @property
    def is_dissolved(self) -> bool:
        return self.phase is VOPhase.DISSOLUTION

    def trace(self) -> list[VOPhase]:
        return list(self._trace)
