"""Roles a VO contract defines.

"The contract states the roles and the requirements that each member
has to fulfill in order to be part of the VO" (paper Section 2).  A
role carries the disclosure-policy requirements the Initiator installs
(as transient policies) before negotiating with candidates for the
role, plus a minimum reputation gate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ContractError

__all__ = ["Role"]

#: Resource name negotiated when joining a VO; the policies a role's
#: requirements generate protect this resource.
MEMBERSHIP_RESOURCE = "VoMembership"


@dataclass(frozen=True)
class Role:
    """One role of the collaboration contract."""

    name: str
    description: str = ""
    #: Policy bodies (DSL, right-hand side only) a candidate must
    #: satisfy to be granted membership in this role.  Alternatives are
    #: separate entries: a candidate needs to satisfy any one of them.
    requirements: tuple[str, ...] = ()
    #: Minimum reputation a candidate must hold to be invited.
    min_reputation: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ContractError("role name must be non-empty")
        if not 0.0 <= self.min_reputation <= 1.0:
            raise ContractError(
                f"role {self.name!r}: min_reputation must be in [0, 1], "
                f"got {self.min_reputation}"
            )

    def membership_resource(self, vo_name: str) -> str:
        """The negotiated resource name for this role in ``vo_name``.

        Role-qualified so that per-role requirements of the same VO do
        not collide in the Initiator's policy base.
        """
        return f"{MEMBERSHIP_RESOURCE}:{vo_name}:{self.name}"

    def membership_policies_dsl(self, vo_name: str) -> str:
        """The transient disclosure policies guarding membership.

        Each requirement becomes one alternative rule protecting the
        role's membership resource; a role without requirements yields
        a delivery rule (membership granted on invitation acceptance).
        """
        resource = self.membership_resource(vo_name)
        if not self.requirements:
            return f"{resource} <- DELIV"
        return "\n".join(
            f"{resource} <- {requirement}" for requirement in self.requirements
        )
