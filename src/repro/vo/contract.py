"""The collaboration contract.

"A VO is typically initiated by one or more organizations, also in
charge of establishing collaboration policies through formally
specified collaboration contracts ... the contract specifies the
collaboration rules the VO members have to follow to reach the
business goal" (paper Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime

from repro.errors import ContractError
from repro.vo.roles import Role

__all__ = ["Contract"]


@dataclass(frozen=True)
class Contract:
    """A VO's formally specified collaboration contract."""

    vo_name: str
    business_goal: str
    roles: tuple[Role, ...]
    collaboration_rules: tuple[str, ...] = ()
    created_at: datetime = datetime(2010, 3, 1)
    #: VO duration in days; membership certificates inherit it.
    duration_days: int = 365

    def __post_init__(self) -> None:
        if not self.vo_name:
            raise ContractError("contract needs a VO name")
        if not self.roles:
            raise ContractError(
                f"contract for {self.vo_name!r} defines no roles"
            )
        names = [role.name for role in self.roles]
        if len(names) != len(set(names)):
            raise ContractError(
                f"contract for {self.vo_name!r} has duplicate role names"
            )
        if self.duration_days <= 0:
            raise ContractError(
                f"contract duration must be positive, got {self.duration_days}"
            )

    def role(self, name: str) -> Role:
        for role in self.roles:
            if role.name == name:
                return role
        raise ContractError(
            f"contract for {self.vo_name!r} has no role {name!r}"
        )

    def role_names(self) -> list[str]:
        return [role.name for role in self.roles]

    def terms_text(self, role: Role) -> str:
        """The human-readable terms sent inside an invitation."""
        lines = [
            f"Virtual Organization: {self.vo_name}",
            f"Business goal: {self.business_goal}",
            f"Offered role: {role.name} — {role.description}",
            "Requirements:",
        ]
        if role.requirements:
            lines.extend(f"  - {req}" for req in role.requirements)
        else:
            lines.append("  - none")
        if self.collaboration_rules:
            lines.append("Collaboration rules:")
            lines.extend(f"  - {rule}" for rule in self.collaboration_rules)
        return "\n".join(lines)
