"""Invitations and mailboxes.

"The VO Initiator then sends them an invitation to join the VO
containing the terms of the contract they have to fulfill"
(Section 2); "Invitations appear in the Mailbox of the new potential
members.  The message contains the text entered in the invitation
screen" (Section 6.1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.errors import InvitationError

__all__ = ["InvitationStatus", "Invitation", "Mailbox"]

_invitation_ids = itertools.count(1)


class InvitationStatus(Enum):
    PENDING = "pending"
    ACCEPTED = "accepted"
    DECLINED = "declined"
    WITHDRAWN = "withdrawn"


@dataclass
class Invitation:
    """One invitation to join a VO in a given role."""

    vo_name: str
    role_name: str
    sender: str
    recipient: str
    terms: str
    invitation_id: str = field(
        default_factory=lambda: f"inv-{next(_invitation_ids)}"
    )
    status: InvitationStatus = InvitationStatus.PENDING

    def _transition(self, to: InvitationStatus) -> None:
        if self.status is not InvitationStatus.PENDING:
            raise InvitationError(
                f"invitation {self.invitation_id} is already "
                f"{self.status.value}"
            )
        self.status = to

    def accept(self) -> None:
        self._transition(InvitationStatus.ACCEPTED)

    def decline(self) -> None:
        self._transition(InvitationStatus.DECLINED)

    def withdraw(self) -> None:
        self._transition(InvitationStatus.WITHDRAWN)


@dataclass
class Mailbox:
    """A member's invitation mailbox."""

    owner: str
    _messages: list[Invitation] = field(default_factory=list)
    _read: set[str] = field(default_factory=set)

    def deliver(self, invitation: Invitation) -> None:
        if invitation.recipient != self.owner:
            raise InvitationError(
                f"invitation for {invitation.recipient!r} delivered to "
                f"{self.owner!r}'s mailbox"
            )
        self._messages.append(invitation)

    def unread(self) -> list[Invitation]:
        return [
            message
            for message in self._messages
            if message.invitation_id not in self._read
        ]

    def mark_read(self, invitation_id: str) -> None:
        self._read.add(invitation_id)

    def all(self) -> list[Invitation]:
        return list(self._messages)

    def pending(self) -> list[Invitation]:
        return [
            message
            for message in self._messages
            if message.status is InvitationStatus.PENDING
        ]

    def find(self, invitation_id: str) -> Optional[Invitation]:
        for message in self._messages:
            if message.invitation_id == invitation_id:
                return message
        return None

    def __len__(self) -> int:
        return len(self._messages)
