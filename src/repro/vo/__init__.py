"""Virtual Organization management (paper Sections 2, 5, 6.1).

Models the VO lifecycle the paper extends with trust negotiation:

- **Preparation** — service providers publish resource descriptions in
  a public repository (:mod:`registry`);
- **Identification** — the VO Initiator defines the contract with its
  roles and requirements and the disclosure policies for the TNs to
  come (:mod:`contract`, :mod:`roles`, :mod:`initiator`);
- **Formation** — candidates are discovered, invited (:mod:`invitations`),
  negotiated with, and issued VO membership certificates
  (:mod:`initiator`, :mod:`member`);
- **Operation** — interactions are monitored (:mod:`monitoring`),
  reputations updated (:mod:`reputation`), operation-phase TNs
  authorize sensitive steps, and violating members are replaced
  (:mod:`organization`);
- **Dissolution** — contractual bindings are nullified
  (:mod:`organization`).
"""

from repro.vo.contract import Contract
from repro.vo.initiator import VOInitiator
from repro.vo.invitations import Invitation, InvitationStatus, Mailbox
from repro.vo.lifecycle import LifecycleTracker, VOPhase
from repro.vo.member import VOMember
from repro.vo.monitoring import OperationMonitor, ViolationEvent, ViolationKind
from repro.vo.organization import VirtualOrganization
from repro.vo.registry import ServiceDescription, ServiceRegistry
from repro.vo.reputation import ReputationEvent, ReputationSystem
from repro.vo.roles import Role

__all__ = [
    "Role",
    "Contract",
    "ServiceDescription",
    "ServiceRegistry",
    "ReputationSystem",
    "ReputationEvent",
    "Invitation",
    "InvitationStatus",
    "Mailbox",
    "VOPhase",
    "LifecycleTracker",
    "ViolationKind",
    "ViolationEvent",
    "OperationMonitor",
    "VOMember",
    "VOInitiator",
    "VirtualOrganization",
]
