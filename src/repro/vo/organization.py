"""The Virtual Organization: lifecycle orchestration.

Ties together contract, initiator, members, reputation, monitoring, and
the trust negotiations that interleave with the lifecycle (paper
Fig. 3): formation-phase admission TNs, operation-phase authorization
TNs, and member replacement after violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Optional

from repro.credentials.x509 import VOMembershipToken
from repro.errors import MembershipError
from repro.negotiation.engine import negotiate
from repro.negotiation.outcomes import NegotiationResult
from repro.obs import event as obs_event, span as obs_span
from repro.vo.contract import Contract
from repro.vo.initiator import VOInitiator
from repro.vo.lifecycle import LifecycleTracker, VOPhase
from repro.vo.member import VOMember
from repro.vo.monitoring import OperationMonitor, ViolationEvent, ViolationKind
from repro.vo.registry import ServiceRegistry
from repro.vo.reputation import ReputationEvent, ReputationSystem
from repro.vo.roles import Role

__all__ = ["FormationReport", "VirtualOrganization"]


@dataclass
class FormationReport:
    """What happened while covering one role."""

    role: str
    admitted: Optional[str] = None
    declined: list[str] = field(default_factory=list)
    failed_negotiation: list[str] = field(default_factory=list)
    below_reputation: list[str] = field(default_factory=list)
    negotiations: list[NegotiationResult] = field(default_factory=list)

    @property
    def covered(self) -> bool:
        return self.admitted is not None


@dataclass
class VirtualOrganization:
    """One VO instance across its whole lifecycle."""

    contract: Contract
    initiator: VOInitiator
    reputation: ReputationSystem = field(default_factory=ReputationSystem)
    monitor: OperationMonitor = field(default_factory=OperationMonitor)
    lifecycle: LifecycleTracker = field(default_factory=LifecycleTracker)
    _members: dict[str, VOMember] = field(default_factory=dict)  # role -> member
    _tokens: dict[str, VOMembershipToken] = field(default_factory=dict)
    _revoked_serials: set[int] = field(default_factory=set)
    #: Roles the formation proceeded without (unreachable candidate):
    #: role -> "member-name: reason", awaiting later re-negotiation.
    _degraded: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Violations automatically hit the offender's reputation.
        self.monitor.subscribe(self._on_violation)

    # -- identification ------------------------------------------------------------

    def identify(self) -> int:
        """Enter Identification: define the contract's TN policies."""
        self.lifecycle.require(VOPhase.PREPARATION)
        installed = self.initiator.define_vo_policies(self.contract)
        self.lifecycle.advance(VOPhase.IDENTIFICATION)
        return installed

    # -- formation -------------------------------------------------------------------

    def form(
        self,
        registry: ServiceRegistry,
        directory: dict[str, VOMember],
        at: Optional[datetime] = None,
        negotiate_all: bool = False,
    ) -> dict[str, FormationReport]:
        """Cover every contract role (paper Fig. 4 flow).

        For each role: discover candidates in the registry, filter by
        reputation, invite, negotiate with acceptors, and admit.  With
        ``negotiate_all`` the Initiator "may engage multiple
        negotiations for a same role" and admits the successful
        candidate with the best reputation; otherwise candidates are
        tried best-advertised-quality first and the first success wins.
        Unsuccessful candidates are removed from the potential-partner
        list for the role.
        """
        self.lifecycle.require(VOPhase.IDENTIFICATION)
        self.lifecycle.advance(VOPhase.FORMATION)
        at = at or self.contract.created_at
        reports = {}
        for role in self.contract.roles:
            reports[role.name] = self._cover_role(
                role, registry, directory, at, negotiate_all
            )
        return reports

    def _cover_role(
        self,
        role: Role,
        registry: ServiceRegistry,
        directory: dict[str, VOMember],
        at: datetime,
        negotiate_all: bool,
        exclude: frozenset[str] = frozenset(),
    ) -> FormationReport:
        """Cover one role.  A member may hold several roles; ``exclude``
        bars specific members (e.g. the outgoing one on replacement)."""
        report = FormationReport(role=role.name)
        successes: list[tuple[float, VOMember]] = []
        for description in registry.find_by_role(role.name):
            member = directory.get(description.provider)
            if member is None or member.name == self.initiator.name:
                continue
            if member.name in exclude:
                continue
            if any(chosen.name == member.name for _, chosen in successes):
                continue  # already a success candidate for this role
            if not self.reputation.meets(member.name, role.min_reputation):
                report.below_reputation.append(member.name)
                continue
            invitation = self.initiator.invite(self.contract, role, member)
            if not member.respond_to_invitation(invitation):
                report.declined.append(member.name)
                continue
            result = self.initiator.negotiate_membership(
                self.contract, role, member, at=at
            )
            report.negotiations.append(result)
            if result.success:
                self.reputation.record(
                    member.name, ReputationEvent.SUCCESSFUL_NEGOTIATION, at=at
                )
                successes.append((self.reputation.score(member.name), member))
                if not negotiate_all:
                    break
            else:
                # "If a negotiation is not successful, the VO Initiator
                # removes the invited VO partner from the potential
                # partners list."
                self.reputation.record(
                    member.name, ReputationEvent.FAILED_NEGOTIATION, at=at
                )
                report.failed_negotiation.append(member.name)
        if successes:
            successes.sort(key=lambda item: (-item[0], item[1].name))
            chosen = successes[0][1]
            token = self.initiator.issue_membership_token(
                self.contract, role, chosen, at
            )
            self._members[role.name] = chosen
            self._tokens[role.name] = token
            report.admitted = chosen.name
        return report

    def admit_member(
        self, role_name: str, member: VOMember, at: datetime
    ) -> VOMembershipToken:
        """Directly admit ``member`` to a role (used by the toolkit's
        join flow after its own invitation/negotiation steps)."""
        self.lifecycle.require(VOPhase.FORMATION, VOPhase.OPERATION)
        role = self.contract.role(role_name)
        if role_name in self._members:
            raise MembershipError(
                f"role {role_name!r} is already covered by "
                f"{self._members[role_name].name!r}"
            )
        token = self.initiator.issue_membership_token(
            self.contract, role, member, at
        )
        self._members[role_name] = member
        self._tokens[role_name] = token
        self._degraded.pop(role_name, None)
        return token

    # -- degraded-mode bookkeeping -----------------------------------------------

    def record_degraded(
        self, role_name: str, member_name: str, reason: str = ""
    ) -> None:
        """Record that formation proceeded without covering ``role_name``
        because ``member_name`` was unreachable; the role stays on the
        books for later re-negotiation (:meth:`admit_member` clears it)."""
        self.contract.role(role_name)  # validate the role exists
        detail = f"{member_name}: {reason}" if reason else member_name
        self._degraded[role_name] = detail

    def degraded(self) -> dict[str, str]:
        """Roles currently operating in degraded mode."""
        return dict(self._degraded)

    def enter_formation(self) -> None:
        """Advance Identification → Formation without running
        :meth:`form` (the toolkit drives joins one member at a time)."""
        self.lifecycle.require(VOPhase.IDENTIFICATION)
        self.lifecycle.advance(VOPhase.FORMATION)

    def begin_operation(self, allow_degraded: bool = False) -> None:
        """Enter Operation.  With ``allow_degraded``, roles recorded via
        :meth:`record_degraded` may stay uncovered (the quorum decided
        to proceed); any *other* uncovered role still blocks."""
        with obs_span(
            "vo.operation",
            vo=self.contract.vo_name,
            allow_degraded=allow_degraded,
        ) as operation_span:
            self.lifecycle.require(VOPhase.FORMATION)
            uncovered = [
                role.name
                for role in self.contract.roles
                if role.name not in self._members
                and not (allow_degraded and role.name in self._degraded)
            ]
            if uncovered:
                raise MembershipError(
                    f"cannot operate {self.contract.vo_name!r}: uncovered "
                    f"roles {uncovered}"
                )
            self.lifecycle.advance(VOPhase.OPERATION)
            operation_span.set(
                members=len(self._members), degraded=len(self._degraded)
            )
            obs_event(
                "vo.operation_started",
                vo=self.contract.vo_name,
                members=len(self._members),
                degraded=sorted(self._degraded),
            )

    # -- membership queries -------------------------------------------------------------

    def member_for(self, role_name: str) -> VOMember:
        try:
            return self._members[role_name]
        except KeyError as exc:
            raise MembershipError(
                f"role {role_name!r} of {self.contract.vo_name!r} is not "
                "covered"
            ) from exc

    def members(self) -> dict[str, VOMember]:
        return dict(self._members)

    def token_for_role(self, role_name: str) -> VOMembershipToken:
        try:
            return self._tokens[role_name]
        except KeyError as exc:
            raise MembershipError(
                f"no membership token for role {role_name!r}"
            ) from exc

    def verify_member(self, token: VOMembershipToken, at: datetime) -> bool:
        """Operational-phase authentication with the membership token."""
        if token.certificate.serial in self._revoked_serials:
            return False
        if not token.certificate.is_valid_at(at):
            return False
        return self.initiator.verify_membership_token(token)

    # -- operation -----------------------------------------------------------------------

    def authorize_operation(
        self,
        source_role: str,
        target_role: str,
        resource: str,
        at: Optional[datetime] = None,
    ) -> NegotiationResult:
        """Operation-phase TN between two members.

        "Unlike TN carried out during the formation phase, the result
        of a TN in this case is not a credential, but it is an
        authorization to execute the next VO operations" (Section 5.1).
        """
        self.lifecycle.require(VOPhase.OPERATION)
        source = self.member_for(source_role)
        target = self.member_for(target_role)
        result = negotiate(source.agent, target.agent, resource, at=at)
        self.monitor.record_interaction(
            source.name, target.name, resource, result.success, at=at
        )
        if not result.success:
            self.reputation.record(
                source.name, ReputationEvent.FAILED_NEGOTIATION, at=at,
                detail=f"authorization for {resource!r} failed",
            )
        return result

    def _on_violation(self, event: ViolationEvent) -> None:
        mapped = {
            ViolationKind.CONTRACT_BREACH: ReputationEvent.CONTRACT_VIOLATION,
            ViolationKind.RESOURCE_MISUSE: ReputationEvent.RESOURCE_MISUSE,
            ViolationKind.INFORMATION_GATHERING: ReputationEvent.RESOURCE_MISUSE,
            ViolationKind.QOS_DEGRADATION: ReputationEvent.LOW_QUALITY_SERVICE,
            ViolationKind.CREDENTIAL_EXPIRED: ReputationEvent.FAILED_NEGOTIATION,
        }[event.kind]
        self.reputation.record(
            event.member, mapped, at=event.at, detail=event.detail
        )

    def report_violation(
        self,
        member_name: str,
        kind: ViolationKind,
        detail: str = "",
        at: Optional[datetime] = None,
    ) -> ViolationEvent:
        self.lifecycle.require(VOPhase.OPERATION)
        return self.monitor.report_violation(member_name, kind, detail, at)

    def replace_member(
        self,
        role_name: str,
        registry: ServiceRegistry,
        directory: dict[str, VOMember],
        at: datetime,
        negotiate_all: bool = False,
    ) -> FormationReport:
        """Replace a role's member "by following the same protocols of
        the formation phase" (Section 5.1, third arrow of Fig. 3)."""
        self.lifecycle.require(VOPhase.OPERATION)
        role = self.contract.role(role_name)
        outgoing = self._members.pop(role_name, None)
        old_token = self._tokens.pop(role_name, None)
        if old_token is not None:
            self._revoked_serials.add(old_token.certificate.serial)
        if outgoing is not None:
            outgoing.drop_token(self.contract.vo_name, role_name)
        report = self._cover_role(
            role, registry, directory, at, negotiate_all,
            exclude=frozenset({outgoing.name} if outgoing else ()),
        )
        if not report.covered:
            raise MembershipError(
                f"could not re-cover role {role_name!r} after replacement"
            )
        return report

    # -- dissolution -----------------------------------------------------------------------

    def _participation_outcome(self, member_name: str) -> str:
        """How the member's participation ended, for its ticket."""
        if self.monitor.violation_count(member_name) > 0:
            return "violated"
        if self.reputation.score(member_name) >= 0.5:
            return "fulfilled"
        return "completed"

    def issue_participation_ticket(
        self, member: VOMember, role_name: str, at: datetime
    ):
        """Issue the member a "VO Participation Ticket".

        The Identification-phase policies of future VOs can require
        "tickets attesting their participation to other VOs" (paper
        Section 5.1); the ticket records the VO, the role played, and
        the outcome derived from the member's final reputation and
        violation record.
        """
        from repro.credentials.credential import Credential, ValidityPeriod

        ticket_body = Credential.build(
            cred_type="VO Participation Ticket",
            cred_id=(
                f"{self.initiator.name}:ticket:{self.contract.vo_name}:"
                f"{member.name}:{role_name}"
            ),
            issuer=self.initiator.name,
            subject=member.name,
            subject_key=member.agent.keypair.fingerprint,
            validity=ValidityPeriod.starting(at, days=3650),
            attributes={
                "voName": self.contract.vo_name,
                "role": role_name,
                "outcome": self._participation_outcome(member.name),
                "finalReputation": round(
                    self.reputation.score(member.name), 3
                ),
            },
        )
        ticket = ticket_body.with_signature(
            self.initiator.agent.keypair.private.sign_b64(
                ticket_body.signing_bytes()
            )
        )
        if ticket.cred_id in member.agent.profile:
            member.agent.profile.remove(ticket.cred_id)
        member.agent.profile.add(ticket)
        return ticket

    def dissolve(self, at: Optional[datetime] = None) -> list:
        """Nullify all contractual bindings (Section 2).

        As part of the final operations, every member receives a
        participation ticket usable in future VO formations.  Returns
        the issued tickets.
        """
        self.lifecycle.require(VOPhase.OPERATION)
        at = at or self.contract.created_at
        tickets = []
        for role_name, member in self._members.items():
            tickets.append(
                self.issue_participation_ticket(member, role_name, at)
            )
        for token in self._tokens.values():
            self._revoked_serials.add(token.certificate.serial)
        for member in self._members.values():
            member.drop_token(self.contract.vo_name)
            member.clear_transient_policies()
        self._members.clear()
        self._tokens.clear()
        self.initiator.clear_vo_policies()
        self.lifecycle.advance(VOPhase.DISSOLUTION)
        return tickets
