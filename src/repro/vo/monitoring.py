"""Operation-phase monitoring.

"All the interactions must be monitored, ruled by security policies and
any violation must be notified" (paper Section 2).  The monitor records
interaction and violation events and notifies subscribers (the VO wires
it to the reputation system and to replacement logic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from enum import Enum
from typing import Callable, Optional

__all__ = ["ViolationKind", "ViolationEvent", "InteractionEvent", "OperationMonitor"]


class ViolationKind(Enum):
    CONTRACT_BREACH = "contract_breach"
    RESOURCE_MISUSE = "resource_misuse"
    INFORMATION_GATHERING = "information_gathering"
    QOS_DEGRADATION = "qos_degradation"
    CREDENTIAL_EXPIRED = "credential_expired"


@dataclass(frozen=True)
class ViolationEvent:
    member: str
    kind: ViolationKind
    detail: str = ""
    at: Optional[datetime] = None


@dataclass(frozen=True)
class InteractionEvent:
    """One monitored member-to-member interaction."""

    source: str
    target: str
    operation: str
    authorized: bool
    at: Optional[datetime] = None


@dataclass
class OperationMonitor:
    """Event log + violation notification."""

    _violations: list[ViolationEvent] = field(default_factory=list)
    _interactions: list[InteractionEvent] = field(default_factory=list)
    _subscribers: list[Callable[[ViolationEvent], None]] = field(
        default_factory=list
    )

    def subscribe(self, callback: Callable[[ViolationEvent], None]) -> None:
        self._subscribers.append(callback)

    def record_interaction(
        self,
        source: str,
        target: str,
        operation: str,
        authorized: bool,
        at: Optional[datetime] = None,
    ) -> InteractionEvent:
        event = InteractionEvent(source, target, operation, authorized, at)
        self._interactions.append(event)
        return event

    def report_violation(
        self,
        member: str,
        kind: ViolationKind,
        detail: str = "",
        at: Optional[datetime] = None,
    ) -> ViolationEvent:
        event = ViolationEvent(member, kind, detail, at)
        self._violations.append(event)
        for callback in self._subscribers:
            callback(event)
        return event

    def violations(self, member: Optional[str] = None) -> list[ViolationEvent]:
        if member is None:
            return list(self._violations)
        return [event for event in self._violations if event.member == member]

    def interactions(self) -> list[InteractionEvent]:
        return list(self._interactions)

    def violation_count(self, member: str) -> int:
        return len(self.violations(member))
