"""The public service repository of the Preparation phase.

"SPs publish their resources' functionalities in a public repository.
The resources' description provides detailed information about
resources' capabilities, the resources' interaction means and other
information like the resource quality.  This information allows one to
select a SP for inclusion in the VO" (paper Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.errors import VOError

__all__ = ["ServiceDescription", "ServiceRegistry"]


@dataclass(frozen=True)
class ServiceDescription:
    """One published resource description."""

    provider: str
    service_name: str
    #: Role names the provider registers for ("potential members are
    #: identified based on the roles that they have registered for",
    #: Section 6.1).
    roles: tuple[str, ...]
    capabilities: tuple[tuple[str, str], ...] = ()
    #: Advertised resource quality in [0, 1].
    quality: float = 0.5
    endpoint: str = ""

    def __post_init__(self) -> None:
        if not self.provider or not self.service_name:
            raise VOError("service description needs provider and name")
        if not 0.0 <= self.quality <= 1.0:
            raise VOError(
                f"quality must be in [0, 1], got {self.quality}"
            )

    @classmethod
    def of(
        cls,
        provider: str,
        service_name: str,
        roles: list[str],
        capabilities: Optional[Mapping[str, str]] = None,
        quality: float = 0.5,
        endpoint: str = "",
    ) -> "ServiceDescription":
        return cls(
            provider=provider,
            service_name=service_name,
            roles=tuple(roles),
            capabilities=tuple(sorted((capabilities or {}).items())),
            quality=quality,
            endpoint=endpoint or f"urn:repro:{provider}:{service_name}",
        )

    def capability(self, name: str) -> Optional[str]:
        for key, value in self.capabilities:
            if key == name:
                return value
        return None


@dataclass
class ServiceRegistry:
    """The queryable public repository."""

    _published: dict[str, ServiceDescription] = field(default_factory=dict)

    def publish(self, description: ServiceDescription) -> None:
        key = f"{description.provider}:{description.service_name}"
        self._published[key] = description

    def withdraw(self, provider: str, service_name: str) -> None:
        key = f"{provider}:{service_name}"
        if key not in self._published:
            raise VOError(f"no published service {key!r}")
        del self._published[key]

    def __len__(self) -> int:
        return len(self._published)

    def all(self) -> list[ServiceDescription]:
        return [self._published[key] for key in sorted(self._published)]

    def find_by_role(self, role_name: str) -> list[ServiceDescription]:
        """Candidates for a role, best advertised quality first."""
        matches = [
            description
            for description in self.all()
            if role_name in description.roles
        ]
        return sorted(matches, key=lambda d: (-d.quality, d.provider))

    def find_by_capability(self, name: str, value: str) -> list[ServiceDescription]:
        return [
            description
            for description in self.all()
            if description.capability(name) == value
        ]

    def providers(self) -> list[str]:
        return sorted({d.provider for d in self.all()})
