"""Member-side VO logic.

A :class:`VOMember` wraps a party's Trust-X agent with the member-
edition behaviours: publishing services during Preparation, handling
invitations through its mailbox, installing transient disclosure
policies before a negotiation ("the potential members may specify
disclosure policies either beforehand or on the fly before starting the
TN", paper Section 5.1), and holding VO membership tokens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.credentials.x509 import VOMembershipToken
from repro.errors import InvitationError, MembershipError
from repro.negotiation.agent import TrustXAgent
from repro.vo.invitations import Invitation, Mailbox
from repro.vo.registry import ServiceDescription, ServiceRegistry

__all__ = ["VOMember"]

#: Decides whether to accept an invitation; "unlike the conventional
#: joining phase of a VO, acceptance in TN is mutual: the potential
#: member can decide to join the VO based on what it learns about the
#: VO Initiator and the VO goal" (Section 5.1).
InvitationDecision = Callable[[Invitation], bool]


def _accept_all(invitation: Invitation) -> bool:
    return True


@dataclass
class VOMember:
    """One service provider able to join VOs."""

    name: str
    agent: TrustXAgent
    services: list[ServiceDescription] = field(default_factory=list)
    decision: InvitationDecision = _accept_all
    mailbox: Mailbox = field(init=False)
    _tokens: dict[str, dict[str, VOMembershipToken]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.agent.name != self.name:
            raise MembershipError(
                f"member {self.name!r} wraps an agent named "
                f"{self.agent.name!r}"
            )
        self.mailbox = Mailbox(self.name)

    # -- preparation phase --------------------------------------------------------

    def prepare(self, registry: ServiceRegistry) -> None:
        """Publish this member's service descriptions."""
        for description in self.services:
            registry.publish(description)

    def offer_service(self, description: ServiceDescription) -> None:
        if description.provider != self.name:
            raise MembershipError(
                f"{self.name!r} cannot offer a service described as "
                f"provided by {description.provider!r}"
            )
        self.services.append(description)

    # -- invitations ---------------------------------------------------------------

    def respond_to_invitation(self, invitation: Invitation) -> bool:
        """Read, decide, and answer one invitation from the mailbox."""
        if self.mailbox.find(invitation.invitation_id) is None:
            raise InvitationError(
                f"invitation {invitation.invitation_id} is not in "
                f"{self.name!r}'s mailbox"
            )
        self.mailbox.mark_read(invitation.invitation_id)
        if self.decision(invitation):
            invitation.accept()
            return True
        invitation.decline()
        return False

    # -- negotiation support ---------------------------------------------------------

    def install_transient_policies(self, dsl: str) -> int:
        """Install on-the-fly VO-specific disclosure policies."""
        return len(self.agent.policies.add_dsl(dsl, transient=True))

    def clear_transient_policies(self) -> int:
        return self.agent.policies.clear_transient()

    # -- membership ------------------------------------------------------------------

    def receive_token(self, token: VOMembershipToken) -> None:
        if token.member != self.name:
            raise MembershipError(
                f"token for {token.member!r} delivered to {self.name!r}"
            )
        # A member may hold several roles in the same VO, each with its
        # own membership certificate.
        self._tokens.setdefault(token.vo_name, {})[token.role] = token

    def token_for(
        self, vo_name: str, role: Optional[str] = None
    ) -> VOMembershipToken:
        """The membership token for ``vo_name`` (and ``role``, when the
        member holds several)."""
        by_role = self._tokens.get(vo_name)
        if not by_role:
            raise MembershipError(
                f"{self.name!r} holds no membership token for {vo_name!r}"
            )
        if role is None:
            return next(iter(by_role.values()))
        try:
            return by_role[role]
        except KeyError as exc:
            raise MembershipError(
                f"{self.name!r} holds no {vo_name!r} token for role {role!r}"
            ) from exc

    def drop_token(self, vo_name: str, role: Optional[str] = None) -> None:
        if role is None:
            self._tokens.pop(vo_name, None)
            return
        by_role = self._tokens.get(vo_name)
        if by_role is not None:
            by_role.pop(role, None)
            if not by_role:
                del self._tokens[vo_name]

    def memberships(self) -> list[str]:
        return sorted(self._tokens)

    def is_member_of(self, vo_name: str) -> bool:
        return bool(self._tokens.get(vo_name))
