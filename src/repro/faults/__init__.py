"""Deterministic fault injection for the simulated SOA.

The paper's prototype (Section 6) ran Trust-X negotiations over a real
SOAP/Tomcat/Oracle stack where calls time out, messages get lost, and
services crash mid-negotiation.  This subpackage makes those failure
modes *representable and reproducible* in the simulation:

- :mod:`plan` — :class:`FaultPlan`, a schedule of :class:`FaultSpec`
  entries (which fault, on which call); seeded plans derive the
  schedule from a :class:`random.Random` seed, so a run is exactly
  repeatable;
- :mod:`injector` — :class:`FaultInjector`, a transport decorator that
  executes the plan: message drops, lost responses (timeouts),
  duplicated deliveries, endpoint crashes with delayed restarts, and
  database-connect failures;
- :mod:`demo` — the fault-tolerant negotiation walkthrough behind
  ``python -m repro faults`` and
  ``examples/fault_tolerant_negotiation.py``.

All injected delays are charged to the
:class:`~repro.services.clock.SimClock`; nothing depends on wall-clock
time or unseeded randomness.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec

__all__ = ["FaultKind", "FaultSpec", "FaultPlan", "FaultInjector"]
