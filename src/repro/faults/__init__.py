"""Deterministic fault injection for the simulated SOA.

The paper's prototype (Section 6) ran Trust-X negotiations over a real
SOAP/Tomcat/Oracle stack where calls time out, messages get lost, and
services crash mid-negotiation.  This subpackage makes those failure
modes *representable and reproducible* in the simulation:

- :mod:`plan` — :class:`FaultPlan`, a schedule of :class:`FaultSpec`
  entries (which fault, on which call); seeded plans derive the
  schedule from a :class:`random.Random` seed, so a run is exactly
  repeatable;
- :mod:`injector` — :class:`FaultInjector`, a transport decorator that
  executes the plan: message drops, lost responses (timeouts),
  duplicated deliveries, endpoint crashes with delayed restarts, and
  database-connect failures;
- :mod:`adversarial` — hostile-peer probe construction for the
  adversarial fault kinds (malformed, truncated, oversized, replayed,
  reordered, Byzantine), fired by the injector alongside the
  legitimate traffic;
- :mod:`demo` — the fault-tolerant negotiation walkthrough behind
  ``python -m repro faults`` and
  ``examples/fault_tolerant_negotiation.py``.

All injected delays are charged to the
:class:`~repro.services.clock.SimClock`; nothing depends on wall-clock
time or unseeded randomness.

.. deprecated:: 1.1
   Importing these classes from ``repro.faults`` directly is
   deprecated; import them from :mod:`repro.api` or from the canonical
   modules ``repro.faults.plan`` / ``repro.faults.injector``.
   Package-level access still works but emits a
   :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from importlib import import_module

__all__ = [
    "FaultKind", "FaultSpec", "FaultPlan", "FaultInjector",
    "Probe", "build_probe",
]

#: Name -> canonical deep module, resolved lazily by ``__getattr__``.
_FORWARDS = {
    "FaultKind": "repro.faults.plan",
    "FaultSpec": "repro.faults.plan",
    "FaultPlan": "repro.faults.plan",
    "FaultInjector": "repro.faults.injector",
    "Probe": "repro.faults.adversarial",
    "build_probe": "repro.faults.adversarial",
}


def __getattr__(name: str):
    module_path = _FORWARDS.get(name)
    if module_path is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    warnings.warn(
        f"importing {name!r} from 'repro.faults' is deprecated; use "
        f"'repro.api' or the canonical module {module_path!r}",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(import_module(module_path), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
