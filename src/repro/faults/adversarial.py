"""Adversarial probe construction for hostile-peer fault kinds.

The classic fault kinds (DROP, TIMEOUT, ...) model a failing network;
the adversarial kinds model a *hostile peer*: messages that are
malformed, truncated, oversized, replayed, reordered, or Byzantine
(reusing another negotiation's idempotency token under different
parameters).  The :class:`~repro.faults.injector.FaultInjector`
delivers the legitimate call unchanged and then fires one probe built
here from the intercepted traffic, recording whether the service
rejected it with a typed :class:`~repro.errors.ErrorCode` (the
hardening acceptance criterion) or anomalously accepted/leaked.

Probes are pure data: ``build_probe`` returns the ``(operation,
payload)`` pair to deliver, derived deterministically from the
intercepted call, the injector's bounded per-endpoint history, and the
plan's seeded random stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.faults.plan import FaultKind

__all__ = ["Probe", "build_probe"]

#: One million x's: far past any sane string budget.
_OVERSIZED_TEXT = "x" * 1_000_000

_TRUNCATED_XML = "<credential><attr name='member"


@dataclass(frozen=True)
class Probe:
    """One adversarial message ready for delivery.

    ``replay_tolerant`` marks probes that replay a recorded message
    verbatim: the service answering them from its idempotent replay
    path is correct behavior, not an anomaly.
    """

    operation: str
    payload: object
    replay_tolerant: bool = False


def _mutable_string_field(payload: object) -> Optional[str]:
    """A schema-known string field of the payload worth corrupting."""
    if not isinstance(payload, dict):
        return None
    for name in ("resource", "negotiationId", "counterpartUrl",
                 "requestId", "strategy"):
        if isinstance(payload.get(name), str):
            return name
    return None


def _replay_from(
    history: Sequence[tuple[str, object]],
    operation: str,
    payload: object,
    rng: random.Random,
) -> Probe:
    if history:
        replayed_op, replayed_payload = rng.choice(list(history))
        return Probe(replayed_op, replayed_payload, replay_tolerant=True)
    return Probe(operation, payload, replay_tolerant=True)


def _reordered(operation: str, payload: object) -> Probe:
    if isinstance(payload, dict) and payload.get("negotiationId"):
        seq = payload.get("clientSeq")
        skipped = (seq + 5) if isinstance(seq, int) else 7
        probe = {
            "negotiationId": payload["negotiationId"],
            "clientSeq": skipped,
        }
        if operation == "PolicyExchange":
            probe["resource"] = payload.get("resource", "ghost")
            return Probe("PolicyExchange", probe)
        return Probe("CredentialExchange", probe)
    # No session context yet (e.g. StartNegotiation): a later-phase
    # message arriving before the session even exists.
    return Probe("CredentialExchange", {
        "negotiationId": "tn-reordered-ghost",
        "clientSeq": 2,
    })


def _byzantine(
    operation: str,
    payload: object,
    history: Sequence[tuple[str, object]],
    rng: random.Random,
) -> Probe:
    """A peer reusing a recorded idempotency token with different
    negotiation parameters (lying about who/what it is)."""
    if (
        operation == "StartNegotiation"
        and isinstance(payload, dict)
        and payload.get("requestId")
    ):
        flipped = dict(payload)
        flipped["strategy"] = (
            "trusting" if payload.get("strategy") != "trusting"
            else "suspicious"
        )
        return Probe(operation, flipped)
    return _replay_from(history, operation, payload, rng)


def build_probe(
    kind: FaultKind,
    operation: str,
    payload: object,
    history: Sequence[tuple[str, object]],
    rng: random.Random,
) -> Probe:
    """Build the adversarial probe to fire for ``kind``."""
    if kind is FaultKind.MALFORMED:
        return Probe(operation, ["\x00\xff", "not", "a", "mapping"])
    if kind is FaultKind.TRUNCATED:
        field_name = _mutable_string_field(payload)
        if field_name is None:
            return Probe(operation, _TRUNCATED_XML)
        probe = dict(payload)
        probe[field_name] = _TRUNCATED_XML
        return Probe(operation, probe)
    if kind is FaultKind.OVERSIZED:
        field_name = _mutable_string_field(payload)
        if field_name is None:
            return Probe(operation, {"blob": _OVERSIZED_TEXT})
        probe = dict(payload)
        probe[field_name] = _OVERSIZED_TEXT
        return Probe(operation, probe)
    if kind is FaultKind.REPLAYED:
        return _replay_from(history, operation, payload, rng)
    if kind is FaultKind.REORDERED:
        return _reordered(operation, payload)
    if kind is FaultKind.BYZANTINE:
        return _byzantine(operation, payload, history, rng)
    raise ValueError(f"{kind!r} is not an adversarial fault kind")
