"""The fault-tolerant negotiation walkthrough.

Shared by ``python -m repro faults`` and
``examples/fault_tolerant_negotiation.py``: runs the Aircraft
Optimization membership negotiation three times — fault-free, under a
seeded fault storm, and through a service crash with checkpoint
recovery — and prints what the resilience layer did about it.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan
from repro.negotiation.strategies import Strategy
from repro.scenario import build_aircraft_scenario
from repro.scenario.aircraft import ROLE_DESIGN_PORTAL
from repro.services.resilience import ResilientTransport, RetryPolicy
from repro.services.tn_client import TNClient
from repro.services.tn_service import TNWebService
from repro.storage.document_store import XMLDocumentStore

__all__ = ["run_demo", "negotiate_under_faults"]


def negotiate_under_faults(
    plan: FaultPlan,
    strategy: Strategy = Strategy.STANDARD,
    with_restart: bool = True,
    retry: RetryPolicy | None = None,
):
    """One membership negotiation through the resilient stack.

    Returns ``(result_or_error, injector, resilient)`` — the result is
    a :class:`~repro.negotiation.outcomes.NegotiationResult` on clean
    termination, or the typed :class:`~repro.errors.ReproError` the
    stack surfaced.
    """
    scenario = build_aircraft_scenario()
    scenario.initiator.define_vo_policies(scenario.contract)
    role = scenario.contract.role(ROLE_DESIGN_PORTAL)
    resource = role.membership_resource(scenario.contract.vo_name)
    owner = scenario.initiator.agent
    requester = scenario.member("AerospaceCo").agent

    store = XMLDocumentStore("tn-store")
    injector = FaultInjector(scenario.transport, plan)
    resilient = ResilientTransport(
        injector, retry=retry or RetryPolicy(jitter_seed=plan.seed or 0)
    )
    url = "urn:vo:tn"
    service_ref = {
        "service": TNWebService(owner, injector, store, url)
    }
    if with_restart:
        injector.register_endpoint(
            url,
            crash=lambda: service_ref["service"].crash(),
            restart=lambda: service_ref.update(service=TNWebService.restore(
                owner, injector, store, url,
                agents={requester.name: requester},
            )),
        )
    client = TNClient(resilient, url, requester)
    try:
        outcome = client.negotiate(
            resource, strategy=strategy, at=scenario.contract.created_at
        )
    except ReproError as exc:
        outcome = exc
    return outcome, injector, resilient


def run_demo(seed: int = 7, strategy: str = "standard") -> int:
    """Print the fault-free vs. faulty vs. crash-recovery comparison."""
    chosen = Strategy.parse(strategy)

    print("=== Fault-tolerant trust negotiation "
          f"(seed={seed}, strategy={chosen.value}) ===\n")

    baseline, injector, resilient = negotiate_under_faults(
        FaultPlan(), strategy=chosen
    )
    print("1. fault-free baseline")
    print(f"   {baseline.summary()}")
    baseline_ms = resilient.clock.elapsed_ms
    print(f"   simulated time: {baseline_ms:.0f} ms\n")

    storm = FaultPlan.seeded(
        seed,
        kinds=(FaultKind.DROP, FaultKind.TIMEOUT, FaultKind.DUPLICATE,
               FaultKind.DB_FAIL),
        faults=3, horizon_calls=6,
    )
    result, injector, resilient = negotiate_under_faults(
        storm, strategy=chosen
    )
    scheduled = (
        storm.pending() + injector.total_injected() + injector.total_skipped()
    )
    print(f"2. seeded fault storm ({scheduled} faults scheduled)")
    injected = {
        kind.value: count
        for kind, count in injector.injected.items() if count
    }
    print(f"   injected: {injected or 'none hit'}")
    print(f"   retries: {resilient.stats.retries}, "
          f"backoff charged: {resilient.stats.backoff_ms_total:.0f} ms")
    print(f"   {result.summary() if hasattr(result, 'summary') else result}")
    print(f"   simulated time: {resilient.clock.elapsed_ms:.0f} ms\n")

    crash_plan = FaultPlan().at(
        3, FaultKind.CRASH, operation="CredentialExchange"
    )
    result, injector, resilient = negotiate_under_faults(
        crash_plan, strategy=chosen
    )
    print("3. service crash after the policy phase, checkpoint recovery")
    print(f"   crashes: {injector.crash_count('urn:vo:tn')}, "
          f"restarts from checkpoint: {injector.restart_count('urn:vo:tn')}")
    print(f"   {result.summary() if hasattr(result, 'summary') else result}")
    same = (
        hasattr(result, "success")
        and result.success == baseline.success
        and result.disclosed_by_requester == baseline.disclosed_by_requester
        and result.disclosed_by_controller == baseline.disclosed_by_controller
    )
    print(f"   identical outcome to the fault-free run: {same}")
    print(f"   simulated time: {resilient.clock.elapsed_ms:.0f} ms "
          f"(overhead {resilient.clock.elapsed_ms - baseline_ms:+.0f} ms)")
    return 0 if same else 1
