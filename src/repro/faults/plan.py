"""Fault schedules: what goes wrong, and exactly when.

A :class:`FaultPlan` is an ordered collection of :class:`FaultSpec`
entries.  Each spec names a fault kind and *where it strikes*: an
optional endpoint URL filter, an optional operation filter, and either
a specific global call index or "every matching call" (optionally
bounded by ``limit``).  The injector consults the plan once per
transport call.

Determinism: :meth:`FaultPlan.seeded` derives call indices from a
``random.Random(seed)`` stream, so the same seed always yields the
same schedule; nothing reads the wall clock or global random state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

__all__ = ["FaultKind", "FaultSpec", "FaultPlan"]


class FaultKind(Enum):
    #: The request is lost in transit: the handler never runs, the
    #: caller waits out its deadline.
    DROP = "drop"
    #: The handler runs (side effects happen!) but the response is
    #: lost: the caller waits out its deadline.  Distinguishing this
    #: from DROP is what makes idempotency testable.
    TIMEOUT = "timeout"
    #: The message is delivered twice; the caller sees the second
    #: response.  Exercises server-side deduplication.
    DUPLICATE = "duplicate"
    #: The endpoint process dies: volatile state is lost, the URL
    #: unbinds, and the endpoint stays down for ``downtime_ms`` of
    #: simulated time before a registered restart hook may revive it.
    CRASH = "crash"
    #: The service's database connection fails for this call.
    DB_FAIL = "db_fail"
    #: The call succeeds but the endpoint is pathologically slow: the
    #: handler runs, then the response is delayed by the plan's
    #: ``slow_ms`` before delivery.  The degraded-but-alive case that
    #: hedged requests and health-aware routing exist for — a plain
    #: retry can't help (the call *succeeds*), only racing a second
    #: attempt elsewhere can.
    SLOW = "slow"
    #: A whole node dies (like CRASH, but counted separately so
    #: cluster failover drills can be told apart from plain endpoint
    #: crashes).  Volatile state is lost; durable session journals
    #: survive for the restart/failover path to recover from.
    NODE_CRASH = "node_crash"
    #: A downed node is revived *now* — the registered restart hook
    #: runs (replaying the node's durable journal) and the call is
    #: then delivered to the recovered node.
    NODE_RESTART = "node_restart"
    #: Power loss mid-append: the call is delivered and its checkpoint
    #: written, then the final WAL record is torn in half and the node
    #: killed.  Recovery must discard the torn record — the transition
    #: never committed — and the caller's retry must re-run it.
    WAL_TORN_WRITE = "wal_torn_write"

    # -- adversarial kinds (repro.faults.adversarial) -----------------------
    # These model a *hostile* peer rather than a failing network: the
    # legitimate call is delivered unchanged, and an adversarial probe
    # derived from it is injected alongside.  A hardened service must
    # reject every probe with a typed error code.

    #: A structurally broken message (not even a field mapping).
    MALFORMED = "malformed"
    #: A field carrying an XML document cut off mid-element.
    TRUNCATED = "truncated"
    #: A field blown up far past any sane size budget.
    OVERSIZED = "oversized"
    #: A previously delivered message replayed verbatim (idempotent
    #: replay may legitimately succeed; leaking an exception may not).
    REPLAYED = "replayed"
    #: A message from a later protocol step delivered too early
    #: (skipped-ahead sequence number or unknown session).
    REORDERED = "reordered"
    #: A peer lying about its identity: a recorded idempotency token
    #: reused with different negotiation parameters.
    BYZANTINE = "byzantine"

    @property
    def adversarial(self) -> bool:
        return self in _ADVERSARIAL_KINDS

    @classmethod
    def parse(cls, text: str) -> "FaultKind":
        normalized = text.strip().lower().replace("-", "_")
        for member in cls:
            if member.value == normalized:
                return member
        raise ValueError(
            f"unknown fault kind {text!r}; expected one of "
            f"{[member.value for member in cls]}"
        )


#: Kinds that inject hostile-peer probes instead of network failures.
_ADVERSARIAL_KINDS = frozenset({
    FaultKind.MALFORMED, FaultKind.TRUNCATED, FaultKind.OVERSIZED,
    FaultKind.REPLAYED, FaultKind.REORDERED, FaultKind.BYZANTINE,
})


@dataclass
class FaultSpec:
    """One scheduled fault.

    ``call_index`` matches the injector's global 1-based call counter;
    ``None`` matches every call that passes the URL/operation filters,
    up to ``limit`` injections (``None`` = unbounded).  A spec with a
    ``probability`` strikes each matching call with that chance, drawn
    from the plan's seeded stream (still fully reproducible).
    """

    kind: FaultKind
    url: Optional[str] = None
    operation: Optional[str] = None
    call_index: Optional[int] = None
    limit: Optional[int] = None
    #: Per-matching-call injection probability in ``(0, 1]``; ``None``
    #: means deterministic (every match injects).
    probability: Optional[float] = None
    injected: int = 0

    def matches(self, url: str, operation: str, index: int) -> bool:
        if self.limit is not None and self.injected >= self.limit:
            return False
        if self.url is not None and self.url != url:
            return False
        if self.operation is not None and self.operation != operation:
            return False
        if self.call_index is not None and self.call_index != index:
            return False
        return True

    @property
    def exhausted(self) -> bool:
        if self.call_index is not None:
            return self.injected > 0
        return self.limit is not None and self.injected >= self.limit


@dataclass
class FaultPlan:
    """The full schedule, plus injector tuning knobs.

    ``timeout_wait_ms`` is the simulated time a caller loses waiting
    out a lost message; ``downtime_ms`` is how long a crashed endpoint
    stays unreachable before its restart hook may run.
    """

    specs: list[FaultSpec] = field(default_factory=list)
    timeout_wait_ms: float = 1000.0
    downtime_ms: float = 2000.0
    #: Extra response delay for :data:`FaultKind.SLOW` injections.
    slow_ms: float = 4000.0
    seed: Optional[int] = None
    _rng: Optional[random.Random] = field(
        default=None, repr=False, compare=False
    )

    def random(self) -> random.Random:
        """The plan's isolated random stream (lazily seeded)."""
        if self._rng is None:
            self._rng = random.Random(self.seed)
        return self._rng

    # -- construction ------------------------------------------------------------

    @classmethod
    def seeded(
        cls,
        seed: int,
        kinds: tuple[FaultKind, ...] = (
            FaultKind.DROP, FaultKind.TIMEOUT, FaultKind.DUPLICATE,
        ),
        faults: int = 3,
        horizon_calls: int = 40,
        url: Optional[str] = None,
        operation: Optional[str] = None,
        timeout_wait_ms: float = 1000.0,
        downtime_ms: float = 2000.0,
    ) -> "FaultPlan":
        """Derive a reproducible schedule from ``seed``.

        Draws ``faults`` distinct call indices in
        ``[1, horizon_calls]`` and assigns each a kind from ``kinds``
        using an isolated ``random.Random(seed)`` stream.
        """
        rng = random.Random(seed)
        count = min(faults, horizon_calls)
        indices = sorted(rng.sample(range(1, horizon_calls + 1), count))
        specs = [
            FaultSpec(
                kind=rng.choice(kinds),
                url=url,
                operation=operation,
                call_index=index,
            )
            for index in indices
        ]
        return cls(
            specs=specs,
            timeout_wait_ms=timeout_wait_ms,
            downtime_ms=downtime_ms,
            seed=seed,
        )

    def at(
        self,
        call_index: int,
        kind: FaultKind,
        url: Optional[str] = None,
        operation: Optional[str] = None,
    ) -> "FaultPlan":
        """Schedule ``kind`` on the Nth transport call (chainable)."""
        self.specs.append(FaultSpec(
            kind=kind, url=url, operation=operation, call_index=call_index,
        ))
        return self

    def always(
        self,
        kind: FaultKind,
        url: Optional[str] = None,
        operation: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> "FaultPlan":
        """Inject ``kind`` on every matching call (chainable)."""
        self.specs.append(FaultSpec(
            kind=kind, url=url, operation=operation, limit=limit,
        ))
        return self

    def randomly(
        self,
        kind: FaultKind,
        probability: float,
        url: Optional[str] = None,
        operation: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> "FaultPlan":
        """Inject ``kind`` on each matching call with ``probability``
        (chainable; draws come from the plan's seeded stream)."""
        if not 0.0 < probability <= 1.0:
            raise ValueError(
                f"probability must be in (0, 1], got {probability}"
            )
        self.specs.append(FaultSpec(
            kind=kind, url=url, operation=operation, limit=limit,
            probability=probability,
        ))
        return self

    def clear(self) -> None:
        """Drop all remaining scheduled faults (the storm is over)."""
        self.specs.clear()

    # -- consumption --------------------------------------------------------------

    def take(self, url: str, operation: str, index: int) -> Optional[FaultSpec]:
        """The fault to inject on this call, consuming one injection.

        First match wins; single-shot specs are retired once injected.
        Probabilistic specs that match but do not strike pass the call
        on to later specs.
        """
        for spec in self.specs:
            if spec.matches(url, operation, index):
                if (
                    spec.probability is not None
                    and self.random().random() >= spec.probability
                ):
                    continue
                spec.injected += 1
                if spec.exhausted and spec.call_index is not None:
                    self.specs.remove(spec)
                return spec
        return None

    def pending(self) -> int:
        """Scheduled single-shot faults not yet injected."""
        return sum(
            1 for spec in self.specs
            if spec.call_index is not None and spec.injected == 0
        )
