"""The fault injector: a transport decorator executing a FaultPlan.

Stacks between the resilience layer and the raw
:class:`~repro.services.transport.SimTransport`::

    client → ResilientTransport → FaultInjector → SimTransport

It exposes the full transport interface (``bind`` / ``unbind`` /
``call`` / ``charge_*``), so services and clients built against
``SimTransport`` work unchanged on top of it.

Fault semantics (all waits are simulated time):

- **DROP** — the request is lost: the handler never runs; the caller
  pays one message cost plus the timeout wait, then gets
  :class:`~repro.errors.TimeoutError`.
- **TIMEOUT** — the handler runs (its side effects and charges land)
  but the response is lost; the caller pays the timeout wait and gets
  :class:`~repro.errors.TimeoutError`.
- **DUPLICATE** — the handler runs twice with the same payload; the
  caller sees the second response.
- **CRASH** — the endpoint's crash hook runs (the service drops its
  volatile state and unbinds), the endpoint stays down for
  ``downtime_ms``; once simulated time passes the restart point, the
  registered restart hook is invoked lazily on the next call.
- **DB_FAIL** — the call fails with
  :class:`~repro.errors.DatabaseUnavailableError` after one message
  cost (the service reached its database and could not connect).

Adversarial kinds (MALFORMED, TRUNCATED, OVERSIZED, REPLAYED,
REORDERED, BYZANTINE) model a hostile peer instead of a failing
network: the legitimate call is delivered *unchanged*, and a probe
built by :mod:`repro.faults.adversarial` from the intercepted traffic
is fired at the same endpoint right after it.  The injector records
each probe's fate — a typed rejection in :attr:`probe_rejections`, or
an entry in :attr:`probe_anomalies` when the service accepted a probe
it should have refused or leaked a non-library exception.  A hardened
service must keep ``probe_anomalies`` empty; that is asserted by the
chaos-soak invariant checker.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import (
    DatabaseUnavailableError,
    ErrorCode,
    ReproError,
    TimeoutError,
    TransportError,
)
from repro.faults.adversarial import build_probe
from repro.faults.plan import FaultKind, FaultPlan
from repro.obs import count as obs_count, enabled as obs_enabled, event as obs_event
from repro.services.transport import LatencyModel, SimTransport

__all__ = ["FaultInjector"]

#: Per-endpoint delivered-message history depth for replay probes.
_HISTORY_DEPTH = 8


@dataclass
class _Endpoint:
    """Crash/restart wiring for one URL."""

    crash: Optional[Callable[[], None]] = None
    restart: Optional[Callable[[], None]] = None
    #: Tears the final record of the node's write-ahead log (power
    #: loss mid-append), for WAL_TORN_WRITE faults.
    tear: Optional[Callable[[], None]] = None
    down_until_ms: Optional[float] = None
    crashes: int = 0
    restarts: int = 0
    torn_writes: int = 0


@dataclass
class FaultInjector:
    """Injects the plan's faults into calls on the inner transport."""

    inner: SimTransport
    plan: FaultPlan = field(default_factory=FaultPlan)
    _endpoints: dict[str, _Endpoint] = field(default_factory=dict)
    #: Global 1-based call counter the plan's ``call_index`` refers to.
    call_index: int = 0
    injected: dict[FaultKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in FaultKind}
    )
    #: Faults whose call index fell while the endpoint was already
    #: down: consumed from the plan (so it drains deterministically and
    #: ``FaultPlan.pending()`` converges) but not injected — the call
    #: failed from the crash alone.
    skipped: dict[FaultKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in FaultKind}
    )
    #: ``(kind, error_code)`` of every adversarial probe the service
    #: rejected with a typed library error.
    probe_rejections: list[tuple[FaultKind, Optional[ErrorCode]]] = field(
        default_factory=list
    )
    #: Human-readable records of probes that were *not* cleanly
    #: rejected (accepted when they must not be, or leaked a
    #: non-library exception).  Must stay empty for a hardened service.
    probe_anomalies: list[str] = field(default_factory=list)
    #: Bounded per-endpoint history of delivered messages, the raw
    #: material for replay/Byzantine probes.
    _history: dict[str, deque] = field(default_factory=dict)

    # -- transport interface (delegation) ------------------------------------------

    @property
    def clock(self):
        return self.inner.clock

    @property
    def base_clock(self):
        return self.inner.base_clock

    def clock_branch(self, source=None):
        return self.inner.clock_branch(source)

    @property
    def model(self) -> LatencyModel:
        return self.inner.model

    @property
    def calls(self) -> int:
        return self.inner.calls

    @property
    def charges(self):
        return self.inner.charges

    def bind(self, url: str, handler) -> None:
        self.inner.bind(url, handler)

    def unbind(self, url: str) -> None:
        self.inner.unbind(url)

    def is_bound(self, url: str) -> bool:
        return self.inner.is_bound(url)

    def endpoints(self) -> list[str]:
        return self.inner.endpoints()

    def charge_messages(self, count: int) -> None:
        self.inner.charge_messages(count)

    def charge_db(self, reads: int = 0, writes: int = 0,
                  connect: bool = False) -> None:
        self.inner.charge_db(reads=reads, writes=writes, connect=connect)

    def charge_crypto(self, signs: int = 0, verifies: int = 0) -> None:
        self.inner.charge_crypto(signs=signs, verifies=verifies)

    def charge_ui(self, interactions: int = 1) -> None:
        self.inner.charge_ui(interactions)

    def charge_mail(self, deliveries: int = 1) -> None:
        self.inner.charge_mail(deliveries)

    # -- crash / restart wiring ------------------------------------------------------

    def register_endpoint(
        self,
        url: str,
        crash: Optional[Callable[[], None]] = None,
        restart: Optional[Callable[[], None]] = None,
        tear: Optional[Callable[[], None]] = None,
    ) -> None:
        """Wire crash/restart behavior for ``url``.

        ``crash`` simulates the process dying (e.g.
        :meth:`TNWebService.crash`); ``restart`` revives it (e.g. a
        :meth:`TNWebService.restore` closure rebinding the URL);
        ``tear`` damages the node's WAL tail for
        :data:`FaultKind.WAL_TORN_WRITE` (e.g. a
        :meth:`SessionStore.tear_last_record` closure).
        """
        entry = self._endpoints.setdefault(url, _Endpoint())
        if crash is not None:
            entry.crash = crash
        if restart is not None:
            entry.restart = restart
        if tear is not None:
            entry.tear = tear

    def crash_endpoint(self, url: str,
                       downtime_ms: Optional[float] = None) -> None:
        """Crash ``url`` now (also used by CRASH faults)."""
        entry = self._endpoints.setdefault(url, _Endpoint())
        entry.crashes += 1
        entry.down_until_ms = self.clock.elapsed_ms + (
            self.plan.downtime_ms if downtime_ms is None else downtime_ms
        )
        if entry.crash is not None:
            entry.crash()
        else:
            self.inner.unbind(url)

    def is_down(self, url: str) -> bool:
        entry = self._endpoints.get(url)
        return (
            entry is not None
            and entry.down_until_ms is not None
            and self.clock.elapsed_ms < entry.down_until_ms
        )

    def _maybe_restart(self, url: str) -> None:
        """Lazily revive an endpoint whose downtime has elapsed."""
        entry = self._endpoints.get(url)
        if entry is None or entry.down_until_ms is None:
            return
        if self.clock.elapsed_ms < entry.down_until_ms:
            return
        entry.down_until_ms = None
        if entry.restart is not None and not self.inner.is_bound(url):
            entry.restart()
            entry.restarts += 1

    def _note_injection(self, spec, url: str, operation: str) -> None:
        self.injected[spec.kind] += 1
        if obs_enabled():
            obs_count(f"faults.injected.{spec.kind.value}")
            obs_event(
                "fault.injected",
                clock=self.clock,
                kind=spec.kind.value,
                url=url,
                operation=operation,
                call_index=self.call_index,
            )

    def _deliver_after_restart(
        self, url: str, operation: str, payload: dict
    ) -> dict:
        """Cancel any remaining downtime, run the restart hook if the
        endpoint is actually unbound, and deliver the call to the
        recovered node."""
        entry = self._endpoints.setdefault(url, _Endpoint())
        entry.down_until_ms = None
        if entry.restart is not None and not self.inner.is_bound(url):
            entry.restart()
            entry.restarts += 1
        response = self.inner.call(url, operation, payload)
        self._remember(url, operation, payload)
        return response

    # -- invocation -------------------------------------------------------------------

    def call(self, url: str, operation: str, payload: dict) -> dict:
        self.call_index += 1
        if self.is_down(url):
            # The caller retransmits into a dead endpoint and waits out
            # its deadline.  A fault scheduled for this call index is
            # still consumed (as a skip) so the plan drains instead of
            # keeping a spec whose index has passed pending forever —
            # except NODE_RESTART, whose whole point is to revive a
            # downed node, downtime or not.
            spec = self.plan.take(url, operation, self.call_index)
            if spec is not None and spec.kind is FaultKind.NODE_RESTART:
                self._note_injection(spec, url, operation)
                return self._deliver_after_restart(url, operation, payload)
            if spec is not None:
                self.skipped[spec.kind] += 1
                obs_count(f"faults.skipped.{spec.kind.value}")
            self.clock.advance(
                self.model.message_cost() + self.plan.timeout_wait_ms
            )
            raise TimeoutError(
                f"endpoint {url!r} is down (crashed; call {self.call_index})"
            )
        self._maybe_restart(url)
        spec = self.plan.take(url, operation, self.call_index)
        if spec is None:
            response = self.inner.call(url, operation, payload)
            self._remember(url, operation, payload)
            return response
        self._note_injection(spec, url, operation)
        if spec.kind.adversarial:
            # Hostile peer: the legitimate call goes through unchanged,
            # then the probe derived from it strikes the same endpoint.
            response = self.inner.call(url, operation, payload)
            self._remember(url, operation, payload)
            self._fire_probe(spec.kind, url, operation, payload)
            return response
        if spec.kind is FaultKind.DROP:
            self.clock.advance(
                self.model.message_cost() + self.plan.timeout_wait_ms
            )
            raise TimeoutError(
                f"request {operation!r} to {url!r} dropped "
                f"(call {self.call_index})"
            )
        if spec.kind is FaultKind.TIMEOUT:
            self.inner.call(url, operation, payload)  # effects happen
            self.clock.advance(self.plan.timeout_wait_ms)
            raise TimeoutError(
                f"response for {operation!r} from {url!r} lost "
                f"(call {self.call_index})"
            )
        if spec.kind is FaultKind.DUPLICATE:
            self.inner.call(url, operation, payload)
            return self.inner.call(url, operation, payload)
        if spec.kind in (FaultKind.CRASH, FaultKind.NODE_CRASH):
            self.crash_endpoint(url)
            self.clock.advance(
                self.model.message_cost() + self.plan.timeout_wait_ms
            )
            raise TimeoutError(
                f"endpoint {url!r} crashed handling {operation!r} "
                f"(call {self.call_index})"
            )
        if spec.kind is FaultKind.NODE_RESTART:
            # Revive-now: the restart hook replays the node's durable
            # journal, then the call is delivered to the recovered node.
            return self._deliver_after_restart(url, operation, payload)
        if spec.kind is FaultKind.WAL_TORN_WRITE:
            # Power fails while the checkpoint record is mid-append:
            # the handler's effects land, the WAL tail is torn, the
            # node dies, and the caller never hears back.
            self.inner.call(url, operation, payload)
            entry = self._endpoints.setdefault(url, _Endpoint())
            if entry.tear is not None:
                entry.tear()
                entry.torn_writes += 1
            self.crash_endpoint(url)
            self.clock.advance(
                self.model.message_cost() + self.plan.timeout_wait_ms
            )
            raise TimeoutError(
                f"endpoint {url!r} lost power mid-WAL-append handling "
                f"{operation!r} (call {self.call_index})"
            )
        if spec.kind is FaultKind.DB_FAIL:
            self.clock.advance(
                self.model.message_cost() + self.model.db_connect_ms
            )
            raise DatabaseUnavailableError(
                f"database connection failed during {operation!r} at "
                f"{url!r} (call {self.call_index})"
            )
        if spec.kind is FaultKind.SLOW:
            # Degraded but alive: the handler runs and the response
            # arrives — late.  Retries can't fix this; hedging can.
            response = self.inner.call(url, operation, payload)
            self._remember(url, operation, payload)
            self.clock.advance(self.plan.slow_ms)
            return response
        raise TransportError(  # pragma: no cover - enum is closed
            f"unhandled fault kind {spec.kind!r}"
        )

    # -- async invocation ----------------------------------------------------------
    #
    # The asyncio twin of :meth:`call`: same global call counter, same
    # plan consumption, same fault semantics, with every delivery
    # awaited through ``inner.acall`` so coroutine endpoints work and
    # sibling tasks interleave.  Fault bookkeeping (counters, skips,
    # probe records) is shared with the sync path — a mixed-driver
    # process drains one plan deterministically.

    async def acall(self, url: str, operation: str, payload: dict) -> dict:
        self.call_index += 1
        if self.is_down(url):
            spec = self.plan.take(url, operation, self.call_index)
            if spec is not None and spec.kind is FaultKind.NODE_RESTART:
                self._note_injection(spec, url, operation)
                return await self._adeliver_after_restart(
                    url, operation, payload
                )
            if spec is not None:
                self.skipped[spec.kind] += 1
                obs_count(f"faults.skipped.{spec.kind.value}")
            self.clock.advance(
                self.model.message_cost() + self.plan.timeout_wait_ms
            )
            raise TimeoutError(
                f"endpoint {url!r} is down (crashed; call {self.call_index})"
            )
        self._maybe_restart(url)
        spec = self.plan.take(url, operation, self.call_index)
        if spec is None:
            response = await self.inner.acall(url, operation, payload)
            self._remember(url, operation, payload)
            return response
        self._note_injection(spec, url, operation)
        if spec.kind.adversarial:
            response = await self.inner.acall(url, operation, payload)
            self._remember(url, operation, payload)
            await self._afire_probe(spec.kind, url, operation, payload)
            return response
        if spec.kind is FaultKind.DROP:
            self.clock.advance(
                self.model.message_cost() + self.plan.timeout_wait_ms
            )
            raise TimeoutError(
                f"request {operation!r} to {url!r} dropped "
                f"(call {self.call_index})"
            )
        if spec.kind is FaultKind.TIMEOUT:
            await self.inner.acall(url, operation, payload)  # effects happen
            self.clock.advance(self.plan.timeout_wait_ms)
            raise TimeoutError(
                f"response for {operation!r} from {url!r} lost "
                f"(call {self.call_index})"
            )
        if spec.kind is FaultKind.DUPLICATE:
            await self.inner.acall(url, operation, payload)
            return await self.inner.acall(url, operation, payload)
        if spec.kind in (FaultKind.CRASH, FaultKind.NODE_CRASH):
            self.crash_endpoint(url)
            self.clock.advance(
                self.model.message_cost() + self.plan.timeout_wait_ms
            )
            raise TimeoutError(
                f"endpoint {url!r} crashed handling {operation!r} "
                f"(call {self.call_index})"
            )
        if spec.kind is FaultKind.NODE_RESTART:
            return await self._adeliver_after_restart(url, operation, payload)
        if spec.kind is FaultKind.WAL_TORN_WRITE:
            await self.inner.acall(url, operation, payload)
            entry = self._endpoints.setdefault(url, _Endpoint())
            if entry.tear is not None:
                entry.tear()
                entry.torn_writes += 1
            self.crash_endpoint(url)
            self.clock.advance(
                self.model.message_cost() + self.plan.timeout_wait_ms
            )
            raise TimeoutError(
                f"endpoint {url!r} lost power mid-WAL-append handling "
                f"{operation!r} (call {self.call_index})"
            )
        if spec.kind is FaultKind.DB_FAIL:
            self.clock.advance(
                self.model.message_cost() + self.model.db_connect_ms
            )
            raise DatabaseUnavailableError(
                f"database connection failed during {operation!r} at "
                f"{url!r} (call {self.call_index})"
            )
        if spec.kind is FaultKind.SLOW:
            response = await self.inner.acall(url, operation, payload)
            self._remember(url, operation, payload)
            self.clock.advance(self.plan.slow_ms)
            return response
        raise TransportError(  # pragma: no cover - enum is closed
            f"unhandled fault kind {spec.kind!r}"
        )

    async def _adeliver_after_restart(
        self, url: str, operation: str, payload: dict
    ) -> dict:
        """Async twin of :meth:`_deliver_after_restart`."""
        entry = self._endpoints.setdefault(url, _Endpoint())
        entry.down_until_ms = None
        if entry.restart is not None and not self.inner.is_bound(url):
            entry.restart()
            entry.restarts += 1
        response = await self.inner.acall(url, operation, payload)
        self._remember(url, operation, payload)
        return response

    # -- adversarial probes --------------------------------------------------------------

    def _remember(self, url: str, operation: str, payload: dict) -> None:
        history = self._history.get(url)
        if history is None:
            history = self._history[url] = deque(maxlen=_HISTORY_DEPTH)
        history.append((operation, payload))

    def _fire_probe(
        self, kind: FaultKind, url: str, operation: str, payload: dict
    ) -> None:
        """Deliver one adversarial probe and record its fate."""
        probe = build_probe(
            kind, operation, payload,
            self._history.get(url, ()), self.plan.random(),
        )
        try:
            self.inner.call(url, probe.operation, probe.payload)
        except ReproError as exc:
            code = getattr(exc, "error_code", None)
            if code is None:
                self.probe_anomalies.append(
                    f"{kind.value} probe ({probe.operation}) rejected "
                    f"with untyped {type(exc).__name__}: {exc}"
                )
            else:
                self.probe_rejections.append((kind, code))
                if obs_enabled():
                    obs_count(f"faults.probe_rejected.{kind.value}")
        except Exception as exc:  # noqa: BLE001 - anomaly detection
            self.probe_anomalies.append(
                f"{kind.value} probe ({probe.operation}) leaked "
                f"{type(exc).__name__}: {exc}"
            )
        else:
            if probe.replay_tolerant:
                # Idempotent replay answered from the recorded
                # response: correct behavior, not an anomaly.
                self.probe_rejections.append((kind, None))
            else:
                self.probe_anomalies.append(
                    f"{kind.value} probe ({probe.operation}) was accepted"
                )
        if obs_enabled():
            obs_count(f"faults.probes.{kind.value}")

    async def _afire_probe(
        self, kind: FaultKind, url: str, operation: str, payload: dict
    ) -> None:
        """Async twin of :meth:`_fire_probe` (probes await ``acall``)."""
        probe = build_probe(
            kind, operation, payload,
            self._history.get(url, ()), self.plan.random(),
        )
        try:
            await self.inner.acall(url, probe.operation, probe.payload)
        except ReproError as exc:
            code = getattr(exc, "error_code", None)
            if code is None:
                self.probe_anomalies.append(
                    f"{kind.value} probe ({probe.operation}) rejected "
                    f"with untyped {type(exc).__name__}: {exc}"
                )
            else:
                self.probe_rejections.append((kind, code))
                if obs_enabled():
                    obs_count(f"faults.probe_rejected.{kind.value}")
        except Exception as exc:  # noqa: BLE001 - anomaly detection
            self.probe_anomalies.append(
                f"{kind.value} probe ({probe.operation}) leaked "
                f"{type(exc).__name__}: {exc}"
            )
        else:
            if probe.replay_tolerant:
                self.probe_rejections.append((kind, None))
            else:
                self.probe_anomalies.append(
                    f"{kind.value} probe ({probe.operation}) was accepted"
                )
        if obs_enabled():
            obs_count(f"faults.probes.{kind.value}")

    # -- introspection ------------------------------------------------------------------

    def total_injected(self) -> int:
        return sum(self.injected.values())

    def total_skipped(self) -> int:
        return sum(self.skipped.values())

    def crash_count(self, url: str) -> int:
        entry = self._endpoints.get(url)
        return entry.crashes if entry else 0

    def restart_count(self, url: str) -> int:
        entry = self._endpoints.get(url)
        return entry.restarts if entry else 0

    def torn_write_count(self, url: str) -> int:
        entry = self._endpoints.get(url)
        return entry.torn_writes if entry else 0
