"""Adversarial-peer hardening for the simulated SOA stack.

The resilience layer (:mod:`repro.services.resilience`) protects a
*client* from a failing network; this package protects a *service*
from a hostile or overloading peer, and provides the harness that
proves the protection holds:

- :mod:`repro.hardening.guard` — the protocol guard at the TN service
  boundary: strict schema/size/depth validation of every inbound
  message plus a per-session negotiation state machine that rejects
  out-of-order, replayed-with-different-payload, phase-skipping, and
  post-terminal messages with typed :class:`~repro.errors.ErrorCode`
  rejections.
- :mod:`repro.hardening.admission` — overload protection: a bounded
  admission bucket drained in simulated time, priority-aware load
  shedding (operation phase > formation > identification), and
  deadline-expired work shed before the engine pays for it.
- :mod:`repro.hardening.fuzz` — a corpus of malformed / out-of-order
  probes with expected rejection codes, for directed boundary testing.
- :mod:`repro.hardening.soak` — the chaos-soak driver: thousands of
  negotiations under mixed adversarial faults and overload bursts,
  with an invariant checker over disclosure safety, session
  terminality, admission reconciliation, and exception hygiene.

All knobs live on :class:`HardeningConfig`; a service constructed with
one gets the guard and admission control, a service constructed
without stays byte-for-byte on its pre-hardening behavior.
"""

from __future__ import annotations

from repro.hardening.admission import (
    AdmissionController,
    AdmissionStats,
    Priority,
    operation_priority,
)
from repro.hardening.config import HardeningConfig
from repro.hardening.fuzz import (
    FuzzOutcome,
    FuzzProbe,
    run_probe,
    session_probes,
    stateless_probes,
    terminal_probes,
)
from repro.hardening.guard import GuardStats, ProtocolGuard
from repro.hardening.soak import (
    InvariantViolation,
    SoakConfig,
    SoakReport,
    check_service_invariants,
    run_soak,
)

__all__ = [
    "HardeningConfig",
    "ProtocolGuard",
    "GuardStats",
    "AdmissionController",
    "AdmissionStats",
    "Priority",
    "operation_priority",
    "FuzzProbe",
    "FuzzOutcome",
    "stateless_probes",
    "session_probes",
    "terminal_probes",
    "run_probe",
    "SoakConfig",
    "SoakReport",
    "InvariantViolation",
    "run_soak",
    "check_service_invariants",
]
