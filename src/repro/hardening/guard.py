"""Protocol guard: inbound-message validation and sequence enforcement.

The TN Web service mediates between mutually distrusting parties, so
its boundary must assume the peer is not merely slow or crashed but
actively hostile: malformed fields, oversized or deeply nested XML,
replayed or reordered sequence numbers, messages for sessions that
already terminated.  The guard runs *before* any engine or billing
code and answers every violation with a typed
:class:`~repro.errors.GuardRejection` carrying an
:class:`~repro.errors.ErrorCode` — never a stack trace from the
engine.

Two passes:

:meth:`ProtocolGuard.validate`
    Stateless schema/size/depth validation of one ``(operation,
    payload)`` pair against the service contract.  Any string field
    that looks like an XML document is additionally parsed and checked
    against the structural limits (byte size, nesting depth, fan-out).

:meth:`ProtocolGuard.check_transition`
    Stateful per-session sequence machine: a new ``clientSeq`` must be
    exactly ``last_seq + 1`` (recorded seqs fall through to the
    service's idempotent replay path), ``CredentialExchange`` cannot
    run before ``PolicyExchange``, and nothing new is accepted once the
    session reached a terminal state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import TYPE_CHECKING, Mapping, Optional
from xml.etree import ElementTree as ET

from repro.errors import ErrorCode, GuardRejection, XMLError
from repro.hardening.config import HardeningConfig
from repro.obs import count as obs_count
from repro.xmlutil.canonical import parse_xml

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.services.tn_service import NegotiationSession

__all__ = ["FieldSpec", "GuardStats", "ProtocolGuard", "TN_SCHEMAS"]


@dataclass(frozen=True)
class FieldSpec:
    """Schema entry for one payload field."""

    required: bool = False
    #: Accepted value types; ``None`` means any type (checked by kind).
    types: tuple[type, ...] | None = (str,)
    #: ``True`` when ``None`` is an acceptable value.
    nullable: bool = False


def _agent_spec() -> FieldSpec:
    from repro.negotiation.agent import TrustXAgent

    return FieldSpec(required=True, types=(TrustXAgent,))


def _tn_schemas() -> dict[str, dict[str, FieldSpec]]:
    number = (int, float)
    return {
        "StartNegotiation": {
            "requester": _agent_spec(),
            "strategy": FieldSpec(required=True),
            "counterpartUrl": FieldSpec(),
            "requestId": FieldSpec(),
            "deadlineMs": FieldSpec(types=number, nullable=True),
            "priority": FieldSpec(nullable=True),
        },
        "PolicyExchange": {
            "negotiationId": FieldSpec(required=True),
            "resource": FieldSpec(required=True),
            "at": FieldSpec(types=(datetime,), nullable=True),
            "clientSeq": FieldSpec(types=(int,), nullable=True),
            "deadlineMs": FieldSpec(types=number, nullable=True),
            "priority": FieldSpec(nullable=True),
        },
        "CredentialExchange": {
            "negotiationId": FieldSpec(required=True),
            "at": FieldSpec(types=(datetime,), nullable=True),
            "clientSeq": FieldSpec(types=(int,), nullable=True),
            "deadlineMs": FieldSpec(types=number, nullable=True),
            "priority": FieldSpec(nullable=True),
        },
    }


#: Message schemas of the TN service contract (lazy because the agent
#: type lives higher in the import graph).
TN_SCHEMAS: dict[str, dict[str, FieldSpec]] = {}


@dataclass
class GuardStats:
    """Counts of validated and rejected messages, by error code."""

    validated: int = 0
    rejected: int = 0
    by_code: dict[str, int] = field(default_factory=dict)

    def record_rejection(self, code: ErrorCode) -> None:
        self.rejected += 1
        self.by_code[code.value] = self.by_code.get(code.value, 0) + 1


@dataclass
class ProtocolGuard:
    """Validates inbound TN messages against schema and session state."""

    config: HardeningConfig = field(default_factory=HardeningConfig)
    stats: GuardStats = field(default_factory=GuardStats)

    def _reject(self, code: ErrorCode, message: str) -> GuardRejection:
        self.stats.record_rejection(code)
        obs_count(f"hardening.guard.{code.value}")
        return GuardRejection(message, error_code=code)

    # -- stateless validation ------------------------------------------------

    def validate(self, operation: str, payload: object) -> None:
        """Raise :class:`GuardRejection` unless ``payload`` conforms to
        the schema of ``operation``."""
        if not TN_SCHEMAS:
            TN_SCHEMAS.update(_tn_schemas())
        schema = TN_SCHEMAS.get(operation)
        if schema is None:
            raise self._reject(
                ErrorCode.UNKNOWN_OPERATION,
                f"unknown TN operation {operation!r}",
            )
        if not isinstance(payload, Mapping):
            raise self._reject(
                ErrorCode.MALFORMED_MESSAGE,
                f"{operation} payload must be a mapping, "
                f"got {type(payload).__name__}",
            )
        if len(payload) > self.config.max_payload_keys:
            raise self._reject(
                ErrorCode.OVERSIZED_PAYLOAD,
                f"{operation} payload has {len(payload)} keys "
                f"(limit {self.config.max_payload_keys})",
            )
        for key in payload:
            if not isinstance(key, str):
                raise self._reject(
                    ErrorCode.MALFORMED_MESSAGE,
                    f"{operation} payload key {key!r} is not a string",
                )
            if key not in schema:
                raise self._reject(
                    ErrorCode.SCHEMA_VIOLATION,
                    f"{operation} does not accept field {key!r}",
                )
        for name, spec in schema.items():
            if name not in payload:
                if spec.required:
                    raise self._reject(
                        ErrorCode.SCHEMA_VIOLATION,
                        f"{operation} requires field {name!r}",
                    )
                continue
            self._check_field(operation, name, spec, payload[name])
        self._check_semantics(operation, payload)
        self.stats.validated += 1

    def _check_field(
        self, operation: str, name: str, spec: FieldSpec, value: object
    ) -> None:
        if value is None:
            if spec.nullable:
                return
            raise self._reject(
                ErrorCode.SCHEMA_VIOLATION,
                f"{operation}.{name} must not be null",
            )
        if spec.types is not None and (
            not isinstance(value, spec.types)
            # bool passes isinstance(..., int); a boolean clientSeq or
            # deadline is a type error, not a number.
            or (isinstance(value, bool) and bool not in spec.types)
        ):
            raise self._reject(
                ErrorCode.SCHEMA_VIOLATION,
                f"{operation}.{name} has type {type(value).__name__}, "
                f"expected {'/'.join(t.__name__ for t in spec.types)}",
            )
        if isinstance(value, str):
            self._check_string(operation, name, value)

    def _check_string(self, operation: str, name: str, value: str) -> None:
        encoded = len(value.encode("utf-8"))
        if encoded > self.config.max_string_bytes:
            raise self._reject(
                ErrorCode.OVERSIZED_PAYLOAD,
                f"{operation}.{name} is {encoded} bytes "
                f"(limit {self.config.max_string_bytes})",
            )
        if value.lstrip().startswith("<"):
            self._check_xml(operation, name, value)

    def _check_xml(self, operation: str, name: str, document: str) -> None:
        """Structural validation of an embedded XML document."""
        encoded = len(document.encode("utf-8"))
        if encoded > self.config.max_xml_bytes:
            raise self._reject(
                ErrorCode.OVERSIZED_PAYLOAD,
                f"{operation}.{name} XML document is {encoded} bytes "
                f"(limit {self.config.max_xml_bytes})",
            )
        try:
            root = parse_xml(document)
        except XMLError as exc:
            raise self._reject(
                ErrorCode.MALFORMED_MESSAGE,
                f"{operation}.{name} carries malformed XML: {exc}",
            ) from exc
        self._check_element(operation, name, root, depth=1)

    def _check_element(
        self, operation: str, name: str, element: ET.Element, depth: int
    ) -> None:
        if depth > self.config.max_xml_depth:
            raise self._reject(
                ErrorCode.DEPTH_EXCEEDED,
                f"{operation}.{name} XML nests deeper than "
                f"{self.config.max_xml_depth} levels",
            )
        if len(element) > self.config.max_xml_children:
            raise self._reject(
                ErrorCode.DEPTH_EXCEEDED,
                f"{operation}.{name} XML element {element.tag!r} has "
                f"{len(element)} children "
                f"(limit {self.config.max_xml_children})",
            )
        for child in element:
            self._check_element(operation, name, child, depth + 1)

    def _check_semantics(self, operation: str, payload: Mapping) -> None:
        """Field-level constraints beyond plain types."""
        if operation == "StartNegotiation":
            from repro.negotiation.strategies import Strategy

            try:
                Strategy.parse(payload["strategy"])
            except Exception as exc:
                raise self._reject(
                    ErrorCode.SCHEMA_VIOLATION,
                    f"StartNegotiation.strategy "
                    f"{payload['strategy']!r} is not a known strategy",
                ) from exc
        seq = payload.get("clientSeq")
        if seq is not None and not (1 <= seq <= self.config.max_client_seq):
            raise self._reject(
                ErrorCode.SCHEMA_VIOLATION,
                f"{operation}.clientSeq {seq} is outside "
                f"[1, {self.config.max_client_seq}]",
            )
        priority = payload.get("priority")
        if priority is not None:
            from repro.hardening.admission import Priority

            try:
                Priority.parse(priority)
            except ValueError as exc:
                raise self._reject(
                    ErrorCode.SCHEMA_VIOLATION,
                    f"{operation}.priority {priority!r} is not a known "
                    "priority class",
                ) from exc

    # -- stateful sequence machine -------------------------------------------

    def check_transition(
        self,
        session: "NegotiationSession",
        operation: str,
        seq: Optional[int],
        resource: str,
    ) -> None:
        """Enforce the per-session negotiation state machine.

        Recorded sequence numbers are *not* rejected here — they fall
        through to the service's idempotent replay path, which verifies
        the payload matches the recording.  Everything genuinely new
        must advance the session by exactly one step.
        """
        del resource  # replay payload matching stays in the service
        is_replay = seq is not None and seq in session.responses
        if session.terminal and not is_replay:
            raise self._reject(
                ErrorCode.POST_TERMINAL,
                f"session {session.session_id!r} already terminated "
                f"(phase {session.phase!r}); {operation} rejected",
            )
        if is_replay or seq is None:
            return
        if operation == "CredentialExchange" and session.phase == "started" \
                and not session.restored:
            raise self._reject(
                ErrorCode.PHASE_SKIP,
                f"CredentialExchange before PolicyExchange for "
                f"{session.session_id!r}",
            )
        if seq > session.last_seq + 1:
            raise self._reject(
                ErrorCode.OUT_OF_ORDER,
                f"clientSeq {seq} skips ahead of session "
                f"{session.session_id!r} (last acknowledged "
                f"{session.last_seq})",
            )
        if seq <= session.last_seq and not session.restored:
            raise self._reject(
                ErrorCode.OUT_OF_ORDER,
                f"clientSeq {seq} is stale for session "
                f"{session.session_id!r} (last acknowledged "
                f"{session.last_seq})",
            )
