"""The asyncio chaos soak: concurrent lanes, hedges, kills, invariants.

The classic soak (:mod:`repro.hardening.soak`) drives one negotiation
at a time through the sync stack.  This twin drives **waves of
concurrent asyncio tasks** through the async stack —

``AioTNClient lanes → AioResilientTransport → FaultInjector.acall →
AioSimTransport → AioShardedTNService``

— so the machinery that only exists under concurrency gets soaked:
per-endpoint circuit breakers shared across tasks (one half-open probe
per reset window, siblings fail fast), hedged ``StartNegotiation``
racing ring-successor shards, health-based ejection of a deliberately
slowed shard and its probe-driven re-admission, and mid-flight shard
kills landing *while sibling tasks hold open sessions on the victim*.

Each task runs on its own :meth:`~repro.services.transport.SimTransport
.clock_branch`, so backoff and latency are charged to private
timelines exactly like the sync soak charges its single timeline; the
run's ``elapsed_sim_ms`` is the horizon of all branches (critical
path), and the final TTL drain advances the base clock past that
horizon before reaping.

What carries over from the sync soak: network + adversarial fault
storms, low-priority admission bursts (with pre-expired deadlines),
Byzantine impostors, periodic reaping, kill/torn-WAL drills, and the
full invariant sweep (disclosure safety, session terminality, terminal
durability, admission reconciliation, probe + exception hygiene,
impostor rejection, liveness, audit chain).  What stays sync-only: the
fuzz-corpus replay and retraction drills (both already exercised every
run of the sync soak against the same service code; ``retract_every``
is rejected here rather than silently ignored).

A deliberately slowed shard (``FaultKind.SLOW`` with a strike
``limit``) exercises the health router end to end: the shard is
ejected for slowness, probed while still slow (stays out), and
re-admitted once the fault budget is spent.
"""

from __future__ import annotations

import asyncio
import random
from typing import Optional

from repro.errors import (
    CircuitOpenError,
    DeadlineExpiredError,
    OverloadError,
    ReproError,
)
from repro.faults.plan import FaultKind, FaultPlan
from repro.hardening.soak import (
    _ADVERSARIAL_KINDS,
    _NETWORK_KINDS,
    InvariantViolation,
    SoakConfig,
    SoakReport,
    _check_disclosure_safety,
    _record,
    check_service_invariants,
)
from repro.obs import (
    ObsConfig,
    count as obs_count,
    disable as obs_disable,
    enable as obs_enable,
    event as obs_event,
)
from repro.obs.audit import verify_audit_log

__all__ = ["run_aio_soak"]

#: Simulated duration of one injected SLOW fault — far above the
#: health policy's ``slow_after_ms`` so every slowed call is a strike.
_SLOW_MS = 4000.0
#: Health knobs of the soak's router: eject after 3 consecutive
#: strikes, responses over 2 s count as strikes, probe every 1 s.
_SLOW_AFTER_MS = 2000.0
_PROBE_INTERVAL_MS = 1000.0
#: Strike budget of the slow-shard drill: enough to eject the shard
#: (threshold 3) and keep a couple of probes failing before the fault
#: is spent and a probe re-admits it.
_SLOW_STRIKES = 6


def run_aio_soak(config: Optional[SoakConfig] = None) -> SoakReport:
    """Run the asyncio chaos soak and return its invariant report."""
    config = config or SoakConfig(asyncio_mode=True)
    if config.retract_every:
        raise ValueError(
            "retraction drills are sync-soak-only; run the asyncio soak "
            "with retract_every=0"
        )
    return asyncio.run(_soak(config))


async def _soak(config: SoakConfig) -> SoakReport:
    # Imported here for the same reason the sync soak does: the
    # scenario/service layers import ``repro.hardening.config`` at
    # module load, so top-level imports would close an import cycle.
    from repro.cluster import AioShardedTNService, HedgePolicy, HealthPolicy
    from repro.crypto.keys import KeyPair
    from repro.faults.injector import FaultInjector
    from repro.negotiation.agent import TrustXAgent
    from repro.negotiation.cache import SequenceCache
    from repro.scenario.workloads import capacity_workload
    from repro.services.aio import AioSimTransport, AioTNClient
    from repro.services.aio_resilience import AioResilientTransport
    from repro.services.resilience import RetryPolicy
    from repro.services.transport import LatencyModel

    rng = random.Random(config.seed)
    report = SoakReport(seed=config.seed, negotiations=config.negotiations)

    if config.audit_log_path is not None:
        obs_enable(ObsConfig(audit_path=config.audit_log_path))

    # The same compressed latency model as the sync soak: the soak
    # measures invariants, not Fig. 9 absolute times.
    fixture = capacity_workload(max(1, config.roles))
    base = AioSimTransport(model=LatencyModel(
        network_rtt_ms=1.0, soap_marshal_ms=0.5, service_dispatch_ms=0.5,
        db_connect_ms=2.0, db_read_ms=0.2, db_write_ms=0.3,
        crypto_sign_ms=0.5, crypto_verify_ms=0.2,
        ui_interaction_ms=4.0, mail_delivery_ms=3.0,
    ))
    shards = config.cluster_shards if config.cluster_shards > 0 else 1
    plan = FaultPlan(
        seed=config.seed, timeout_wait_ms=250.0, slow_ms=_SLOW_MS
    )
    injector = FaultInjector(inner=base, plan=plan)
    resilient = AioResilientTransport(
        inner=injector,
        retry=RetryPolicy(jitter_seed=config.seed),
        deadline_ms=config.deadline_ms,
    )
    # The cluster forwards shard-bound traffic through the *same*
    # resilient transport, so router-to-shard hops get retries and the
    # injector can target individual shard URLs (the slow-shard drill).
    service = cluster = AioShardedTNService(
        fixture.controller,
        resilient,
        url="urn:vo:tn",
        shards=shards,
        agents={agent.name: agent for agent in fixture.requesters},
        cache=SequenceCache(),
        hardening=config.hardening,
        wal_dir=config.wal_dir,
        hedge=HedgePolicy() if shards > 1 else None,
        health=HealthPolicy(
            slow_after_ms=_SLOW_AFTER_MS,
            probe_interval_ms=_PROBE_INTERVAL_MS,
        ),
    )
    base_clock = base.base_clock
    started_ms = base_clock.elapsed_ms
    horizon_ms = started_ms  # max branch time seen across all tasks

    for kind in _ADVERSARIAL_KINDS:
        plan.randomly(kind, config.adversarial_probability, url=service.url)
    for kind in _NETWORK_KINDS:
        plan.randomly(kind, config.network_probability, url=service.url)
    if shards > 1:
        # The slow-shard drill: shard 0 answers, but 4 s late, until
        # the strike budget is spent — ejection, failed probes, then
        # re-admission, all while hedges cover the tail.
        plan.always(
            FaultKind.SLOW, url=cluster.nodes()[0].url, limit=_SLOW_STRIKES
        )

    resource = fixture.resource
    at = fixture.negotiation_time()
    lanes = [
        AioTNClient(
            transport=resilient, service_url=service.url, agent=agent
        )
        for agent in fixture.requesters
    ]
    agents = {agent.name: agent for agent in fixture.requesters}
    agents[fixture.controller.name] = fixture.controller

    results = []
    kills = 0

    def merge(branch) -> None:
        nonlocal horizon_ms
        horizon_ms = max(horizon_ms, branch.elapsed_ms)

    def record_error(exc: ReproError) -> None:
        code = getattr(exc, "error_code", None)
        _record(
            report.client_errors,
            code.value if code else type(exc).__name__,
        )

    async def drive(client) -> Optional[object]:
        """One negotiation on the current task's clock branch."""
        try:
            return await client.negotiate(resource, at=at)
        except CircuitOpenError:
            # Wait out the reset window on this task's branch and give
            # the endpoint its (single) half-open probe.
            report.breaker_pauses += 1
            resilient.clock.advance(
                resilient.breaker_policy.reset_timeout_ms + 1.0
            )
            try:
                return await client.negotiate(resource, at=at)
            except ReproError as exc:
                record_error(exc)
                return None
        except ReproError as exc:
            record_error(exc)
            return None

    async def negotiation(index: int, byzantine: bool) -> None:
        client = lanes[index % len(lanes)]
        if byzantine:
            report.byzantine_attempts += 1
            victim = client.agent
            client = AioTNClient(
                transport=resilient,
                service_url=service.url,
                agent=TrustXAgent(
                    name=victim.name,
                    profile=victim.profile,
                    policies=victim.policies,
                    keypair=KeyPair.generate(512),
                    validator=victim.validator,
                    strategy=victim.strategy,
                ),
            )
        with resilient.clock_branch() as branch:
            try:
                result = await drive(client)
            except Exception as exc:  # noqa: BLE001 - the invariant itself
                report.unhandled.append(
                    f"negotiation {index}: {type(exc).__name__}: {exc}"
                )
                result = None
            merge(branch)
        if result is None:
            return
        if byzantine:
            if result.success:
                report.byzantine_successes += 1
        elif result.success:
            report.successes += 1
            results.append(result)
        else:
            reason = (
                result.failure_reason.value
                if result.failure_reason else "unknown"
            )
            _record(report.failures, reason)
            results.append(result)

    async def kill_drill(index: int, lane) -> None:
        """Phase-split negotiation whose serving shard dies mid-way —
        fired into the same wave as live sibling negotiations, so the
        kill also lands on *their* in-flight sessions."""
        nonlocal kills
        agent = lane.agent
        with resilient.clock_branch() as branch:
            try:
                start = await resilient.acall(
                    service.url, "StartNegotiation", {
                        "requester": agent,
                        "strategy": "standard",
                        "counterpartUrl": f"urn:repro:{agent.name}",
                        "requestId": f"aio-soak-kill-{index}",
                    },
                )
                negotiation_id = start.get("negotiationId")
                if not negotiation_id:
                    _record(report.client_errors, "no-negotiation-id")
                    return
                await resilient.acall(service.url, "PolicyExchange", {
                    "negotiationId": negotiation_id, "resource": resource,
                    "at": at, "clientSeq": 1,
                })
                victim = cluster.placement_index(negotiation_id)
                if victim is not None and len(cluster.live_nodes()) > 1:
                    kills += 1
                    if (
                        config.torn_write_every_kill > 0
                        and kills % config.torn_write_every_kill == 0
                    ):
                        cluster.tear_wal(victim)
                    cluster.kill_node(victim)
                try:
                    exchange = await resilient.acall(
                        service.url, "CredentialExchange",
                        {"negotiationId": negotiation_id, "clientSeq": 2},
                    )
                except ReproError:
                    # The adopted checkpoint may predate PolicyExchange
                    # (torn WAL): replay the phase against the
                    # successor, idempotently.
                    await resilient.acall(service.url, "PolicyExchange", {
                        "negotiationId": negotiation_id,
                        "resource": resource, "at": at, "clientSeq": 3,
                    })
                    exchange = await resilient.acall(
                        service.url, "CredentialExchange",
                        {"negotiationId": negotiation_id, "clientSeq": 4},
                    )
                result = exchange.get("result")
            except ReproError as exc:
                record_error(exc)
                return
            except Exception as exc:  # noqa: BLE001 - the invariant itself
                report.unhandled.append(
                    f"kill-drill {index}: {type(exc).__name__}: {exc}"
                )
                return
            finally:
                merge(branch)
        if result is None or not hasattr(result, "success"):
            _record(report.client_errors, "no-result")
        elif result.success:
            report.successes += 1
            results.append(result)
        else:
            reason = (
                result.failure_reason.value
                if result.failure_reason else "unknown"
            )
            _record(report.failures, reason)
            results.append(result)

    async def burst(index: int, lane) -> None:
        """A low-priority flood straight at the raw transport (no
        retries); the first two probes carry pre-expired deadlines."""
        report.bursts += 1
        for probe_index in range(config.burst_size):
            payload = {
                "requester": lane.agent,
                "strategy": "standard",
                "counterpartUrl": "urn:repro:burst",
                "requestId": f"aio-soak-burst-{index}-{probe_index}",
                "priority": "identification",
            }
            if probe_index < 2:
                payload["deadlineMs"] = base.clock.elapsed_ms - 1.0
            try:
                await base.acall(service.url, "StartNegotiation", payload)
            except OverloadError:
                report.burst_sheds += 1
            except DeadlineExpiredError:
                report.deadline_sheds += 1
            except ReproError as exc:
                record_error(exc)
            except Exception as exc:  # noqa: BLE001
                report.unhandled.append(
                    f"burst {index}.{probe_index}: "
                    f"{type(exc).__name__}: {exc}"
                )

    # -- the storm, in waves of one task per lane -----------------------------
    index = 0
    while index < config.negotiations:
        wave_end = min(index + len(lanes), config.negotiations)
        tasks = []
        for i in range(index, wave_end):
            byzantine = (
                config.byzantine_every > 0
                and (i + 1) % config.byzantine_every == 0
            )
            tasks.append(negotiation(i, byzantine))
            # Drill lanes are drawn *here*, sequentially, so the seeded
            # rng stream never depends on task interleaving.
            if (
                config.burst_every > 0
                and (i + 1) % config.burst_every == 0
            ):
                tasks.append(burst(i, lanes[rng.randrange(len(lanes))]))
            if (
                shards > 1
                and config.node_kill_every > 0
                and (i + 1) % config.node_kill_every == 0
            ):
                tasks.append(kill_drill(i, lanes[rng.randrange(len(lanes))]))
        await asyncio.gather(*tasks)
        if config.reap_every > 0 and (
            index // config.reap_every != wave_end // config.reap_every
        ):
            report.reaped += service.reap_expired()
        index = wave_end

    # -- drain: revive, age out, reap ----------------------------------------
    for node in cluster.nodes():
        if not node.live:
            cluster.restart_node(node.index)
    # Branch timelines ran ahead of the base clock; advance the base
    # past the horizon plus the TTL so every abandoned session is due.
    base_clock.advance(
        max(0.0, horizon_ms - base_clock.elapsed_ms)
        + config.hardening.session_ttl_ms + 1.0
    )
    report.reaped += service.reap_expired()
    report.elapsed_sim_ms = base_clock.elapsed_ms - started_ms
    report.backpressure_waits = resilient.stats.backpressure_waits
    report.internal_errors = service.internal_errors
    if service.guard is not None:
        report.guard_validated = service.guard.stats.validated
        report.guard_rejected = service.guard.stats.rejected
        report.guard_by_code = dict(service.guard.stats.by_code)
    if service.admission is not None:
        stats = service.admission.stats
        report.admission_offered = stats.offered
        report.admission_admitted = stats.admitted
        report.admission_shed = stats.shed
        report.admission_expired = stats.expired
    report.probes_fired = {
        kind.value: count
        for kind, count in injector.injected.items()
        if kind.adversarial and count
    }
    report.probe_rejections = len(injector.probe_rejections)
    report.probe_anomalies = list(injector.probe_anomalies)
    report.node_kills = cluster.kills
    report.node_restarts = cluster.restarts
    report.failovers = cluster.failovers
    report.sessions_recovered = cluster.sessions_recovered
    report.wal_records = cluster.wal_records()
    report.torn_records_discarded = cluster.torn_records_discarded()
    report.hedges_fired = cluster.hedge_stats.fired
    report.hedges_won = cluster.hedge_stats.won
    report.hedges_cancelled = cluster.hedge_stats.cancelled
    if cluster.health is not None:
        report.shard_ejections = cluster.health.total_ejections()
        report.shard_readmissions = cluster.health.total_readmissions()
        report.health_probes = cluster.health_probes

    # -- invariants -----------------------------------------------------------
    def violate(invariant: str, detail: str) -> None:
        report.violations.append(InvariantViolation(invariant, detail))

    check_service_invariants(service, violate, cluster=cluster)
    for anomaly in injector.probe_anomalies:
        violate("probe-hygiene", anomaly)
    if report.byzantine_successes:
        violate(
            "impostor-rejection",
            f"{report.byzantine_successes} Byzantine impostor "
            "negotiations succeeded",
        )
    if not report.successes:
        violate("liveness", "no negotiation succeeded during the soak")
    if report.hedges_won > report.hedges_fired:
        violate(
            "hedge-accounting",
            f"{report.hedges_won} hedge wins out of "
            f"{report.hedges_fired} fired",
        )
    for result in results:
        _check_disclosure_safety(result, agents, violate)

    obs_count("hardening.aio_soak.runs")
    obs_event(
        "hardening.aio_soak.report",
        clock=base_clock,
        ok=report.ok,
        negotiations=report.negotiations,
        successes=report.successes,
        hedges=report.hedges_fired,
        violations=len(report.violations),
    )
    cluster.close()
    if config.audit_log_path is not None:
        obs_disable()  # seals the final audit epoch
        audit_report = verify_audit_log(config.audit_log_path)
        report.audit = audit_report.to_dict()
        if not audit_report.ok:
            violate("audit-chain", audit_report.summary())
    return report
