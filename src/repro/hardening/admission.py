"""Admission control: bounded queues, deadline shedding, priority.

The ROADMAP's "heavy traffic from millions of users" means a TN
service must survive being offered more work than it can evaluate.
This module implements the server-side half of overload protection:

- a **bounded work queue** modelled as a token bucket over simulated
  time — every admitted request occupies one slot, and slots drain at
  ``drain_per_ms`` as the service works through its backlog;
- **deadline shedding** — a request whose client-propagated
  ``deadlineMs`` already passed is dropped *before* any engine or
  billing work (evaluating it would waste capacity on an answer the
  client stopped waiting for);
- **priority-aware load shedding** — each request class gets a
  different fill threshold (operation-phase > formation >
  identification, per the paper's VO life cycle), so under saturation
  the cheap-to-redo identification traffic is shed first while
  operation-phase monitoring keeps flowing;
- a **backpressure hint** — every shed carries ``retry_after_ms``, the
  earliest simulated delay at which a retry could be admitted, which
  :class:`~repro.services.resilience.ResilientTransport` honors
  instead of hammering the saturated peer.

Counts reconcile by construction and are asserted by the soak
invariant checker: ``offered == admitted + shed + expired``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from enum import IntEnum

from repro.errors import DeadlineExpiredError, ErrorCode, OverloadError
from repro.hardening.config import HardeningConfig
from repro.obs import count as obs_count

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "Priority",
    "operation_priority",
]


class Priority(IntEnum):
    """Request classes in shed order (lowest sheds last).

    Mirrors the paper's VO life cycle: once a VO operates, keeping it
    operating (monitoring, availability checks) outranks forming new
    memberships, which outranks identification-phase discovery.
    """

    OPERATION = 0
    FORMATION = 1
    IDENTIFICATION = 2

    @classmethod
    def parse(cls, text: str) -> "Priority":
        normalized = str(text).strip().lower()
        for member in cls:
            if member.name.lower() == normalized:
                return member
        raise ValueError(f"unknown priority {text!r}")


#: Default priority class per service operation.
_OPERATION_PRIORITIES: dict[str, Priority] = {
    # VO operation phase: keep the running VO observable.
    "MonitorVO": Priority.OPERATION,
    "ServiceAvailability": Priority.OPERATION,
    # Formation: trust negotiation and membership.
    "StartNegotiation": Priority.FORMATION,
    "PolicyExchange": Priority.FORMATION,
    "CredentialExchange": Priority.FORMATION,
    "RegisterMember": Priority.FORMATION,
    # Identification: discovery and announcement.
    "ListServices": Priority.IDENTIFICATION,
    "AnnounceVO": Priority.IDENTIFICATION,
}


def operation_priority(operation: str, payload: object) -> Priority:
    """Resolve the priority class of a request.

    An explicit ``priority`` field in the payload (already validated
    by the guard) overrides the per-operation default; unknown
    operations default to the most-sheddable class.
    """
    if isinstance(payload, dict):
        explicit = payload.get("priority")
        if explicit is not None:
            try:
                return Priority.parse(explicit)
            except ValueError:
                pass  # the guard rejects it when enabled
    return _OPERATION_PRIORITIES.get(operation, Priority.IDENTIFICATION)


@dataclass
class AdmissionStats:
    """Reconcilable admission counters.

    Invariant (checked by the soak harness):
    ``offered == admitted + shed + expired``.
    """

    offered: int = 0
    admitted: int = 0
    shed: int = 0
    expired: int = 0
    shed_by_priority: dict[str, int] = field(default_factory=dict)

    @property
    def reconciles(self) -> bool:
        return self.offered == self.admitted + self.shed + self.expired


@dataclass
class AdmissionController:
    """Token-bucket admission over simulated milliseconds."""

    config: HardeningConfig = field(default_factory=HardeningConfig)
    stats: AdmissionStats = field(default_factory=AdmissionStats)
    #: Current queue occupancy (fractional: it drains continuously).
    level: float = 0.0
    _last_ms: float = 0.0
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def _threshold(self, priority: Priority) -> float:
        fraction = {
            Priority.OPERATION: self.config.shed_threshold_operation,
            Priority.FORMATION: self.config.shed_threshold_formation,
            Priority.IDENTIFICATION:
                self.config.shed_threshold_identification,
        }[priority]
        return self.config.queue_capacity * fraction

    def _drain(self, now_ms: float) -> None:
        # Parallel formation runs worker threads on branched clocks, so
        # "now" can regress relative to another thread's branch; drain
        # only on forward progress and never below empty.
        delta = now_ms - self._last_ms
        if delta > 0:
            self.level = max(0.0, self.level - delta * self.config.drain_per_ms)
        self._last_ms = max(self._last_ms, now_ms)

    def admit(self, operation: str, payload: object, now_ms: float) -> None:
        """Admit, or raise a typed shed error.

        Raises :class:`~repro.errors.DeadlineExpiredError` when the
        request's propagated deadline already passed, and
        :class:`~repro.errors.OverloadError` (with a ``retry_after_ms``
        hint) when the queue is over the request's priority threshold.
        """
        priority = operation_priority(operation, payload)
        with self._lock:
            self.stats.offered += 1
            self._drain(now_ms)
            deadline = (
                payload.get("deadlineMs")
                if isinstance(payload, dict) else None
            )
            if (
                isinstance(deadline, (int, float))
                and not isinstance(deadline, bool)
                and now_ms >= deadline
            ):
                self.stats.expired += 1
                obs_count("hardening.admission.expired")
                raise DeadlineExpiredError(
                    f"{operation} deadline {deadline:.0f} ms already "
                    f"passed at {now_ms:.0f} ms; work shed unevaluated"
                )
            limit = self._threshold(priority)
            if self.level + 1 > limit:
                self.stats.shed += 1
                key = priority.name.lower()
                self.stats.shed_by_priority[key] = (
                    self.stats.shed_by_priority.get(key, 0) + 1
                )
                obs_count("hardening.admission.shed")
                obs_count(f"hardening.admission.shed.{key}")
                retry_after = (
                    (self.level + 1 - limit) / self.config.drain_per_ms
                )
                raise OverloadError(
                    f"{operation} shed at priority {priority.name}: "
                    f"queue at {self.level:.1f}/"
                    f"{self.config.queue_capacity} "
                    f"(threshold {limit:.1f}); retry after "
                    f"{retry_after:.0f} simulated ms",
                    retry_after_ms=retry_after,
                    error_code=ErrorCode.OVERLOADED,
                )
            self.level += 1.0
            self.stats.admitted += 1
            obs_count("hardening.admission.admitted")
