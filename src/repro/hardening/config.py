"""Tuning knobs for the hardening layer.

One frozen config object gathers every limit of the protocol guard
(schema/size/depth validation, sequence state machine) and the
admission controller (bounded queue, drain rate, priority shed
thresholds, session TTL), so the :mod:`repro.api` facade can thread a
single ``hardening=`` argument through the toolkit the same way
``ResilienceConfig`` threads the retry knobs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HardeningConfig"]


@dataclass(frozen=True, kw_only=True)
class HardeningConfig:
    """Knobs for the protocol guard and the admission controller.

    The defaults are sized for the simulated testbed: payloads are a
    handful of scalar fields plus optionally one embedded X-TNL
    document, and a service that cannot drain roughly one negotiation
    operation per 20 simulated ms is saturated.
    """

    # -- protocol guard ------------------------------------------------------
    #: Master switch for inbound message validation.
    guard_enabled: bool = True
    #: Maximum number of top-level keys in one payload mapping.
    max_payload_keys: int = 16
    #: Maximum byte length of any single string field (UTF-8).
    max_string_bytes: int = 4096
    #: Maximum byte length of an embedded XML document.
    max_xml_bytes: int = 65_536
    #: Maximum element nesting depth of an embedded XML document.
    max_xml_depth: int = 32
    #: Maximum direct children of any one element.
    max_xml_children: int = 256
    #: Highest acceptable clientSeq; beyond it the peer is flooding.
    max_client_seq: int = 10_000

    # -- admission control ---------------------------------------------------
    #: Master switch for overload protection.
    admission_enabled: bool = True
    #: Bounded work-queue capacity (outstanding admitted requests).
    queue_capacity: int = 64
    #: Queue slots drained per simulated millisecond.
    drain_per_ms: float = 0.05
    #: Per-priority shed thresholds as fractions of ``queue_capacity``:
    #: operation-phase traffic may fill the whole queue, formation
    #: traffic three quarters, identification traffic half — so under
    #: saturation the cheap-to-redo identification work is shed first
    #: (operation-phase > formation > identification).
    shed_threshold_operation: float = 1.0
    shed_threshold_formation: float = 0.75
    shed_threshold_identification: float = 0.5
    #: Simulated ms after which an untouched non-terminal session is
    #: reaped to the terminal "expired" phase.
    session_ttl_ms: float = 120_000.0

    def guard(self):
        """Build a :class:`~repro.hardening.guard.ProtocolGuard` from
        these knobs, or ``None`` when the guard is disabled."""
        from repro.hardening.guard import ProtocolGuard

        if not self.guard_enabled:
            return None
        return ProtocolGuard(config=self)

    def admission(self):
        """Build an :class:`~repro.hardening.admission.AdmissionController`
        from these knobs, or ``None`` when admission is disabled."""
        from repro.hardening.admission import AdmissionController

        if not self.admission_enabled:
            return None
        return AdmissionController(config=self)
