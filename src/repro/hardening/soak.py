"""The chaos-soak harness: mixed adversarial faults + overload, with
invariants checked at the end.

:func:`run_soak` drives thousands of trust negotiations over the full
simulated SOA stack (``TNClient → ResilientTransport → FaultInjector →
SimTransport → hardened TNWebService``) while a seeded
:class:`~repro.faults.plan.FaultPlan` injects both network faults
(drops, lost responses, duplicates, database failures) and hostile-peer
probes (malformed, truncated, oversized, replayed, reordered,
Byzantine), periodic low-priority bursts saturate admission control,
and Byzantine impostor clients try to negotiate with stolen credential
profiles.  The whole fuzz corpus of :mod:`repro.hardening.fuzz` is
replayed up front.

After the storm, the invariant checker asserts what hardening promises:

- **disclosure safety** — no protected credential was disclosed
  without a policy alternative whose credential terms the counterpart
  satisfied (concept/variable terms are resolved by the ontology layer
  and are out of this checker's scope);
- **session terminality** — every server-side session ended terminal
  (completed, or expired by the TTL reaper);
- **admission reconciliation** — ``offered == admitted + shed +
  expired`` on the service's admission controller;
- **probe hygiene** — every adversarial probe was rejected with a
  typed error code (or answered idempotently where replay is
  legitimate); none was accepted or leaked a stack trace;
- **exception hygiene** — zero unhandled (non-library) exceptions at
  the client, zero internal errors at the service;
- **impostor rejection** — no Byzantine impostor negotiation
  succeeded;
- **retraction honored** — with ``retract_every > 0``, no negotiation
  completed after its credential was revoked through the trust bus
  between PolicyExchange and CredentialExchange;
- **liveness** — despite everything, negotiations kept succeeding.

With ``cluster_shards > 0`` the soak deploys a
:class:`~repro.cluster.ShardedTNService` instead of a single service
and interleaves kill/restart drills — phase-split negotiations whose
serving shard is killed (periodically with a torn WAL tail) between
phases, forcing failover adoption from the durable journal.  Two more
invariants then apply:

- **terminal durability** — zero sessions whose journal reached a
  terminal checkpoint are lost (or regress to non-terminal) across
  every crash, torn write, failover, and restart;
- **audit chain** — when ``audit_log_path`` is set, the sealed
  hash-chained event log verifies end to end
  (:func:`repro.obs.audit.verify_audit_log`).

Everything is seeded; the same :class:`SoakConfig` always produces the
same :class:`SoakReport`.
"""

from __future__ import annotations

import json
import random
import warnings
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import (
    CircuitOpenError,
    DeadlineExpiredError,
    ErrorCode,
    OverloadError,
    ReproError,
)
from repro.faults.plan import FaultKind, FaultPlan
from repro.hardening.config import HardeningConfig
from repro.hardening.fuzz import (
    FuzzOutcome,
    run_probe,
    session_probes,
    stateless_probes,
    terminal_probes,
)
from repro.obs import (
    ObsConfig,
    count as obs_count,
    disable as obs_disable,
    enable as obs_enable,
    event as obs_event,
)
from repro.obs.audit import verify_audit_log

__all__ = [
    "SoakConfig",
    "SoakReport",
    "InvariantViolation",
    "run_soak",
    "check_service_invariants",
]

#: Network fault kinds mixed into the soak (CRASH is exercised by the
#: dedicated recovery tests; a soak-length downtime would only measure
#: the timeout path thousands of times over).
_NETWORK_KINDS = (
    FaultKind.DROP, FaultKind.TIMEOUT, FaultKind.DUPLICATE,
    FaultKind.DB_FAIL,
)

_ADVERSARIAL_KINDS = (
    FaultKind.MALFORMED, FaultKind.TRUNCATED, FaultKind.OVERSIZED,
    FaultKind.REPLAYED, FaultKind.REORDERED, FaultKind.BYZANTINE,
)


@dataclass(frozen=True, kw_only=True)
class SoakConfig:
    """Knobs of one soak run.  Everything derives from ``seed``."""

    seed: int = 7
    #: Legitimate negotiations to drive (the acceptance bar is 2000).
    negotiations: int = 2000
    #: Contract roles — also the number of distinct (requester,
    #: resource) pairs the negotiations cycle through.
    roles: int = 4
    #: Per-call strike probability of each adversarial fault kind.
    adversarial_probability: float = 0.04
    #: Per-call strike probability of each network fault kind.
    network_probability: float = 0.012
    #: Every Nth negotiation fires a low-priority admission burst
    #: (0 disables bursts).
    burst_every: int = 50
    #: Raw ``StartNegotiation`` probes per burst, sized to overrun the
    #: identification-priority shed threshold.
    burst_size: int = 48
    #: Every Nth negotiation is attempted by a Byzantine impostor —
    #: the victim's name and credential profile, but the wrong private
    #: key (0 disables impostors).
    byzantine_every: int = 97
    #: Every Nth negotiation runs a retraction drill: the requester's
    #: qualification credential is revoked through the trust bus
    #: between PolicyExchange and CredentialExchange, the exchange must
    #: not complete, and a fresh credential re-arms the lane
    #: (0 disables drills).
    retract_every: int = 0
    #: Every Nth negotiation runs the session TTL reaper (the final
    #: reap after the storm always runs).
    reap_every: int = 250
    #: Client-side deadline budget per logical call (simulated ms).
    deadline_ms: float = 60_000.0
    hardening: HardeningConfig = field(default_factory=HardeningConfig)
    #: TN shards behind the service URL (0 keeps the classic
    #: single-service soak; > 0 deploys a
    #: :class:`~repro.cluster.ShardedTNService` instead).
    cluster_shards: int = 0
    #: Every Nth negotiation runs a kill drill: a phase-split
    #: negotiation whose serving shard is killed between PolicyExchange
    #: and CredentialExchange, so the final phase must be served by the
    #: failover successor from the journalled checkpoint (0 disables;
    #: requires ``cluster_shards``).
    node_kill_every: int = 0
    #: Every Kth kill drill additionally tears the victim's final WAL
    #: record before the kill — recovery must discard the torn tail and
    #: resume from the previous checkpoint (0 disables tearing).
    torn_write_every_kill: int = 3
    #: Directory for per-shard WAL files (None journals in memory).
    wal_dir: Optional[str] = None
    #: Run the asyncio-native soak instead of the classic sync one:
    #: ``AioTNClient``-style lanes drive an
    #: :class:`~repro.cluster.AioShardedTNService` (hedged requests +
    #: health-aware routing) through ``AioResilientTransport`` and the
    #: async fault-injection path, with kill drills fired *while*
    #: sibling negotiations are mid-flight on the same shards.  See
    #: :mod:`repro.hardening.aio_soak` for what carries over and what
    #: (fuzz corpus, retraction drills) stays sync-only.
    asyncio_mode: bool = False
    #: Path of a hash-chained audit log.  When set, the soak enables
    #: the observability runtime with an
    #: :class:`~repro.obs.audit.AuditLogSink` for the duration of the
    #: run (replacing any runtime the caller had enabled), seals the
    #: final epoch at the end, and verifies the whole chain as an
    #: invariant.
    audit_log_path: Optional[str] = None


@dataclass(frozen=True)
class InvariantViolation:
    """One broken soak invariant."""

    invariant: str
    detail: str

    def to_dict(self) -> dict:
        return {"invariant": self.invariant, "detail": self.detail}


@dataclass
class SoakReport:
    """Counters and verdicts of one soak run; ``ok`` is the verdict."""

    seed: int
    negotiations: int
    successes: int = 0
    #: Failed-but-answered negotiations by failure reason.
    failures: dict[str, int] = field(default_factory=dict)
    #: Typed errors that surfaced to the driving client, by code.
    client_errors: dict[str, int] = field(default_factory=dict)
    #: Non-library exceptions that escaped to the driver.  Must be [].
    unhandled: list[str] = field(default_factory=list)
    byzantine_attempts: int = 0
    byzantine_successes: int = 0
    retraction_drills: int = 0
    #: Negotiations that completed after their credential was retracted
    #: mid-flight.  Must be 0 ("retraction-honored").
    stale_completions: int = 0
    bursts: int = 0
    burst_sheds: int = 0
    deadline_sheds: int = 0
    backpressure_waits: int = 0
    breaker_pauses: int = 0
    reaped: int = 0
    internal_errors: int = 0
    guard_validated: int = 0
    guard_rejected: int = 0
    guard_by_code: dict[str, int] = field(default_factory=dict)
    admission_offered: int = 0
    admission_admitted: int = 0
    admission_shed: int = 0
    admission_expired: int = 0
    #: Adversarial probes fired by the injector, per fault kind.
    probes_fired: dict[str, int] = field(default_factory=dict)
    probe_rejections: int = 0
    probe_anomalies: list[str] = field(default_factory=list)
    fuzz_probes: int = 0
    fuzz_failures: list[str] = field(default_factory=list)
    #: Cluster-mode counters (all zero in the single-service soak).
    node_kills: int = 0
    node_restarts: int = 0
    failovers: int = 0
    sessions_recovered: int = 0
    wal_records: int = 0
    torn_records_discarded: int = 0
    #: Asyncio-soak counters (all zero in the classic sync soak):
    #: hedged-request outcomes and health-router ejection traffic.
    hedges_fired: int = 0
    hedges_won: int = 0
    hedges_cancelled: int = 0
    shard_ejections: int = 0
    shard_readmissions: int = 0
    health_probes: int = 0
    #: ``AuditReport.to_dict()`` of the audit-log verification, or
    #: None when no audit log was requested.
    audit: Optional[dict] = None
    elapsed_sim_ms: float = 0.0
    violations: list[InvariantViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.unhandled

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "seed": self.seed,
            "negotiations": self.negotiations,
            "successes": self.successes,
            "failures": dict(self.failures),
            "clientErrors": dict(self.client_errors),
            "unhandled": list(self.unhandled),
            "byzantineAttempts": self.byzantine_attempts,
            "byzantineSuccesses": self.byzantine_successes,
            "trust": {
                "retractionDrills": self.retraction_drills,
                "staleCompletions": self.stale_completions,
            },
            "bursts": self.bursts,
            "burstSheds": self.burst_sheds,
            "deadlineSheds": self.deadline_sheds,
            "backpressureWaits": self.backpressure_waits,
            "breakerPauses": self.breaker_pauses,
            "reaped": self.reaped,
            "internalErrors": self.internal_errors,
            "guard": {
                "validated": self.guard_validated,
                "rejected": self.guard_rejected,
                "byCode": dict(self.guard_by_code),
            },
            "admission": {
                "offered": self.admission_offered,
                "admitted": self.admission_admitted,
                "shed": self.admission_shed,
                "expired": self.admission_expired,
            },
            "probesFired": dict(self.probes_fired),
            "probeRejections": self.probe_rejections,
            "probeAnomalies": list(self.probe_anomalies),
            "fuzzProbes": self.fuzz_probes,
            "fuzzFailures": list(self.fuzz_failures),
            "cluster": {
                "nodeKills": self.node_kills,
                "nodeRestarts": self.node_restarts,
                "failovers": self.failovers,
                "sessionsRecovered": self.sessions_recovered,
                "walRecords": self.wal_records,
                "tornRecordsDiscarded": self.torn_records_discarded,
                "hedgesFired": self.hedges_fired,
                "hedgesWon": self.hedges_won,
                "hedgesCancelled": self.hedges_cancelled,
                "shardEjections": self.shard_ejections,
                "shardReadmissions": self.shard_readmissions,
                "healthProbes": self.health_probes,
            },
            "audit": self.audit,
            "elapsedSimMs": round(self.elapsed_sim_ms, 3),
            "violations": [v.to_dict() for v in self.violations],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def summary(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        return (
            f"{verdict}: {self.successes}/{self.negotiations} negotiations "
            f"succeeded under {sum(self.probes_fired.values())} adversarial "
            f"probes, {self.admission_shed} sheds, "
            f"{self.guard_rejected} guard rejections; "
            f"{len(self.violations)} invariant violations, "
            f"{len(self.unhandled)} unhandled exceptions"
        )


def _record(counts: dict[str, int], key: str) -> None:
    counts[key] = counts.get(key, 0) + 1


def _check_disclosure_safety(result, agents, violate) -> None:
    """No protected credential without a satisfied policy alternative.

    Checks CREDENTIAL-kind policy terms against the counterpart's
    disclosed credential *types*; alternatives carrying only concept or
    variable terms are resolved through the ontology layer and are out
    of this checker's scope (treated as satisfied).
    """
    from repro.policy.terms import TermKind

    requester = agents.get(result.requester)
    controller = agents.get(result.controller)
    if requester is None or controller is None:
        return
    sides = (
        (requester, result.disclosed_by_requester,
         controller, result.disclosed_by_controller),
        (controller, result.disclosed_by_controller,
         requester, result.disclosed_by_requester),
    )
    for discloser, disclosed_ids, counterpart, counterpart_ids in sides:
        counterpart_types = set()
        for cred_id in counterpart_ids:
            try:
                counterpart_types.add(
                    counterpart.profile.get(cred_id).cred_type
                )
            except ReproError:
                pass
        for cred_id in disclosed_ids:
            try:
                credential = discloser.profile.get(cred_id)
            except ReproError:
                violate(
                    "disclosure-safety",
                    f"{discloser.name} disclosed credential {cred_id!r} "
                    "absent from its own profile",
                )
                continue
            base = discloser.policies
            cred_type = credential.cred_type
            if (
                base.is_unprotected(cred_type)
                or base.is_freely_deliverable(cred_type)
            ):
                continue
            satisfied = False
            for policy in base.policies_for(cred_type):
                if policy.is_delivery:
                    satisfied = True
                    break
                credential_terms = [
                    term for term in policy.terms
                    if term.kind is TermKind.CREDENTIAL
                ]
                if not credential_terms:
                    satisfied = True  # concept/variable-only alternative
                    break
                if all(
                    term.name in counterpart_types
                    for term in credential_terms
                ):
                    satisfied = True
                    break
            if not satisfied:
                violate(
                    "disclosure-safety",
                    f"{discloser.name} disclosed {cred_id!r} "
                    f"({cred_type}, sensitivity "
                    f"{credential.sensitivity.name}) to "
                    f"{counterpart.name} for {result.resource!r} with no "
                    "satisfied policy alternative",
                )


def check_service_invariants(service, violate, cluster=None) -> None:
    """Service-level invariant checks shared by the chaos soak and the
    scenario engine.

    ``service`` is a :class:`~repro.services.tn_service.TNWebService`
    or a :class:`~repro.cluster.ShardedTNService`; ``violate`` is a
    ``(invariant, detail)`` callback invoked per broken promise.  Pass
    the cluster again as ``cluster`` to also run the cluster-only
    terminal-durability check.

    Covers:

    - **session terminality** — every session the service still holds
      ended in a terminal phase (completed or expired/reaped);
    - **terminal durability** (cluster only) — no durably-terminal
      session was lost or regressed across crash/failover/recovery;
    - **admission reconciliation** — ``offered == admitted + shed +
      expired`` on the (aggregate) admission controller;
    - **exception hygiene** — the service wrapped zero internal errors.
    """
    for session_id, session in service.sessions().items():
        if not session.terminal:
            violate(
                "session-terminal",
                f"session {session_id!r} ended in phase "
                f"{session.phase!r} (requester "
                f"{session.requester_name!r})",
            )
    if cluster is not None:
        # Zero terminal sessions lost: every session whose *durable*
        # journal reached a terminal checkpoint must still exist, and
        # still be terminal, on some live shard after every crash,
        # failover, torn write, and restart of the run.
        final_sessions = service.sessions()
        for session_id, element in sorted(
            cluster.durable_sessions().items()
        ):
            checkpoint_terminal = element.get("phase") == "expired" or (
                element.get("phase") == "exchange"
                and element.find("outcome") is not None
            )
            if not checkpoint_terminal:
                continue
            final = final_sessions.get(session_id)
            if final is None:
                violate(
                    "terminal-durability",
                    f"terminal session {session_id!r} was lost across "
                    "crash/recovery",
                )
            elif not final.terminal:
                violate(
                    "terminal-durability",
                    f"session {session_id!r} checkpointed terminal but "
                    f"recovered in phase {final.phase!r}",
                )
    if service.admission is not None and not service.admission.stats.reconciles:
        stats = service.admission.stats
        violate(
            "admission-reconciliation",
            f"offered {stats.offered} != admitted {stats.admitted} + "
            f"shed {stats.shed} + expired {stats.expired}",
        )
    if service.internal_errors:
        violate(
            "exception-hygiene",
            f"service wrapped {service.internal_errors} internal errors",
        )


def _run_fuzz_corpus(
    call: Callable[[str, object], object],
    config: SoakConfig,
    requester,
    resource: str,
    at,
) -> list[FuzzOutcome]:
    """Replay the whole corpus: stateless, then against a live session,
    then against the same session after it completed."""
    outcomes = [
        run_probe(call, probe)
        for probe in stateless_probes(config.hardening)
    ]
    start = call("StartNegotiation", {
        "requester": requester,
        "strategy": "standard",
        "counterpartUrl": f"urn:repro:{requester.name}",
        "requestId": f"soak-fuzz-{config.seed}",
    })
    session_id = start["negotiationId"]
    outcomes.extend(
        run_probe(call, probe) for probe in session_probes(session_id)
    )
    call("PolicyExchange", {
        "negotiationId": session_id, "resource": resource,
        "at": at, "clientSeq": 1,
    })
    call("CredentialExchange", {
        "negotiationId": session_id, "clientSeq": 2,
    })
    outcomes.extend(
        run_probe(call, probe)
        for probe in terminal_probes(session_id, resource)
    )
    return outcomes


def _run_soak_impl(config: Optional[SoakConfig] = None) -> SoakReport:
    """Run the chaos soak and return its invariant report."""
    config = config or SoakConfig()
    if config.asyncio_mode:
        from repro.hardening.aio_soak import run_aio_soak

        return run_aio_soak(config)
    # Imported here: the scenario/service layers import
    # ``repro.hardening.config`` at module load, so importing them at
    # this module's top level would close an import cycle.
    from repro.crypto.keys import KeyPair
    from repro.faults.injector import FaultInjector
    from repro.negotiation.agent import TrustXAgent
    from repro.negotiation.cache import SequenceCache
    from repro.scenario.workloads import _ISSUE, formation_workload
    from repro.services.resilience import ResilientTransport, RetryPolicy
    from repro.services.tn_client import TNClient
    from repro.services.transport import LatencyModel
    from repro.trust import TrustBus

    rng = random.Random(config.seed)
    report = SoakReport(seed=config.seed, negotiations=config.negotiations)

    if config.audit_log_path is not None:
        # The soak owns the observability runtime for the run: every
        # event lands in the hash-chained audit log, which is sealed
        # and verified as an invariant at the end.
        obs_enable(ObsConfig(audit_path=config.audit_log_path))

    # A compressed latency model: the soak measures invariants over
    # thousands of negotiations, not Fig. 9 absolute times, and the
    # admission bucket (drain_per_ms) is calibrated against it.
    fixture = formation_workload(config.roles, latency=LatencyModel(
        network_rtt_ms=1.0, soap_marshal_ms=0.5, service_dispatch_ms=0.5,
        db_connect_ms=2.0, db_read_ms=0.2, db_write_ms=0.3,
        crypto_sign_ms=0.5, crypto_verify_ms=0.2,
        ui_interaction_ms=4.0, mail_delivery_ms=3.0,
    ))
    edition = fixture.initiator_edition
    edition.create_vo(fixture.contract)
    cluster = None
    if config.cluster_shards > 0:
        # Deploy the sharded cluster at the same URL the single
        # service would claim: the whole client stack (resilience,
        # fault injection, fuzz corpus) is reused unchanged, and the
        # storm additionally runs kill/restart drills against it.
        from repro.cluster import ShardedTNService

        service = cluster = ShardedTNService(
            edition.initiator.agent,
            fixture.transport,
            url="urn:vo:tn",
            shards=config.cluster_shards,
            cache=SequenceCache(),
            hardening=config.hardening,
            wal_dir=config.wal_dir,
        )
    else:
        service = edition.enable_trust_negotiation(
            cache=SequenceCache(), hardening=config.hardening
        )
    clock = fixture.transport.base_clock
    started_ms = clock.elapsed_ms

    plan = FaultPlan(seed=config.seed, timeout_wait_ms=250.0)
    for kind in _ADVERSARIAL_KINDS:
        plan.randomly(kind, config.adversarial_probability, url=service.url)
    for kind in _NETWORK_KINDS:
        plan.randomly(kind, config.network_probability, url=service.url)
    injector = FaultInjector(inner=fixture.transport, plan=plan)
    resilient = ResilientTransport(
        inner=injector,
        retry=RetryPolicy(jitter_seed=config.seed),
        deadline_ms=config.deadline_ms,
    )

    roles = list(fixture.contract.roles)
    lanes = []  # (client, agent, resource) per role
    for role in roles:
        member = fixture.member_apps[role.name].member
        lanes.append((
            TNClient(
                transport=resilient,
                service_url=service.url,
                agent=member.agent,
            ),
            member.agent,
            role.membership_resource(fixture.contract.vo_name),
        ))
    agents = {agent.name: agent for _, agent, _ in lanes}
    agents[edition.initiator.agent.name] = edition.initiator.agent
    trust_bus = TrustBus(registry=fixture.revocations)
    if cluster is not None:
        # Restores and failover adoptions resolve requesters here.
        cluster.agents.update(agents)
    at = fixture.contract.created_at

    # -- fuzz corpus first, against the unloaded service ----------------------
    raw_call = lambda op, payload: fixture.transport.call(  # noqa: E731
        service.url, op, payload
    )
    fuzz_outcomes = _run_fuzz_corpus(
        raw_call, config, lanes[0][1], lanes[0][2], at
    )
    report.fuzz_probes = len(fuzz_outcomes)
    report.fuzz_failures = [
        f"{outcome.name}: {outcome.anomaly}"
        for outcome in fuzz_outcomes if not outcome.ok
    ]

    # -- the storm ------------------------------------------------------------
    results = []

    def drive(client, resource: str) -> Optional[object]:
        """One negotiation; returns its result or None if it errored."""
        try:
            return client.negotiate(resource, at=at)
        except CircuitOpenError:
            # The breaker opened under a fault streak: wait out the
            # reset window in simulated time and give the endpoint its
            # half-open probe instead of fast-failing the rest of the
            # soak.
            report.breaker_pauses += 1
            clock.advance(
                resilient.breaker_policy.reset_timeout_ms + 1.0
            )
            try:
                return client.negotiate(resource, at=at)
            except ReproError as exc:
                code = getattr(exc, "error_code", None)
                _record(
                    report.client_errors,
                    code.value if code else type(exc).__name__,
                )
                return None
        except ReproError as exc:
            code = getattr(exc, "error_code", None)
            _record(
                report.client_errors,
                code.value if code else type(exc).__name__,
            )
            return None

    def kill_drill(index: int, lane) -> None:
        """A mid-negotiation shard kill: StartNegotiation and
        PolicyExchange land on one shard, that shard dies (every Kth
        drill with its final WAL record torn first), and the client's
        CredentialExchange must be completed by the failover successor
        from the journalled checkpoint."""
        _, agent, resource = lane
        try:
            start = resilient.call(service.url, "StartNegotiation", {
                "requester": agent,
                "strategy": "standard",
                "counterpartUrl": f"urn:repro:{agent.name}",
                "requestId": f"soak-kill-{index}",
            })
            negotiation_id = start.get("negotiationId")
            if not negotiation_id:
                _record(report.client_errors, "no-negotiation-id")
                return
            resilient.call(service.url, "PolicyExchange", {
                "negotiationId": negotiation_id, "resource": resource,
                "at": at, "clientSeq": 1,
            })
            victim = cluster.placement_index(negotiation_id)
            if victim is not None and len(cluster.live_nodes()) > 1:
                report.node_kills += 1
                if (
                    config.torn_write_every_kill > 0
                    and report.node_kills % config.torn_write_every_kill
                    == 0
                ):
                    # Damage the freshest checkpoint too: recovery must
                    # discard the torn record and fall back to the one
                    # before it.
                    cluster.tear_wal(victim)
                cluster.kill_node(victim)
            try:
                exchange = resilient.call(
                    service.url, "CredentialExchange",
                    {"negotiationId": negotiation_id, "clientSeq": 2},
                )
            except ReproError:
                # The adopted checkpoint may predate PolicyExchange
                # (torn WAL record): replay the phase against the
                # successor.  Restored sessions accept the resync, and
                # the billing flags in the checkpoint keep the replay
                # idempotent.
                resilient.call(service.url, "PolicyExchange", {
                    "negotiationId": negotiation_id, "resource": resource,
                    "at": at, "clientSeq": 3,
                })
                exchange = resilient.call(
                    service.url, "CredentialExchange",
                    {"negotiationId": negotiation_id, "clientSeq": 4},
                )
            result = exchange.get("result")
        except ReproError as exc:
            code = getattr(exc, "error_code", None)
            _record(
                report.client_errors,
                code.value if code else type(exc).__name__,
            )
            return
        except Exception as exc:  # noqa: BLE001 - the invariant itself
            report.unhandled.append(
                f"kill-drill {index}: {type(exc).__name__}: {exc}"
            )
            return
        if result is None or not hasattr(result, "success"):
            _record(report.client_errors, "no-result")
        elif result.success:
            report.successes += 1
            results.append(result)
        else:
            reason = (
                result.failure_reason.value
                if result.failure_reason else "unknown"
            )
            _record(report.failures, reason)
            results.append(result)

    def retraction_drill(index: int, lane) -> None:
        """A mid-negotiation retraction: StartNegotiation and
        PolicyExchange run normally, then the requester's qualification
        credential is revoked through the trust bus — the
        CredentialExchange that follows must not complete on stale
        cached trust.  The lane is re-issued a fresh credential
        afterwards so later negotiations keep succeeding."""
        _, agent, resource = lane
        credential = next(iter(agent.profile), None)
        if credential is None:
            return
        report.retraction_drills += 1
        result = None
        revoked = False
        try:
            start = resilient.call(service.url, "StartNegotiation", {
                "requester": agent,
                "strategy": "standard",
                "counterpartUrl": f"urn:repro:{agent.name}",
                "requestId": f"soak-retract-{index}",
            })
            negotiation_id = start.get("negotiationId")
            if not negotiation_id:
                _record(report.client_errors, "no-negotiation-id")
                return
            resilient.call(service.url, "PolicyExchange", {
                "negotiationId": negotiation_id, "resource": resource,
                "at": at, "clientSeq": 1,
            })
            trust_bus.revoke(fixture.authority, credential)
            revoked = True
            exchange = resilient.call(
                service.url, "CredentialExchange",
                {"negotiationId": negotiation_id, "clientSeq": 2},
            )
            result = exchange.get("result")
        except ReproError as exc:
            code = getattr(exc, "error_code", None)
            _record(
                report.client_errors,
                code.value if code else type(exc).__name__,
            )
        except Exception as exc:  # noqa: BLE001 - the invariant itself
            report.unhandled.append(
                f"retraction-drill {index}: {type(exc).__name__}: {exc}"
            )
        finally:
            if revoked:
                # Re-arm the lane: the revoked qualification is
                # replaced by a fresh serial under the *same*
                # credential id, so later negotiations succeed again
                # (and disclosure records from earlier rounds still
                # resolve against the profile).
                fresh = fixture.authority.issue(
                    credential.cred_type, agent.name,
                    agent.keypair.fingerprint,
                    {a.name: a.value for a in credential.attributes},
                    _ISSUE, days=3650, sensitivity=credential.sensitivity,
                    cred_id=credential.cred_id,
                )
                agent.profile.remove(credential.cred_id)
                agent.profile.add(fresh)
        if result is not None and getattr(result, "success", False):
            report.stale_completions += 1
        elif result is not None:
            reason = (
                result.failure_reason.value
                if result.failure_reason else "unknown"
            )
            _record(report.failures, reason)

    for index in range(config.negotiations):
        client, agent, resource = lanes[index % len(lanes)]
        byzantine = (
            config.byzantine_every > 0
            and (index + 1) % config.byzantine_every == 0
        )
        if byzantine:
            # The impostor presents the victim's name and stolen
            # credential profile but signs ownership proofs with its
            # own key: every disclosure it attempts must be rejected.
            report.byzantine_attempts += 1
            victim = agent
            impostor = TrustXAgent(
                name=victim.name,
                profile=victim.profile,
                policies=victim.policies,
                keypair=KeyPair.generate(512),
                validator=victim.validator,
                strategy=victim.strategy,
            )
            client = TNClient(
                transport=resilient,
                service_url=service.url,
                agent=impostor,
            )
        try:
            result = drive(client, resource)
        except Exception as exc:  # noqa: BLE001 - the invariant itself
            report.unhandled.append(
                f"negotiation {index}: {type(exc).__name__}: {exc}"
            )
            result = None
        if result is not None:
            if byzantine:
                if result.success:
                    report.byzantine_successes += 1
            elif result.success:
                report.successes += 1
                results.append(result)
            else:
                reason = (
                    result.failure_reason.value
                    if result.failure_reason else "unknown"
                )
                _record(report.failures, reason)
                results.append(result)

        if (
            config.burst_every > 0
            and (index + 1) % config.burst_every == 0
        ):
            # A low-priority client floods StartNegotiation without
            # retries; the first two probes carry an already-expired
            # deadline so deadline shedding fires under load too.
            report.bursts += 1
            burst_agent = lanes[rng.randrange(len(lanes))][1]
            for probe_index in range(config.burst_size):
                payload = {
                    "requester": burst_agent,
                    "strategy": "standard",
                    "counterpartUrl": "urn:repro:burst",
                    "requestId": f"soak-burst-{index}-{probe_index}",
                    "priority": "identification",
                }
                if probe_index < 2:
                    payload["deadlineMs"] = clock.elapsed_ms - 1.0
                try:
                    fixture.transport.call(
                        service.url, "StartNegotiation", payload
                    )
                except OverloadError:
                    report.burst_sheds += 1
                except DeadlineExpiredError:
                    report.deadline_sheds += 1
                except ReproError as exc:
                    code = getattr(exc, "error_code", None)
                    _record(
                        report.client_errors,
                        code.value if code else type(exc).__name__,
                    )
                except Exception as exc:  # noqa: BLE001
                    report.unhandled.append(
                        f"burst {index}.{probe_index}: "
                        f"{type(exc).__name__}: {exc}"
                    )

        if config.reap_every > 0 and (index + 1) % config.reap_every == 0:
            report.reaped += service.reap_expired()

        if (
            cluster is not None
            and config.node_kill_every > 0
            and (index + 1) % config.node_kill_every == 0
        ):
            kill_drill(index, lanes[rng.randrange(len(lanes))])

        if (
            config.retract_every > 0
            and (index + 1) % config.retract_every == 0
        ):
            retraction_drill(index, lanes[rng.randrange(len(lanes))])

    # -- drain: let every abandoned session age out ---------------------------
    if cluster is not None:
        # Revive any shard still down so its journalled sessions are
        # live for the final reap and the terminal-durability check.
        for node in cluster.nodes():
            if not node.live:
                cluster.restart_node(node.index)
    clock.advance(config.hardening.session_ttl_ms + 1.0)
    report.reaped += service.reap_expired()
    report.elapsed_sim_ms = clock.elapsed_ms - started_ms
    report.backpressure_waits = resilient.stats.backpressure_waits
    report.internal_errors = service.internal_errors
    if service.guard is not None:
        report.guard_validated = service.guard.stats.validated
        report.guard_rejected = service.guard.stats.rejected
        report.guard_by_code = dict(service.guard.stats.by_code)
    if service.admission is not None:
        stats = service.admission.stats
        report.admission_offered = stats.offered
        report.admission_admitted = stats.admitted
        report.admission_shed = stats.shed
        report.admission_expired = stats.expired
    report.probes_fired = {
        kind.value: count
        for kind, count in injector.injected.items()
        if kind.adversarial and count
    }
    report.probe_rejections = len(injector.probe_rejections)
    report.probe_anomalies = list(injector.probe_anomalies)
    if cluster is not None:
        report.node_kills = cluster.kills
        report.node_restarts = cluster.restarts
        report.failovers = cluster.failovers
        report.sessions_recovered = cluster.sessions_recovered
        report.wal_records = cluster.wal_records()
        report.torn_records_discarded = cluster.torn_records_discarded()

    # -- invariants ------------------------------------------------------------
    def violate(invariant: str, detail: str) -> None:
        report.violations.append(InvariantViolation(invariant, detail))

    check_service_invariants(service, violate, cluster=cluster)
    for anomaly in injector.probe_anomalies:
        violate("probe-hygiene", anomaly)
    for line in report.fuzz_failures:
        violate("fuzz-corpus", line)
    if report.byzantine_successes:
        violate(
            "impostor-rejection",
            f"{report.byzantine_successes} Byzantine impostor "
            "negotiations succeeded",
        )
    if report.stale_completions:
        violate(
            "retraction-honored",
            f"{report.stale_completions} negotiations completed after "
            "their credential was retracted mid-negotiation",
        )
    if not report.successes:
        violate("liveness", "no negotiation succeeded during the soak")
    for result in results:
        _check_disclosure_safety(result, agents, violate)

    obs_count("hardening.soak.runs")
    obs_event(
        "hardening.soak.report",
        clock=clock,
        ok=report.ok,
        negotiations=report.negotiations,
        successes=report.successes,
        violations=len(report.violations),
    )
    if cluster is not None:
        cluster.close()
    if config.audit_log_path is not None:
        obs_disable()  # seals the final audit epoch
        audit_report = verify_audit_log(config.audit_log_path)
        report.audit = audit_report.to_dict()
        if not audit_report.ok:
            violate("audit-chain", audit_report.summary())
    return report


def run_soak(config: Optional[SoakConfig] = None) -> SoakReport:
    """Deprecated direct entry point for the chaos soak.

    The soak is now a preset of the general workload runner; call
    ``repro.api.WorkloadRunner().run("soak", ...)`` (or
    ``run("soak", config)`` with an explicit :class:`SoakConfig`)
    instead.  Behavior is unchanged — this shim only warns and
    delegates.
    """
    warnings.warn(
        "calling repro.hardening.soak.run_soak directly is deprecated; "
        "use repro.api.WorkloadRunner().run('soak', ...) — the soak is "
        "now a WorkloadRunner preset",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_soak_impl(config)
