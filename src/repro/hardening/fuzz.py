"""Fuzz corpus for the TN service boundary.

A fixed library of malformed, oversized, mistyped, out-of-order, and
post-terminal probes.  Each probe is delivered to a hardened service
and must be answered with a *typed* :class:`~repro.errors.ReproError`
(an ``error_code`` from the taxonomy) — never an unhandled exception
and never a success.  The chaos-soak driver replays the whole corpus
up front and folds the verdicts into its invariant report; the unit
tests in ``tests/hardening/test_fuzz_corpus.py`` run it standalone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ErrorCode, ReproError
from repro.hardening.config import HardeningConfig

__all__ = [
    "FuzzProbe",
    "FuzzOutcome",
    "run_probe",
    "session_probes",
    "stateless_probes",
    "terminal_probes",
]


@dataclass(frozen=True)
class FuzzProbe:
    """One adversarial message and the codes that may reject it."""

    name: str
    operation: str
    payload: object
    #: Acceptable rejection codes; empty means any typed code counts.
    expected: tuple[ErrorCode, ...] = ()


@dataclass(frozen=True)
class FuzzOutcome:
    """Verdict of one delivered probe."""

    name: str
    rejected: bool
    code: Optional[ErrorCode] = None
    #: Populated when the probe was *not* cleanly rejected: it
    #: succeeded, raised an untyped error, or leaked a non-library
    #: exception.
    anomaly: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.rejected and self.anomaly is None


def _deep_xml(depth: int) -> str:
    return "<a>" * depth + "x" + "</a>" * depth


def _wide_xml(children: int) -> str:
    return "<a>" + "<b></b>" * children + "</a>"


def stateless_probes(
    config: Optional[HardeningConfig] = None,
) -> list[FuzzProbe]:
    """Probes needing no live session."""
    config = config or HardeningConfig()
    long_string = "x" * (config.max_string_bytes + 1)
    big_xml = "<a>" + "y" * config.max_xml_bytes + "</a>"
    many_keys = {f"k{i}": i for i in range(config.max_payload_keys + 1)}
    return [
        FuzzProbe(
            "payload-is-list", "StartNegotiation", ["not", "a", "dict"],
            (ErrorCode.MALFORMED_MESSAGE,),
        ),
        FuzzProbe(
            "payload-is-string", "PolicyExchange", "<xml/>",
            (ErrorCode.MALFORMED_MESSAGE,),
        ),
        FuzzProbe(
            "unknown-operation", "DropAllTables", {},
            (ErrorCode.UNKNOWN_OPERATION,),
        ),
        FuzzProbe(
            "unknown-field", "CredentialExchange",
            {"negotiationId": "tn-1", "clientSeq": 2, "exploit": "1"},
            (ErrorCode.SCHEMA_VIOLATION,),
        ),
        FuzzProbe(
            "missing-requester", "StartNegotiation",
            {"strategy": "standard"},
            (ErrorCode.SCHEMA_VIOLATION,),
        ),
        FuzzProbe(
            "non-string-key", "PolicyExchange",
            {"negotiationId": "tn-1", "resource": "R", 7: "seven"},
            (ErrorCode.MALFORMED_MESSAGE,),
        ),
        FuzzProbe(
            "string-clientSeq", "PolicyExchange",
            {"negotiationId": "tn-1", "resource": "R", "clientSeq": "one"},
            (ErrorCode.SCHEMA_VIOLATION,),
        ),
        FuzzProbe(
            "boolean-clientSeq", "PolicyExchange",
            {"negotiationId": "tn-1", "resource": "R", "clientSeq": True},
            (ErrorCode.SCHEMA_VIOLATION,),
        ),
        FuzzProbe(
            "zero-clientSeq", "PolicyExchange",
            {"negotiationId": "tn-1", "resource": "R", "clientSeq": 0},
            (ErrorCode.SCHEMA_VIOLATION,),
        ),
        FuzzProbe(
            "negative-clientSeq", "PolicyExchange",
            {"negotiationId": "tn-1", "resource": "R", "clientSeq": -3},
            (ErrorCode.SCHEMA_VIOLATION,),
        ),
        FuzzProbe(
            "flooding-clientSeq", "PolicyExchange",
            {
                "negotiationId": "tn-1", "resource": "R",
                "clientSeq": config.max_client_seq + 1,
            },
            (ErrorCode.SCHEMA_VIOLATION,),
        ),
        FuzzProbe(
            "null-resource", "PolicyExchange",
            {"negotiationId": "tn-1", "resource": None, "clientSeq": 1},
            (ErrorCode.SCHEMA_VIOLATION,),
        ),
        FuzzProbe(
            "oversized-string", "PolicyExchange",
            {"negotiationId": "tn-1", "resource": long_string, "clientSeq": 1},
            (ErrorCode.OVERSIZED_PAYLOAD,),
        ),
        FuzzProbe(
            "too-many-keys", "StartNegotiation", many_keys,
            (ErrorCode.OVERSIZED_PAYLOAD,),
        ),
        FuzzProbe(
            "truncated-xml", "PolicyExchange",
            {
                "negotiationId": "tn-1", "clientSeq": 1,
                "resource": "<credential><attr name='x'",
            },
            (ErrorCode.MALFORMED_MESSAGE,),
        ),
        FuzzProbe(
            "deep-xml", "PolicyExchange",
            {
                "negotiationId": "tn-1", "clientSeq": 1,
                "resource": _deep_xml(config.max_xml_depth + 4),
            },
            (ErrorCode.DEPTH_EXCEEDED,),
        ),
        FuzzProbe(
            "wide-xml", "PolicyExchange",
            {
                "negotiationId": "tn-1", "clientSeq": 1,
                "resource": _wide_xml(config.max_xml_children + 4),
            },
            (ErrorCode.DEPTH_EXCEEDED,),
        ),
        FuzzProbe(
            "oversized-xml", "PolicyExchange",
            {"negotiationId": "tn-1", "resource": big_xml, "clientSeq": 1},
            (ErrorCode.OVERSIZED_PAYLOAD,),
        ),
        FuzzProbe(
            "unknown-strategy", "StartNegotiation",
            {"strategy": "yolo"},
            (ErrorCode.SCHEMA_VIOLATION,),
        ),
        FuzzProbe(
            "unknown-priority", "CredentialExchange",
            {"negotiationId": "tn-1", "clientSeq": 2, "priority": "vip"},
            (ErrorCode.SCHEMA_VIOLATION,),
        ),
        FuzzProbe(
            "unknown-session", "PolicyExchange",
            {
                "negotiationId": "tn-nonexistent", "resource": "R",
                "clientSeq": 1,
            },
            (ErrorCode.UNKNOWN_SESSION,),
        ),
    ]


def session_probes(session_id: str) -> list[FuzzProbe]:
    """Probes against a live session still in its ``started`` phase."""
    return [
        FuzzProbe(
            "phase-skip", "CredentialExchange",
            {"negotiationId": session_id, "clientSeq": 1},
            (ErrorCode.PHASE_SKIP,),
        ),
        FuzzProbe(
            "skip-ahead-seq", "PolicyExchange",
            {"negotiationId": session_id, "resource": "R", "clientSeq": 5},
            (ErrorCode.OUT_OF_ORDER,),
        ),
    ]


def terminal_probes(session_id: str, resource: str) -> list[FuzzProbe]:
    """Probes against a session that already completed."""
    return [
        FuzzProbe(
            "post-terminal-policy", "PolicyExchange",
            {
                "negotiationId": session_id, "resource": resource,
                "clientSeq": 3,
            },
            (ErrorCode.POST_TERMINAL,),
        ),
        FuzzProbe(
            "post-terminal-credential", "CredentialExchange",
            {"negotiationId": session_id, "clientSeq": 4},
            (ErrorCode.POST_TERMINAL,),
        ),
        FuzzProbe(
            "replay-forgery", "CredentialExchange",
            {"negotiationId": session_id, "clientSeq": 1},
            # clientSeq 1 was recorded for PolicyExchange; replaying it
            # as CredentialExchange is a forged retry, not idempotency.
            (ErrorCode.REPLAY_MISMATCH,),
        ),
    ]


def run_probe(
    call: Callable[[str, object], object], probe: FuzzProbe
) -> FuzzOutcome:
    """Deliver ``probe`` through ``call`` and classify the response."""
    try:
        call(probe.operation, probe.payload)
    except ReproError as exc:
        code = getattr(exc, "error_code", None)
        if code is None:
            return FuzzOutcome(
                probe.name, rejected=True,
                anomaly=f"untyped {type(exc).__name__}: {exc}",
            )
        if probe.expected and code not in probe.expected:
            return FuzzOutcome(
                probe.name, rejected=True, code=code,
                anomaly=(
                    f"rejected with {code.value}, expected one of "
                    f"{[c.value for c in probe.expected]}"
                ),
            )
        return FuzzOutcome(probe.name, rejected=True, code=code)
    except Exception as exc:  # noqa: BLE001 - the whole point
        return FuzzOutcome(
            probe.name, rejected=False,
            anomaly=f"leaked {type(exc).__name__}: {exc}",
        )
    return FuzzOutcome(
        probe.name, rejected=False, anomaly="probe was accepted"
    )
