"""The credential verification pipeline.

"Upon receiving a credential, the counterpart verifies the satisfaction
of the associated policies, checks for revocation and validity dates,
and authenticates the ownership" (paper Section 4.2).  This module
implements the three credential-level checks (policy satisfaction lives
in :mod:`repro.policy.compliance`):

1. **issuer signature** — against the verifier's keyring, resolving a
   credential chain when the issuer is not directly trusted;
2. **validity dates and revocation** — against the simulated clock and
   the revocation registry;
3. **ownership** — a challenge/response proof that the presenter holds
   the private key whose fingerprint the credential names.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass, field
from datetime import datetime
from typing import Optional

from repro.credentials.chain import ChainResolver, CERTIFIED_KEY_ATTRIBUTE
from repro.credentials.credential import Credential
from repro.credentials.revocation import RevocationRegistry
from repro.crypto.keys import (
    Keyring,
    PrivateKey,
    PublicKey,
    verify_b64,
    verify_b64_batch,
)
from repro.errors import (
    CredentialExpiredError,
    CredentialOwnershipError,
    CredentialRevokedError,
    SignatureError,
)
from repro.perf import SIGNATURE_CACHE

__all__ = [
    "OwnershipProof",
    "ValidationReport",
    "CredentialValidator",
    "cached_verify_b64",
    "batch_prewarm_signatures",
]

#: Distinguishes "absent from the cache" from a cached ``False`` verdict.
_CACHE_MISS = object()


def batch_prewarm_signatures(validator, credentials) -> int:
    """Batch-verify issuer signatures, warming the signature cache.

    Resolves each credential's issuer key through ``validator`` (chain
    links still verify link-by-link via :func:`cached_verify_b64` —
    they are shared across credentials, so the per-link cache already
    amortizes them), skips triples whose verdict is already cached,
    verifies the rest in one :func:`verify_b64_batch` pass, and stores
    each verdict in :data:`repro.perf.SIGNATURE_CACHE` tagged
    ``(issuer, serial)`` — the same key and tag
    :func:`cached_verify_b64` uses, so a later
    :meth:`CredentialValidator.validate` is a pure cache hit and a
    retraction event naming that serial still evicts the verdict.

    Returns the number of fresh verdicts computed.  Credentials without
    a signature or with an unresolvable issuer are left for the scalar
    path to reject.  When caches are globally disabled the batch pass
    is skipped entirely (nowhere to put the verdicts).
    """
    from repro.perf import caches_enabled

    if not caches_enabled():
        return 0
    pending = []
    seen = set()
    for credential in credentials:
        if credential.signature_b64 is None:
            continue
        issuer_key, _ = validator._issuer_key(credential)
        if issuer_key is None:
            continue
        digest = credential.signing_digest()
        cache_key = (
            issuer_key.fingerprint, digest, credential.signature_b64
        )
        if cache_key in seen:
            continue
        seen.add(cache_key)
        if SIGNATURE_CACHE.get(cache_key, _CACHE_MISS) is not _CACHE_MISS:
            continue
        pending.append(
            (cache_key, issuer_key, digest, credential.signature_b64,
             (credential.issuer, credential.serial))
        )
    if not pending:
        return 0
    verdicts = verify_b64_batch(
        [(key, digest, sig) for _, key, digest, sig, _ in pending]
    )
    for (cache_key, _, _, _, tag), ok in zip(pending, verdicts):
        SIGNATURE_CACHE.put(cache_key, ok, tag=tag)
    return len(pending)


def cached_verify_b64(
    key: PublicKey, message: bytes, signature_b64: str, issuer: str,
    message_digest: Optional[bytes] = None,
    serial: Optional[int] = None,
) -> bool:
    """RSA verification memoized in :data:`repro.perf.SIGNATURE_CACHE`.

    The verdict of ``verify_b64`` is a pure function of (key, message,
    signature), so the cache key is the key's fingerprint plus the
    message digest plus the signature.  Entries are tagged with
    ``(issuer, serial)`` so that a retraction event naming exactly that
    credential (see :meth:`repro.trust.TrustBus.retract`) evicts the
    verdict it contradicts without flushing the issuer's other
    credentials — revocation is the one nonmonotonic event in the trust
    model, and the cache must neither paper over it nor overpay for it.
    Callers without a serial (none today) fall back to the bare
    issuer-name tag, which the whole-issuer sweep
    (:func:`repro.perf.drop_issuer_signatures`) still matches.

    Callers that already hold the SHA-256 of ``message`` (e.g. from
    :meth:`Credential.signing_digest`, itself memoized in
    :data:`repro.perf.DIGEST_CACHE`) pass it as ``message_digest`` so
    the hot path skips re-hashing the message per verification.

    Ownership proofs are deliberately **not** routed through here: a
    nonce is fresh per challenge, so caching its verification would
    never hit and would bloat the cache.
    """
    if message_digest is None:
        message_digest = hashlib.sha256(message).digest()
    cache_key = (
        key.fingerprint,
        message_digest,
        signature_b64,
    )
    return SIGNATURE_CACHE.get_or_compute(
        cache_key,
        lambda: verify_b64(key, message, signature_b64),
        tag=issuer if serial is None else (issuer, serial),
    )


@dataclass(frozen=True)
class OwnershipProof:
    """Response to an ownership challenge.

    The presenter signs the verifier's nonce with the credential
    subject's private key and attaches the matching public key; the
    verifier checks the key's fingerprint against the credential's
    ``subjectKey`` field.
    """

    nonce: str
    public_key: PublicKey
    signature_b64: str

    @classmethod
    def respond(cls, nonce: str, key: PrivateKey) -> "OwnershipProof":
        return cls(
            nonce=nonce,
            public_key=key.public_key,
            signature_b64=key.sign_b64(nonce.encode("utf-8")),
        )

    def check(self, expected_fingerprint: str) -> bool:
        if self.public_key.fingerprint != expected_fingerprint:
            return False
        return verify_b64(
            self.public_key, self.nonce.encode("utf-8"), self.signature_b64
        )


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of validating one credential."""

    credential: Credential
    signature_ok: bool
    within_validity: bool
    not_revoked: bool
    ownership_ok: Optional[bool]  # None when no proof was requested
    chain_length: int = 1

    @property
    def ok(self) -> bool:
        checks = [self.signature_ok, self.within_validity, self.not_revoked]
        if self.ownership_ok is not None:
            checks.append(self.ownership_ok)
        return all(checks)

    def raise_for_failure(self) -> None:
        if not self.signature_ok:
            raise SignatureError(
                f"signature check failed for {self.credential.cred_id!r}"
            )
        if not self.within_validity:
            raise CredentialExpiredError(
                f"credential {self.credential.cred_id!r} is outside its "
                "validity window"
            )
        if not self.not_revoked:
            raise CredentialRevokedError(
                f"credential {self.credential.cred_id!r} was revoked"
            )
        if self.ownership_ok is False:
            raise CredentialOwnershipError(
                f"ownership proof failed for {self.credential.cred_id!r}"
            )


@dataclass
class CredentialValidator:
    """A party's credential verifier.

    Holds the trusted keyring, the revocation registry, and optionally a
    chain resolver for indirectly-trusted issuers.
    """

    keyring: Keyring
    revocations: RevocationRegistry = field(default_factory=RevocationRegistry)
    chain_resolver: Optional[ChainResolver] = None

    def issue_challenge(self) -> str:
        """Fresh nonce for an ownership challenge."""
        return secrets.token_hex(16)

    def _issuer_key(self, credential: Credential) -> tuple[Optional[PublicKey], int]:
        """Resolve the issuer's verification key, walking a chain when
        the issuer is not directly trusted.  Returns (key, chain_length),
        with key None when resolution fails."""
        if self.keyring.trusts(credential.issuer):
            return self.keyring.get(credential.issuer), 1
        if self.chain_resolver is None:
            return None, 1
        try:
            chain = self.chain_resolver.resolve(credential)
        except Exception:
            return None, 1
        # Verify the chain root-first: each link's signature must verify
        # under the key certified one step up.
        key = self.keyring.get(chain.links[-1].issuer)
        for link in reversed(chain.links):
            if not cached_verify_b64(
                key, link.signing_bytes(), link.signature_b64 or "",
                link.issuer, message_digest=link.signing_digest(),
                serial=link.serial,
            ):
                return None, len(chain)
            if self.revocations.is_revoked(link.issuer, link.serial):
                return None, len(chain)
            certified = link.attribute(CERTIFIED_KEY_ATTRIBUTE).xml_text
            try:
                key = PublicKey.from_json(certified)
            except Exception:
                return None, len(chain)
        return key, len(chain)

    def validate(
        self,
        credential: Credential,
        at: datetime,
        proof: Optional[OwnershipProof] = None,
        expected_nonce: Optional[str] = None,
    ) -> ValidationReport:
        """Run every check and return a report (never raises).

        When ``proof`` is supplied, ``expected_nonce`` must be the nonce
        this validator issued; a replayed proof with a different nonce
        fails the ownership check.
        """
        issuer_key, chain_length = self._issuer_key(credential)
        signature_ok = (
            issuer_key is not None
            and credential.signature_b64 is not None
            and cached_verify_b64(
                issuer_key,
                credential.signing_bytes(),
                credential.signature_b64,
                credential.issuer,
                message_digest=credential.signing_digest(),
                serial=credential.serial,
            )
        )
        within_validity = credential.validity.contains(at)
        not_revoked = not self.revocations.is_revoked(
            credential.issuer, credential.serial
        )
        ownership_ok: Optional[bool] = None
        if proof is not None:
            nonce_fresh = expected_nonce is None or proof.nonce == expected_nonce
            ownership_ok = nonce_fresh and proof.check(credential.subject_key)
        return ValidationReport(
            credential=credential,
            signature_ok=signature_ok,
            within_validity=within_validity,
            not_revoked=not_revoked,
            ownership_ok=ownership_ok,
            chain_length=chain_length,
        )

    def validate_or_raise(
        self,
        credential: Credential,
        at: datetime,
        proof: Optional[OwnershipProof] = None,
        expected_nonce: Optional[str] = None,
    ) -> ValidationReport:
        report = self.validate(credential, at, proof, expected_nonce)
        report.raise_for_failure()
        return report
